// Ablation (DESIGN.md design-choice study): contribution of each aug-AST
// edge family. Trains the same HGT under five graph constructions:
// full aug-AST, -CFG, -lexical, -call edges, and vanilla AST (none).
#include "bench_common.h"

int main() {
  using namespace g2p;
  using namespace g2p::bench;

  const auto env = BenchEnv::from_env();
  std::printf("== Ablation: aug-AST edge families (scale %.3g, %d epochs) ==\n\n", env.scale,
              env.epochs);
  const auto data = load_data(env);

  struct Variant {
    const char* name;
    AugAstOptions options;
  };
  const Variant variants[] = {
      {"full aug-AST", AugAstOptions{}},
      {"- CFG edges", AugAstOptions{.cfg_edges = false}},
      {"- lexical edges", AugAstOptions{.lexical_edges = false}},
      {"- call edges", AugAstOptions{.call_edges = false}},
      {"vanilla AST",
       AugAstOptions{.cfg_edges = false, .lexical_edges = false, .call_edges = false}},
  };

  TextTable table({"Variant", "Precision", "Recall", "F1", "Accuracy"});
  for (const auto& variant : variants) {
    std::vector<Example> test;
    const auto model = train_hgt(data, variant.options, env, &test, variant.name);
    const auto m = evaluate_graph_model(model, test).parallel();
    table.add_row(
        {variant.name, pct(m.precision()), pct(m.recall()), pct(m.f1()), pct(m.accuracy())});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "Expected shape: the full aug-AST dominates; removing call edges hurts on the\n"
      "callee-dependent loops (Section 5.1.2), removing lexical edges hurts on the\n"
      "long-bodied loops (Section 5.1.3).\n");
  return 0;
}
