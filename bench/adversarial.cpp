// Adversarial bench: clean-request availability and tail latency when a
// fraction of the stream is hostile.
//
// Trains a small pipeline, measures a sequential worker's mean service time
// (cache off), then fires two open-loop streams at that capacity through a
// SuggestServer with the default per-request ResourceBudget armed:
//
//   phase 1 (baseline)     100% clean traffic — reference p99
//   phase 2 (adversarial)  the same stream with every 10th request replaced
//                          by a pathological source (deep nesting, token
//                          bombs, unterminated comments, non-advancing
//                          shapes, oversize admission rejects)
//
// Gates (exit 1 on violation):
//   * every poison request fails with a *typed* error (ResourceExhausted /
//     ParseError / LexError) — a poison success or an untyped escape fails
//   * clean availability under attack >= G2P_ADV_FLOOR (default 0.99)
//   * clean p99 under attack <= baseline p99 * G2P_ADV_P99_FACTOR (default
//     3.0) + G2P_ADV_P99_SLACK_MS (default 25 ms absolute slack, so
//     sub-millisecond baselines don't gate on scheduler noise)
//
// Knobs: G2P_SCALE / G2P_EPOCHS / G2P_SEED as in bench_common.h, plus
// G2P_ADV_REQUESTS (per-phase stream length, default 320) and the gate
// knobs above. Results go to --json (BENCH_adversarial.json in CI).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "dataset/generator.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "serve/errors.h"
#include "serve/server.h"
#include "support/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

/// The poison set: one of each adversarial family the governor and the
/// frontend guards exist for. All are cheap to reject — the whole point is
/// that a poison slot dies in microseconds-to-milliseconds, not seconds.
std::vector<std::string> poison_sources() {
  std::vector<std::string> out;
  {  // recursion bomb: blows the parse-depth budget mid-parse
    std::string s = "int f(void) { return ";
    for (int i = 0; i < 2000; ++i) s += '(';
    s += '1';
    for (int i = 0; i < 2000; ++i) s += ')';
    s += "; }";
    out.push_back(std::move(s));
  }
  {  // block-nesting bomb
    std::string s = "void f(void) { ";
    for (int i = 0; i < 2000; ++i) s += "{ ";
    for (int i = 0; i < 2000; ++i) s += "} ";
    s += "}";
    out.push_back(std::move(s));
  }
  out.push_back("int g(void) { /* never closed");    // LexError at EOF
  out.push_back("struct s { int a[");                // non-advancing shape
  {  // unary-operator bomb
    std::string s = "int h(void) { return ";
    for (int i = 0; i < 3000; ++i) s += '!';
    s += "1; }";
    out.push_back(std::move(s));
  }
  return out;
}

struct PhaseResult {
  std::size_t clean_total = 0;
  std::size_t clean_completed = 0;
  std::size_t clean_typed_errors = 0;
  std::size_t poison_total = 0;
  std::size_t poison_typed = 0;    // rejected with a typed error (required)
  std::size_t poison_accepted = 0; // produced a value (a gate failure)
  std::size_t untyped_errors = 0;
  std::size_t shed = 0;
  std::vector<double> clean_latency_s;

  double clean_availability() const {
    const std::size_t not_shed = clean_total - std::min(clean_total, shed);
    return not_shed == 0 ? 0.0
                         : static_cast<double>(clean_completed) /
                               static_cast<double>(not_shed);
  }
};

/// One open-loop stream at `interval_s` spacing. `poison_every` == 0 means
/// all-clean; otherwise every poison_every-th request draws from the poison
/// set (round-robin) instead of the clean set.
PhaseResult run_phase(g2p::SuggestServer& server, const std::vector<std::string>& clean,
                      const std::vector<std::string>& poison, std::size_t poison_every,
                      std::size_t num_requests, double interval_s) {
  using namespace g2p;
  PhaseResult r;
  std::vector<std::future<std::vector<LoopSuggestion>>> futures(num_requests);
  // 0 = not admitted, 1 = admitted clean, 2 = admitted poison,
  // 3 = poison rejected synchronously at admission (already typed).
  std::vector<char> slot(num_requests, 0);
  std::atomic<std::size_t> submitted{0};
  std::atomic<std::size_t> shed{0};
  const auto t0 = Clock::now();
  std::thread producer([&] {
    std::size_t poison_i = 0;
    for (std::size_t i = 0; i < num_requests; ++i) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(static_cast<double>(i) * interval_s)));
      const bool is_poison = poison_every != 0 && (i % poison_every) == poison_every - 1;
      try {
        if (is_poison) {
          futures[i] = server.submit(poison[poison_i++ % poison.size()]);
          slot[i] = 2;
        } else {
          futures[i] = server.submit(clean[i % clean.size()]);
          slot[i] = 1;
        }
      } catch (const Overloaded&) {
        shed.fetch_add(1, std::memory_order_relaxed);
      } catch (const ResourceExhausted&) {
        slot[i] = 3;  // admission governor said no: typed, synchronous
      }
      submitted.store(i + 1, std::memory_order_release);
    }
  });

  for (std::size_t i = 0; i < num_requests; ++i) {
    while (submitted.load(std::memory_order_acquire) <= i) std::this_thread::yield();
    if (slot[i] == 0) continue;
    const bool is_poison = slot[i] >= 2;
    if (is_poison) ++r.poison_total; else ++r.clean_total;
    if (slot[i] == 3) {
      ++r.poison_typed;
      continue;
    }
    try {
      (void)futures[i].get();
      if (is_poison) {
        ++r.poison_accepted;
      } else {
        ++r.clean_completed;
        r.clean_latency_s.push_back(seconds_since(t0) -
                                    static_cast<double>(i) * interval_s);
      }
    } catch (const LexError&) {
      if (is_poison) ++r.poison_typed; else ++r.clean_typed_errors;
    } catch (const ParseError&) {
      if (is_poison) ++r.poison_typed; else ++r.clean_typed_errors;
    } catch (const ServeError&) {  // ResourceExhausted and kin
      if (is_poison) ++r.poison_typed; else ++r.clean_typed_errors;
    } catch (const std::exception& e) {
      ++r.untyped_errors;
      std::printf("UNTYPED error on request %zu: %s\n", i, e.what());
    }
  }
  producer.join();
  r.shed = shed.load();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g2p;
  const auto env = bench::BenchEnv::from_env();
  const std::string json_path = bench::json_path_from_args(argc, argv);

  Pipeline::Options options;
  options.corpus = env.generator_config();
  options.corpus.scale = std::max(env.scale, 0.01);
  options.train.epochs = std::min(env.epochs, 2);
  options.train.seed = env.seed;
  std::printf("training pipeline (scale %.3f, %d epochs)...\n", options.corpus.scale,
              options.train.epochs);
  auto pipeline = std::make_shared<Pipeline>(Pipeline::train(options));

  GeneratorConfig fresh = env.generator_config();
  fresh.scale = std::max(env.scale * 2.0, 0.04);
  fresh.seed = env.seed + 1;
  const Corpus corpus = CorpusGenerator(fresh).generate();
  std::vector<std::string> clean;
  std::set<std::string_view> seen;
  constexpr std::size_t kDistinct = 32;
  for (const auto& sample : corpus.samples) {
    if (seen.insert(sample.file_source).second) clean.push_back(sample.file_source);
    if (clean.size() == kDistinct) break;
  }
  if (clean.size() < kDistinct) {
    std::printf("FAIL: only %zu distinct files generated (need %zu); raise G2P_SCALE\n",
                clean.size(), kDistinct);
    return 1;
  }
  std::vector<std::string> poison = poison_sources();
  // One oversize source past the default 2 MiB admission cap: exercises the
  // synchronous static reject alongside the mid-parse ones.
  poison.push_back(std::string((2u << 20) + 4096, 'x'));

  std::size_t num_requests = 320;
  if (const char* env_n = std::getenv("G2P_ADV_REQUESTS")) {
    num_requests = static_cast<std::size_t>(std::strtoull(env_n, nullptr, 10));
  }
  double floor = 0.99;
  if (const char* env_floor = std::getenv("G2P_ADV_FLOOR")) floor = std::atof(env_floor);
  double p99_factor = 3.0;
  if (const char* env_f = std::getenv("G2P_ADV_P99_FACTOR")) p99_factor = std::atof(env_f);
  double p99_slack_ms = 25.0;
  if (const char* env_s = std::getenv("G2P_ADV_P99_SLACK_MS")) p99_slack_ms = std::atof(env_s);

  // Capacity calibration (cache off), as in bench_chaos.
  pipeline->set_cache_bytes(0);
  for (const auto& src : clean) (void)pipeline->suggest(src);  // warmup
  double total_service = 0.0;
  {
    const auto start = Clock::now();
    for (const auto& src : clean) (void)pipeline->suggest(src);
    total_service = seconds_since(start);
  }
  const double mean_service = total_service / static_cast<double>(clean.size());
  const double interval_s = mean_service;
  std::printf("mean sequential service: %.3f ms | open-loop interval: %.3f ms | %zu requests/phase\n",
              mean_service * 1e3, interval_s * 1e3, num_requests);

  SuggestServer::Options server_options;
  server_options.max_batch_loops = 32;
  server_options.max_delay = std::chrono::milliseconds(2);
  server_options.max_queue_depth = 256;

  // Phase 1: clean-only baseline.
  pipeline->set_cache_bytes(64u << 20);
  pipeline->clear_cache();
  PhaseResult baseline;
  {
    SuggestServer server(pipeline, server_options);
    baseline = run_phase(server, clean, poison, 0, num_requests, interval_s);
    server.shutdown();
  }
  const double baseline_p99_ms = percentile(baseline.clean_latency_s, 0.99) * 1e3;

  // Phase 2: every 10th request is poison (a 10% hostile stream).
  pipeline->clear_cache();
  PhaseResult adv;
  ServerStatsSnapshot adv_stats;
  {
    SuggestServer server(pipeline, server_options);
    adv = run_phase(server, clean, poison, 10, num_requests, interval_s);
    server.shutdown();
    adv_stats = server.stats();
  }
  const double adv_p99_ms = percentile(adv.clean_latency_s, 0.99) * 1e3;
  const double p99_budget_ms = baseline_p99_ms * p99_factor + p99_slack_ms;
  const double availability = adv.clean_availability();

  TextTable table({"metric", "baseline", "adversarial"});
  table.add_row({"clean requests", std::to_string(baseline.clean_total),
                 std::to_string(adv.clean_total)});
  table.add_row({"clean completed", std::to_string(baseline.clean_completed),
                 std::to_string(adv.clean_completed)});
  table.add_row({"poison requests", "0", std::to_string(adv.poison_total)});
  table.add_row({"poison rejected typed", "-", std::to_string(adv.poison_typed)});
  table.add_row({"poison accepted", "-", std::to_string(adv.poison_accepted)});
  table.add_row({"clean p50 (ms)",
                 fmt_fixed(percentile(baseline.clean_latency_s, 0.50) * 1e3, 2),
                 fmt_fixed(percentile(adv.clean_latency_s, 0.50) * 1e3, 2)});
  table.add_row({"clean p99 (ms)", fmt_fixed(baseline_p99_ms, 2), fmt_fixed(adv_p99_ms, 2)});
  table.add_row({"clean availability", fmt_fixed(baseline.clean_availability() * 100, 2) + "%",
                 fmt_fixed(availability * 100, 2) + "%"});
  table.add_row({"shed", std::to_string(baseline.shed), std::to_string(adv.shed)});
  std::printf("%s", table.render().c_str());
  std::printf("governor rejections: %llu total",
              static_cast<unsigned long long>(adv_stats.resource_exhausted));
  for (int i = 0; i < kNumResourceLimits; ++i) {
    if (adv_stats.resource_exhausted_by_limit[static_cast<std::size_t>(i)] == 0) continue;
    std::printf(" | %s %llu", resource_limit_name(static_cast<ResourceLimit>(i)),
                static_cast<unsigned long long>(
                    adv_stats.resource_exhausted_by_limit[static_cast<std::size_t>(i)]));
  }
  std::printf("\n");

  bool ok = true;
  if (adv.untyped_errors != 0 || baseline.untyped_errors != 0) {
    std::printf("FAIL: untyped errors escaped to clients (baseline %zu, adversarial %zu)\n",
                baseline.untyped_errors, adv.untyped_errors);
    ok = false;
  }
  if (adv.poison_accepted != 0) {
    std::printf("FAIL: %zu poison requests were accepted\n", adv.poison_accepted);
    ok = false;
  }
  if (adv.poison_typed != adv.poison_total) {
    std::printf("FAIL: only %zu of %zu poison requests failed typed\n", adv.poison_typed,
                adv.poison_total);
    ok = false;
  }
  if (availability < floor) {
    std::printf("FAIL: clean availability %.4f below the %.4f floor\n", availability, floor);
    ok = false;
  }
  if (adv_p99_ms > p99_budget_ms) {
    std::printf("FAIL: clean p99 %.2f ms exceeds budget %.2f ms (baseline %.2f ms x %.1f + %.0f ms)\n",
                adv_p99_ms, p99_budget_ms, baseline_p99_ms, p99_factor, p99_slack_ms);
    ok = false;
  }
  std::printf("clean availability %.4f (floor %.4f) | clean p99 %.2f ms (budget %.2f ms)\n",
              availability, floor, adv_p99_ms, p99_budget_ms);

  bench::JsonMetrics json;
  bench::set_common_header(json, "adversarial");
  json.set("requests_per_phase", static_cast<std::int64_t>(num_requests));
  json.set("poison_fraction", 0.1);
  json.set("baseline_clean_completed", static_cast<std::int64_t>(baseline.clean_completed));
  json.set("baseline_p50_ms", percentile(baseline.clean_latency_s, 0.50) * 1e3);
  json.set("baseline_p99_ms", baseline_p99_ms);
  json.set("adv_clean_total", static_cast<std::int64_t>(adv.clean_total));
  json.set("adv_clean_completed", static_cast<std::int64_t>(adv.clean_completed));
  json.set("adv_poison_total", static_cast<std::int64_t>(adv.poison_total));
  json.set("adv_poison_typed", static_cast<std::int64_t>(adv.poison_typed));
  json.set("adv_poison_accepted", static_cast<std::int64_t>(adv.poison_accepted));
  json.set("adv_untyped_errors", static_cast<std::int64_t>(adv.untyped_errors));
  json.set("adv_shed", static_cast<std::int64_t>(adv.shed));
  json.set("adv_p50_ms", percentile(adv.clean_latency_s, 0.50) * 1e3);
  json.set("adv_p99_ms", adv_p99_ms);
  json.set("clean_availability", availability);
  json.set("availability_floor", floor);
  json.set("p99_budget_ms", p99_budget_ms);
  json.set("p99_factor", p99_factor);
  json.set("p99_slack_ms", p99_slack_ms);
  json.set("resource_exhausted", static_cast<std::int64_t>(adv_stats.resource_exhausted));
  for (int i = 0; i < kNumResourceLimits; ++i) {
    json.set(std::string("resource_exhausted_") +
                 resource_limit_name(static_cast<ResourceLimit>(i)),
             static_cast<std::int64_t>(
                 adv_stats.resource_exhausted_by_limit[static_cast<std::size_t>(i)]));
  }
  json.set("pass", ok);
  if (!json.write(json_path)) {
    std::printf("FAIL: could not write %s\n", json_path.c_str());
    ok = false;
  }
  if (ok) std::printf("PASS\n");
  return ok ? 0 : 1;
}
