// Shared setup for the paper-reproduction bench binaries.
//
// Environment knobs (all optional):
//   G2P_SCALE  — corpus scale as a fraction of the paper's Table 1 counts
//                (default 0.05; 1.0 regenerates the full-size OMP_Serial).
//   G2P_EPOCHS — training epochs (default 6).
//   G2P_SEED   — experiment seed (default 20230509).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <thread>

#include "core/graph2par.h"
#include "core/pragformer.h"
#include "tensor/backend.h"
#include "dataset/generator.h"
#include "eval/trainer.h"
#include "support/failpoint.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/table.h"

namespace g2p::bench {

struct BenchEnv {
  double scale = 0.03;
  int epochs = 5;
  std::uint64_t seed = 20230509;

  static BenchEnv from_env() {
    BenchEnv env;
    if (const char* s = std::getenv("G2P_SCALE")) env.scale = std::atof(s);
    if (const char* s = std::getenv("G2P_EPOCHS")) env.epochs = std::atoi(s);
    if (const char* s = std::getenv("G2P_SEED")) env.seed = std::strtoull(s, nullptr, 10);
    return env;
  }

  GeneratorConfig generator_config() const {
    GeneratorConfig cfg;
    cfg.scale = scale;
    cfg.seed = seed;
    return cfg;
  }

  TrainConfig train_config() const {
    TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.seed = seed;
    return cfg;
  }
};

/// Corpus + split + vocabulary, printed once per binary.
struct Data {
  Corpus corpus;
  CorpusSplit split;
  Vocab vocab;
};

inline Data load_data(const BenchEnv& env) {
  Data data;
  data.corpus = CorpusGenerator(env.generator_config()).generate();
  data.split = data.corpus.split();
  data.vocab = build_corpus_vocab(data.corpus, data.split.train);
  std::printf("corpus: %d loops (%d parallel) | train %zu / val %zu / test %zu | vocab %d\n\n",
              data.corpus.size(), data.corpus.count_parallel(), data.split.train.size(),
              data.split.validation.size(), data.split.test.size(), data.vocab.size());
  return data;
}

/// The vanilla-AST representation of Table 2/3 ("AST" / "HGT-AST" baseline).
inline AugAstOptions vanilla_ast_options() {
  AugAstOptions opts;
  opts.cfg_edges = false;
  opts.lexical_edges = false;
  opts.call_edges = false;
  return opts;
}

/// Train a Graph2Par-architecture model on the given representation.
inline Graph2ParModel train_hgt(const Data& data, const AugAstOptions& aug,
                                const BenchEnv& env, std::vector<Example>* test_out,
                                const char* label) {
  const auto train_examples = prepare_examples(data.corpus, data.split.train, data.vocab, aug);
  if (test_out) *test_out = prepare_examples(data.corpus, data.split.test, data.vocab, aug);
  Graph2ParConfig mc;
  mc.vocab_size = data.vocab.size();
  Rng rng(env.seed);
  Graph2ParModel model(mc, rng);
  std::printf("training %s on %zu loops (%d epochs)...\n", label, train_examples.size(),
              env.epochs);
  train_graph_model(model, train_examples, env.train_config());
  return model;
}

/// Train the PragFormer token baseline.
inline PragFormerModel train_pragformer(const Data& data, const BenchEnv& env,
                                        std::vector<Example>* test_out) {
  const AugAstOptions aug;  // graphs unused by the token model; tokens ride along
  const auto train_examples = prepare_examples(data.corpus, data.split.train, data.vocab, aug);
  if (test_out) *test_out = prepare_examples(data.corpus, data.split.test, data.vocab, aug);
  PragFormerConfig pc;
  pc.vocab_size = data.vocab.size();
  Rng rng(env.seed);
  PragFormerModel model(pc, rng);
  std::printf("training PragFormer on %zu loops (%d epochs)...\n", train_examples.size(),
              env.epochs);
  train_token_model(model, train_examples, env.train_config());
  return model;
}

inline std::string pct(double v) { return fmt_fixed(v, 2); }

/// Machine-readable bench results: an insertion-ordered flat JSON object.
/// Every bench binary accepts `--json <path>`; when given, it writes its
/// headline metrics here so the perf trajectory can be tracked across PRs
/// (BENCH_*.json baselines are checked in at the repo root).
class JsonMetrics {
 public:
  void set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    entries_.emplace_back(key, buf);
  }
  void set(const std::string& key, std::int64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, int value) { set(key, static_cast<std::int64_t>(value)); }
  void set(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + value + "\"");  // keys/values are ASCII identifiers
  }
  void set(const std::string& key, const char* value) { set(key, std::string(value)); }
  void set(const std::string& key, bool value) {
    entries_.emplace_back(key, value ? "true" : "false");
  }

  std::string render() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out += "  \"" + entries_[i].first + "\": " + entries_[i].second;
      if (i + 1 < entries_.size()) out += ",";
      out += "\n";
    }
    return out + "}\n";
  }

  /// No-op (returning true) when `path` is empty — benches call this
  /// unconditionally with whatever json_path_from_args found.
  [[nodiscard]] bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) return false;
    out << render();
    out.flush();
    return out.good();
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Common provenance header every --json bench emits first: the bench name,
/// the SIMD backend actually dispatched (after G2P_BACKEND and CPUID
/// resolution), the machine's hardware thread count, and the git revision
/// the run came from (working-tree HEAD at run time; "unknown" outside a
/// checkout). One shared shape means the checked-in BENCH_*.json baselines
/// can be joined/diffed by tooling without per-bench cases — call this
/// before any bench-specific keys.
inline void set_common_header(JsonMetrics& json, const char* bench_name) {
  json.set("bench", bench_name);
  json.set("backend", backend::active_name());
  json.set("hw_threads", static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  // Resolved fault-injection schedule (normalized spec; "" when disarmed).
  // Numbers measured under injection must never masquerade as clean
  // baselines, so every bench stamps this, not just bench_chaos.
  json.set("failpoints", failpoint::active_spec());
  std::string rev = "unknown";
  if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.pop_back();
      if (!line.empty()) rev = line;
    }
    ::pclose(p);
  }
  json.set("git_rev", rev);
}

/// The value following `--json`, or "" when the flag is absent. A trailing
/// `--json` with no path is a usage error, not a silent no-op — the bench
/// would otherwise PASS while the caller's metrics file never appears.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s [--json <path>] (--json given without a path)\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[i + 1];
    }
  }
  return {};
}

}  // namespace g2p::bench
