// Shared setup for the paper-reproduction bench binaries.
//
// Environment knobs (all optional):
//   G2P_SCALE  — corpus scale as a fraction of the paper's Table 1 counts
//                (default 0.05; 1.0 regenerates the full-size OMP_Serial).
//   G2P_EPOCHS — training epochs (default 6).
//   G2P_SEED   — experiment seed (default 20230509).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/graph2par.h"
#include "core/pragformer.h"
#include "dataset/generator.h"
#include "eval/trainer.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/table.h"

namespace g2p::bench {

struct BenchEnv {
  double scale = 0.03;
  int epochs = 5;
  std::uint64_t seed = 20230509;

  static BenchEnv from_env() {
    BenchEnv env;
    if (const char* s = std::getenv("G2P_SCALE")) env.scale = std::atof(s);
    if (const char* s = std::getenv("G2P_EPOCHS")) env.epochs = std::atoi(s);
    if (const char* s = std::getenv("G2P_SEED")) env.seed = std::strtoull(s, nullptr, 10);
    return env;
  }

  GeneratorConfig generator_config() const {
    GeneratorConfig cfg;
    cfg.scale = scale;
    cfg.seed = seed;
    return cfg;
  }

  TrainConfig train_config() const {
    TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.seed = seed;
    return cfg;
  }
};

/// Corpus + split + vocabulary, printed once per binary.
struct Data {
  Corpus corpus;
  CorpusSplit split;
  Vocab vocab;
};

inline Data load_data(const BenchEnv& env) {
  Data data;
  data.corpus = CorpusGenerator(env.generator_config()).generate();
  data.split = data.corpus.split();
  data.vocab = build_corpus_vocab(data.corpus, data.split.train);
  std::printf("corpus: %d loops (%d parallel) | train %zu / val %zu / test %zu | vocab %d\n\n",
              data.corpus.size(), data.corpus.count_parallel(), data.split.train.size(),
              data.split.validation.size(), data.split.test.size(), data.vocab.size());
  return data;
}

/// The vanilla-AST representation of Table 2/3 ("AST" / "HGT-AST" baseline).
inline AugAstOptions vanilla_ast_options() {
  AugAstOptions opts;
  opts.cfg_edges = false;
  opts.lexical_edges = false;
  opts.call_edges = false;
  return opts;
}

/// Train a Graph2Par-architecture model on the given representation.
inline Graph2ParModel train_hgt(const Data& data, const AugAstOptions& aug,
                                const BenchEnv& env, std::vector<Example>* test_out,
                                const char* label) {
  const auto train_examples = prepare_examples(data.corpus, data.split.train, data.vocab, aug);
  if (test_out) *test_out = prepare_examples(data.corpus, data.split.test, data.vocab, aug);
  Graph2ParConfig mc;
  mc.vocab_size = data.vocab.size();
  Rng rng(env.seed);
  Graph2ParModel model(mc, rng);
  std::printf("training %s on %zu loops (%d epochs)...\n", label, train_examples.size(),
              env.epochs);
  train_graph_model(model, train_examples, env.train_config());
  return model;
}

/// Train the PragFormer token baseline.
inline PragFormerModel train_pragformer(const Data& data, const BenchEnv& env,
                                        std::vector<Example>* test_out) {
  const AugAstOptions aug;  // graphs unused by the token model; tokens ride along
  const auto train_examples = prepare_examples(data.corpus, data.split.train, data.vocab, aug);
  if (test_out) *test_out = prepare_examples(data.corpus, data.split.test, data.vocab, aug);
  PragFormerConfig pc;
  pc.vocab_size = data.vocab.size();
  Rng rng(env.seed);
  PragFormerModel model(pc, rng);
  std::printf("training PragFormer on %zu loops (%d epochs)...\n", train_examples.size(),
              env.epochs);
  train_token_model(model, train_examples, env.train_config());
  return model;
}

inline std::string pct(double v) { return fmt_fixed(v, 2); }

}  // namespace g2p::bench
