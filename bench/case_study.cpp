// §6.6 Case study: loops missed by ALL THREE algorithm-based tools but
// detected by Graph2Par (48 in the paper), including the paper's own
// Listings 1-8 run through every analyzer and the trained model.
#include "bench_common.h"
#include "core/pipeline.h"
#include "eval/comparison.h"

namespace {

using namespace g2p;
using namespace g2p::bench;

struct Listing {
  const char* name;
  const char* file;     // full TU (helpers + kernel)
  bool parallel_label;  // ground truth per the paper
};

const Listing kListings[] = {
    {"Listing 1 (reduction + fabs)",
     "void kernel(double* a) {\n  int i;\n  double error = 0;\n"
     "  for (i = 0; i < 30000000; i++)\n    error = error + fabs(a[i] - a[i + 1]);\n}\n",
     true},
    {"Listing 2 (reduction + abs + structs)",
     "struct pixel { int r; int g; int b; };\n"
     "void kernel(struct pixel* objetivo, struct pixel* individuo, int num_pixels) {\n"
     "  int fitness = 0;\n"
     "  for (int i = 0; i < num_pixels; i++) {\n"
     "    fitness += (abs(objetivo[i].r - individuo[i].r) +\n"
     "                abs(objetivo[i].g - individuo[i].g)) +\n"
     "               abs(objetivo[i].b - individuo[i].b);\n  }\n}\n",
     true},
    {"Listing 3 (user function call)",
     "float square(int x) {\n  int k = 0;\n  while (k < 5000) k++;\n  return sqrt(x);\n}\n"
     "void kernel(float* vector, int size) {\n"
     "  for (int i = 0; i < size; i++) {\n    vector[i] = square(vector[i]);\n  }\n}\n",
     true},
    {"Listing 4 (two-statement reduction)",
     "void kernel(int N, int step) {\n  int v = 0;\n"
     "  for (int i = 0; i < N; i += step) {\n    v += 2;\n    v = v + step;\n  }\n}\n",
     true},
    {"Listing 5 (triple nested counter)",
     "void kernel(void) {\n  int i, j, k, l = 0;\n"
     "  for (j = 0; j < 4; j++)\n    for (i = 0; i < 5; i++)\n"
     "      for (k = 0; k < 6; k += 2)\n        l++;\n}\n",
     true},
    {"Listing 6 (array + reduction)",
     "void kernel(int* a) {\n  int i, sum = 0;\n"
     "  for (i = 0; i < 1000; i++) {\n    a[i] = i * 2;\n    sum += i;\n  }\n}\n",
     true},
    {"Listing 7 (row reduction)",
     "void kernel(double a[1000][1000], double* v, int i) {\n  int j;\n  double sum = 0;\n"
     "  for (j = 0; j < 1000; j++) {\n    sum += a[i][j] * v[j];\n  }\n}\n",
     true},
    {"Listing 8 (nest + outer temp)",
     "void kernel(double a[12][12][12], double m) {\n  int i, j, k;\n  double tmp1;\n"
     "  for (i = 0; i < 12; i++) {\n    for (j = 0; j < 12; j++) {\n"
     "      for (k = 0; k < 12; k++) {\n        tmp1 = 6.0 / m;\n"
     "        a[i][j][k] = tmp1 + 4;\n      }\n    }\n  }\n}\n",
     true},
};

}  // namespace

int main() {
  const auto env = BenchEnv::from_env();
  std::printf("== Case study (Section 6.6): loops missed by all tools (scale %.3g) ==\n\n",
              env.scale);
  const auto data = load_data(env);
  std::vector<Example> aug_test;
  const auto model = train_hgt(data, AugAstOptions{}, env, &aug_test, "Graph2Par");
  const auto preds = predict_parallel(model, aug_test);

  // Corpus sweep: parallel test loops missed by every tool but caught by the
  // model — the paper finds 48 such loops.
  std::printf("running tool simulacra...\n\n");
  const auto results = run_tools_on_corpus(data.corpus);
  int missed_by_all_found_by_model = 0;
  int missed_by_all = 0;
  for (std::size_t i = 0; i < aug_test.size(); ++i) {
    const int idx = aug_test[i].corpus_index;
    const auto& sample = data.corpus.samples[static_cast<std::size_t>(idx)];
    if (!sample.parallel) continue;
    bool any_tool = false;
    for (const auto& [tool, verdicts] : results.by_tool) {
      any_tool |= verdicts[static_cast<std::size_t>(idx)].detected_parallel();
    }
    if (any_tool) continue;
    ++missed_by_all;
    if (preds[i]) ++missed_by_all_found_by_model;
  }
  std::printf("test loops missed by ALL three tools:           %d\n", missed_by_all);
  std::printf("...of which Graph2Par detects (paper: 48):      %d\n\n",
              missed_by_all_found_by_model);

  // The paper's own listings.
  const auto tools = make_all_tools();
  TextTable table({"Listing", "PLUTO", "autoPar", "DiscoPoP", "Graph2Par"});
  AugAstBuilder builder(data.vocab, AugAstOptions{});
  for (const auto& listing : kListings) {
    auto parsed = parse_translation_unit(listing.file);
    const auto loops = extract_loops(*parsed.tu);
    const Stmt* loop = nullptr;
    for (const auto& l : loops) {
      if (l.loop->kind() == NodeKind::kForStmt) {
        loop = l.loop;
        break;
      }
    }
    if (!loop) loop = loops.front().loop;

    std::vector<std::string> cells = {listing.name};
    for (const auto& tool : tools) {
      const auto r = tool->analyze(*loop, parsed.tu, &parsed.structs);
      cells.push_back(!r.applicable ? "n/a" : (r.parallel ? "parallel" : "miss"));
    }
    const auto graph = builder.build(*loop, parsed.tu);
    std::vector<const HetGraph*> ptrs = {&graph.graph};
    const auto batch = batch_graphs(ptrs);
    const auto pred =
        argmax_rows(model.task_logits(model.encode(batch), PredictionTask::kParallel))[0];
    cells.push_back(pred == 1 ? "parallel" : "miss");
    table.add_row(std::move(cells));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper: all eight listings are parallel; the algorithm-based tools miss them\n"
      "(Listings 1-5 motivate Section 2); Graph2Par detects them.\n");
  return 0;
}
