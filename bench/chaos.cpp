// Chaos bench: availability and tail latency of the fault-tolerant server
// under an injected fault schedule at ~1x sequential capacity.
//
// Trains a small pipeline, measures a sequential worker's mean service time
// (cache off), then fires an open-loop stream at that capacity through a
// SuggestServer with the default degradation ladder, the watchdog, and the
// transient-retry ladder armed — while failpoints (support/failpoint.h)
// inject faults into the frontend, the cache, the forward, the tensor pool,
// and the scheduler. Every future must complete (value or typed error);
// the headline gate is *non-shed availability*: of the requests the server
// accepted (not shed by the overload ladder), the fraction that completed
// with a value must be at least G2P_CHAOS_FLOOR (default 0.99 — CI pins a
// lenient floor on shared runners). p50/p99 latency under chaos and every
// fault-tolerance counter are reported and written to --json.
//
// The fault schedule: G2P_FAILPOINTS, when set, is used as-is (the chaos CI
// job randomizes the seeds this way); otherwise a default low-probability
// schedule covering all five serving-path sites is armed. Decisions are
// deterministic per (seed, hit-index), so a fixed schedule replays.
//
// Knobs: G2P_SCALE / G2P_EPOCHS / G2P_SEED as in bench_common.h, plus
// G2P_CHAOS_REQUESTS (stream length, default 384) and G2P_CHAOS_FLOOR.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "dataset/generator.h"
#include "serve/errors.h"
#include "serve/server.h"
#include "support/failpoint.h"
#include "support/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

/// Default chaos schedule: every serving-path site armed at a probability
/// low enough that the retry ladder should absorb nearly all of it. The
/// scheduler site stalls instead of throwing — a thrown scheduler fault
/// kills a whole batch with no retry, which is the harsh case the chaos
/// *test* covers; the bench models background infrastructure flakiness.
constexpr const char* kDefaultSchedule =
    "frontend.parse=throw@0.05,101;"
    "cache.insert=error@0.05,102;"
    "encode.forward=delay(2)@0.02,103;"
    "pool.acquire=throw@0.005,104;"
    "scheduler.batch=delay(1)@0.01,105";

}  // namespace

int main(int argc, char** argv) {
  using namespace g2p;
  const auto env = bench::BenchEnv::from_env();
  const std::string json_path = bench::json_path_from_args(argc, argv);

  Pipeline::Options options;
  options.corpus = env.generator_config();
  options.corpus.scale = std::max(env.scale, 0.01);
  options.train.epochs = std::min(env.epochs, 2);
  options.train.seed = env.seed;
  std::printf("training pipeline (scale %.3f, %d epochs)...\n", options.corpus.scale,
              options.train.epochs);
  auto pipeline = std::make_shared<Pipeline>(Pipeline::train(options));

  // Fresh distinct files, as in bench_latency_server.
  GeneratorConfig fresh = env.generator_config();
  fresh.scale = std::max(env.scale * 2.0, 0.04);
  fresh.seed = env.seed + 1;
  const Corpus corpus = CorpusGenerator(fresh).generate();
  std::vector<std::string> sources;
  std::set<std::string_view> seen;
  constexpr std::size_t kDistinct = 32;
  for (const auto& sample : corpus.samples) {
    if (seen.insert(sample.file_source).second) sources.push_back(sample.file_source);
    if (sources.size() == kDistinct) break;
  }
  if (sources.size() < kDistinct) {
    std::printf("FAIL: only %zu distinct files generated (need %zu); raise G2P_SCALE\n",
                sources.size(), kDistinct);
    return 1;
  }

  std::size_t num_requests = 384;
  if (const char* env_n = std::getenv("G2P_CHAOS_REQUESTS")) {
    num_requests = static_cast<std::size_t>(std::strtoull(env_n, nullptr, 10));
  }
  double floor = 0.99;
  if (const char* env_floor = std::getenv("G2P_CHAOS_FLOOR")) floor = std::atof(env_floor);

  // Capacity calibration: mean per-request sequential service time with the
  // cache off (the no-batching worker the arrival rate is sized against).
  pipeline->set_cache_bytes(0);
  for (const auto& src : sources) (void)pipeline->suggest(src);  // warmup
  double total_service = 0.0;
  {
    const auto start = Clock::now();
    for (const auto& src : sources) (void)pipeline->suggest(src);
    total_service = seconds_since(start);
  }
  const double mean_service = total_service / static_cast<double>(sources.size());
  pipeline->set_cache_bytes(64u << 20);
  pipeline->clear_cache();  // chaos traffic warms its own cache under faults

  // Arm the schedule. A schedule from the G2P_FAILPOINTS env was applied at
  // process start and wins (the CI chaos job randomizes seeds through it).
  if (!failpoint::armed()) failpoint::configure(kDefaultSchedule);
  const std::string schedule = failpoint::active_spec();
  std::printf("fault schedule: %s\n", schedule.c_str());

  SuggestServer::Options server_options;
  server_options.max_batch_loops = 32;
  server_options.max_delay = std::chrono::milliseconds(2);
  server_options.max_queue_depth = 256;
  server_options.max_retries = 3;
  server_options.retry_backoff = std::chrono::milliseconds(1);
  server_options.batch_budget = std::chrono::milliseconds(2000);
  // Degradation ladder at its defaults: shrink at 50% depth, cache-only at
  // 75%, shed at 90% — at 1x capacity it should never leave kNormal.
  SuggestServer server(pipeline, server_options);

  // Open-loop arrivals at 1x the sequential worker's capacity.
  const double interval_s = mean_service;
  std::printf("mean sequential service: %.3f ms | open-loop interval: %.3f ms | %zu requests\n",
              mean_service * 1e3, interval_s * 1e3, num_requests);
  const auto source_of = [&](std::size_t i) { return i % sources.size(); };

  std::vector<std::future<std::vector<LoopSuggestion>>> futures(num_requests);
  std::vector<char> admitted(num_requests, 0);
  std::atomic<std::size_t> submitted{0};
  std::atomic<std::size_t> admission_shed{0};
  const auto t0 = Clock::now();
  std::thread producer([&] {
    for (std::size_t i = 0; i < num_requests; ++i) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(static_cast<double>(i) * interval_s)));
      try {
        futures[i] = server.submit(sources[source_of(i)]);
        admitted[i] = 1;
      } catch (const Overloaded&) {
        admission_shed.fetch_add(1, std::memory_order_relaxed);
      }
      submitted.store(i + 1, std::memory_order_release);
    }
  });

  // Invariant: every admitted future completes — a value or a typed error.
  // A hang here is a harness failure by construction.
  std::size_t completed = 0, injected_faults = 0, typed_errors = 0, untyped_errors = 0;
  std::vector<double> latency_s;
  latency_s.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    while (submitted.load(std::memory_order_acquire) <= i) std::this_thread::yield();
    if (!admitted[i]) continue;
    try {
      (void)futures[i].get();
      ++completed;
      latency_s.push_back(seconds_since(t0) - static_cast<double>(i) * interval_s);
    } catch (const failpoint::FailpointError&) {
      ++injected_faults;
    } catch (const ServeError&) {
      ++typed_errors;
    } catch (const std::exception& e) {
      ++untyped_errors;
      std::printf("UNTYPED error on request %zu: %s\n", i, e.what());
    }
  }
  producer.join();
  server.shutdown();
  const auto stats = server.stats();

  // Non-shed availability: of the requests the ladder did not shed, how
  // many produced a value. (Admission sheds and Overloaded completions are
  // deliberate load-shedding, not failures — counted separately.)
  const std::size_t shed_total = admission_shed.load() + stats.shed;
  const std::size_t not_shed = num_requests - std::min(num_requests, shed_total);
  const double availability =
      not_shed == 0 ? 0.0
                    : static_cast<double>(completed) / static_cast<double>(not_shed);

  TextTable table({"metric", "value"});
  table.add_row({"requests", std::to_string(num_requests)});
  table.add_row({"completed", std::to_string(completed)});
  table.add_row({"injected faults surfaced", std::to_string(injected_faults)});
  table.add_row({"typed serve errors", std::to_string(typed_errors)});
  table.add_row({"shed (admission + ladder)", std::to_string(shed_total)});
  table.add_row({"availability (non-shed)", fmt_fixed(availability * 100.0, 2) + "%"});
  table.add_row({"p50 (ms)", fmt_fixed(percentile(latency_s, 0.50) * 1e3, 2)});
  table.add_row({"p99 (ms)", fmt_fixed(percentile(latency_s, 0.99) * 1e3, 2)});
  table.add_row({"retries / recovered", std::to_string(stats.retries) + " / " +
                                            std::to_string(stats.retry_recovered)});
  table.add_row({"expired / abandoned", std::to_string(stats.expired) + " / " +
                                            std::to_string(stats.watchdog_abandoned)});
  table.add_row({"scheduler faults", std::to_string(stats.scheduler_faults)});
  std::printf("%s", table.render().c_str());
  for (const auto& site : failpoint::counters()) {
    std::printf("site %-18s hits %8llu  injected %6llu\n", site.site.c_str(),
                static_cast<unsigned long long>(site.hits),
                static_cast<unsigned long long>(site.injected));
  }

  bool ok = true;
  if (untyped_errors != 0) {
    std::printf("FAIL: %zu untyped errors escaped to clients\n", untyped_errors);
    ok = false;
  }
  if (availability < floor) {
    std::printf("FAIL: availability %.4f below the %.4f floor\n", availability, floor);
    ok = false;
  }
  std::printf("availability %.4f (floor %.4f)\n", availability, floor);

  bench::JsonMetrics json;
  bench::set_common_header(json, "chaos");
  json.set("precision", stats.precision);
  json.set("requests", static_cast<std::int64_t>(num_requests));
  json.set("completed", static_cast<std::int64_t>(completed));
  json.set("injected_faults_surfaced", static_cast<std::int64_t>(injected_faults));
  json.set("typed_errors", static_cast<std::int64_t>(typed_errors));
  json.set("untyped_errors", static_cast<std::int64_t>(untyped_errors));
  json.set("shed", static_cast<std::int64_t>(shed_total));
  json.set("availability", availability);
  json.set("availability_floor", floor);
  json.set("p50_ms", percentile(latency_s, 0.50) * 1e3);
  json.set("p99_ms", percentile(latency_s, 0.99) * 1e3);
  json.set("retries", static_cast<std::int64_t>(stats.retries));
  json.set("retry_recovered", static_cast<std::int64_t>(stats.retry_recovered));
  json.set("expired", static_cast<std::int64_t>(stats.expired));
  json.set("watchdog_abandoned", static_cast<std::int64_t>(stats.watchdog_abandoned));
  json.set("scheduler_faults", static_cast<std::int64_t>(stats.scheduler_faults));
  json.set("mode_shrink_entered", static_cast<std::int64_t>(stats.mode_shrink_entered));
  json.set("mode_cache_only_entered",
           static_cast<std::int64_t>(stats.mode_cache_only_entered));
  json.set("mode_shed_entered", static_cast<std::int64_t>(stats.mode_shed_entered));
  json.set("mode_recovered", static_cast<std::int64_t>(stats.mode_recovered));
  // Resolved degradation config, mirroring bench_latency_server.
  json.set("degrade_shrink_at", server_options.shrink_window_at);
  json.set("degrade_cache_only_at", server_options.cache_only_at);
  json.set("degrade_shed_at", server_options.shed_at);
  json.set("max_retries", server_options.max_retries);
  json.set("batch_budget_ms",
           static_cast<std::int64_t>(server_options.batch_budget.count()));
  json.set("pass", ok);
  if (!json.write(json_path)) {
    std::printf("FAIL: could not write %s\n", json_path.c_str());
    ok = false;
  }
  if (ok) std::printf("PASS\n");
  return ok ? 0 : 1;
}
