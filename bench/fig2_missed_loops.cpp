// Figure 2: category-wise parallel loops missed by the three renowned
// parallelization assistant tools (PLUTO, autoPar, DiscoPoP), over the
// OMP_Serial corpus.
#include "bench_common.h"
#include "eval/comparison.h"

int main() {
  using namespace g2p;
  using namespace g2p::bench;

  const auto env = BenchEnv::from_env();
  std::printf("== Figure 2: category-wise loops missed by the tools (scale %.3g) ==\n\n",
              env.scale);
  const auto data = load_data(env);

  std::printf("running PLUTO / autoPar / DiscoPoP simulacra on %d loops...\n\n",
              data.corpus.size());
  const auto results = run_tools_on_corpus(data.corpus);
  const auto missed = missed_by_category(data.corpus, results);

  const LoopCategory categories[] = {
      LoopCategory::kReduction, LoopCategory::kFunctionCall, LoopCategory::kReductionAndCall,
      LoopCategory::kNested, LoopCategory::kOthers};

  TextTable table({"Category", "Missed by PLUTO", "Missed by autoPar", "Missed by DiscoPoP"});
  for (const auto cat : categories) {
    auto row_count = [&](const char* tool) {
      auto it = missed.find(tool);
      if (it == missed.end()) return 0;
      auto jt = it->second.find(cat);
      return jt == it->second.end() ? 0 : jt->second;
    };
    table.add_row({std::string(loop_category_name(cat)), std::to_string(row_count("PLUTO")),
                   std::to_string(row_count("autoPar")),
                   std::to_string(row_count("DiscoPoP"))});
  }
  std::printf("%s\n", table.render().c_str());

  int parallel_total = data.corpus.count_parallel();
  std::printf("parallel-labeled loops in corpus: %d\n", parallel_total);
  std::printf(
      "\nPaper shape: every tool misses loops in every category; reductions and\n"
      "function calls dominate the static tools' misses, nested loops affect all three.\n");
  return 0;
}
