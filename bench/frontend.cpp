// Frontend + serving-cache gate for the zero-copy arena frontend (PR 4).
//
// Two measurements, two floors:
//
//  1. Frontend microbench: single-thread lex + parse + loop-extract +
//     aug-AST-build over the deterministic serving-shaped corpus
//     (generator seed 20230509, scale G2P_FRONTEND_SCALE, default 0.05).
//     Reported as us/KB and compared against the PR 3 frontend measured on
//     the same corpus before the arena refactor:
//     G2P_FRONTEND_BASELINE_USPKB (default 120.6, -O3 -march=native on the
//     reference machine). Floor: G2P_FRONTEND_FLOOR x (default 2.0) —
//     measured ~2.1-2.8x after the arena + string_view + FunctionRef
//     rewrite.
//  2. Cached end-to-end `suggest` on a 90%-repeat stream (48 distinct
//     sources x 10 rounds): the same stream served with the
//     content-addressed cache off, then on. Floor: G2P_CACHE_FLOOR x
//     (default 5.0) with output equivalence as the hard gate (cached
//     results must match uncached within 1e-6 confidence, exact
//     category/pragma).
//
// The baseline constant is machine-specific; CI pins lenient env floors and
// keeps equivalence as the hard gate (same philosophy as G2P_FLOOR /
// G2P_HGT_FLOOR). `--json <path>` emits the headline metrics;
// BENCH_frontend.json at the repo root is the checked-in reference run.
//
// Knobs: G2P_SCALE / G2P_EPOCHS / G2P_SEED as in bench_common.h, plus
// G2P_FRONTEND_SCALE, G2P_FRONTEND_REPS (default 10),
// G2P_FRONTEND_BASELINE_USPKB, G2P_FRONTEND_FLOOR, G2P_CACHE_FLOOR,
// G2P_CACHE_ROUNDS (default 10).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "core/aug_ast.h"
#include "core/pipeline.h"
#include "dataset/generator.h"
#include "frontend/loop_extractor.h"
#include "frontend/parser.h"
#include "graph/vocab.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value ? std::atof(value) : fallback;
}

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g2p;
  const auto env = bench::BenchEnv::from_env();
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bool ok = true;

  // ---- 1. frontend microbench ----------------------------------------------
  // Fixed corpus shape so the checked-in baseline constant stays comparable:
  // the PR 3 number was measured on exactly this generator configuration.
  GeneratorConfig frontend_cfg;
  frontend_cfg.seed = env.seed;
  frontend_cfg.scale = env_double("G2P_FRONTEND_SCALE", 0.05);
  const auto files = CorpusGenerator(frontend_cfg).generate_files();
  std::vector<std::string> sources;
  std::set<std::string_view> seen;
  std::size_t total_bytes = 0;
  for (const auto& f : files) {
    if (seen.insert(f.source).second) {
      sources.push_back(f.source);
      total_bytes += f.source.size();
    }
  }

  // Serving-shaped vocabulary: node text attributes of the whole corpus.
  Vocab vocab;
  for (const auto& src : sources) {
    try {
      const auto parsed = parse_translation_unit(src);
      std::unordered_map<std::string, int> counts;
      collect_text_attributes(*parsed.tu, counts);
      for (const auto& [token, count] : counts) vocab.add(token);
    } catch (const std::exception&) {
    }
  }
  AugAstBuilder builder(vocab, AugAstOptions{});

  std::size_t loops_built = 0;
  const auto frontend_pass = [&] {
    loops_built = 0;
    for (const auto& src : sources) {
      try {
        const auto parsed = parse_translation_unit(src);
        const auto loops = extract_loops(*parsed.tu);
        for (const auto& loop : loops) {
          const auto graph = builder.build(*loop.loop, parsed.tu);
          loops_built += static_cast<std::size_t>(graph.graph.num_nodes() > 0);
        }
      } catch (const std::exception&) {
      }
    }
  };

  frontend_pass();  // warmup
  const int reps = std::max(1, env_int("G2P_FRONTEND_REPS", 10));
  double best_pass_s = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    frontend_pass();
    best_pass_s = std::min(best_pass_s, seconds_since(start));
  }
  const double us_per_kb = best_pass_s * 1e6 / (static_cast<double>(total_bytes) / 1024.0);
  const double us_per_loop = best_pass_s * 1e6 / static_cast<double>(loops_built);
  const double baseline_uspkb = env_double("G2P_FRONTEND_BASELINE_USPKB", 120.6);
  const double frontend_speedup = baseline_uspkb / us_per_kb;
  const double frontend_floor = env_double("G2P_FRONTEND_FLOOR", 2.0);

  std::printf("frontend: %zu sources, %zu loops, %zu KB | best of %d reps\n", sources.size(),
              loops_built, total_bytes / 1024, reps);
  std::printf("lex+parse+extract+build: %.1f us/KB  %.2f us/loop  (PR 3 baseline %.1f us/KB)\n",
              us_per_kb, us_per_loop, baseline_uspkb);
  std::printf("frontend speedup: %.2fx (floor %.2fx)\n", frontend_speedup, frontend_floor);
  if (frontend_speedup < frontend_floor) {
    std::printf("FAIL: frontend speedup %.2fx below the %.2fx floor\n", frontend_speedup,
                frontend_floor);
    ok = false;
  }

  // ---- 2. cached end-to-end suggest on a 90%-repeat stream -----------------
  Pipeline::Options options;
  options.corpus = env.generator_config();
  options.corpus.scale = std::max(env.scale, 0.01);
  options.train.epochs = std::min(env.epochs, 2);
  options.train.seed = env.seed;
  std::printf("\ntraining pipeline (scale %.3f, %d epochs)...\n", options.corpus.scale,
              options.train.epochs);
  Pipeline pipeline = Pipeline::train(options);

  GeneratorConfig fresh = env.generator_config();
  fresh.scale = std::max(env.scale * 2.0, 0.04);
  fresh.seed = env.seed + 1;
  const auto fresh_files = CorpusGenerator(fresh).generate_files();
  std::vector<std::string> distinct;
  std::set<std::string_view> seen_fresh;
  constexpr std::size_t kDistinct = 48;
  for (const auto& f : fresh_files) {
    try {
      (void)parse_translation_unit(f.source);  // stream sources must be healthy
    } catch (const std::exception&) {
      continue;
    }
    if (seen_fresh.insert(f.source).second) distinct.push_back(f.source);
    if (distinct.size() == kDistinct) break;
  }
  if (distinct.size() < kDistinct) {
    std::printf("FAIL: only %zu distinct files generated (need %zu); raise G2P_SCALE\n",
                distinct.size(), kDistinct);
    return 1;
  }
  // Round-robin stream: every source appears once per round, so the first
  // round is all-cold and the remaining rounds are all-repeat — a
  // 90%-repeat stream at 10 rounds.
  const int rounds = std::max(2, env_int("G2P_CACHE_ROUNDS", 10));
  const std::size_t num_requests = kDistinct * static_cast<std::size_t>(rounds);

  const auto serve_stream = [&] {
    std::vector<std::vector<LoopSuggestion>> out;
    out.reserve(num_requests);
    for (std::size_t i = 0; i < num_requests; ++i) {
      out.push_back(pipeline.suggest(distinct[i % kDistinct]));
    }
    return out;
  };

  // Uncached reference (and its timing): a per-request worker without the
  // content-addressed cache. One untimed pass warms the model/tensor pools.
  pipeline.set_cache_bytes(0);
  (void)serve_stream();
  auto start = Clock::now();
  const auto expected = serve_stream();
  const double uncached_s = seconds_since(start);

  // Cached run of the identical stream.
  pipeline.set_cache_bytes(64u << 20);
  pipeline.clear_cache();
  start = Clock::now();
  const auto served = serve_stream();
  const double cached_s = seconds_since(start);
  const auto cache_stats = pipeline.cache_stats();

  double max_conf_delta = 0.0;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    if (served[i].size() != expected[i].size()) {
      ++mismatches;
      continue;
    }
    for (std::size_t k = 0; k < expected[i].size(); ++k) {
      max_conf_delta =
          std::max(max_conf_delta, std::fabs(served[i][k].confidence - expected[i][k].confidence));
      if (served[i][k].parallel != expected[i][k].parallel ||
          served[i][k].category != expected[i][k].category ||
          served[i][k].suggested_pragma != expected[i][k].suggested_pragma) {
        ++mismatches;
      }
    }
  }

  const double cache_speedup = uncached_s / cached_s;
  const double cache_floor = env_double("G2P_CACHE_FLOOR", 5.0);
  std::printf("stream: %zu requests over %zu distinct sources (%d rounds, %.0f%% repeat)\n",
              num_requests, kDistinct, rounds,
              100.0 * (1.0 - 1.0 / static_cast<double>(rounds)));
  std::printf("uncached: %.3f s (%.2f ms/req) | cached: %.3f s (%.3f ms/req)\n", uncached_s,
              uncached_s * 1e3 / static_cast<double>(num_requests), cached_s,
              cached_s * 1e3 / static_cast<double>(num_requests));
  std::printf("cache: %.1f%% hit rate (%llu full / %llu frontend / %llu miss), "
              "%.1f ms frontend time saved, %.1f MB resident\n",
              cache_stats.hit_rate() * 100.0,
              static_cast<unsigned long long>(cache_stats.full_hits),
              static_cast<unsigned long long>(cache_stats.frontend_hits),
              static_cast<unsigned long long>(cache_stats.misses),
              static_cast<double>(cache_stats.frontend_saved_ns) / 1e6,
              static_cast<double>(cache_stats.result_bytes + cache_stats.frontend_bytes) /
                  (1024.0 * 1024.0));
  std::printf("cached suggest speedup: %.2fx (floor %.2fx)   max |Δconfidence|: %.2e   "
              "mismatches: %zu\n",
              cache_speedup, cache_floor, max_conf_delta, mismatches);
  if (mismatches != 0 || max_conf_delta > 1e-6) {
    std::printf("FAIL: cached outputs are not equivalent to uncached outputs\n");
    ok = false;
  }
  if (cache_speedup < cache_floor) {
    std::printf("FAIL: cached speedup %.2fx below the %.2fx floor\n", cache_speedup,
                cache_floor);
    ok = false;
  }

  bench::JsonMetrics json;
  bench::set_common_header(json, "frontend");
  json.set("sources", static_cast<std::int64_t>(sources.size()));
  json.set("loops", static_cast<std::int64_t>(loops_built));
  json.set("frontend_us_per_kb", us_per_kb);
  json.set("frontend_us_per_loop", us_per_loop);
  json.set("frontend_baseline_us_per_kb", baseline_uspkb);
  json.set("frontend_speedup", frontend_speedup);
  json.set("frontend_floor", frontend_floor);
  json.set("stream_requests", static_cast<std::int64_t>(num_requests));
  json.set("stream_distinct", static_cast<std::int64_t>(kDistinct));
  json.set("uncached_s", uncached_s);
  json.set("cached_s", cached_s);
  json.set("cache_speedup", cache_speedup);
  json.set("cache_floor", cache_floor);
  json.set("cache_hit_rate", cache_stats.hit_rate());
  json.set("cache_frontend_saved_ms",
           static_cast<double>(cache_stats.frontend_saved_ns) / 1e6);
  json.set("max_conf_delta", max_conf_delta);
  json.set("mismatches", static_cast<std::int64_t>(mismatches));
  json.set("pass", ok);
  if (!json.write(json_path)) {
    std::printf("FAIL: could not write %s\n", json_path.c_str());
    ok = false;
  }
  if (ok) std::printf("PASS\n");
  return ok ? 0 : 1;
}
