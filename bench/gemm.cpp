// Microbench: blocked/packed GEMM vs the legacy width-specialized matmul
// kernels, single-thread and ThreadPool-parallel.
//
// Shapes are the serving projections of the HGT encoder: the fused
// per-node-type K/Q/V GEMM ([N, dim]x[dim, 3*dim] at dim 32) and the
// "[N, 64]x[64, 256]-class" projections a larger config would run, plus a
// compute-bound square as the roofline reference. For each shape:
//   * legacy  — Kernels::matmul on the active table (the pre-PR kernel)
//   * gemm    — Kernels::gemm (blocked, packed, register-tiled)
//   * mt      — backend::matmul_mt over a 4-worker ThreadPool
// and a correctness gate against the scalar reference table.
//
// Fails (exit 1) if
//   * any kernel diverges from the scalar reference beyond 1e-4 relative,
//   * the headline single-thread speedup (gemm vs legacy at the
//     [N, 64]x[64, 256] shape) misses the floor (default 2x,
//     G2P_GEMM_FLOOR overrides — CI runners pin a lenient value), or
//   * with >= 4 hardware threads, the 4-thread scaling (mt vs gemm) misses
//     its floor (default 2.5x, G2P_GEMM_MT_FLOOR; on machines with fewer
//     cores the scaling row is reported but not enforced — there is nothing
//     to scale onto).
//
// Knobs: G2P_GEMM_REPS (timed repetitions, default 40), G2P_GEMM_FLOOR,
// G2P_GEMM_MT_FLOOR, G2P_BACKEND, --json <path>.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "tensor/backend.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double max_rel_diff(const std::vector<float>& a, const std::vector<float>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double av = a[i], bv = b[i];
    const double scale = std::max({1.0, std::fabs(av), std::fabs(bv)});
    worst = std::max(worst, std::fabs(av - bv) / scale);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g2p;
  const std::string json_path = bench::json_path_from_args(argc, argv);

  int reps = 40;
  if (const char* s = std::getenv("G2P_GEMM_REPS")) reps = std::max(1, std::atoi(s));
  double floor = 2.0;
  if (const char* s = std::getenv("G2P_GEMM_FLOOR")) floor = std::atof(s);
  double mt_floor = 2.5;
  if (const char* s = std::getenv("G2P_GEMM_MT_FLOOR")) mt_floor = std::atof(s);
  constexpr unsigned kMtThreads = 4;
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  // 4-way scaling needs 4 cores to scale onto; below that the row is
  // informational (shared CI runners additionally pin lenient env floors).
  const bool enforce_mt = hw_threads >= kMtThreads;

  struct Shape {
    const char* name;
    int n, k, m;
    bool headline;  // the [N, 64]x[64, 256]-class floor shape
  };
  const Shape shapes[] = {
      {"kqv_dim32", 3200, 32, 96, false},   // fused K|Q|V at serving dim 32
      {"proj_dim64", 4096, 64, 256, true},  // [N, 64]x[64, 256]-class
      {"square256", 256, 256, 256, false},  // compute-bound roofline check
  };

  const auto& kern = backend::active();
  ThreadPool pool(kMtThreads);

  bench::JsonMetrics json;
  bench::set_common_header(json, "gemm");
  json.set("reps", reps);
  json.set("mt_threads", static_cast<int>(kMtThreads));

  const auto time_best = [&](auto&& fn) {
    fn();  // warmup (pack scratch, pool buffers)
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
      const auto start = Clock::now();
      fn();
      best = std::min(best, seconds_since(start));
    }
    return best;
  };

  TextTable table({"shape", "legacy (µs)", "gemm (µs)", "gemm GF/s", "speedup",
                   "mt4 (µs)", "mt scaling"});
  bool ok = true;
  double headline_speedup = 0.0, headline_scaling = 0.0;
  Rng rng(20230509);
  for (const auto& s : shapes) {
    std::vector<float> a(static_cast<std::size_t>(s.n) * s.k);
    std::vector<float> b(static_cast<std::size_t>(s.k) * s.m);
    for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    std::vector<float> out_legacy(static_cast<std::size_t>(s.n) * s.m);
    std::vector<float> out_gemm(out_legacy.size());
    std::vector<float> out_mt(out_legacy.size());
    std::vector<float> out_ref(out_legacy.size());

    const double legacy_s = time_best(
        [&] { kern.matmul(a.data(), b.data(), out_legacy.data(), s.n, s.k, s.m); });
    const double gemm_s = time_best(
        [&] { kern.gemm(a.data(), b.data(), out_gemm.data(), s.n, s.k, s.m); });
    const double mt_s = time_best([&] {
      backend::matmul_mt(a.data(), b.data(), out_mt.data(), s.n, s.k, s.m, &pool);
    });

    backend::scalar().gemm(a.data(), b.data(), out_ref.data(), s.n, s.k, s.m);
    const std::pair<const std::vector<float>*, const char*> checks[] = {
        {&out_legacy, "legacy"}, {&out_gemm, "gemm"}, {&out_mt, "mt"}};
    for (const auto& [out, what] : checks) {
      const double diff = max_rel_diff(*out, out_ref);
      if (diff > 1e-4) {
        std::printf("FAIL: %s %s diverges from scalar reference (%.3g rel)\n", s.name, what,
                    diff);
        ok = false;
      }
    }

    const double flops = 2.0 * s.n * s.k * s.m;
    const double speedup = legacy_s / gemm_s;
    const double scaling = gemm_s / mt_s;
    table.add_row({s.name, fmt_fixed(legacy_s * 1e6, 1), fmt_fixed(gemm_s * 1e6, 1),
                   fmt_fixed(flops / gemm_s * 1e-9, 1), fmt_fixed(speedup, 2),
                   fmt_fixed(mt_s * 1e6, 1), fmt_fixed(scaling, 2)});
    json.set(std::string(s.name) + "_legacy_us", legacy_s * 1e6);
    json.set(std::string(s.name) + "_gemm_us", gemm_s * 1e6);
    json.set(std::string(s.name) + "_gemm_gflops", flops / gemm_s * 1e-9);
    json.set(std::string(s.name) + "_speedup", speedup);
    json.set(std::string(s.name) + "_mt_us", mt_s * 1e6);
    json.set(std::string(s.name) + "_mt_scaling", scaling);
    if (s.headline) {
      headline_speedup = speedup;
      headline_scaling = scaling;
    }
  }

  std::printf("%s", table.render().c_str());
  std::printf("backend: %s | gemm speedup: %.2fx (floor %.2fx) | mt4 scaling: %.2fx "
              "(floor %.2fx, %s: %u hw threads)\n",
              backend::active_name(), headline_speedup, floor, headline_scaling, mt_floor,
              enforce_mt ? "enforced" : "not enforced", hw_threads);
  json.set("speedup", headline_speedup);
  json.set("floor", floor);
  json.set("mt_scaling", headline_scaling);
  json.set("mt_floor", mt_floor);
  json.set("mt_enforced", enforce_mt);

  if (headline_speedup < floor) {
    std::printf("FAIL: gemm speedup %.2fx below the %.2fx floor\n", headline_speedup, floor);
    ok = false;
  }
  if (enforce_mt && headline_scaling < mt_floor) {
    std::printf("FAIL: mt scaling %.2fx below the %.2fx floor\n", headline_scaling, mt_floor);
    ok = false;
  }
  json.set("pass", ok);
  if (!json.write(json_path)) {
    std::printf("FAIL: could not write %s\n", json_path.c_str());
    ok = false;
  }
  if (ok) std::printf("PASS\n");
  return ok ? 0 : 1;
}
