// Microbench: fused HGT inference kernel vs the taped reference forward.
//
// Builds serving-shaped batches — real aug-AST graphs from generated C
// files, merged into disjoint unions of the size the batched serving path
// feeds the encoder — and times a full HgtEncoder forward (the paper's
// serving config: dim 32, heads 4, 2 layers) through both paths on one
// thread:
//   * reference: the taped per-head implementation under NoGradGuard
//     (the pre-fusion serving path), and
//   * fused: the block-diagonal weight cache + per-destination CSR walk
//     (HgtLayer::forward_fused) on the dispatched SIMD backend.
// Reports µs per forward and ns per edge, and fails (exit 1) if
//   * fused and reference outputs diverge beyond 1e-5 relative, or
//   * the fused speedup misses the floor (default 1.5x, G2P_HGT_FLOOR
//     overrides — shared CI runners pin a lenient value).
//
// Knobs: G2P_SCALE / G2P_SEED as in bench_common.h, G2P_HGT_REPS (timed
// repetitions, default 30; CI smoke runs use a handful), G2P_HGT_FLOOR,
// G2P_BACKEND (kernel dispatch), --json <path> for machine-readable output.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/hetgraph_index.h"
#include "nn/hgt.h"
#include "support/table.h"
#include "tensor/backend.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double max_rel_diff(const g2p::Tensor& a, const g2p::Tensor& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const double av = a.data()[i], bv = b.data()[i];
    const double scale = std::max({1.0, std::fabs(av), std::fabs(bv)});
    worst = std::max(worst, std::fabs(av - bv) / scale);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g2p;
  const auto env = bench::BenchEnv::from_env();
  const std::string json_path = bench::json_path_from_args(argc, argv);

  int reps = 30;
  if (const char* s = std::getenv("G2P_HGT_REPS")) reps = std::max(1, std::atoi(s));
  double floor = 1.5;
  if (const char* s = std::getenv("G2P_HGT_FLOOR")) floor = std::atof(s);

  // Serving-shaped inputs: real aug-AST graphs (full edge set) from the
  // corpus generator, batched like suggest_batch batches them.
  GeneratorConfig gen = env.generator_config();
  gen.scale = std::max(env.scale, 0.02);
  const Corpus corpus = CorpusGenerator(gen).generate();
  std::vector<int> all_indices(static_cast<std::size_t>(corpus.size()));
  for (std::size_t i = 0; i < all_indices.size(); ++i) all_indices[i] = static_cast<int>(i);
  const Vocab vocab = build_corpus_vocab(corpus, all_indices);
  const AugAstOptions aug;  // full augmented AST
  const auto examples = prepare_examples(corpus, all_indices, vocab, aug);
  if (examples.size() < 32) {
    std::printf("FAIL: only %zu example graphs (need 32); raise G2P_SCALE\n", examples.size());
    return 1;
  }

  // Batch sizes the serving path actually sees: per-worker encode
  // sub-batches (~32 loops) and a full 128-loop server batch.
  const Graph2ParConfig cfg;  // dim 32, heads 4, 2 layers
  Rng rng(env.seed);
  HgtEncoder encoder(cfg.dim, cfg.heads, cfg.layers, rng);

  struct Case {
    const char* name;
    int loops;
  };
  const Case cases[] = {{"batch32", 32}, {"batch128", 128}};

  bench::JsonMetrics json;
  bench::set_common_header(json, "hgt_kernel");
  json.set("dim", cfg.dim);
  json.set("heads", cfg.heads);
  json.set("layers", cfg.layers);
  json.set("reps", reps);

  TextTable table({"batch", "nodes", "edges", "reference (µs)", "fused (µs)", "speedup",
                   "max rel diff"});
  bool ok = true;
  double headline_speedup = 0.0;
  for (const auto& c : cases) {
    std::vector<const HetGraph*> graph_ptrs;
    for (int i = 0; i < c.loops; ++i) {
      graph_ptrs.push_back(&examples[static_cast<std::size_t>(i) % examples.size()].graph.graph);
    }
    const BatchedGraph batch = batch_graphs(graph_ptrs);
    const Tensor x = Tensor::randn({batch.index.num_nodes, cfg.dim}, rng, 0.5f);

    const NoGradGuard no_grad;
    const auto time_best = [&](auto&& forward) {
      forward();  // warmup (weight caches, allocator pools)
      double best = 1e100;
      for (int r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        forward();
        best = std::min(best, seconds_since(start));
      }
      return best;
    };

    // The fused path is what HgtEncoder::forward routes to under
    // NoGradGuard; pin each path explicitly so the comparison is A-B.
    Tensor ref_out, fused_out;
    encoder.set_fused_inference(false);
    const double ref_s = time_best([&] { ref_out = encoder.forward(x, batch.index); });
    encoder.set_fused_inference(true);
    const double fused_s = time_best([&] { fused_out = encoder.forward(x, batch.index); });

    const double diff = max_rel_diff(ref_out, fused_out);
    const double speedup = ref_s / fused_s;
    table.add_row({c.name, std::to_string(batch.index.num_nodes),
                   std::to_string(batch.index.num_edges), fmt_fixed(ref_s * 1e6, 1),
                   fmt_fixed(fused_s * 1e6, 1), fmt_fixed(speedup, 2),
                   fmt_fixed(diff * 1e6, 3) + "e-6"});
    json.set(std::string(c.name) + "_nodes", batch.index.num_nodes);
    json.set(std::string(c.name) + "_edges", batch.index.num_edges);
    json.set(std::string(c.name) + "_reference_us", ref_s * 1e6);
    json.set(std::string(c.name) + "_fused_us", fused_s * 1e6);
    json.set(std::string(c.name) + "_fused_ns_per_edge",
             fused_s * 1e9 / std::max(1, batch.index.num_edges));
    json.set(std::string(c.name) + "_speedup", speedup);
    json.set(std::string(c.name) + "_max_rel_diff", diff);

    if (diff > 1e-5) {
      std::printf("FAIL: %s fused output diverges from reference (%.3g rel)\n", c.name, diff);
      ok = false;
    }
    if (c.loops == 128) headline_speedup = speedup;
  }
  std::printf("%s", table.render().c_str());
  std::printf("backend: %s | fused speedup (batch128): %.2fx (floor %.2fx)\n",
              backend::active_name(), headline_speedup, floor);
  json.set("speedup", headline_speedup);
  json.set("floor", floor);

  if (headline_speedup < floor) {
    std::printf("FAIL: fused speedup %.2fx below the %.2fx floor\n", headline_speedup, floor);
    ok = false;
  }

  // ---- int8 quantized serving path -----------------------------------------
  // A/B the fused forward at both precisions (same batches, same encoder —
  // only the projection GEMMs change), then check suggestion-level agreement
  // through full Graph2Par heads on randomized batches. The perf floor
  // defaults to 1.5x on AVX2 (where gemm_s8 rides vpmaddubsw) and a lenient
  // 1.1x on the scalar/NEON tables; G2P_HGT_INT8_FLOOR overrides either.
  // A set G2P_PRECISION would pin BOTH arms of the A/B to one path, so the
  // int8 section is skipped (with a note) rather than measured wrong.
  if (std::getenv("G2P_PRECISION") != nullptr) {
    std::printf("note: G2P_PRECISION is set — skipping the int8 A/B section\n");
    json.set("int8_skipped", true);
  } else {
    double int8_floor = std::string(backend::active_name()) == "avx2" ? 1.5 : 1.1;
    if (const char* s = std::getenv("G2P_HGT_INT8_FLOOR")) int8_floor = std::atof(s);

    TextTable qtable({"batch", "fp32 fused (µs)", "int8 fused (µs)", "int8 speedup"});
    double int8_headline = 0.0;
    encoder.set_fused_inference(true);
    for (const auto& c : cases) {
      std::vector<const HetGraph*> graph_ptrs;
      for (int i = 0; i < c.loops; ++i) {
        graph_ptrs.push_back(
            &examples[static_cast<std::size_t>(i) % examples.size()].graph.graph);
      }
      const BatchedGraph batch = batch_graphs(graph_ptrs);
      const Tensor x = Tensor::randn({batch.index.num_nodes, cfg.dim}, rng, 0.5f);
      const NoGradGuard no_grad;
      const auto time_best = [&](auto&& forward) {
        forward();  // warmup (weight caches, allocator pools)
        double best = 1e100;
        for (int r = 0; r < reps; ++r) {
          const auto start = Clock::now();
          forward();
          best = std::min(best, seconds_since(start));
        }
        return best;
      };
      Tensor out_fp32, out_int8;
      encoder.set_precision(Precision::kFp32);
      const double fp32_s = time_best([&] { out_fp32 = encoder.forward(x, batch.index); });
      encoder.set_precision(Precision::kInt8);
      const double int8_s = time_best([&] { out_int8 = encoder.forward(x, batch.index); });
      const double speedup = fp32_s / int8_s;
      qtable.add_row({c.name, fmt_fixed(fp32_s * 1e6, 1), fmt_fixed(int8_s * 1e6, 1),
                      fmt_fixed(speedup, 2)});
      json.set(std::string(c.name) + "_int8_us", int8_s * 1e6);
      json.set(std::string(c.name) + "_int8_speedup", speedup);
      json.set(std::string(c.name) + "_int8_max_rel_diff", max_rel_diff(out_fp32, out_int8));
      if (c.loops == 128) int8_headline = speedup;
    }
    encoder.set_precision(Precision::kFp32);
    std::printf("%s", qtable.render().c_str());
    std::printf("int8 speedup (batch128): %.2fx (floor %.2fx)\n", int8_headline, int8_floor);
    json.set("int8_speedup", int8_headline);
    json.set("int8_floor", int8_floor);
    if (int8_headline < int8_floor) {
      std::printf("FAIL: int8 speedup %.2fx below the %.2fx floor\n", int8_headline,
                  int8_floor);
      ok = false;
    }

    // Suggestion-level agreement: a full Graph2Par model (random init — the
    // quantization-noise worst case, decision margins are untrained), fp32
    // vs int8 encodes of randomized batches, argmax over every task head.
    Graph2ParConfig mc = cfg;
    mc.vocab_size = vocab.size();
    Rng mrng(env.seed + 1);
    Graph2ParModel model(mc, mrng);
    model.set_fused_inference(true);
    const NoGradGuard no_grad;
    int agree = 0, total = 0;
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<const HetGraph*> graph_ptrs;
      for (int i = 0; i < 32; ++i) {
        const auto pick = static_cast<std::size_t>(
            mrng.uniform(0.0, static_cast<double>(examples.size()) - 0.001));
        graph_ptrs.push_back(&examples[pick].graph.graph);
      }
      const BatchedGraph batch = batch_graphs(graph_ptrs);
      model.set_precision(Precision::kFp32);
      const Tensor pooled_fp32 = model.encode(batch);
      model.set_precision(Precision::kInt8);
      const Tensor pooled_int8 = model.encode(batch);
      for (int t = 0; t < kNumPredictionTasks; ++t) {
        const auto task = static_cast<PredictionTask>(t);
        const Tensor l32 = model.task_logits(pooled_fp32, task);
        const Tensor l8 = model.task_logits(pooled_int8, task);
        for (int g = 0; g < l32.dim(0); ++g) {
          const bool pick32 = l32.data()[2 * g] < l32.data()[2 * g + 1];
          const bool pick8 = l8.data()[2 * g] < l8.data()[2 * g + 1];
          agree += pick32 == pick8 ? 1 : 0;
          ++total;
        }
      }
    }
    const double agreement = total == 0 ? 0.0 : static_cast<double>(agree) / total;
    std::printf("int8 suggestion agreement: %.2f%% (%d/%d decisions, floor 99%%)\n",
                agreement * 100.0, agree, total);
    json.set("int8_agreement", agreement);
    if (agreement < 0.99) {
      std::printf("FAIL: int8 suggestion agreement %.4f below 0.99\n", agreement);
      ok = false;
    }
  }
  json.set("pass", ok);
  if (!json.write(json_path)) {
    std::printf("FAIL: could not write %s\n", json_path.c_str());
    ok = false;
  }
  if (ok) std::printf("PASS\n");
  return ok ? 0 : 1;
}
