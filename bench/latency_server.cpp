// Open-loop serving comparison: async micro-batching server vs per-request
// sequential serving.
//
// Trains a small pipeline, generates fresh C files, then fires an open-loop
// request stream (arrivals on a fixed schedule, independent of completions —
// the regime a server actually faces) at ~1.7x the measured capacity of a
// single sequential worker:
//   * sequential: a FIFO single-server queue simulated from per-request
//     service times measured on this machine (one Pipeline::suggest call per
//     request, no batching), and
//   * async server: real SuggestServer, scheduler collecting requests for
//     max_delay / max_batch_loops and serving each batch with one batched
//     forward.
// Reports per-mode throughput and p50/p99 latency against the arrival
// schedule, plus the server's mean achieved batch size. Fails (exit 1) if
// server outputs are not equivalent to per-source suggest (same tolerance
// as bench_throughput_batched) or if server throughput falls below
// G2P_SERVE_FLOOR x sequential throughput (default 1.0; shared CI runners
// are noisy, so CI pins a lenient floor and keeps equivalence as the hard
// gate).
//
// Since PR 4 the async server serves through the content-addressed
// SuggestCache (the sequential baseline is measured with the cache off, so
// it still models a no-batching, no-caching per-request worker); the report
// and --json output include cache hit-rate and frontend-time-saved. The
// dedicated cache floors (>=2x frontend, >=5x cached suggest) live in
// bench_frontend.
//
// Knobs: G2P_SCALE / G2P_EPOCHS / G2P_SEED as in bench_common.h, plus
// G2P_SERVE_FLOOR and G2P_SERVE_REQUESTS (stream length, default 512).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "dataset/generator.h"
#include "serve/server.h"
#include "support/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g2p;
  const auto env = bench::BenchEnv::from_env();
  const std::string json_path = bench::json_path_from_args(argc, argv);

  Pipeline::Options options;
  options.corpus = env.generator_config();
  options.corpus.scale = std::max(env.scale, 0.01);
  options.train.epochs = std::min(env.epochs, 2);
  options.train.seed = env.seed;
  std::printf("training pipeline (scale %.3f, %d epochs)...\n", options.corpus.scale,
              options.train.epochs);
  auto pipeline = std::make_shared<Pipeline>(Pipeline::train(options));

  // Fresh (unseen) distinct files, as in bench_throughput_batched.
  GeneratorConfig fresh = env.generator_config();
  fresh.scale = std::max(env.scale * 2.0, 0.04);
  fresh.seed = env.seed + 1;
  const Corpus corpus = CorpusGenerator(fresh).generate();
  std::vector<std::string> sources;
  std::set<std::string_view> seen;
  constexpr std::size_t kDistinct = 64;
  for (const auto& sample : corpus.samples) {
    if (seen.insert(sample.file_source).second) sources.push_back(sample.file_source);
    if (sources.size() == kDistinct) break;
  }
  if (sources.size() < kDistinct) {
    std::printf("FAIL: only %zu distinct files generated (need %zu); raise G2P_SCALE\n",
                sources.size(), kDistinct);
    return 1;
  }

  std::size_t num_requests = 512;
  if (const char* env_n = std::getenv("G2P_SERVE_REQUESTS")) {
    num_requests = static_cast<std::size_t>(std::strtoull(env_n, nullptr, 10));
  }

  // Reference outputs + measured per-source sequential service times
  // (warmup pass first, then the measured pass — steady-state allocator and
  // branch-predictor state, as a long-running server would see). The
  // serving cache is disabled here: the sequential baseline models a
  // no-batching, no-caching per-request worker, and the expected outputs
  // double as the oracle that cached serving must still match.
  pipeline->set_cache_bytes(0);
  std::vector<std::vector<LoopSuggestion>> expected(sources.size());
  std::vector<double> service_s(sources.size());
  for (std::size_t s = 0; s < sources.size(); ++s) expected[s] = pipeline->suggest(sources[s]);
  double total_service = 0.0;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const auto start = Clock::now();
    expected[s] = pipeline->suggest(sources[s]);
    service_s[s] = seconds_since(start);
    total_service += service_s[s];
  }
  const double mean_service = total_service / static_cast<double>(sources.size());
  pipeline->set_cache_bytes(64u << 20);  // the async server serves cached

  // Open-loop arrival schedule at ~1.7x a sequential worker's capacity: the
  // sequential queue falls behind and latency grows; batching must absorb it.
  const double interval_s = 0.6 * mean_service;
  std::printf("mean sequential service: %.3f ms/request | open-loop interval: %.3f ms | %zu"
              " requests\n",
              mean_service * 1e3, interval_s * 1e3, num_requests);
  const auto source_of = [&](std::size_t i) { return i % sources.size(); };

  // ---- sequential per-request baseline (FIFO single-server queue) ----------
  // Simulated from the measured service times: arrivals on the schedule,
  // one worker serving in order. Deterministic given the measurements, and
  // exactly what "no batching, one suggest per request" costs.
  std::vector<double> seq_latency_s;
  seq_latency_s.reserve(num_requests);
  double worker_free_at = 0.0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    const double arrival = static_cast<double>(i) * interval_s;
    const double begin = std::max(worker_free_at, arrival);
    worker_free_at = begin + service_s[source_of(i)];
    seq_latency_s.push_back(worker_free_at - arrival);
  }
  const double seq_makespan = worker_free_at;  // first arrival is t=0
  const double seq_throughput = static_cast<double>(num_requests) / seq_makespan;

  // ---- async micro-batching server (real run) ------------------------------
  SuggestServer::Options server_options;
  server_options.max_batch_loops = 32;
  server_options.max_delay = std::chrono::milliseconds(2);
  server_options.max_queue_depth = num_requests + 1;  // pure open loop: never block
  // This bench measures the undegraded serving path (every future must hold
  // a value for the equivalence gate): the ladder is disabled here and
  // exercised by bench_chaos instead.
  server_options.shrink_window_at = server_options.cache_only_at =
      server_options.shed_at = 1.5;
  SuggestServer server(pipeline, server_options);

  // Warmup pass through every distinct source.
  {
    std::vector<std::future<std::vector<LoopSuggestion>>> warmup;
    for (const auto& src : sources) warmup.push_back(server.submit(src));
    for (auto& f : warmup) (void)f.get();
  }

  // Producer thread fires the open-loop schedule; the main thread collects
  // completions concurrently so each request's completion is timestamped
  // when it happens, not after the whole submission phase. Completion order
  // is FIFO (the scheduler pops in arrival order), so waiting in submission
  // order is accurate.
  std::vector<std::future<std::vector<LoopSuggestion>>> futures(num_requests);
  std::atomic<std::size_t> submitted{0};
  const auto t0 = Clock::now();
  std::thread producer([&] {
    for (std::size_t i = 0; i < num_requests; ++i) {
      // Absolute deadlines: if submission falls behind schedule it fires
      // immediately, preserving open-loop arrivals instead of shifting them.
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(static_cast<double>(i) * interval_s)));
      futures[i] = server.submit(sources[source_of(i)]);
      submitted.store(i + 1, std::memory_order_release);
    }
  });
  std::vector<double> srv_latency_s;
  srv_latency_s.reserve(num_requests);
  std::vector<std::vector<LoopSuggestion>> served(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    while (submitted.load(std::memory_order_acquire) <= i) std::this_thread::yield();
    served[i] = futures[i].get();
    srv_latency_s.push_back(seconds_since(t0) - static_cast<double>(i) * interval_s);
  }
  producer.join();
  const double srv_makespan = seconds_since(t0);
  const double srv_throughput = static_cast<double>(num_requests) / srv_makespan;
  const auto stats = server.stats();

  // ---- report --------------------------------------------------------------
  TextTable table({"mode", "throughput (req/s)", "p50 (ms)", "p99 (ms)"});
  table.add_row({"sequential", fmt_fixed(seq_throughput, 1),
                 fmt_fixed(percentile(seq_latency_s, 0.50) * 1e3, 2),
                 fmt_fixed(percentile(seq_latency_s, 0.99) * 1e3, 2)});
  table.add_row({"async server", fmt_fixed(srv_throughput, 1),
                 fmt_fixed(percentile(srv_latency_s, 0.50) * 1e3, 2),
                 fmt_fixed(percentile(srv_latency_s, 0.99) * 1e3, 2)});
  std::printf("%s", table.render().c_str());
  std::printf("mean achieved batch size: %.2f (max %llu over %llu batches)\n",
              stats.mean_batch_size(), static_cast<unsigned long long>(stats.max_batch),
              static_cast<unsigned long long>(stats.batches));
  std::printf("serving cache: %.1f%% hit rate (%llu full / %llu frontend / %llu miss), "
              "%.1f ms frontend time saved\n",
              stats.cache_hit_rate() * 100.0,
              static_cast<unsigned long long>(stats.cache_full_hits),
              static_cast<unsigned long long>(stats.cache_frontend_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<double>(stats.cache_frontend_saved_us) / 1e3);
  std::printf("race verifier: %s (%llu verified / %llu repaired / %llu vetoed / %llu unknown)\n",
              stats.verify ? "on" : "off",
              static_cast<unsigned long long>(stats.verdict_verified),
              static_cast<unsigned long long>(stats.verdict_repaired),
              static_cast<unsigned long long>(stats.verdict_vetoed),
              static_cast<unsigned long long>(stats.verdict_unknown));
  std::printf("resource governor: %llu rejected\n",
              static_cast<unsigned long long>(stats.resource_exhausted));

  // ---- equivalence gate ----------------------------------------------------
  std::size_t mismatches = 0;
  double max_conf_delta = 0.0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    const auto& want = expected[source_of(i)];
    if (served[i].size() != want.size()) {
      ++mismatches;
      continue;
    }
    for (std::size_t k = 0; k < want.size(); ++k) {
      max_conf_delta =
          std::max(max_conf_delta, std::fabs(served[i][k].confidence - want[k].confidence));
      if (served[i][k].parallel != want[k].parallel ||
          served[i][k].category != want[k].category ||
          served[i][k].suggested_pragma != want[k].suggested_pragma) {
        ++mismatches;
      }
    }
  }
  std::printf("max |Δconfidence| vs per-request suggest: %.2e   mismatches: %zu\n",
              max_conf_delta, mismatches);

  double floor = 1.0;
  if (const char* env_floor = std::getenv("G2P_SERVE_FLOOR")) floor = std::atof(env_floor);
  const double ratio = srv_throughput / seq_throughput;
  std::printf("server/sequential throughput: %.2fx (floor %.2fx)\n", ratio, floor);

  bool ok = true;
  if (mismatches != 0 || max_conf_delta > 1e-5) {
    std::printf("FAIL: server outputs are not equivalent to per-request suggest\n");
    ok = false;
  }
  if (ratio < floor) {
    std::printf("FAIL: server throughput %.2fx below the %.2fx floor\n", ratio, floor);
    ok = false;
  }

  bench::JsonMetrics json;
  bench::set_common_header(json, "latency_server");
  json.set("precision", stats.precision);
  json.set("requests", static_cast<std::int64_t>(num_requests));
  json.set("sequential_rps", seq_throughput);
  json.set("server_rps", srv_throughput);
  json.set("server_p50_ms", percentile(srv_latency_s, 0.50) * 1e3);
  json.set("server_p99_ms", percentile(srv_latency_s, 0.99) * 1e3);
  json.set("sequential_p50_ms", percentile(seq_latency_s, 0.50) * 1e3);
  json.set("mean_batch_size", stats.mean_batch_size());
  json.set("deduped", static_cast<std::int64_t>(stats.deduped));
  json.set("cache_hit_rate", stats.cache_hit_rate());
  json.set("cache_full_hits", static_cast<std::int64_t>(stats.cache_full_hits));
  json.set("cache_frontend_hits", static_cast<std::int64_t>(stats.cache_frontend_hits));
  json.set("cache_misses", static_cast<std::int64_t>(stats.cache_misses));
  json.set("cache_frontend_saved_ms",
           static_cast<double>(stats.cache_frontend_saved_us) / 1e3);
  json.set("verify", stats.verify);
  json.set("verdict_verified", static_cast<std::int64_t>(stats.verdict_verified));
  json.set("verdict_repaired", static_cast<std::int64_t>(stats.verdict_repaired));
  json.set("verdict_vetoed", static_cast<std::int64_t>(stats.verdict_vetoed));
  json.set("verdict_unknown", static_cast<std::int64_t>(stats.verdict_unknown));
  json.set("resource_exhausted", static_cast<std::int64_t>(stats.resource_exhausted));
  for (std::size_t i = 0; i < stats.resource_exhausted_by_limit.size(); ++i) {
    json.set(std::string("resource_exhausted_") +
                 resource_limit_name(static_cast<ResourceLimit>(i)),
             static_cast<std::int64_t>(stats.resource_exhausted_by_limit[i]));
  }
  // Resolved degradation config (this bench pins the ladder off; a value
  // > 1.0 means the rung is disabled) and the fault-tolerance counters —
  // all zero in a clean run, and loud in the json when they are not.
  json.set("degrade_shrink_at", server_options.shrink_window_at);
  json.set("degrade_cache_only_at", server_options.cache_only_at);
  json.set("degrade_shed_at", server_options.shed_at);
  json.set("expired", static_cast<std::int64_t>(stats.expired));
  json.set("shed", static_cast<std::int64_t>(stats.shed));
  json.set("retries", static_cast<std::int64_t>(stats.retries));
  json.set("watchdog_abandoned", static_cast<std::int64_t>(stats.watchdog_abandoned));
  json.set("scheduler_faults", static_cast<std::int64_t>(stats.scheduler_faults));
  json.set("throughput_ratio", ratio);
  json.set("floor", floor);
  json.set("max_conf_delta", max_conf_delta);
  json.set("mismatches", static_cast<std::int64_t>(mismatches));
  json.set("pass", ok);
  if (!json.write(json_path)) {
    std::printf("FAIL: could not write %s\n", json_path.c_str());
    ok = false;
  }
  if (ok) std::printf("PASS\n");
  return ok ? 0 : 1;
}
