// §6.5 Overhead: cost of building the aug-AST representation for a loop —
// the paper reports "order of milliseconds" for the dataset's avg-6.9-LOC
// loops. Measured with google-benchmark across loop sizes and pipeline
// stages (lex+parse, CFG, full aug-AST).
#include <benchmark/benchmark.h>

#include <string>

#include "core/aug_ast.h"
#include "frontend/parser.h"
#include "graph/cfg.h"

namespace {

using namespace g2p;

/// A synthetic loop with `body_stmts` statements (controls size).
std::string loop_source(int body_stmts) {
  std::string src = "for (i = 0; i < 1000; i++) {\n";
  for (int s = 0; s < body_stmts; ++s) {
    src += "  a" + std::to_string(s) + "[i] = b[i] * " + std::to_string(s + 2) +
           " + fabs(c[i - 1]);\n";
  }
  src += "}\n";
  return src;
}

Vocab make_vocab(const Stmt& loop) {
  std::unordered_map<std::string, int> counts;
  collect_text_attributes(loop, counts);
  return Vocab::build(counts);
}

void BM_LexAndParse(benchmark::State& state) {
  const std::string src = loop_source(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto stmt = parse_statement(src);
    benchmark::DoNotOptimize(stmt);
  }
  state.SetLabel(std::to_string(state.range(0)) + " body stmts");
}
BENCHMARK(BM_LexAndParse)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_BuildCfg(benchmark::State& state) {
  const std::string src = loop_source(static_cast<int>(state.range(0)));
  auto stmt = parse_statement(src);
  for (auto _ : state) {
    auto cfg = build_cfg(*stmt);
    benchmark::DoNotOptimize(cfg);
  }
}
BENCHMARK(BM_BuildCfg)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_BuildAugAst(benchmark::State& state) {
  const std::string src = loop_source(static_cast<int>(state.range(0)));
  auto stmt = parse_statement(src);
  const Vocab vocab = make_vocab(*stmt);
  const AugAstBuilder builder(vocab);
  for (auto _ : state) {
    auto graph = builder.build(*stmt);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_BuildAugAst)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// End-to-end: source text -> aug-AST (what §6.5 times).
void BM_EndToEndAugAst(benchmark::State& state) {
  const std::string src = loop_source(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto stmt = parse_statement(src);
    Vocab vocab = make_vocab(*stmt);
    AugAstBuilder builder(vocab);
    auto graph = builder.build(*stmt);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_EndToEndAugAst)->Arg(2)->Arg(7)->Arg(32);

/// The paper's own motivating loop (Listing 1).
void BM_Listing1(benchmark::State& state) {
  const std::string src =
      "for (i = 0; i < 30000000; i++)\n"
      "  error = error + fabs(a[i] - a[i + 1]);";
  for (auto _ : state) {
    auto stmt = parse_statement(src);
    Vocab vocab = make_vocab(*stmt);
    AugAstBuilder builder(vocab);
    auto graph = builder.build(*stmt);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_Listing1);

}  // namespace

BENCHMARK_MAIN();
