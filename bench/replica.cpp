// Replica bench: availability of the replicated serving layer with one
// replica killed and one quarantined mid-stream under failpoint injection,
// plus the zero-downtime rollout gate.
//
// Trains a small pipeline, clones it into a ReplicaSet (default 4 replicas,
// G2P_REPLICAS overrides), and fires an open-loop stream sized to one
// sequential worker's capacity while `replica.route` and `encode.forward`
// faults are injected. At ~40% of the stream one replica is killed and
// another quarantined. Gates:
//
//   1. Every admitted future completes — a value or a typed error.
//   2. Fault-free results are bitwise-identical to a clean single-pipeline
//      run (replicas are weight-identical clones; routing must not change
//      answers).
//   3. Non-shed availability >= G2P_REPLICA_FLOOR (default 0.99): of the
//      requests the set accepted and did not deliberately shed, the
//      fraction answering with a value.
//   4. Rollout: a clean canary auto-promotes every replica; a poisoned
//      canary (well-formed checkpoint, untrained weights) auto-rolls-back —
//      both under live traffic with zero failed client futures.
//
// Knobs: G2P_SCALE / G2P_EPOCHS / G2P_SEED as in bench_common.h, plus
// G2P_REPLICAS, G2P_REPLICA_REQUESTS (default 384) and G2P_REPLICA_FLOOR.
// A G2P_FAILPOINTS schedule from the env wins over the built-in default
// (the CI smoke job randomizes seeds through it).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "dataset/generator.h"
#include "serve/errors.h"
#include "serve/replica_set.h"
#include "support/failpoint.h"
#include "support/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

/// Route faults exercise reroute/failover; forward faults exercise the
/// replica-attributable failover path end to end. Probabilities low enough
/// that bounded failover (and the inner retry ladder) absorbs nearly all.
constexpr const char* kDefaultSchedule =
    "replica.route=error@0.02,201;"
    "encode.forward=error@0.01,202";

bool bitwise_equal(const std::vector<g2p::LoopSuggestion>& a,
                   const std::vector<g2p::LoopSuggestion>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].parallel != b[i].parallel || a[i].category != b[i].category ||
        a[i].suggested_pragma != b[i].suggested_pragma || a[i].line != b[i].line ||
        std::memcmp(&a[i].confidence, &b[i].confidence, sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g2p;
  const auto env = bench::BenchEnv::from_env();
  const std::string json_path = bench::json_path_from_args(argc, argv);

  Pipeline::Options options;
  options.corpus = env.generator_config();
  options.corpus.scale = std::max(env.scale, 0.01);
  options.train.epochs = std::min(env.epochs, 2);
  options.train.seed = env.seed;
  std::printf("training pipeline (scale %.3f, %d epochs)...\n", options.corpus.scale,
              options.train.epochs);
  Pipeline pipeline = Pipeline::train(options);

  GeneratorConfig fresh = env.generator_config();
  fresh.scale = std::max(env.scale * 2.0, 0.04);
  fresh.seed = env.seed + 1;
  const Corpus corpus = CorpusGenerator(fresh).generate();
  std::vector<std::string> sources;
  std::set<std::string_view> seen;
  constexpr std::size_t kDistinct = 32;
  for (const auto& sample : corpus.samples) {
    if (seen.insert(sample.file_source).second) sources.push_back(sample.file_source);
    if (sources.size() == kDistinct) break;
  }
  if (sources.size() < kDistinct) {
    std::printf("FAIL: only %zu distinct files generated (need %zu); raise G2P_SCALE\n",
                sources.size(), kDistinct);
    return 1;
  }

  std::size_t replicas = 4;
  if (const char* env_r = std::getenv("G2P_REPLICAS")) {
    const long v = std::atol(env_r);
    if (v > 0) replicas = static_cast<std::size_t>(v);
  }
  std::size_t num_requests = 384;
  if (const char* env_n = std::getenv("G2P_REPLICA_REQUESTS")) {
    num_requests = static_cast<std::size_t>(std::strtoull(env_n, nullptr, 10));
  }
  double floor = 0.99;
  if (const char* env_floor = std::getenv("G2P_REPLICA_FLOOR")) floor = std::atof(env_floor);

  // Clean single-pipeline reference: the bitwise expectation for every
  // source, computed before any fault is armed.
  std::vector<std::vector<LoopSuggestion>> expected;
  expected.reserve(sources.size());
  for (const auto& src : sources) expected.push_back(pipeline.suggest(src));

  // Capacity calibration, as in bench_chaos: mean sequential service time.
  pipeline.set_cache_bytes(0);
  double total_service = 0.0;
  {
    const auto start = Clock::now();
    for (const auto& src : sources) (void)pipeline.suggest(src);
    total_service = seconds_since(start);
  }
  const double mean_service = total_service / static_cast<double>(sources.size());
  pipeline.set_cache_bytes(64u << 20);
  pipeline.clear_cache();

  if (!failpoint::armed()) failpoint::configure(kDefaultSchedule);
  const std::string schedule = failpoint::active_spec();
  std::printf("fault schedule: %s | %zu replicas\n", schedule.c_str(), replicas);

  ReplicaSet::Options set_options;
  set_options.replicas = replicas;
  set_options.server.max_batch_loops = 32;
  set_options.server.max_delay = std::chrono::milliseconds(2);
  set_options.server.max_queue_depth = 256;
  set_options.server.max_retries = 2;
  set_options.server.retry_backoff = std::chrono::milliseconds(1);
  set_options.server.batch_budget = std::chrono::milliseconds(2000);
  set_options.hedge_percentile = 0.95;  // hedge the worst stragglers
  set_options.hedge_floor = std::chrono::milliseconds(25);
  auto set = std::make_unique<ReplicaSet>(pipeline, set_options);

  const double interval_s = mean_service;
  std::printf("mean sequential service: %.3f ms | open-loop interval: %.3f ms | %zu requests\n",
              mean_service * 1e3, interval_s * 1e3, num_requests);

  const std::size_t kill_at = (num_requests * 2) / 5;
  std::vector<std::future<std::vector<LoopSuggestion>>> futures(num_requests);
  std::vector<char> admitted(num_requests, 0);
  std::atomic<std::size_t> submitted{0};
  std::atomic<std::size_t> admission_shed{0};
  const auto t0 = Clock::now();
  std::thread producer([&] {
    for (std::size_t i = 0; i < num_requests; ++i) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(static_cast<double>(i) * interval_s)));
      if (i == kill_at) {
        std::printf("mid-stream: killing replica 1, quarantining replica 2\n");
        set->kill(1);
        if (replicas > 2) set->quarantine(2);
      }
      try {
        futures[i] = set->submit(sources[i % sources.size()]);
        admitted[i] = 1;
      } catch (const Overloaded&) {
        admission_shed.fetch_add(1, std::memory_order_relaxed);
      }
      submitted.store(i + 1, std::memory_order_release);
    }
  });

  std::size_t completed = 0, injected_faults = 0, typed_errors = 0, untyped_errors = 0;
  std::size_t ladder_shed = 0, bitwise_mismatch = 0;
  std::vector<double> latency_s;
  latency_s.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    while (submitted.load(std::memory_order_acquire) <= i) std::this_thread::yield();
    if (!admitted[i]) continue;
    try {
      const auto got = futures[i].get();
      ++completed;
      latency_s.push_back(seconds_since(t0) - static_cast<double>(i) * interval_s);
      if (!bitwise_equal(got, expected[i % sources.size()])) ++bitwise_mismatch;
    } catch (const Overloaded&) {
      ++ladder_shed;  // deliberate load shedding, not a failure
    } catch (const failpoint::FailpointError&) {
      ++injected_faults;
    } catch (const ServeError&) {
      ++typed_errors;
    } catch (const std::exception& e) {
      ++untyped_errors;
      std::printf("UNTYPED error on request %zu: %s\n", i, e.what());
    }
  }
  producer.join();
  const auto stats = set->stats();
  set->shutdown();
  failpoint::disarm();

  const std::size_t shed_total = admission_shed.load() + ladder_shed;
  const std::size_t not_shed = num_requests - std::min(num_requests, shed_total);
  const double availability =
      not_shed == 0 ? 0.0
                    : static_cast<double>(completed) / static_cast<double>(not_shed);

  // ---- rollout gate: clean promotes, poisoned rolls back ----
  // Fresh fleet (the chaos fleet lost a replica), live traffic throughout.
  const std::string clean_ckpt = "bench_replica_clean.bin";
  const std::string clean_vocab = "bench_replica_clean_vocab.txt";
  const std::string poison_ckpt = "bench_replica_poison.bin";
  const std::string poison_vocab = "bench_replica_poison_vocab.txt";
  bool rollout_ok = false, rollback_ok = false;
  std::size_t rollout_traffic_failures = 0;
  if (!pipeline.save(clean_ckpt, clean_vocab)) {
    std::printf("FAIL: could not save the clean checkpoint\n");
    return 1;
  }
  {
    Pipeline::Options untrained_options = options;
    untrained_options.train.epochs = 0;  // random init: loads cleanly, wrong
    Pipeline untrained = Pipeline::train(untrained_options);
    if (!untrained.save(poison_ckpt, poison_vocab)) {
      std::printf("FAIL: could not save the poisoned checkpoint\n");
      return 1;
    }
  }
  {
    ReplicaSet::Options rollout_options;
    rollout_options.replicas = replicas;
    rollout_options.server.max_delay = std::chrono::milliseconds(2);
    ReplicaSet fleet(pipeline, rollout_options);
    std::atomic<bool> done{false};
    std::atomic<std::size_t> traffic_failures{0};
    std::thread traffic([&] {
      std::size_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        try {
          (void)fleet.submit(sources[i++ % sources.size()]).get();
        } catch (...) {
          traffic_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    const std::vector<std::string> shadow(sources.begin(), sources.begin() + 16);
    const RolloutReport clean = fleet.rollout(clean_ckpt, shadow);
    rollout_ok = clean.ok && clean.promoted == replicas;
    std::printf("clean rollout: ok=%d promoted=%zu diffed=%zu mismatched=%zu (%s)\n",
                clean.ok ? 1 : 0, clean.promoted, clean.diffed, clean.mismatched,
                clean.reason.empty() ? "clean" : clean.reason.c_str());
    const RolloutReport poisoned = fleet.rollout(poison_ckpt, shadow);
    rollback_ok = !poisoned.ok && poisoned.rolled_back;
    std::printf("poisoned rollout: ok=%d rolled_back=%d mismatch %zu/%zu (%s)\n",
                poisoned.ok ? 1 : 0, poisoned.rolled_back ? 1 : 0, poisoned.mismatched,
                poisoned.diffed, poisoned.reason.c_str());
    done.store(true, std::memory_order_release);
    traffic.join();
    rollout_traffic_failures = traffic_failures.load();
  }
  std::remove(clean_ckpt.c_str());
  std::remove(clean_vocab.c_str());
  std::remove(poison_ckpt.c_str());
  std::remove(poison_vocab.c_str());

  TextTable table({"metric", "value"});
  table.add_row({"replicas", std::to_string(replicas)});
  table.add_row({"requests", std::to_string(num_requests)});
  table.add_row({"completed", std::to_string(completed)});
  table.add_row({"bitwise mismatches", std::to_string(bitwise_mismatch)});
  table.add_row({"injected faults surfaced", std::to_string(injected_faults)});
  table.add_row({"typed serve errors", std::to_string(typed_errors)});
  table.add_row({"shed (admission + ladder)", std::to_string(shed_total)});
  table.add_row({"availability (non-shed)", fmt_fixed(availability * 100.0, 2) + "%"});
  table.add_row({"p50 (ms)", fmt_fixed(percentile(latency_s, 0.50) * 1e3, 2)});
  table.add_row({"p99 (ms)", fmt_fixed(percentile(latency_s, 0.99) * 1e3, 2)});
  table.add_row({"affinity / stolen / rerouted",
                 std::to_string(stats.affinity_routed) + " / " + std::to_string(stats.stolen) +
                     " / " + std::to_string(stats.rerouted)});
  table.add_row({"failovers / route faults", std::to_string(stats.failovers) + " / " +
                                                 std::to_string(stats.route_faults)});
  table.add_row({"hedges / wins", std::to_string(stats.hedges) + " / " +
                                      std::to_string(stats.hedge_wins)});
  table.add_row({"quarantines / reinstated", std::to_string(stats.quarantines) + " / " +
                                                 std::to_string(stats.reinstated)});
  table.add_row({"rollout clean / rollback", std::string(rollout_ok ? "ok" : "FAIL") + " / " +
                                                 (rollback_ok ? "ok" : "FAIL")});
  std::printf("%s", table.render().c_str());

  bool ok = true;
  if (untyped_errors != 0) {
    std::printf("FAIL: %zu untyped errors escaped to clients\n", untyped_errors);
    ok = false;
  }
  if (bitwise_mismatch != 0) {
    std::printf("FAIL: %zu fault-free results diverged from the clean reference\n",
                bitwise_mismatch);
    ok = false;
  }
  if (availability < floor) {
    std::printf("FAIL: availability %.4f below the %.4f floor\n", availability, floor);
    ok = false;
  }
  if (!rollout_ok || !rollback_ok) {
    std::printf("FAIL: rollout gate (clean ok=%d, rollback ok=%d)\n", rollout_ok ? 1 : 0,
                rollback_ok ? 1 : 0);
    ok = false;
  }
  if (rollout_traffic_failures != 0) {
    std::printf("FAIL: %zu client futures failed during rollouts\n",
                rollout_traffic_failures);
    ok = false;
  }
  std::printf("availability %.4f (floor %.4f)\n", availability, floor);

  bench::JsonMetrics json;
  bench::set_common_header(json, "replica");
  json.set("replicas", static_cast<std::int64_t>(replicas));
  json.set("requests", static_cast<std::int64_t>(num_requests));
  json.set("completed", static_cast<std::int64_t>(completed));
  json.set("bitwise_mismatches", static_cast<std::int64_t>(bitwise_mismatch));
  json.set("injected_faults_surfaced", static_cast<std::int64_t>(injected_faults));
  json.set("typed_errors", static_cast<std::int64_t>(typed_errors));
  json.set("untyped_errors", static_cast<std::int64_t>(untyped_errors));
  json.set("shed", static_cast<std::int64_t>(shed_total));
  json.set("availability", availability);
  json.set("availability_floor", floor);
  json.set("p50_ms", percentile(latency_s, 0.50) * 1e3);
  json.set("p99_ms", percentile(latency_s, 0.99) * 1e3);
  json.set("affinity_routed", static_cast<std::int64_t>(stats.affinity_routed));
  json.set("stolen", static_cast<std::int64_t>(stats.stolen));
  json.set("rerouted", static_cast<std::int64_t>(stats.rerouted));
  json.set("failovers", static_cast<std::int64_t>(stats.failovers));
  json.set("route_faults", static_cast<std::int64_t>(stats.route_faults));
  json.set("hedges", static_cast<std::int64_t>(stats.hedges));
  json.set("hedge_wins", static_cast<std::int64_t>(stats.hedge_wins));
  json.set("hedge_cancelled", static_cast<std::int64_t>(stats.hedge_cancelled));
  json.set("quarantines", static_cast<std::int64_t>(stats.quarantines));
  json.set("reinstated", static_cast<std::int64_t>(stats.reinstated));
  json.set("rollout_clean_ok", rollout_ok);
  json.set("rollout_poisoned_rolled_back", rollback_ok);
  json.set("rollout_traffic_failures",
           static_cast<std::int64_t>(rollout_traffic_failures));
  json.set("hedge_percentile", set_options.hedge_percentile);
  json.set("pass", ok);
  if (!json.write(json_path)) {
    std::printf("FAIL: could not write %s\n", json_path.c_str());
    ok = false;
  }
  if (ok) std::printf("PASS\n");
  return ok ? 0 : 1;
}
