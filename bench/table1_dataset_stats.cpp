// Table 1: statistic summary of the OMP_Serial dataset — loops per pragma
// type with function-call counts, nested-loop counts, and average LOC, split
// by source (GitHub-like vs synthetic).
#include "bench_common.h"

namespace {

using namespace g2p;
using namespace g2p::bench;

struct RowStats {
  int loops = 0;
  int calls = 0;
  int nested = 0;
  long long loc = 0;

  void add(const LoopSample& s) {
    ++loops;
    calls += s.has_function_call;
    nested += s.is_nested;
    loc += s.loc;
  }
  std::string avg_loc() const {
    return loops == 0 ? "-" : fmt_fixed(static_cast<double>(loc) / loops, 2);
  }
};

}  // namespace

int main() {
  const auto env = BenchEnv::from_env();
  std::printf("== Table 1: OMP_Serial dataset statistics (scale %.3g) ==\n\n", env.scale);
  const auto data = load_data(env);

  const struct {
    SampleOrigin origin;
    bool parallel;
    PragmaCategory category;
    const char* source;
    const char* type;
    const char* pragma;
    int paper_loops;
  } rows[] = {
      {SampleOrigin::kGitHub, true, PragmaCategory::kReduction, "GitHub", "Parallel",
       "reduction", 3705},
      {SampleOrigin::kGitHub, true, PragmaCategory::kPrivate, "GitHub", "Parallel", "private",
       6278},
      {SampleOrigin::kGitHub, true, PragmaCategory::kSimd, "GitHub", "Parallel", "simd", 3574},
      {SampleOrigin::kGitHub, true, PragmaCategory::kTarget, "GitHub", "Parallel", "target",
       2155},
      {SampleOrigin::kGitHub, false, PragmaCategory::kNone, "GitHub", "Non-parallel", "-",
       13972},
      {SampleOrigin::kSynthetic, true, PragmaCategory::kReduction, "Synthetic", "Parallel",
       "reduction", 200},
      {SampleOrigin::kSynthetic, true, PragmaCategory::kPrivate, "Synthetic", "Parallel",
       "private (do-all)", 200},
      {SampleOrigin::kSynthetic, false, PragmaCategory::kNone, "Synthetic", "Non-parallel",
       "-", 700},
  };

  TextTable table({"Source", "Type", "Pragma Type", "Loops", "Paper(x scale)", "Function Call",
                   "Nested Loops", "Avg. LOC"});
  for (const auto& row : rows) {
    RowStats stats;
    for (const auto& s : data.corpus.samples) {
      if (s.origin != row.origin) continue;
      if (s.parallel != row.parallel) continue;
      if (row.parallel && s.category != row.category) continue;
      stats.add(s);
    }
    table.add_row({row.source, row.type, row.pragma, std::to_string(stats.loops),
                   std::to_string(static_cast<int>(row.paper_loops * env.scale + 0.5)),
                   std::to_string(stats.calls), std::to_string(stats.nested),
                   stats.avg_loc()});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper totals at scale 1.0: 18598 parallelizable + 13972 non-parallelizable GitHub\n"
      "loops, 400 + 700 synthetic. The Paper(x scale) column is the Table 1 count scaled\n"
      "by G2P_SCALE for direct comparison with the Loops column.\n");
  return 0;
}
