// Table 2: pragma-existence prediction — vanilla AST (HGT) vs PragFormer
// (token transformer) vs Graph2Par (heterogeneous aug-AST + HGT).
#include "bench_common.h"

int main() {
  using namespace g2p;
  using namespace g2p::bench;

  const auto env = BenchEnv::from_env();
  std::printf("== Table 2: pragma existence prediction (scale %.3g, %d epochs) ==\n\n",
              env.scale, env.epochs);
  const auto data = load_data(env);

  // Vanilla AST baseline: same HGT, graph without CFG/lexical/call edges.
  std::vector<Example> ast_test;
  const auto ast_model = train_hgt(data, vanilla_ast_options(), env, &ast_test, "HGT-AST");
  const auto ast_report = evaluate_graph_model(ast_model, ast_test);

  // PragFormer token baseline.
  std::vector<Example> token_test;
  const auto token_model = train_pragformer(data, env, &token_test);
  const auto token_report = evaluate_token_model(token_model, token_test);

  // Graph2Par: full heterogeneous aug-AST.
  std::vector<Example> aug_test;
  const auto g2p_model = train_hgt(data, AugAstOptions{}, env, &aug_test, "Graph2Par");
  const auto g2p_report = evaluate_graph_model(g2p_model, aug_test);

  std::printf("\n");
  TextTable table({"Approach", "Precision", "Recall", "F1", "Accuracy"});
  auto add = [&table](const char* name, const BinaryMetrics& m) {
    table.add_row({name, pct(m.precision()), pct(m.recall()), pct(m.f1()), pct(m.accuracy())});
  };
  add("AST (HGT)", ast_report.parallel());
  add("PragFormer", token_report.parallel());
  add("Graph2Par", g2p_report.parallel());
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Paper (Table 2):  AST 0.74/0.73/0.74/0.74 | PragFormer 0.81/0.81/0.80/0.80 |\n"
      "                  Graph2Par 0.92/0.82/0.87/0.85\n"
      "Expected shape: Graph2Par dominates both baselines on F1/accuracy; the aug-AST's\n"
      "CFG + lexical + call-site edges are what separate it from the vanilla AST.\n");
  return 0;
}
