// Table 3: number of detected parallel loops — Graph2Par and HGT-AST vs the
// algorithm-based tools, on the test split.
#include "bench_common.h"
#include "eval/comparison.h"

int main() {
  using namespace g2p;
  using namespace g2p::bench;

  const auto env = BenchEnv::from_env();
  std::printf("== Table 3: detected parallel loops (scale %.3g, %d epochs) ==\n\n", env.scale,
              env.epochs);
  const auto data = load_data(env);

  std::vector<Example> aug_test;
  const auto g2p_model = train_hgt(data, AugAstOptions{}, env, &aug_test, "Graph2Par");
  std::vector<Example> ast_test;
  const auto ast_model = train_hgt(data, vanilla_ast_options(), env, &ast_test, "HGT-AST");

  const auto g2p_preds = predict_parallel(g2p_model, aug_test);
  const auto ast_preds = predict_parallel(ast_model, ast_test);

  int g2p_detected = 0, ast_detected = 0, parallel_total = 0;
  for (std::size_t i = 0; i < aug_test.size(); ++i) {
    const bool actual =
        data.corpus.samples[static_cast<std::size_t>(aug_test[i].corpus_index)].parallel;
    parallel_total += actual;
    g2p_detected += (g2p_preds[i] && actual);
    ast_detected += (ast_preds[i] && actual);
  }

  std::printf("running tool simulacra...\n\n");
  const auto results = run_tools_on_corpus(data.corpus);

  TextTable table({"Approach", "# detected parallel loops", "Paper"});
  table.add_row({"Graph2Par", std::to_string(g2p_detected), "17563"});
  table.add_row({"HGT-AST", std::to_string(ast_detected), "16236"});
  table.add_row(
      {"DiscoPoP",
       std::to_string(count_detected(data.corpus, results, "DiscoPoP", data.split.test)),
       "953"});
  table.add_row(
      {"PLUTO", std::to_string(count_detected(data.corpus, results, "PLUTO", data.split.test)),
       "1759"});
  table.add_row(
      {"autoPar",
       std::to_string(count_detected(data.corpus, results, "autoPar", data.split.test)),
       "6391"});
  std::printf("%s\n", table.render().c_str());
  std::printf("parallel loops in test split: %d\n", parallel_total);
  std::printf(
      "\nPaper shape: the learned models detect several times more parallel loops than\n"
      "any algorithm-based tool; Graph2Par >= HGT-AST; autoPar > PLUTO > DiscoPoP.\n"
      "(Paper counts are over the full 18598-parallel-loop dataset; ours are over the\n"
      "test split at G2P_SCALE.)\n");
  return 0;
}
