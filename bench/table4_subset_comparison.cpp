// Table 4: Graph2Par vs each tool on the subset of test loops the tool can
// process (Subset_PLUTO / Subset_autoPar / Subset_DiscoPoP): TP/TN/FP/FN and
// precision/recall/F1/accuracy.
#include <map>

#include "bench_common.h"
#include "eval/comparison.h"

int main() {
  using namespace g2p;
  using namespace g2p::bench;

  const auto env = BenchEnv::from_env();
  std::printf("== Table 4: per-tool subset comparison (scale %.3g, %d epochs) ==\n\n",
              env.scale, env.epochs);
  const auto data = load_data(env);

  std::vector<Example> aug_test;
  const auto model = train_hgt(data, AugAstOptions{}, env, &aug_test, "Graph2Par");
  const auto preds = predict_parallel(model, aug_test);
  std::map<int, bool> pred_of;  // corpus index -> model prediction
  for (std::size_t i = 0; i < aug_test.size(); ++i) {
    pred_of[aug_test[i].corpus_index] = preds[i];
  }

  std::printf("running tool simulacra...\n\n");
  const auto results = run_tools_on_corpus(data.corpus);
  const auto subsets = build_subsets(data.corpus, results, data.split.test);

  TextTable table({"Subset", "Approach", "TP", "TN", "FP", "FN", "Precision", "Recall", "F1",
                   "Accuracy(%)"});
  auto add_row = [&table](const std::string& subset, const std::string& approach,
                          const BinaryMetrics& m) {
    table.add_row({subset, approach, std::to_string(m.tp), std::to_string(m.tn),
                   std::to_string(m.fp), std::to_string(m.fn),
                   fmt_fixed(100.0 * m.precision(), 2), fmt_fixed(100.0 * m.recall(), 2),
                   fmt_fixed(100.0 * m.f1(), 2), fmt_fixed(100.0 * m.accuracy(), 2)});
  };

  for (const auto& cmp : subsets) {
    BinaryMetrics model_metrics;
    for (int idx : cmp.subset) {
      model_metrics.add(pred_of.at(idx),
                        data.corpus.samples[static_cast<std::size_t>(idx)].parallel);
    }
    const std::string subset_name =
        "Subset_" + cmp.tool + " (" + std::to_string(cmp.subset.size()) + ")";
    add_row(subset_name, cmp.tool, cmp.tool_metrics);
    add_row(subset_name, "Graph2Par", model_metrics);
    if (cmp.tool_metrics.tp > 0) {
      std::printf("Graph2Par finds %.1fx the true positives of %s on its subset\n",
                  static_cast<double>(model_metrics.tp) / cmp.tool_metrics.tp,
                  cmp.tool.c_str());
    }
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "Paper (Table 4) shape: tools have 100%% precision (conservative, FP=0) but low\n"
      "recall (PLUTO 39.5, autoPar 14.4, DiscoPoP 54.9); Graph2Par achieves higher F1\n"
      "and accuracy on every subset and 1.2-5.2x the true positives.\n");
  return 0;
}
