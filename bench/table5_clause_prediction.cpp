// Table 5: four-pragma clause prediction (private / reduction / simd /
// target) — Graph2Par vs PragFormer. The paper reports PragFormer as N/A for
// simd and target; our reimplementation evaluates all four for reference.
#include "bench_common.h"

int main() {
  using namespace g2p;
  using namespace g2p::bench;

  const auto env = BenchEnv::from_env();
  std::printf("== Table 5: pragma clause prediction (scale %.3g, %d epochs) ==\n\n", env.scale,
              env.epochs);
  const auto data = load_data(env);

  std::vector<Example> aug_test;
  const auto g2p_model = train_hgt(data, AugAstOptions{}, env, &aug_test, "Graph2Par");
  const auto g2p_report = evaluate_graph_model(g2p_model, aug_test);

  std::vector<Example> token_test;
  const auto token_model = train_pragformer(data, env, &token_test);
  const auto token_report = evaluate_token_model(token_model, token_test);

  std::printf("\n");
  TextTable table({"Pragma", "Approach", "Precision", "Recall", "F1-score", "Accuracy"});
  const struct {
    PredictionTask task;
    const char* name;
  } tasks[] = {{PredictionTask::kPrivate, "private"},
               {PredictionTask::kReduction, "reduction"},
               {PredictionTask::kSimd, "SIMD"},
               {PredictionTask::kTarget, "target"}};
  for (const auto& t : tasks) {
    const auto& gm = g2p_report.tasks[static_cast<std::size_t>(t.task)];
    const auto& pm = token_report.tasks[static_cast<std::size_t>(t.task)];
    table.add_row({t.name, "Graph2Par", pct(gm.precision()), pct(gm.recall()), pct(gm.f1()),
                   pct(gm.accuracy())});
    table.add_row({t.name, "PragFormer", pct(pm.precision()), pct(pm.recall()), pct(pm.f1()),
                   pct(pm.accuracy())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper (Table 5): private G2P .88/.87/.87/.89 vs PF .86/.85/.86/.85;\n"
      "reduction G2P .90/.89/.91/.91 vs PF .89/.87/.87/.87; SIMD G2P .79/.76/.77/.77;\n"
      "target G2P .75/.74/.74/.74 (PragFormer N/A for simd/target in the paper).\n"
      "Shape: Graph2Par >= PragFormer on private/reduction; simd/target are harder.\n");
  return 0;
}
