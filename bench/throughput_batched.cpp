// Serving-throughput baseline for the batched graph engine.
//
// Trains a small pipeline, then serves 128 generated C files (fresh seed, so
// none were seen in training) two ways:
//   * sequential: one Pipeline::suggest call per file, and
//   * batched: Pipeline::suggest_batch over chunks of {1, 8, 32, 128} files,
// reporting steady-state loops/sec per configuration (warmup + best of three
// repetitions). The run fails (exit 1) if batched and sequential outputs
// disagree (category/pragma mismatch, or confidence drift above 1e-5) or if
// the full-batch speedup misses the floor: 3x with >= 2 hardware threads
// (the pipeline parallelizes frontend, encode sub-batches, and assembly);
// 1.25x on a single hardware thread. The single-thread floor was 2x before
// the fused HGT inference kernel (PR 3): batching then mostly amortized
// per-op tape/alloc overhead, which the fused kernel removed from BOTH
// paths — absolute loops/sec rose across the board while the relative
// batching headroom shrank. Future perf PRs regress against this.
//
// Knobs: G2P_SCALE / G2P_EPOCHS / G2P_SEED as in bench_common.h.
#include <algorithm>
#include <chrono>
#include <functional>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "dataset/generator.h"
#include "support/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g2p;
  const auto env = bench::BenchEnv::from_env();
  const std::string json_path = bench::json_path_from_args(argc, argv);

  Pipeline::Options options;
  options.corpus = env.generator_config();
  options.corpus.scale = std::max(env.scale, 0.01);
  options.train.epochs = std::min(env.epochs, 2);
  options.train.seed = env.seed;
  std::printf("training pipeline (scale %.3f, %d epochs)...\n", options.corpus.scale,
              options.train.epochs);
  Pipeline pipeline = Pipeline::train(options);
  // This bench gates the batching machinery (parallel frontend, sub-batched
  // encode, assembly). The content-addressed serving cache would turn every
  // measured repetition into a lookup in BOTH modes, so it is disabled here;
  // bench_frontend gates the cache path with its own floors.
  pipeline.set_cache_bytes(0);

  // A fresh corpus seed yields files the model has not trained on; dedup by
  // text since several loop samples can come from one file.
  GeneratorConfig fresh = env.generator_config();
  fresh.scale = std::max(env.scale * 3.0, 0.06);
  fresh.seed = env.seed + 1;
  const Corpus corpus = CorpusGenerator(fresh).generate();
  std::vector<std::string> sources;
  std::set<std::string_view> seen;
  for (const auto& sample : corpus.samples) {
    if (seen.insert(sample.file_source).second) sources.push_back(sample.file_source);
    if (sources.size() == 128) break;
  }
  if (sources.size() < 128) {
    std::printf("FAIL: only %zu distinct files generated (need 128); raise G2P_SCALE\n",
                sources.size());
    return 1;
  }
  std::vector<std::string_view> views(sources.begin(), sources.end());

  // Steady-state measurement: each serving mode runs once as warmup (page
  // faults, allocator pools, branch predictors), then the best of three
  // timed repetitions counts — the serving regime both paths would see
  // under sustained traffic.
  constexpr int kReps = 3;
  std::vector<std::vector<LoopSuggestion>> output;
  const auto run_best = [&](const std::function<std::vector<std::vector<LoopSuggestion>>()>&
                                serve) {
    output = serve();  // warmup
    double best = 1e100;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto start = Clock::now();
      output = serve();
      best = std::min(best, seconds_since(start));
    }
    return best;
  };

  // ---- sequential baseline: one suggest() per file -------------------------
  const double seq_time = run_best([&] {
    std::vector<std::vector<LoopSuggestion>> out;
    out.reserve(views.size());
    for (const auto& src : views) out.push_back(pipeline.suggest(src));
    return out;
  });
  std::vector<std::vector<LoopSuggestion>> sequential = std::move(output);
  std::size_t num_loops = 0;
  for (const auto& s : sequential) num_loops += s.size();

  // ---- batched serving at several chunk sizes ------------------------------
  TextTable table({"batch size", "time (s)", "loops/sec", "speedup"});
  table.add_row({"sequential", fmt_fixed(seq_time, 3),
                 fmt_fixed(static_cast<double>(num_loops) / seq_time, 1), "1.00"});

  double full_batch_time = 0.0;
  std::vector<std::vector<LoopSuggestion>> full_batch_out;
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{8}, std::size_t{32},
                                       std::size_t{128}}) {
    const double elapsed = run_best([&] {
      std::vector<std::vector<LoopSuggestion>> out;
      out.reserve(views.size());
      for (std::size_t begin = 0; begin < views.size(); begin += batch_size) {
        const std::size_t end = std::min(views.size(), begin + batch_size);
        auto chunk = pipeline.suggest_batch(
            std::span<const std::string_view>(views.data() + begin, end - begin));
        for (auto& s : chunk) out.push_back(std::move(s));
      }
      return out;
    });
    table.add_row({std::to_string(batch_size), fmt_fixed(elapsed, 3),
                   fmt_fixed(static_cast<double>(num_loops) / elapsed, 1),
                   fmt_fixed(seq_time / elapsed, 2)});
    if (batch_size == 128) {
      full_batch_time = elapsed;
      full_batch_out = std::move(output);
    }
  }
  std::printf("%s", table.render().c_str());

  // ---- equivalence: batched output must match sequential -------------------
  double max_conf_delta = 0.0;
  std::size_t mismatches = 0;
  for (std::size_t s = 0; s < sequential.size(); ++s) {
    if (full_batch_out[s].size() != sequential[s].size()) {
      ++mismatches;
      continue;
    }
    for (std::size_t i = 0; i < sequential[s].size(); ++i) {
      const auto& a = sequential[s][i];
      const auto& b = full_batch_out[s][i];
      max_conf_delta = std::max(max_conf_delta, std::fabs(a.confidence - b.confidence));
      if (a.parallel != b.parallel || a.category != b.category ||
          a.suggested_pragma != b.suggested_pragma) {
        ++mismatches;
      }
    }
  }
  const double speedup = seq_time / full_batch_time;
  std::printf("loops served: %zu   max |Δconfidence|: %.2e   mismatches: %zu\n", num_loops,
              max_conf_delta, mismatches);

  // The pipeline's worker pool parallelizes the frontend, the encode
  // sub-batches, and the suggestion assembly; on a single hardware thread
  // those stages serialize and only the batched forward's remaining per-op
  // amortization applies — post-fused-kernel that is worth ~1.4x here, so
  // the enforced floor is 1.25x (see the header note). G2P_FLOOR overrides
  // the enforced value (shared CI runners are noisy; CI pins a lenient
  // floor so equivalence stays the hard gate there).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  double floor = hw > 1 ? 3.0 : 1.25;
  if (const char* env_floor = std::getenv("G2P_FLOOR")) floor = std::atof(env_floor);
  std::printf("batch-128 speedup over sequential: %.2fx (floor %.2fx on %u hardware thread%s,"
              " target 3x)\n",
              speedup, floor, hw, hw == 1 ? "" : "s");

  bool ok = true;
  if (mismatches != 0 || max_conf_delta > 1e-5) {
    std::printf("FAIL: batched outputs are not equivalent to sequential outputs\n");
    ok = false;
  }
  if (speedup < floor) {
    std::printf("FAIL: batch-128 speedup %.2fx below the %.2fx floor\n", speedup, floor);
    ok = false;
  }

  bench::JsonMetrics json;
  bench::set_common_header(json, "throughput_batched");
  json.set("loops", static_cast<std::int64_t>(num_loops));
  json.set("sequential_s", seq_time);
  json.set("batch128_s", full_batch_time);
  json.set("loops_per_sec_sequential", static_cast<double>(num_loops) / seq_time);
  json.set("loops_per_sec_batch128", static_cast<double>(num_loops) / full_batch_time);
  json.set("speedup", speedup);
  json.set("floor", floor);
  json.set("max_conf_delta", max_conf_delta);
  json.set("mismatches", static_cast<std::int64_t>(mismatches));
  json.set("pass", ok);
  if (!json.write(json_path)) {
    std::printf("FAIL: could not write %s\n", json_path.c_str());
    ok = false;
  }
  if (ok) std::printf("PASS\n");
  return ok ? 0 : 1;
}
