// Static race verifier quality gate: model-only vs model+verifier on a
// fresh labeled corpus.
//
// Trains a small pipeline, generates an unseen labeled corpus (seed+1), and
// serves every distinct file twice through the same trained pipeline — once
// with verification off (the model's raw suggestions) and once with it on
// (vetoes withdraw provable races, repairs add missing/wrong clauses). The
// pragma-existence BinaryMetrics of both modes are compared per labeled
// loop:
//
//   * precision must strictly improve: every veto that fires on a loop the
//     generator built around a real dependence (flow dep, prefix sum,
//     in-place stencil, ...) removes a model false positive, and the veto
//     is only allowed to fire on *provable* races;
//   * recall must stay within a small floor of model-only: the verifier's
//     conservative verdicts (kUnknown) pass suggestions through unchanged,
//     so the only recall it can lose is a true-parallel loop it wrongly
//     proves racy — which the conservatism contract in analysis/verifier.h
//     says must not happen (modulo label noise in the generated corpus).
//
// Also enforces the determinism/agreement acceptance criterion: with
// verification on, `suggest`, `suggest_batch_results`, a cached replay, and
// a recomputation after clear_cache must agree bitwise on every field
// (verdict, veto_reason, repaired_clauses included).
//
// Knobs: G2P_SCALE / G2P_EPOCHS / G2P_SEED as in bench_common.h, plus
//   G2P_VERIFIER_FLOOR       — minimum precision improvement (default 0:
//                              strictly above; CI may pin a negative floor
//                              on tiny smoke corpora where the model has
//                              no false positives to veto)
//   G2P_VERIFIER_RECALL_DROP — maximum recall drop (default 0.02)
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "dataset/generator.h"
#include "eval/metrics.h"
#include "support/table.h"

namespace {

using namespace g2p;

struct EvalOut {
  BinaryMetrics existence;                  // predicted-parallel vs label
  std::array<std::uint64_t, 5> verdicts{};  // indexed by Verdict
  std::uint64_t repairs = 0;                // total repaired clauses
  std::size_t unmatched = 0;                // labeled loops with no suggestion
};

/// Bitwise equality over every field the pipeline renders — the agreement
/// gate is exact, not tolerance-based: all four serving paths run the same
/// forward and the same verifier on the same facts.
bool same_suggestions(const std::vector<LoopSuggestion>& a,
                      const std::vector<LoopSuggestion>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const LoopSuggestion& x = a[i];
    const LoopSuggestion& y = b[i];
    if (x.loop_source != y.loop_source || x.line != y.line ||
        x.function_name != y.function_name || x.parallel != y.parallel ||
        x.confidence != y.confidence || x.category != y.category ||
        x.suggested_pragma != y.suggested_pragma || x.verdict != y.verdict ||
        x.veto_reason != y.veto_reason || x.repaired_clauses != y.repaired_clauses) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g2p;
  const auto env = bench::BenchEnv::from_env();
  const std::string json_path = bench::json_path_from_args(argc, argv);

  double floor = 0.0;
  if (const char* s = std::getenv("G2P_VERIFIER_FLOOR")) floor = std::atof(s);
  double recall_drop = 0.02;
  if (const char* s = std::getenv("G2P_VERIFIER_RECALL_DROP")) recall_drop = std::atof(s);

  Pipeline::Options options;
  options.corpus = env.generator_config();
  options.corpus.scale = std::max(env.scale, 0.01);
  options.train.epochs = env.epochs;
  options.train.seed = env.seed;
  std::printf("== bench_verifier: model-only vs model+verifier (scale %.3f, %d epochs) ==\n",
              options.corpus.scale, options.train.epochs);
  Pipeline pipeline = Pipeline::train(options);

  // Fresh labeled corpus the model never trained on. Samples carry the
  // generator's ground-truth `parallel` label; suggestions are matched back
  // to samples by exact loop source within each distinct file.
  GeneratorConfig fresh = env.generator_config();
  fresh.scale = std::max(env.scale * 2.0, 0.04);
  fresh.seed = env.seed + 1;
  const Corpus corpus = CorpusGenerator(fresh).generate();
  std::vector<std::string_view> files;
  std::vector<std::vector<const LoopSample*>> samples_of;  // aligned with files
  {
    std::set<std::string_view> seen;
    for (const auto& sample : corpus.samples) {
      if (seen.insert(sample.file_source).second) {
        files.push_back(sample.file_source);
        samples_of.emplace_back();
      }
    }
    for (const auto& sample : corpus.samples) {
      for (std::size_t f = 0; f < files.size(); ++f) {
        if (files[f] == sample.file_source) {
          samples_of[f].push_back(&sample);
          break;
        }
      }
    }
  }
  std::printf("fresh corpus: %d labeled loops across %zu distinct files\n\n", corpus.size(),
              files.size());

  const auto evaluate = [&](bool verify) {
    pipeline.set_verify_suggestions(verify);
    EvalOut out;
    for (std::size_t f = 0; f < files.size(); ++f) {
      const std::vector<LoopSuggestion> suggestions = pipeline.suggest(files[f]);
      for (const LoopSample* sample : samples_of[f]) {
        const LoopSuggestion* match = nullptr;
        for (const LoopSuggestion& s : suggestions) {
          if (s.loop_source == sample->loop_source) {
            match = &s;
            break;
          }
        }
        if (match == nullptr) {
          ++out.unmatched;
          continue;
        }
        out.existence.add(match->parallel, sample->parallel);
        ++out.verdicts[static_cast<std::size_t>(match->verdict)];
        out.repairs += match->repaired_clauses.size();
      }
    }
    return out;
  };

  // The result-cache key is salted with the verifier config, so evaluating
  // both modes on one pipeline (frontend artifacts shared, rendered results
  // separate) is exactly the comparison serving would see.
  const EvalOut base = evaluate(/*verify=*/false);
  const EvalOut ver = evaluate(/*verify=*/true);

  TextTable table({"mode", "precision", "recall", "F1", "accuracy"});
  const auto add = [&table](const char* name, const BinaryMetrics& m) {
    table.add_row({name, bench::pct(m.precision()), bench::pct(m.recall()),
                   bench::pct(m.f1()), bench::pct(m.accuracy())});
  };
  add("model only", base.existence);
  add("model + verifier", ver.existence);
  std::printf("%s", table.render().c_str());
  std::printf("verdicts: %llu verified / %llu repaired / %llu vetoed / %llu unknown "
              "(%llu clause repairs)\n",
              static_cast<unsigned long long>(ver.verdicts[static_cast<std::size_t>(Verdict::kVerified)]),
              static_cast<unsigned long long>(ver.verdicts[static_cast<std::size_t>(Verdict::kRepaired)]),
              static_cast<unsigned long long>(ver.verdicts[static_cast<std::size_t>(Verdict::kVetoed)]),
              static_cast<unsigned long long>(ver.verdicts[static_cast<std::size_t>(Verdict::kUnknown)]),
              static_cast<unsigned long long>(ver.repairs));
  std::printf("model only: %d tp / %d fp / %d fn | with verifier: %d tp / %d fp / %d fn\n",
              base.existence.tp, base.existence.fp, base.existence.fn, ver.existence.tp,
              ver.existence.fp, ver.existence.fn);
  if (base.unmatched != 0 || ver.unmatched != 0) {
    std::printf("note: %zu/%zu labeled loops had no matching suggestion (extractor gap)\n",
                std::max(base.unmatched, ver.unmatched),
                static_cast<std::size_t>(corpus.size()));
  }

  // ---- agreement gate: suggest == batch == cached replay == recompute ------
  // All with verification on (the serving default). Covers the acceptance
  // criterion that sequential, batched, and cached outputs agree bitwise.
  pipeline.set_verify_suggestions(true);
  std::size_t agreement_mismatches = 0;
  const std::size_t probe = std::min<std::size_t>(files.size(), 12);
  for (std::size_t f = 0; f < probe; ++f) {
    pipeline.clear_cache();
    const auto direct = pipeline.suggest(files[f]);
    const std::vector<std::string_view> views{files[f]};
    const auto batch = pipeline.suggest_batch_results(views);
    const auto cached = pipeline.suggest(files[f]);  // full-result tier hit
    pipeline.clear_cache();
    const auto recomputed = pipeline.suggest(files[f]);
    if (!batch.front().ok() || !same_suggestions(direct, batch.front().suggestions) ||
        !same_suggestions(direct, cached) || !same_suggestions(direct, recomputed)) {
      ++agreement_mismatches;
    }
  }
  std::printf("agreement probe: %zu files, %zu mismatches "
              "(suggest vs batch vs cached vs recomputed)\n",
              probe, agreement_mismatches);

  // ---- gates ---------------------------------------------------------------
  const double prec_delta = ver.existence.precision() - base.existence.precision();
  const double rec_delta = ver.existence.recall() - base.existence.recall();
  std::printf("precision delta: %+.4f (floor %+.4f) | recall delta: %+.4f (allowed %.4f)\n",
              prec_delta, floor, rec_delta, recall_drop);

  bool ok = true;
  if (base.existence.fp == 0) {
    // Nothing to veto: strict improvement is vacuous, but the verifier must
    // not make precision worse.
    if (prec_delta < 0.0) {
      std::printf("FAIL: model had no false positives yet precision dropped\n");
      ok = false;
    } else {
      std::printf("note: model-only has zero false positives; strict-improvement gate waived\n");
    }
  } else if (!(prec_delta > floor) && !(floor < 0.0 && prec_delta >= floor)) {
    std::printf("FAIL: precision delta %+.4f not above the %+.4f floor\n", prec_delta, floor);
    ok = false;
  }
  if (rec_delta < -recall_drop) {
    std::printf("FAIL: recall dropped %.4f, more than the allowed %.4f\n", -rec_delta,
                recall_drop);
    ok = false;
  }
  if (agreement_mismatches != 0) {
    std::printf("FAIL: serving paths disagree on %zu files\n", agreement_mismatches);
    ok = false;
  }

  bench::JsonMetrics json;
  bench::set_common_header(json, "verifier");
  json.set("scale", options.corpus.scale);
  json.set("epochs", options.train.epochs);
  json.set("loops_evaluated", base.existence.total());
  json.set("base_precision", base.existence.precision());
  json.set("base_recall", base.existence.recall());
  json.set("base_f1", base.existence.f1());
  json.set("verified_precision", ver.existence.precision());
  json.set("verified_recall", ver.existence.recall());
  json.set("verified_f1", ver.existence.f1());
  json.set("precision_delta", prec_delta);
  json.set("recall_delta", rec_delta);
  json.set("verdict_verified",
           static_cast<std::int64_t>(ver.verdicts[static_cast<std::size_t>(Verdict::kVerified)]));
  json.set("verdict_repaired",
           static_cast<std::int64_t>(ver.verdicts[static_cast<std::size_t>(Verdict::kRepaired)]));
  json.set("verdict_vetoed",
           static_cast<std::int64_t>(ver.verdicts[static_cast<std::size_t>(Verdict::kVetoed)]));
  json.set("verdict_unknown",
           static_cast<std::int64_t>(ver.verdicts[static_cast<std::size_t>(Verdict::kUnknown)]));
  json.set("clause_repairs", static_cast<std::int64_t>(ver.repairs));
  json.set("agreement_mismatches", static_cast<std::int64_t>(agreement_mismatches));
  json.set("precision_floor", floor);
  json.set("recall_drop_allowed", recall_drop);
  json.set("pass", ok);
  if (!json.write(json_path)) {
    std::printf("FAIL: could not write %s\n", json_path.c_str());
    ok = false;
  }
  if (ok) std::printf("PASS\n");
  return ok ? 0 : 1;
}
