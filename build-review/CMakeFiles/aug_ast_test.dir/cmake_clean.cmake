file(REMOVE_RECURSE
  "CMakeFiles/aug_ast_test.dir/tests/aug_ast_test.cpp.o"
  "CMakeFiles/aug_ast_test.dir/tests/aug_ast_test.cpp.o.d"
  "aug_ast_test"
  "aug_ast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aug_ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
