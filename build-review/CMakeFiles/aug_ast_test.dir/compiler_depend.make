# Empty compiler generated dependencies file for aug_ast_test.
# This may be replaced when dependencies are built.
