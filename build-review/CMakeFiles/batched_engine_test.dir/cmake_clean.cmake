file(REMOVE_RECURSE
  "CMakeFiles/batched_engine_test.dir/tests/batched_engine_test.cpp.o"
  "CMakeFiles/batched_engine_test.dir/tests/batched_engine_test.cpp.o.d"
  "batched_engine_test"
  "batched_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batched_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
