# Empty compiler generated dependencies file for batched_engine_test.
# This may be replaced when dependencies are built.
