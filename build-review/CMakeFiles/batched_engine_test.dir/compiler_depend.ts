# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for batched_engine_test.
