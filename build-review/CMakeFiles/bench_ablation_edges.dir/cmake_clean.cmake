file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_edges.dir/bench/ablation_edges.cpp.o"
  "CMakeFiles/bench_ablation_edges.dir/bench/ablation_edges.cpp.o.d"
  "bench_ablation_edges"
  "bench_ablation_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
