# Empty dependencies file for bench_ablation_edges.
# This may be replaced when dependencies are built.
