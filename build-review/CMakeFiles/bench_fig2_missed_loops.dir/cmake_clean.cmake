file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_missed_loops.dir/bench/fig2_missed_loops.cpp.o"
  "CMakeFiles/bench_fig2_missed_loops.dir/bench/fig2_missed_loops.cpp.o.d"
  "bench_fig2_missed_loops"
  "bench_fig2_missed_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_missed_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
