# Empty compiler generated dependencies file for bench_fig2_missed_loops.
# This may be replaced when dependencies are built.
