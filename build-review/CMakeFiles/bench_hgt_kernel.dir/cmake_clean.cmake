file(REMOVE_RECURSE
  "CMakeFiles/bench_hgt_kernel.dir/bench/hgt_kernel.cpp.o"
  "CMakeFiles/bench_hgt_kernel.dir/bench/hgt_kernel.cpp.o.d"
  "bench_hgt_kernel"
  "bench_hgt_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hgt_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
