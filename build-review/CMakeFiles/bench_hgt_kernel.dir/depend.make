# Empty dependencies file for bench_hgt_kernel.
# This may be replaced when dependencies are built.
