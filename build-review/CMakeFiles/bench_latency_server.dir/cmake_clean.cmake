file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_server.dir/bench/latency_server.cpp.o"
  "CMakeFiles/bench_latency_server.dir/bench/latency_server.cpp.o.d"
  "bench_latency_server"
  "bench_latency_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
