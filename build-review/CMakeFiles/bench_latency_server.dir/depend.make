# Empty dependencies file for bench_latency_server.
# This may be replaced when dependencies are built.
