file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_augast.dir/bench/overhead_augast.cpp.o"
  "CMakeFiles/bench_overhead_augast.dir/bench/overhead_augast.cpp.o.d"
  "bench_overhead_augast"
  "bench_overhead_augast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_augast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
