# Empty dependencies file for bench_overhead_augast.
# This may be replaced when dependencies are built.
