# Empty compiler generated dependencies file for bench_table1_dataset_stats.
# This may be replaced when dependencies are built.
