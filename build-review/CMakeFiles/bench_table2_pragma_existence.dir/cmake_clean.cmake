file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_pragma_existence.dir/bench/table2_pragma_existence.cpp.o"
  "CMakeFiles/bench_table2_pragma_existence.dir/bench/table2_pragma_existence.cpp.o.d"
  "bench_table2_pragma_existence"
  "bench_table2_pragma_existence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_pragma_existence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
