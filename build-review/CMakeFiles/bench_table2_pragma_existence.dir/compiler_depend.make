# Empty compiler generated dependencies file for bench_table2_pragma_existence.
# This may be replaced when dependencies are built.
