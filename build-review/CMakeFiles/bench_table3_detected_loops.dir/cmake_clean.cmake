file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_detected_loops.dir/bench/table3_detected_loops.cpp.o"
  "CMakeFiles/bench_table3_detected_loops.dir/bench/table3_detected_loops.cpp.o.d"
  "bench_table3_detected_loops"
  "bench_table3_detected_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_detected_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
