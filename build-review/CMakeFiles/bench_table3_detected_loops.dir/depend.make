# Empty dependencies file for bench_table3_detected_loops.
# This may be replaced when dependencies are built.
