file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_subset_comparison.dir/bench/table4_subset_comparison.cpp.o"
  "CMakeFiles/bench_table4_subset_comparison.dir/bench/table4_subset_comparison.cpp.o.d"
  "bench_table4_subset_comparison"
  "bench_table4_subset_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_subset_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
