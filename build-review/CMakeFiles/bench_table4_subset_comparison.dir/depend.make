# Empty dependencies file for bench_table4_subset_comparison.
# This may be replaced when dependencies are built.
