file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_clause_prediction.dir/bench/table5_clause_prediction.cpp.o"
  "CMakeFiles/bench_table5_clause_prediction.dir/bench/table5_clause_prediction.cpp.o.d"
  "bench_table5_clause_prediction"
  "bench_table5_clause_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_clause_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
