# Empty compiler generated dependencies file for bench_table5_clause_prediction.
# This may be replaced when dependencies are built.
