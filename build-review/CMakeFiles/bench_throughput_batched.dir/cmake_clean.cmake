file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput_batched.dir/bench/throughput_batched.cpp.o"
  "CMakeFiles/bench_throughput_batched.dir/bench/throughput_batched.cpp.o.d"
  "bench_throughput_batched"
  "bench_throughput_batched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_batched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
