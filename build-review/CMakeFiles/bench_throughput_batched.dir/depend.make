# Empty dependencies file for bench_throughput_batched.
# This may be replaced when dependencies are built.
