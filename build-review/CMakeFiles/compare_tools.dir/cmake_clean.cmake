file(REMOVE_RECURSE
  "CMakeFiles/compare_tools.dir/examples/compare_tools.cpp.o"
  "CMakeFiles/compare_tools.dir/examples/compare_tools.cpp.o.d"
  "compare_tools"
  "compare_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
