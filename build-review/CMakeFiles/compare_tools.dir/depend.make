# Empty dependencies file for compare_tools.
# This may be replaced when dependencies are built.
