file(REMOVE_RECURSE
  "CMakeFiles/dependence_test.dir/tests/dependence_test.cpp.o"
  "CMakeFiles/dependence_test.dir/tests/dependence_test.cpp.o.d"
  "dependence_test"
  "dependence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
