# Empty dependencies file for dependence_test.
# This may be replaced when dependencies are built.
