
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dependence.cpp" "CMakeFiles/g2p.dir/src/analysis/dependence.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/analysis/dependence.cpp.o.d"
  "/root/repo/src/analysis/interp.cpp" "CMakeFiles/g2p.dir/src/analysis/interp.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/analysis/interp.cpp.o.d"
  "/root/repo/src/analysis/tools.cpp" "CMakeFiles/g2p.dir/src/analysis/tools.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/analysis/tools.cpp.o.d"
  "/root/repo/src/core/aug_ast.cpp" "CMakeFiles/g2p.dir/src/core/aug_ast.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/core/aug_ast.cpp.o.d"
  "/root/repo/src/core/graph2par.cpp" "CMakeFiles/g2p.dir/src/core/graph2par.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/core/graph2par.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "CMakeFiles/g2p.dir/src/core/pipeline.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/core/pipeline.cpp.o.d"
  "/root/repo/src/core/pragformer.cpp" "CMakeFiles/g2p.dir/src/core/pragformer.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/core/pragformer.cpp.o.d"
  "/root/repo/src/dataset/corpus.cpp" "CMakeFiles/g2p.dir/src/dataset/corpus.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/dataset/corpus.cpp.o.d"
  "/root/repo/src/dataset/generator.cpp" "CMakeFiles/g2p.dir/src/dataset/generator.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/dataset/generator.cpp.o.d"
  "/root/repo/src/dataset/template_engine.cpp" "CMakeFiles/g2p.dir/src/dataset/template_engine.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/dataset/template_engine.cpp.o.d"
  "/root/repo/src/eval/comparison.cpp" "CMakeFiles/g2p.dir/src/eval/comparison.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/eval/comparison.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "CMakeFiles/g2p.dir/src/eval/metrics.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/eval/metrics.cpp.o.d"
  "/root/repo/src/eval/trainer.cpp" "CMakeFiles/g2p.dir/src/eval/trainer.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/eval/trainer.cpp.o.d"
  "/root/repo/src/frontend/ast.cpp" "CMakeFiles/g2p.dir/src/frontend/ast.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/frontend/ast.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "CMakeFiles/g2p.dir/src/frontend/lexer.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/frontend/lexer.cpp.o.d"
  "/root/repo/src/frontend/loop_extractor.cpp" "CMakeFiles/g2p.dir/src/frontend/loop_extractor.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/frontend/loop_extractor.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "CMakeFiles/g2p.dir/src/frontend/parser.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/frontend/parser.cpp.o.d"
  "/root/repo/src/frontend/pragma.cpp" "CMakeFiles/g2p.dir/src/frontend/pragma.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/frontend/pragma.cpp.o.d"
  "/root/repo/src/frontend/printer.cpp" "CMakeFiles/g2p.dir/src/frontend/printer.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/frontend/printer.cpp.o.d"
  "/root/repo/src/frontend/token.cpp" "CMakeFiles/g2p.dir/src/frontend/token.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/frontend/token.cpp.o.d"
  "/root/repo/src/graph/cfg.cpp" "CMakeFiles/g2p.dir/src/graph/cfg.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/graph/cfg.cpp.o.d"
  "/root/repo/src/graph/hetgraph.cpp" "CMakeFiles/g2p.dir/src/graph/hetgraph.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/graph/hetgraph.cpp.o.d"
  "/root/repo/src/graph/hetgraph_index.cpp" "CMakeFiles/g2p.dir/src/graph/hetgraph_index.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/graph/hetgraph_index.cpp.o.d"
  "/root/repo/src/graph/vocab.cpp" "CMakeFiles/g2p.dir/src/graph/vocab.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/graph/vocab.cpp.o.d"
  "/root/repo/src/nn/hgt.cpp" "CMakeFiles/g2p.dir/src/nn/hgt.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/nn/hgt.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "CMakeFiles/g2p.dir/src/nn/layers.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/nn/layers.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "CMakeFiles/g2p.dir/src/nn/module.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/nn/module.cpp.o.d"
  "/root/repo/src/nn/transformer.cpp" "CMakeFiles/g2p.dir/src/nn/transformer.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/nn/transformer.cpp.o.d"
  "/root/repo/src/serve/server.cpp" "CMakeFiles/g2p.dir/src/serve/server.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/serve/server.cpp.o.d"
  "/root/repo/src/support/log.cpp" "CMakeFiles/g2p.dir/src/support/log.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/support/log.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "CMakeFiles/g2p.dir/src/support/rng.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/support/rng.cpp.o.d"
  "/root/repo/src/support/strings.cpp" "CMakeFiles/g2p.dir/src/support/strings.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/support/strings.cpp.o.d"
  "/root/repo/src/support/table.cpp" "CMakeFiles/g2p.dir/src/support/table.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/support/table.cpp.o.d"
  "/root/repo/src/tensor/backend.cpp" "CMakeFiles/g2p.dir/src/tensor/backend.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/tensor/backend.cpp.o.d"
  "/root/repo/src/tensor/backend_avx2.cpp" "CMakeFiles/g2p.dir/src/tensor/backend_avx2.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/tensor/backend_avx2.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "CMakeFiles/g2p.dir/src/tensor/ops.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/optim.cpp" "CMakeFiles/g2p.dir/src/tensor/optim.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/tensor/optim.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "CMakeFiles/g2p.dir/src/tensor/tensor.cpp.o" "gcc" "CMakeFiles/g2p.dir/src/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
