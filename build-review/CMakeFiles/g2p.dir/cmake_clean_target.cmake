file(REMOVE_RECURSE
  "libg2p.a"
)
