# Empty dependencies file for g2p.
# This may be replaced when dependencies are built.
