file(REMOVE_RECURSE
  "CMakeFiles/generate_dataset.dir/examples/generate_dataset.cpp.o"
  "CMakeFiles/generate_dataset.dir/examples/generate_dataset.cpp.o.d"
  "generate_dataset"
  "generate_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
