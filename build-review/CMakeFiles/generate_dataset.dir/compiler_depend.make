# Empty compiler generated dependencies file for generate_dataset.
# This may be replaced when dependencies are built.
