file(REMOVE_RECURSE
  "CMakeFiles/graph_test.dir/tests/graph_test.cpp.o"
  "CMakeFiles/graph_test.dir/tests/graph_test.cpp.o.d"
  "graph_test"
  "graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
