# Empty compiler generated dependencies file for graph_test.
# This may be replaced when dependencies are built.
