file(REMOVE_RECURSE
  "CMakeFiles/hgt_fused_test.dir/tests/hgt_fused_test.cpp.o"
  "CMakeFiles/hgt_fused_test.dir/tests/hgt_fused_test.cpp.o.d"
  "hgt_fused_test"
  "hgt_fused_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgt_fused_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
