# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hgt_fused_test.
