# Empty dependencies file for hgt_fused_test.
# This may be replaced when dependencies are built.
