file(REMOVE_RECURSE
  "CMakeFiles/interp_test.dir/tests/interp_test.cpp.o"
  "CMakeFiles/interp_test.dir/tests/interp_test.cpp.o.d"
  "interp_test"
  "interp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
