# Empty compiler generated dependencies file for interp_test.
# This may be replaced when dependencies are built.
