file(REMOVE_RECURSE
  "CMakeFiles/lexer_test.dir/tests/lexer_test.cpp.o"
  "CMakeFiles/lexer_test.dir/tests/lexer_test.cpp.o.d"
  "lexer_test"
  "lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
