# Empty compiler generated dependencies file for lexer_test.
# This may be replaced when dependencies are built.
