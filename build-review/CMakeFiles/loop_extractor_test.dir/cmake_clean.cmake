file(REMOVE_RECURSE
  "CMakeFiles/loop_extractor_test.dir/tests/loop_extractor_test.cpp.o"
  "CMakeFiles/loop_extractor_test.dir/tests/loop_extractor_test.cpp.o.d"
  "loop_extractor_test"
  "loop_extractor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
