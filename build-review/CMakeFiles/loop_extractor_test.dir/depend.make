# Empty dependencies file for loop_extractor_test.
# This may be replaced when dependencies are built.
