file(REMOVE_RECURSE
  "CMakeFiles/metrics_comparison_test.dir/tests/metrics_comparison_test.cpp.o"
  "CMakeFiles/metrics_comparison_test.dir/tests/metrics_comparison_test.cpp.o.d"
  "metrics_comparison_test"
  "metrics_comparison_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_comparison_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
