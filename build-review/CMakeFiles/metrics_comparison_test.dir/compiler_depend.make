# Empty compiler generated dependencies file for metrics_comparison_test.
# This may be replaced when dependencies are built.
