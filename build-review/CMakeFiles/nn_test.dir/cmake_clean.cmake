file(REMOVE_RECURSE
  "CMakeFiles/nn_test.dir/tests/nn_test.cpp.o"
  "CMakeFiles/nn_test.dir/tests/nn_test.cpp.o.d"
  "nn_test"
  "nn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
