# Empty dependencies file for nn_test.
# This may be replaced when dependencies are built.
