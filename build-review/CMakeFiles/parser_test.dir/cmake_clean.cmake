file(REMOVE_RECURSE
  "CMakeFiles/parser_test.dir/tests/parser_test.cpp.o"
  "CMakeFiles/parser_test.dir/tests/parser_test.cpp.o.d"
  "parser_test"
  "parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
