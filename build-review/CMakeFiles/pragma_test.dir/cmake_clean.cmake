file(REMOVE_RECURSE
  "CMakeFiles/pragma_test.dir/tests/pragma_test.cpp.o"
  "CMakeFiles/pragma_test.dir/tests/pragma_test.cpp.o.d"
  "pragma_test"
  "pragma_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pragma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
