# Empty compiler generated dependencies file for pragma_test.
# This may be replaced when dependencies are built.
