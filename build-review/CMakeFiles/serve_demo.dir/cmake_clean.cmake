file(REMOVE_RECURSE
  "CMakeFiles/serve_demo.dir/examples/serve_demo.cpp.o"
  "CMakeFiles/serve_demo.dir/examples/serve_demo.cpp.o.d"
  "serve_demo"
  "serve_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
