# Empty dependencies file for serve_demo.
# This may be replaced when dependencies are built.
