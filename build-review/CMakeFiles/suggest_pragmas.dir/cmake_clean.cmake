file(REMOVE_RECURSE
  "CMakeFiles/suggest_pragmas.dir/examples/suggest_pragmas.cpp.o"
  "CMakeFiles/suggest_pragmas.dir/examples/suggest_pragmas.cpp.o.d"
  "suggest_pragmas"
  "suggest_pragmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suggest_pragmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
