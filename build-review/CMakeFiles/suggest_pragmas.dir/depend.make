# Empty dependencies file for suggest_pragmas.
# This may be replaced when dependencies are built.
