file(REMOVE_RECURSE
  "CMakeFiles/support_test.dir/tests/support_test.cpp.o"
  "CMakeFiles/support_test.dir/tests/support_test.cpp.o.d"
  "support_test"
  "support_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
