file(REMOVE_RECURSE
  "CMakeFiles/tools_test.dir/tests/tools_test.cpp.o"
  "CMakeFiles/tools_test.dir/tests/tools_test.cpp.o.d"
  "tools_test"
  "tools_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
