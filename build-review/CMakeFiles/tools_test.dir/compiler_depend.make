# Empty compiler generated dependencies file for tools_test.
# This may be replaced when dependencies are built.
