file(REMOVE_RECURSE
  "CMakeFiles/train_model.dir/examples/train_model.cpp.o"
  "CMakeFiles/train_model.dir/examples/train_model.cpp.o.d"
  "train_model"
  "train_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
