# Empty compiler generated dependencies file for train_model.
# This may be replaced when dependencies are built.
