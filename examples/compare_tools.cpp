// compare_tools: run the PLUTO / autoPar / DiscoPoP simulacra side by side
// on the paper's motivating listings (or on a user-provided C file) and show
// each tool's applicability gate and verdict with its reason.
//
//   ./build/examples/compare_tools            # paper listings 1-5
//   ./build/examples/compare_tools file.c     # your own code
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/tools.h"
#include "frontend/loop_extractor.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

const char* kDefaultPrograms[] = {
    // Listing 1
    "void l1(double* a) {\n  int i; double error = 0;\n"
    "  for (i = 0; i < 30000000; i++)\n    error = error + fabs(a[i] - a[i + 1]);\n}\n",
    // Listing 3
    "float square(int x) {\n  int k = 0;\n  while (k < 5000) k++;\n  return sqrt(x);\n}\n"
    "void l3(float* vector, int size) {\n"
    "  for (int i = 0; i < size; i++) vector[i] = square(vector[i]);\n}\n",
    // Listing 4
    "void l4(int N, int step) {\n  int v = 0;\n"
    "  for (int i = 0; i < N; i += step) { v += 2; v = v + step; }\n}\n",
    // Listing 5
    "void l5(void) {\n  int i, j, k, l = 0;\n"
    "  for (j = 0; j < 4; j++)\n    for (i = 0; i < 5; i++)\n"
    "      for (k = 0; k < 6; k += 2)\n        l++;\n}\n",
    // A clean do-all for contrast.
    "void clean(double* a, double* b, int n) {\n"
    "  for (int i = 0; i < n; i++) a[i] = b[i] * 2.0 + 1.0;\n}\n",
};

void analyze_source(const std::string& source) {
  using namespace g2p;
  const auto parsed = parse_translation_unit(source);
  const auto loops = extract_loops(*parsed.tu);
  const auto tools = make_all_tools();
  for (const auto& extracted : loops) {
    const std::string fn_name(extracted.function ? extracted.function->name
                                                  : std::string_view("<global>"));
    std::printf("loop in %s() at line %d:\n", fn_name.c_str(), extracted.loop->line);
    for (const auto& line : split(extracted.source, '\n')) {
      if (!line.empty()) std::printf("    %s\n", line.c_str());
    }
    TextTable table({"Tool", "Applicable", "Verdict", "Reason"});
    for (const auto& tool : tools) {
      const auto r = tool->analyze(*extracted.loop, parsed.tu, &parsed.structs);
      table.add_row({std::string(tool->name()), r.applicable ? "yes" : "no",
                     !r.applicable ? "-" : (r.parallel ? "parallel" : "serial"), r.reason});
    }
    std::printf("%s\n", table.render().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    analyze_source(buffer.str());
    return 0;
  }
  std::printf("no file given: analyzing the paper's motivating listings\n\n");
  for (const char* program : kDefaultPrograms) {
    analyze_source(program);
  }
  return 0;
}
