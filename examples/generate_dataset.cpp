// generate_dataset: materialize an OMP_Serial-style corpus on disk.
//
//   ./build/examples/generate_dataset out_dir [scale] [seed]
//
// Writes one .c file per loop sample plus labels.tsv, and prints the Table-1
// style summary. scale=1.0 reproduces the paper-sized dataset (32.5k loops).
#include <cstdio>
#include <cstdlib>

#include "dataset/generator.h"

int main(int argc, char** argv) {
  using namespace g2p;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <out_dir> [scale=0.05] [seed=20230509]\n", argv[0]);
    return 2;
  }
  GeneratorConfig cfg;
  if (argc > 2) cfg.scale = std::atof(argv[2]);
  if (argc > 3) cfg.seed = std::strtoull(argv[3], nullptr, 10);

  std::printf("generating OMP_Serial corpus at scale %.3g (seed %llu)...\n", cfg.scale,
              static_cast<unsigned long long>(cfg.seed));
  const Corpus corpus = CorpusGenerator(cfg).generate();
  write_corpus(corpus, argv[1]);

  std::printf("wrote %d loop samples to %s\n", corpus.size(), argv[1]);
  std::printf("  parallel:      %d\n", corpus.count_parallel());
  std::printf("    private:     %d\n", corpus.count_category(PragmaCategory::kPrivate));
  std::printf("    reduction:   %d\n", corpus.count_category(PragmaCategory::kReduction));
  std::printf("    simd:        %d\n", corpus.count_category(PragmaCategory::kSimd));
  std::printf("    target:      %d\n", corpus.count_category(PragmaCategory::kTarget));
  std::printf("  non-parallel:  %d\n", corpus.size() - corpus.count_parallel());

  const auto split = corpus.split();
  std::printf("suggested split: %zu train / %zu val / %zu test (labels.tsv has per-sample\n"
              "ids; the split is a deterministic hash of each id)\n",
              split.train.size(), split.validation.size(), split.test.size());
  return 0;
}
