// Quickstart: parse a loop, inspect its heterogeneous aug-AST, run the three
// algorithm-based analyzers on it, then train a small Graph2Par pipeline and
// ask it for a suggestion.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "analysis/tools.h"
#include "core/pipeline.h"
#include "frontend/printer.h"

int main() {
  using namespace g2p;

  // The paper's Listing 1: a reduction with a function call that all three
  // algorithm-based tools miss.
  const std::string source =
      "void kernel(double* a) {\n"
      "  int i;\n"
      "  double error = 0;\n"
      "  for (i = 0; i < 30000000; i++)\n"
      "    error = error + fabs(a[i] - a[i + 1]);\n"
      "}\n";

  std::printf("== input ==\n%s\n", source.c_str());

  // 1. Frontend: parse and extract the loop.
  auto parsed = parse_translation_unit(source);
  const auto loops = extract_loops(*parsed.tu);
  std::printf("extracted %zu loop(s); first one:\n%s\n", loops.size(),
              loops[0].source.c_str());

  // 2. Representation: build the heterogeneous aug-AST (§5.1).
  std::unordered_map<std::string, int> counts;
  collect_text_attributes(*parsed.tu, counts);
  const Vocab vocab = Vocab::build(counts);
  const AugAstBuilder builder(vocab);
  const LoopGraph graph = builder.build(*loops[0].loop, parsed.tu);
  std::printf("aug-AST: %d nodes, %d edges (%d AST / %d CFG / %d lexical, per direction)\n\n",
              graph.graph.num_nodes(), graph.graph.num_edges(),
              graph.graph.count_edges(HetEdgeType::kAstChild),
              graph.graph.count_edges(HetEdgeType::kCfgNext),
              graph.graph.count_edges(HetEdgeType::kLexNext));

  // 3. What the algorithm-based tools say (§2).
  for (const auto& tool : make_all_tools()) {
    const auto result = tool->analyze(*loops[0].loop, parsed.tu, &parsed.structs);
    std::printf("%-9s -> %s (%s)\n", std::string(tool->name()).c_str(),
                result.detected_parallel() ? "parallel" : "no parallelism found",
                result.reason.c_str());
  }

  // 4. Train a small Graph2Par pipeline on a generated OMP_Serial corpus and
  //    ask it about the same loop (~30s on a laptop; shrink corpus.scale for
  //    a faster demo).
  std::printf("\ntraining Graph2Par pipeline on a synthetic OMP_Serial corpus...\n");
  Pipeline::Options options;
  options.corpus.scale = 0.03;
  options.train.epochs = 6;
  const Pipeline pipeline = Pipeline::train(options);

  for (const auto& suggestion : pipeline.suggest(source)) {
    std::printf("\nloop at line %d in %s(): %s (confidence %.2f)\n", suggestion.line,
                suggestion.function_name.c_str(),
                suggestion.parallel ? "PARALLELIZABLE" : "not parallelizable",
                suggestion.confidence);
    if (suggestion.parallel) {
      std::printf("suggested directive: %s\n", suggestion.suggested_pragma.c_str());
    }
  }
  return 0;
}
