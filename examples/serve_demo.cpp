// serve_demo: the async micro-batching server in ~60 lines.
//
// Trains a small pipeline, stands up a SuggestServer, and fires a burst of
// concurrent requests at it from several client threads — including one
// request that fails to parse, to show per-request error isolation: the
// broken request's future throws, its batch-mates are unaffected. Prints
// each result and the server's serving stats.
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "serve/server.h"

int main() {
  using namespace g2p;

  Pipeline::Options options;
  options.corpus.scale = 0.02;
  options.train.epochs = 2;
  std::printf("training pipeline...\n");
  SuggestServer::Options server_options;
  server_options.max_batch_loops = 16;
  server_options.max_delay = std::chrono::milliseconds(5);
  SuggestServer server(Pipeline::train(options), server_options);

  const std::vector<std::string> requests = {
      "void scale(double* x, int n) {\n"
      "  int i;\n"
      "  for (i = 0; i < n; i++) x[i] = x[i] * 2.0;\n"
      "}\n",
      "double dot(double* x, double* y, int n) {\n"
      "  int i;\n"
      "  double s = 0;\n"
      "  for (i = 0; i < n; i++) s += x[i] * y[i];\n"
      "  return s;\n"
      "}\n",
      "void shift(double* x, int n) {\n"
      "  int i;\n"
      "  for (i = 1; i < n; i++) x[i] = x[i - 1];\n"
      "}\n",
      "int broken( {\n",  // parse error: only this future throws
  };

  // Four clients submit concurrently; the scheduler merges their requests
  // into shared batches.
  std::vector<std::future<std::vector<LoopSuggestion>>> futures(requests.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    clients.emplace_back(
        [&server, &futures, &requests, i] { futures[i] = server.submit(requests[i]); });
  }
  for (auto& c : clients) c.join();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    std::printf("\n== request %zu ==\n", i);
    try {
      const auto suggestions = futures[i].get();
      if (suggestions.empty()) std::printf("no loops found\n");
      for (const auto& s : suggestions) {
        std::printf("loop at line %d: %s (confidence %.2f)%s%s\n", s.line,
                    s.parallel ? "parallelizable" : "not parallelizable", s.confidence,
                    s.parallel ? " -> " : "", s.parallel ? s.suggested_pragma.c_str() : "");
      }
    } catch (const std::exception& e) {
      std::printf("request failed: %s\n", e.what());
    }
  }

  const auto stats = server.stats();
  std::printf("\nserver stats: %llu submitted, %llu completed, %llu failed, %llu batches,"
              " mean batch %.2f, mean latency %.2f ms\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.batches), stats.mean_batch_size(),
              stats.mean_latency_us() / 1e3);
  return 0;
}
