// suggest_pragmas: command-line OpenMP advisor.
//
//   ./build/examples/suggest_pragmas file.c [more.c ...]
//
// Trains (or loads a cached) Graph2Par pipeline, then prints a per-loop
// report for each input file: predicted parallelism, confidence, suggested
// directive, and what the three algorithm-based tools would say (§6.4: the
// model suggests, the developer decides; tool output helps verification).
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/tools.h"
#include "core/pipeline.h"
#include "support/strings.h"

namespace {

constexpr const char* kModelCache = "/tmp/g2p_suggest_model.bin";
constexpr const char* kVocabCache = "/tmp/g2p_suggest_vocab.txt";

g2p::Pipeline load_or_train() {
  g2p::Pipeline::Options options;
  options.corpus.scale = 0.03;
  options.train.epochs = 5;
  if (auto cached = g2p::Pipeline::load(options, kModelCache, kVocabCache)) {
    std::printf("loaded cached model from %s\n", kModelCache);
    return std::move(*cached);
  }
  std::printf("training Graph2Par (first run; cached afterwards)...\n");
  g2p::Pipeline pipeline = g2p::Pipeline::train(options);
  if (!pipeline.save(kModelCache, kVocabCache)) {
    std::fprintf(stderr, "warning: could not cache the trained model at %s\n", kModelCache);
  }
  return pipeline;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g2p;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.c> [more.c ...]\n", argv[0]);
    return 2;
  }
  const Pipeline pipeline = load_or_train();
  const auto tools = make_all_tools();

  int exit_code = 0;
  for (int arg = 1; arg < argc; ++arg) {
    std::ifstream in(argv[arg]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[arg]);
      exit_code = 1;
      continue;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::printf("\n== %s ==\n", argv[arg]);
    try {
      const auto parsed = parse_translation_unit(buffer.str());
      const auto suggestions = pipeline.suggest(buffer.str());
      if (suggestions.empty()) {
        std::printf("no loops found\n");
        continue;
      }
      for (const auto& s : suggestions) {
        std::printf("\nloop at line %d (function %s):\n", s.line,
                    s.function_name.empty() ? "<global>" : s.function_name.c_str());
        for (const auto& line : split(s.loop_source, '\n')) {
          if (!line.empty()) std::printf("    %s\n", line.c_str());
        }
        std::printf("  Graph2Par: %s (confidence %.2f)\n",
                    s.parallel ? "parallelizable" : "not parallelizable", s.confidence);
        if (s.parallel) std::printf("  suggestion: %s\n", s.suggested_pragma.c_str());
        // The serving-path race verifier's verdict (docs/analysis.md).
        // Quiet for plain verified/unchecked; a veto explains the withdrawn
        // pragma, a repair lists the clause edits, unknown flags the reason.
        if (s.verdict == Verdict::kVetoed) {
          std::printf("  verifier : vetoed — %s\n", s.veto_reason.c_str());
        } else if (s.verdict == Verdict::kRepaired) {
          for (const auto& edit : s.repaired_clauses) {
            std::printf("  verifier : repaired — %s\n", edit.c_str());
          }
        } else if (s.verdict == Verdict::kUnknown) {
          std::printf("  verifier : unverified — %s\n", s.veto_reason.c_str());
        }
        // Cross-check with the algorithm-based analyzers.
        const auto loops = extract_loops(*parsed.tu);
        for (const auto& extracted : loops) {
          if (extracted.loop->line != s.line) continue;
          for (const auto& tool : tools) {
            const auto r = tool->analyze(*extracted.loop, parsed.tu, &parsed.structs);
            std::printf("  %-9s: %s%s\n", std::string(tool->name()).c_str(),
                        !r.applicable        ? "cannot process"
                        : r.parallel         ? "parallel"
                                             : "no parallelism found",
                        r.reason.empty() ? "" : (" — " + r.reason).c_str());
          }
          break;
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to analyze %s: %s\n", argv[arg], e.what());
      exit_code = 1;
    }
  }
  return exit_code;
}
