// train_model: the full training pipeline with progress logging — generate a
// corpus, build the vocabulary, train Graph2Par, evaluate all five heads on
// the held-out test split, and save the weights.
//
//   ./build/examples/train_model [scale=0.05] [epochs=6] [out_prefix=/tmp/g2p]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/pipeline.h"
#include "support/log.h"

int main(int argc, char** argv) {
  using namespace g2p;
  set_log_level(LogLevel::kInfo);

  GeneratorConfig gen;
  gen.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  TrainConfig tc;
  tc.epochs = argc > 2 ? std::atoi(argv[2]) : 6;
  tc.verbose = true;
  const std::string prefix = argc > 3 ? argv[3] : "/tmp/g2p";

  std::printf("generating corpus (scale %.3g)...\n", gen.scale);
  const Corpus corpus = CorpusGenerator(gen).generate();
  const auto split = corpus.split();
  std::printf("corpus: %d loops | %zu train / %zu val / %zu test\n", corpus.size(),
              split.train.size(), split.validation.size(), split.test.size());

  const Vocab vocab = build_corpus_vocab(corpus, split.train);
  const AugAstOptions aug;
  const auto train_examples = prepare_examples(corpus, split.train, vocab, aug);
  const auto val_examples = prepare_examples(corpus, split.validation, vocab, aug);
  const auto test_examples = prepare_examples(corpus, split.test, vocab, aug);

  Graph2ParConfig mc;
  mc.vocab_size = vocab.size();
  Rng rng(tc.seed);
  Graph2ParModel model(mc, rng);
  std::printf("model: %zu parameters, vocab %d\n", model.num_parameters(), vocab.size());

  train_graph_model(model, train_examples, tc);

  const auto val_report = evaluate_graph_model(model, val_examples);
  const auto test_report = evaluate_graph_model(model, test_examples);
  std::printf("\nvalidation parallel-head: %s\n", val_report.parallel().summary().c_str());
  std::printf("test       parallel-head: %s\n", test_report.parallel().summary().c_str());
  for (int t = 1; t < kNumPredictionTasks; ++t) {
    std::printf("test %-10s head: %s\n",
                std::string(prediction_task_name(static_cast<PredictionTask>(t))).c_str(),
                test_report.tasks[static_cast<std::size_t>(t)].summary().c_str());
  }

  const std::string model_path = prefix + "_model.bin";
  const std::string vocab_path = prefix + "_vocab.txt";
  if (!model.save_file(model_path)) {
    std::fprintf(stderr, "FAIL: could not write weights to %s\n", model_path.c_str());
    return 1;
  }
  std::ofstream vocab_out(vocab_path);
  vocab_out << vocab.serialize();
  vocab_out.flush();
  if (!vocab_out.good()) {
    std::fprintf(stderr, "FAIL: could not write vocab to %s\n", vocab_path.c_str());
    return 1;
  }
  std::printf("\nsaved weights to %s (vocab: %s)\n", model_path.c_str(), vocab_path.c_str());
  return 0;
}
