#include "analysis/dependence.h"

#include <algorithm>

#include "analysis/interp.h"
#include "frontend/loop_extractor.h"
#include "frontend/parser.h"

namespace g2p {

// ---------------------------------------------------------------------------
// Linear forms
// ---------------------------------------------------------------------------

namespace {

LinearForm non_affine() { return LinearForm{}; }

LinearForm lf_const(long long c) {
  LinearForm out;
  out.affine = true;
  out.constant = c;
  return out;
}

LinearForm lf_add(const LinearForm& a, const LinearForm& b, long long sign) {
  if (!a.affine || !b.affine) return non_affine();
  LinearForm out = a;
  out.constant += sign * b.constant;
  for (const auto& [var, coeff] : b.coeffs) {
    out.coeffs[var] += sign * coeff;
    if (out.coeffs[var] == 0) out.coeffs.erase(var);
  }
  return out;
}

LinearForm lf_scale(const LinearForm& a, long long factor) {
  if (!a.affine) return non_affine();
  LinearForm out;
  out.affine = true;
  out.constant = a.constant * factor;
  if (factor != 0) {
    for (const auto& [var, coeff] : a.coeffs) out.coeffs[var] = coeff * factor;
  }
  return out;
}

}  // namespace

LinearForm linear_form_of(const Expr& expr) {
  switch (expr.kind()) {
    case NodeKind::kIntLiteral:
      return lf_const(static_cast<const IntLiteral&>(expr).value);
    case NodeKind::kDeclRef: {
      LinearForm out;
      out.affine = true;
      out.coeffs[std::string(static_cast<const DeclRef&>(expr).name)] = 1;
      return out;
    }
    case NodeKind::kParenExpr:
      return linear_form_of(*static_cast<const ParenExpr&>(expr).inner);
    case NodeKind::kCastExpr:
      return linear_form_of(*static_cast<const CastExpr&>(expr).operand);
    case NodeKind::kUnaryOperator: {
      const auto& u = static_cast<const UnaryOperator&>(expr);
      if (u.op == "-" && u.prefix) return lf_scale(linear_form_of(*u.operand), -1);
      if (u.op == "+" && u.prefix) return linear_form_of(*u.operand);
      return non_affine();
    }
    case NodeKind::kBinaryOperator: {
      const auto& b = static_cast<const BinaryOperator&>(expr);
      const LinearForm lhs = linear_form_of(*b.lhs);
      const LinearForm rhs = linear_form_of(*b.rhs);
      if (b.op == "+") return lf_add(lhs, rhs, +1);
      if (b.op == "-") return lf_add(lhs, rhs, -1);
      if (b.op == "*") {
        if (lhs.is_constant()) return lf_scale(rhs, lhs.constant);
        if (rhs.is_constant()) return lf_scale(lhs, rhs.constant);
        return non_affine();
      }
      return non_affine();
    }
    default:
      return non_affine();
  }
}

// ---------------------------------------------------------------------------
// Loop fact gathering
// ---------------------------------------------------------------------------

namespace {

const Stmt* body_of(const Stmt& loop) {
  switch (loop.kind()) {
    case NodeKind::kForStmt: return static_cast<const ForStmt&>(loop).body;
    case NodeKind::kWhileStmt: return static_cast<const WhileStmt&>(loop).body;
    case NodeKind::kDoStmt: return static_cast<const DoStmt&>(loop).body;
    default: return nullptr;
  }
}

/// Unwrap the name of a plain DeclRef target, "" otherwise.
std::string_view declref_name(const Expr& e) {
  if (e.kind() == NodeKind::kDeclRef) return static_cast<const DeclRef&>(e).name;
  if (e.kind() == NodeKind::kParenExpr) {
    return declref_name(*static_cast<const ParenExpr&>(e).inner);
  }
  return "";
}

/// Try to recognize a canonical header: index var, step; fills facts.
void recognize_header(const ForStmt& loop, LoopFacts& facts) {
  // init: i = e  |  int i = e
  std::string_view index;
  if (loop.init->kind() == NodeKind::kExprStmt) {
    const auto& expr = *static_cast<const ExprStmt&>(*loop.init).expr;
    if (expr.kind() == NodeKind::kAssignment) {
      const auto& a = static_cast<const Assignment&>(expr);
      if (a.op == "=") index = declref_name(*a.lhs);
    }
  } else if (loop.init->kind() == NodeKind::kDeclStmt) {
    const auto& d = static_cast<const DeclStmt&>(*loop.init);
    if (d.decls.size() == 1 && d.decls[0]->init) index = d.decls[0]->name;
  }
  if (index.empty()) return;

  // cond: i < e | i <= e | i > e | i >= e | i != e
  if (!loop.cond || loop.cond->kind() != NodeKind::kBinaryOperator) return;
  const auto& cond = static_cast<const BinaryOperator&>(*loop.cond);
  if (cond.op != "<" && cond.op != "<=" && cond.op != ">" && cond.op != ">=" &&
      cond.op != "!=") {
    return;
  }
  if (declref_name(*cond.lhs) != index && declref_name(*cond.rhs) != index) return;
  const Expr& bound =
      declref_name(*cond.lhs) == index ? *cond.rhs : *cond.lhs;

  // inc: i++ | ++i | i-- | i += c | i -= c | i = i + c
  long long step = 0;
  if (loop.inc) {
    if (loop.inc->kind() == NodeKind::kUnaryOperator) {
      const auto& u = static_cast<const UnaryOperator&>(*loop.inc);
      if (declref_name(*u.operand) == index) step = (u.op == "++") ? 1 : (u.op == "--" ? -1 : 0);
    } else if (loop.inc->kind() == NodeKind::kAssignment) {
      const auto& a = static_cast<const Assignment&>(*loop.inc);
      if (declref_name(*a.lhs) == index) {
        const LinearForm rhs = linear_form_of(*a.rhs);
        if (a.op == "+=" && rhs.is_constant()) step = rhs.constant;
        if (a.op == "-=" && rhs.is_constant()) step = -rhs.constant;
        if (a.op == "=" && rhs.affine && rhs.coeff_of(index) == 1 && rhs.coeffs.size() == 1) {
          step = rhs.constant;  // i = i + c
        }
      }
    }
  }
  if (step == 0) return;

  facts.canonical = true;
  facts.index_var = std::string(index);
  facts.step = step;
  facts.bound_affine = linear_form_of(bound).affine;
}

/// Collect the chain of subscripts of a (possibly multi-dim) access;
/// returns the base array name or "" when the base is not a plain name.
std::string subscript_chain(const Expr& e, std::vector<const Expr*>& subs) {
  if (e.kind() == NodeKind::kArraySubscript) {
    const auto& a = static_cast<const ArraySubscript&>(e);
    const std::string base = subscript_chain(*a.base, subs);
    subs.push_back(a.index);
    return base;
  }
  if (e.kind() == NodeKind::kParenExpr) {
    return subscript_chain(*static_cast<const ParenExpr&>(e).inner, subs);
  }
  if (e.kind() == NodeKind::kDeclRef) return std::string(static_cast<const DeclRef&>(e).name);
  if (e.kind() == NodeKind::kMemberExpr) {
    // objetivo[i].r — treat field access as part of the array identity.
    const auto& m = static_cast<const MemberExpr&>(e);
    std::vector<const Expr*> inner_subs;
    const std::string base = subscript_chain(*m.base, inner_subs);
    subs.insert(subs.end(), inner_subs.begin(), inner_subs.end());
    if (base.empty()) return "";
    std::string qualified = base;
    qualified += '.';
    qualified += m.member;
    return qualified;
  }
  return "";
}

class FactCollector {
 public:
  FactCollector(LoopFacts& facts, const TranslationUnit* tu) : facts_(facts), tu_(tu) {}

  void collect_body(const Node& node, int loop_depth) {
    switch (node.kind()) {
      case NodeKind::kForStmt: {
        const auto& inner = static_cast<const ForStmt&>(node);
        facts_.has_inner_loop = true;
        LoopFacts inner_probe;
        recognize_header(inner, inner_probe);
        if (inner_probe.canonical) facts_.inner_index_vars.insert(inner_probe.index_var);
        // Header expressions analyzed like body code except writes to the
        // inner index are expected.
        collect_body(*inner.init, loop_depth);
        if (inner.cond) collect_expr(*inner.cond, /*want_write=*/false);
        if (inner.inc) collect_expr(*inner.inc, false);
        collect_body(*inner.body, loop_depth + 1);
        return;
      }
      case NodeKind::kWhileStmt:
      case NodeKind::kDoStmt: {
        facts_.has_inner_loop = true;
        facts_.has_inner_while = true;
        node.for_each_child([&](const Node& child) {
          if (child.is_expr()) {
            collect_expr(static_cast<const Expr&>(child), false);
          } else {
            collect_body(child, loop_depth + 1);
          }
        });
        return;
      }
      case NodeKind::kBreakStmt:
      case NodeKind::kReturnStmt:
        if (loop_depth == 0) facts_.has_break = true;
        node.for_each_child([&](const Node& child) {
          if (child.is_expr()) collect_expr(static_cast<const Expr&>(child), false);
        });
        return;
      case NodeKind::kDeclStmt: {
        const auto& d = static_cast<const DeclStmt&>(node);
        for (const auto& decl : d.decls) {
          auto& info = facts_.written_scalars[std::string(decl->name)];
          info.declared_in_body = true;
          record_order_first_write(decl->name, /*plain_write=*/true);
          if (decl->init) collect_expr(*decl->init, false);
        }
        return;
      }
      case NodeKind::kExprStmt:
        collect_expr(*static_cast<const ExprStmt&>(node).expr, false);
        return;
      default:
        if (node.is_expr()) {
          collect_expr(static_cast<const Expr&>(node), false);
          return;
        }
        node.for_each_child([&](const Node& child) { collect_body(child, loop_depth); });
        return;
    }
  }

  void collect_expr(const Expr& expr, bool is_write_target) {
    switch (expr.kind()) {
      case NodeKind::kAssignment: {
        const auto& a = static_cast<const Assignment&>(expr);
        // Source-order semantics: the RHS (and a compound update's implicit
        // target read) happen before the write, which matters for the
        // written-before-read privatization check. The self-reference inside
        // an explicit self-update (s = s + e) is part of the update, not an
        // "outside" read, so it must not disqualify the reduction.
        const std::string_view target = declref_name(*a.lhs);
        const Expr* self_ref = target.empty() ? nullptr : find_self_update_ref(*a.rhs, target);
        collect_rhs(*a.rhs, self_ref);
        if (a.is_compound()) note_target_read(*a.lhs);
        if (self_ref != nullptr) note_target_read(*a.lhs);
        record_write(*a.lhs, a);
        return;
      }
      case NodeKind::kUnaryOperator: {
        const auto& u = static_cast<const UnaryOperator&>(expr);
        if (u.op == "++" || u.op == "--") {
          record_incdec(*u.operand, u.op);
          return;
        }
        if (u.op == "*") {
          facts_.has_pointer_deref = true;
        }
        collect_expr(*u.operand, is_write_target);
        return;
      }
      case NodeKind::kCallExpr: {
        const auto& c = static_cast<const CallExpr&>(expr);
        facts_.has_call = true;
        if (is_impure_builtin(c.callee)) {
          facts_.has_impure_call = true;
        } else if (is_pure_builtin(c.callee)) {
          facts_.has_pure_builtin_call = true;
        } else if (tu_ && tu_->find_function(c.callee)) {
          facts_.has_defined_call = true;
        } else {
          facts_.has_unknown_call = true;
        }
        for (const auto& arg : c.args) collect_expr(*arg, false);
        return;
      }
      case NodeKind::kArraySubscript: {
        record_array_ref(expr, /*is_write=*/false);
        // Also walk subscripts for scalar reads.
        std::vector<const Expr*> subs;
        subscript_chain(expr, subs);
        for (const Expr* s : subs) collect_expr(*s, false);
        return;
      }
      case NodeKind::kMemberExpr: {
        facts_.has_member_access = true;
        const auto& m = static_cast<const MemberExpr&>(expr);
        if (m.base->kind() == NodeKind::kArraySubscript) {
          record_array_ref(expr, false);
          std::vector<const Expr*> subs;
          subscript_chain(expr, subs);
          for (const Expr* s : subs) collect_expr(*s, false);
        } else {
          collect_expr(*m.base, false);
        }
        return;
      }
      case NodeKind::kDeclRef: {
        note_scalar_read(static_cast<const DeclRef&>(expr).name);
        return;
      }
      default:
        expr.for_each_child([&](const Node& child) {
          if (child.is_expr()) collect_expr(static_cast<const Expr&>(child), false);
        });
        return;
    }
  }

  void set_index(const std::string& index) { index_ = index; }

 private:
  /// If `rhs` is shaped like `target op e` / `e op target` (one top-level
  /// self mention), return the self DeclRef node; else nullptr.
  static const Expr* find_self_update_ref(const Expr& rhs, std::string_view target) {
    const Expr* e = &rhs;
    while (e->kind() == NodeKind::kParenExpr) {
      e = static_cast<const ParenExpr&>(*e).inner;
    }
    if (e->kind() != NodeKind::kBinaryOperator) return nullptr;
    const auto& b = static_cast<const BinaryOperator&>(*e);
    const bool lhs_self = declref_name(*b.lhs) == target;
    const bool rhs_self = declref_name(*b.rhs) == target;
    if (lhs_self == rhs_self) return nullptr;
    return lhs_self ? b.lhs : b.rhs;
  }

  /// Walk an assignment RHS, skipping the exempted self-update reference.
  void collect_rhs(const Expr& rhs, const Expr* exempt) {
    if (&rhs == exempt) return;
    if (rhs.kind() == NodeKind::kParenExpr) {
      collect_rhs(*static_cast<const ParenExpr&>(rhs).inner, exempt);
      return;
    }
    if (exempt != nullptr && rhs.kind() == NodeKind::kBinaryOperator) {
      const auto& b = static_cast<const BinaryOperator&>(rhs);
      if (b.lhs == exempt || b.rhs == exempt) {
        collect_rhs(b.lhs == exempt ? *b.rhs : *b.lhs, nullptr);
        return;
      }
    }
    collect_expr(rhs, false);
  }

  void record_order_first_write(std::string_view var, bool plain_write) {
    if (seen_order_.insert(std::string(var)).second && plain_write) {
      facts_.written_scalars[std::string(var)].first_access_is_plain_write = true;
    }
  }
  void record_order_first_read(std::string_view var) { seen_order_.insert(std::string(var)); }

  void note_scalar_read(std::string_view name) {
    record_order_first_read(name);
    auto it = facts_.written_scalars.find(name);
    if (it != facts_.written_scalars.end()) it->second.read_outside_updates = true;
    reads_seen_.insert(std::string(name));
  }

  /// Reads of the target inside its own compound update don't disqualify a
  /// reduction (s += e reads s by definition).
  void note_target_read(const Expr& lhs) {
    const std::string_view name = declref_name(lhs);
    if (!name.empty()) record_order_first_read(name);
  }

  void record_write(const Expr& lhs, const Assignment& assign) {
    const std::string_view name = declref_name(lhs);
    if (!name.empty()) {
      if (name == index_) facts_.index_written_in_body = true;
      auto& info = facts_.written_scalars[std::string(name)];
      ++info.update_count;
      record_order_first_write(name, assign.op == "=");
      classify_update(info, name, assign);
      return;
    }
    if (lhs.kind() == NodeKind::kArraySubscript || lhs.kind() == NodeKind::kMemberExpr) {
      record_array_ref(lhs, /*is_write=*/true);
      std::vector<const Expr*> subs;
      subscript_chain(lhs, subs);
      for (const Expr* s : subs) collect_expr(*s, false);
      if (lhs.kind() == NodeKind::kMemberExpr) facts_.has_member_access = true;
      return;
    }
    if (lhs.kind() == NodeKind::kUnaryOperator &&
        static_cast<const UnaryOperator&>(lhs).op == "*") {
      facts_.has_pointer_deref = true;
      collect_expr(*static_cast<const UnaryOperator&>(lhs).operand, false);
      return;
    }
    // Unrecognized target: conservative.
    facts_.has_nonaffine_subscript = true;
  }

  void record_incdec(const Expr& target, std::string_view op) {
    const std::string_view name = declref_name(target);
    if (!name.empty()) {
      if (name == index_) facts_.index_written_in_body = true;
      auto& info = facts_.written_scalars[std::string(name)];
      ++info.update_count;
      record_order_first_read(name);
      const std::string red_op = (op == "++") ? "+" : "-";
      if (info.reduction_op.empty()) {
        info.reduction_op = red_op;
      } else if (info.reduction_op != red_op) {
        info.non_reduction_form = true;
      }
      return;
    }
    if (target.kind() == NodeKind::kArraySubscript || target.kind() == NodeKind::kMemberExpr) {
      record_array_ref(target, /*is_write=*/true);
      record_array_ref(target, /*is_write=*/false);
      return;
    }
    facts_.has_pointer_deref = true;
  }

  /// Classify `name = rhs` / `name op= rhs` as a reduction-shaped update.
  void classify_update(ScalarUpdateInfo& info, std::string_view name,
                       const Assignment& assign) {
    std::string_view op;
    bool rhs_mentions_self_once_ok = false;
    if (assign.is_compound()) {
      op = assign.underlying_op();
      // s op= e where e must not mention s.
      rhs_mentions_self_once_ok = count_refs(*assign.rhs, name) == 0;
    } else {
      // s = s op e  or  s = e op s (top-level binary).
      const Expr* rhs = assign.rhs;
      while (rhs->kind() == NodeKind::kParenExpr) {
        rhs = static_cast<const ParenExpr&>(*rhs).inner;
      }
      if (rhs->kind() == NodeKind::kBinaryOperator) {
        const auto& b = static_cast<const BinaryOperator&>(*rhs);
        const bool lhs_is_self = declref_name(*b.lhs) == name;
        const bool rhs_is_self = declref_name(*b.rhs) == name;
        if (lhs_is_self != rhs_is_self) {
          const Expr& other = lhs_is_self ? *b.rhs : *b.lhs;
          if (count_refs(other, name) == 0) {
            op = b.op;
            rhs_mentions_self_once_ok = true;
          }
        }
      }
    }
    if (op.empty() || !rhs_mentions_self_once_ok ||
        (op != "+" && op != "*" && op != "-")) {
      info.non_reduction_form = true;
      return;
    }
    // '-' accumulates like '+' for dependence purposes.
    if (op == "-") op = "+";
    if (info.reduction_op.empty()) {
      info.reduction_op = std::string(op);
    } else if (info.reduction_op != op) {
      info.non_reduction_form = true;
    }
  }

  static int count_refs(const Expr& e, std::string_view name) {
    int n = 0;
    walk(e, [&](const Node& node) {
      if (node.kind() == NodeKind::kDeclRef &&
          static_cast<const DeclRef&>(node).name == name) {
        ++n;
      }
    });
    return n;
  }

  void record_array_ref(const Expr& e, bool is_write) {
    std::vector<const Expr*> subs;
    const std::string base = subscript_chain(e, subs);
    ArrayRefInfo info;
    info.array = base;
    info.is_write = is_write;
    if (base.empty()) {
      info.affine = false;
      facts_.has_nonaffine_subscript = true;
    }
    for (const Expr* s : subs) {
      LinearForm lf = linear_form_of(*s);
      if (!lf.affine) {
        info.affine = false;
        facts_.has_nonaffine_subscript = true;
      }
      info.subscripts.push_back(std::move(lf));
    }
    if (is_write) {
      facts_.array_writes.push_back(std::move(info));
    } else {
      facts_.array_reads.push_back(std::move(info));
    }
  }

  LoopFacts& facts_;
  const TranslationUnit* tu_;
  std::string index_;
  std::set<std::string> seen_order_;  // scalars with a recorded first access
  std::set<std::string> reads_seen_;
};

bool is_perfect_nest(const Stmt& loop) {
  const Stmt* body = body_of(loop);
  if (!body) return false;
  // Direct inner loop, or a compound whose only statement is a loop, or a
  // body with no loops at all (innermost level).
  const Stmt* single = body;
  if (body->kind() == NodeKind::kCompoundStmt) {
    const auto& block = static_cast<const CompoundStmt&>(*body);
    if (block.body.size() == 1) {
      single = block.body[0];
    } else {
      // Multiple statements: perfect only if none of them is a loop.
      for (const auto& s : block.body) {
        if (s->is_loop()) return false;
      }
      return true;
    }
  }
  if (single->is_loop()) return is_perfect_nest(*single);
  return !any_of_subtree(*single, [](const Node& n) {
    return n.is_stmt() && static_cast<const Stmt&>(n).is_loop();
  });
}

}  // namespace

LoopFacts analyze_loop(const Stmt& loop, const TranslationUnit* tu) {
  LoopFacts facts;
  facts.is_for = loop.kind() == NodeKind::kForStmt;
  if (facts.is_for) recognize_header(static_cast<const ForStmt&>(loop), facts);

  const Stmt* body = body_of(loop);
  if (body) {
    FactCollector collector(facts, tu);
    collector.set_index(facts.index_var);
    collector.collect_body(*body, 0);
  }
  facts.nest_depth = loop_nest_depth(loop);
  facts.perfect_nest = is_perfect_nest(loop);
  return facts;
}

bool array_refs_independent(const ArrayRefInfo& write, const ArrayRefInfo& other,
                            const std::string& index) {
  if (write.array != other.array) return true;  // distinct arrays never alias here
  if (!write.affine || !other.affine) return false;
  if (write.subscripts.size() != other.subscripts.size()) return false;
  for (std::size_t d = 0; d < write.subscripts.size(); ++d) {
    const LinearForm& a = write.subscripts[d];
    const LinearForm& b = other.subscripts[d];
    if (a == b && a.coeff_of(index) != 0) {
      return true;  // identical injective map of the analyzed index
    }
  }
  return false;
}

std::vector<ReductionCandidate> find_reductions(const LoopFacts& facts) {
  std::vector<ReductionCandidate> out;
  for (const auto& [var, info] : facts.written_scalars) {
    if (var == facts.index_var) continue;
    if (info.declared_in_body) continue;                     // private, not reduction
    if (facts.inner_index_vars.count(var)) continue;         // inner loop index
    if (info.non_reduction_form || info.reduction_op.empty()) continue;
    if (info.read_outside_updates) continue;                 // value consumed mid-loop
    out.push_back(ReductionCandidate{var, info.reduction_op});
  }
  return out;
}

std::vector<std::string> find_private_scalars(const LoopFacts& facts) {
  std::vector<std::string> out;
  for (const auto& [var, info] : facts.written_scalars) {
    if (var == facts.index_var) continue;
    if (info.declared_in_body || info.first_access_is_plain_write) out.push_back(var);
  }
  return out;
}

}  // namespace g2p
