#include "analysis/dependence.h"

#include <algorithm>

#include "analysis/interp.h"
#include "frontend/loop_extractor.h"
#include "frontend/parser.h"

namespace g2p {

// ---------------------------------------------------------------------------
// Linear forms
// ---------------------------------------------------------------------------

namespace {

LinearForm non_affine() { return LinearForm{}; }

LinearForm lf_const(long long c) {
  LinearForm out;
  out.affine = true;
  out.constant = c;
  return out;
}

LinearForm lf_add(const LinearForm& a, const LinearForm& b, long long sign) {
  if (!a.affine || !b.affine) return non_affine();
  LinearForm out = a;
  out.constant += sign * b.constant;
  for (const auto& [var, coeff] : b.coeffs) {
    out.coeffs[var] += sign * coeff;
    if (out.coeffs[var] == 0) out.coeffs.erase(var);
  }
  return out;
}

LinearForm lf_scale(const LinearForm& a, long long factor) {
  if (!a.affine) return non_affine();
  LinearForm out;
  out.affine = true;
  out.constant = a.constant * factor;
  if (factor != 0) {
    for (const auto& [var, coeff] : a.coeffs) out.coeffs[var] = coeff * factor;
  }
  return out;
}

}  // namespace

LinearForm linear_form_of(const Expr& expr) {
  switch (expr.kind()) {
    case NodeKind::kIntLiteral:
      return lf_const(static_cast<const IntLiteral&>(expr).value);
    case NodeKind::kDeclRef: {
      LinearForm out;
      out.affine = true;
      out.coeffs[std::string(static_cast<const DeclRef&>(expr).name)] = 1;
      return out;
    }
    case NodeKind::kParenExpr:
      return linear_form_of(*static_cast<const ParenExpr&>(expr).inner);
    case NodeKind::kCastExpr:
      return linear_form_of(*static_cast<const CastExpr&>(expr).operand);
    case NodeKind::kUnaryOperator: {
      const auto& u = static_cast<const UnaryOperator&>(expr);
      if (u.op == "-" && u.prefix) return lf_scale(linear_form_of(*u.operand), -1);
      if (u.op == "+" && u.prefix) return linear_form_of(*u.operand);
      return non_affine();
    }
    case NodeKind::kBinaryOperator: {
      const auto& b = static_cast<const BinaryOperator&>(expr);
      const LinearForm lhs = linear_form_of(*b.lhs);
      const LinearForm rhs = linear_form_of(*b.rhs);
      if (b.op == "+") return lf_add(lhs, rhs, +1);
      if (b.op == "-") return lf_add(lhs, rhs, -1);
      if (b.op == "*") {
        if (lhs.is_constant()) return lf_scale(rhs, lhs.constant);
        if (rhs.is_constant()) return lf_scale(lhs, rhs.constant);
        return non_affine();
      }
      if (b.op == "<<") {
        // e << c is a scale by 2^c (the generator and real kernels index
        // with shifts; losing them silently degraded the test to non-affine).
        if (lhs.affine && rhs.is_constant() && rhs.constant >= 0 && rhs.constant < 62) {
          return lf_scale(lhs, 1LL << rhs.constant);
        }
        return non_affine();
      }
      if (b.op == "/") {
        // Exact only when every coefficient and the constant divide evenly;
        // then C truncation never rounds and the form stays linear.
        if (lhs.affine && rhs.is_constant() && rhs.constant != 0 &&
            lhs.constant % rhs.constant == 0) {
          bool exact = true;
          for (const auto& [var, coeff] : lhs.coeffs) {
            if (coeff % rhs.constant != 0) {
              exact = false;
              break;
            }
          }
          if (exact) {
            LinearForm out;
            out.affine = true;
            out.constant = lhs.constant / rhs.constant;
            for (const auto& [var, coeff] : lhs.coeffs) {
              out.coeffs[var] = coeff / rhs.constant;
            }
            return out;
          }
        }
        return non_affine();
      }
      return non_affine();
    }
    default:
      return non_affine();
  }
}

// ---------------------------------------------------------------------------
// Loop fact gathering
// ---------------------------------------------------------------------------

namespace {

const Stmt* body_of(const Stmt& loop) {
  switch (loop.kind()) {
    case NodeKind::kForStmt: return static_cast<const ForStmt&>(loop).body;
    case NodeKind::kWhileStmt: return static_cast<const WhileStmt&>(loop).body;
    case NodeKind::kDoStmt: return static_cast<const DoStmt&>(loop).body;
    default: return nullptr;
  }
}

/// Unwrap the name of a plain DeclRef target, "" otherwise.
std::string_view declref_name(const Expr& e) {
  if (e.kind() == NodeKind::kDeclRef) return static_cast<const DeclRef&>(e).name;
  if (e.kind() == NodeKind::kParenExpr) {
    return declref_name(*static_cast<const ParenExpr&>(e).inner);
  }
  return "";
}

/// Try to recognize a canonical header: index var, step; fills facts.
void recognize_header(const ForStmt& loop, LoopFacts& facts) {
  // init: i = e  |  int i = e
  std::string_view index;
  if (loop.init->kind() == NodeKind::kExprStmt) {
    const auto& expr = *static_cast<const ExprStmt&>(*loop.init).expr;
    if (expr.kind() == NodeKind::kAssignment) {
      const auto& a = static_cast<const Assignment&>(expr);
      if (a.op == "=") index = declref_name(*a.lhs);
    }
  } else if (loop.init->kind() == NodeKind::kDeclStmt) {
    const auto& d = static_cast<const DeclStmt&>(*loop.init);
    if (d.decls.size() == 1 && d.decls[0]->init) index = d.decls[0]->name;
  }
  if (index.empty()) return;

  // cond: i < e | i <= e | i > e | i >= e | i != e
  if (!loop.cond || loop.cond->kind() != NodeKind::kBinaryOperator) return;
  const auto& cond = static_cast<const BinaryOperator&>(*loop.cond);
  if (cond.op != "<" && cond.op != "<=" && cond.op != ">" && cond.op != ">=" &&
      cond.op != "!=") {
    return;
  }
  if (declref_name(*cond.lhs) != index && declref_name(*cond.rhs) != index) return;
  const Expr& bound =
      declref_name(*cond.lhs) == index ? *cond.rhs : *cond.lhs;

  // inc: i++ | ++i | i-- | i += c | i -= c | i = i + c
  long long step = 0;
  if (loop.inc) {
    if (loop.inc->kind() == NodeKind::kUnaryOperator) {
      const auto& u = static_cast<const UnaryOperator&>(*loop.inc);
      if (declref_name(*u.operand) == index) step = (u.op == "++") ? 1 : (u.op == "--" ? -1 : 0);
    } else if (loop.inc->kind() == NodeKind::kAssignment) {
      const auto& a = static_cast<const Assignment&>(*loop.inc);
      if (declref_name(*a.lhs) == index) {
        const LinearForm rhs = linear_form_of(*a.rhs);
        if (a.op == "+=" && rhs.is_constant()) step = rhs.constant;
        if (a.op == "-=" && rhs.is_constant()) step = -rhs.constant;
        if (a.op == "=" && rhs.affine && rhs.coeff_of(index) == 1 && rhs.coeffs.size() == 1) {
          step = rhs.constant;  // i = i + c
        }
      }
    }
  }
  if (step == 0) return;

  facts.canonical = true;
  facts.index_var = std::string(index);
  facts.step = step;
  facts.bound_affine = linear_form_of(bound).affine;
}

/// Collect the chain of subscripts of a (possibly multi-dim) access;
/// returns the base array name or "" when the base is not a plain name.
std::string subscript_chain(const Expr& e, std::vector<const Expr*>& subs) {
  if (e.kind() == NodeKind::kArraySubscript) {
    const auto& a = static_cast<const ArraySubscript&>(e);
    const std::string base = subscript_chain(*a.base, subs);
    subs.push_back(a.index);
    return base;
  }
  if (e.kind() == NodeKind::kParenExpr) {
    return subscript_chain(*static_cast<const ParenExpr&>(e).inner, subs);
  }
  if (e.kind() == NodeKind::kDeclRef) return std::string(static_cast<const DeclRef&>(e).name);
  if (e.kind() == NodeKind::kMemberExpr) {
    // objetivo[i].r — treat field access as part of the array identity.
    const auto& m = static_cast<const MemberExpr&>(e);
    std::vector<const Expr*> inner_subs;
    const std::string base = subscript_chain(*m.base, inner_subs);
    subs.insert(subs.end(), inner_subs.begin(), inner_subs.end());
    if (base.empty()) return "";
    std::string qualified = base;
    qualified += '.';
    qualified += m.member;
    return qualified;
  }
  return "";
}

const Expr* strip_parens(const Expr* e) {
  while (e->kind() == NodeKind::kParenExpr) {
    e = static_cast<const ParenExpr&>(*e).inner;
  }
  return e;
}

int count_refs(const Expr& e, std::string_view name) {
  int n = 0;
  walk(e, [&](const Node& node) {
    if (node.kind() == NodeKind::kDeclRef &&
        static_cast<const DeclRef&>(node).name == name) {
      ++n;
    }
  });
  return n;
}

/// A recognized `target = <accumulation of target>` RHS: the single
/// exempted self reference plus the normalized reduction op ("+" or "*").
struct SelfUpdateMatch {
  const Expr* self = nullptr;
  std::string_view op;
};

/// Recognize an RHS shaped like an associative accumulation of `target`:
///
///   target op e1 op e2 ...   (left spine, ops all in {+,-} or all *)
///   e op target              (top level, op + or * — commutative)
///
/// Left-associated chains like `s + a[i] + b[i]` parse as `(s+a[i])+b[i]`,
/// so the self reference sits at the bottom of the left spine. `e - target`
/// deliberately does NOT match: `s = e - s` alternates the sign of s each
/// iteration — a recurrence, not a reduction.
std::optional<SelfUpdateMatch> match_self_update(const Expr& rhs_in,
                                                 std::string_view target) {
  const Expr* rhs = strip_parens(&rhs_in);
  if (rhs->kind() != NodeKind::kBinaryOperator) return std::nullopt;
  const auto& top = static_cast<const BinaryOperator&>(*rhs);
  if ((top.op == "+" || top.op == "*") && declref_name(*top.rhs) == target &&
      count_refs(*top.lhs, target) == 0) {
    return SelfUpdateMatch{top.rhs, top.op == "+" ? "+" : "*"};
  }
  const bool additive = top.op == "+" || top.op == "-";
  if (!additive && top.op != "*") return std::nullopt;
  const Expr* e = rhs;
  while (true) {
    const auto& b = static_cast<const BinaryOperator&>(*e);
    const bool op_ok = additive ? (b.op == "+" || b.op == "-") : b.op == "*";
    if (!op_ok || count_refs(*b.rhs, target) != 0) return std::nullopt;
    const Expr* lhs = strip_parens(b.lhs);
    if (lhs->kind() == NodeKind::kBinaryOperator) {
      e = lhs;
      continue;
    }
    if (declref_name(*lhs) == target) {
      return SelfUpdateMatch{lhs, additive ? "+" : "*"};
    }
    return std::nullopt;
  }
}

class FactCollector {
 public:
  FactCollector(LoopFacts& facts, const TranslationUnit* tu) : facts_(facts), tu_(tu) {}

  void collect_body(const Node& node, int loop_depth) {
    switch (node.kind()) {
      case NodeKind::kForStmt: {
        const auto& inner = static_cast<const ForStmt&>(node);
        facts_.has_inner_loop = true;
        LoopFacts inner_probe;
        recognize_header(inner, inner_probe);
        if (inner_probe.canonical) facts_.inner_index_vars.insert(inner_probe.index_var);
        // Header expressions analyzed like body code except writes to the
        // inner index are expected.
        collect_body(*inner.init, loop_depth);
        if (inner.cond) collect_expr(*inner.cond, /*want_write=*/false);
        if (inner.inc) collect_expr(*inner.inc, false);
        collect_body(*inner.body, loop_depth + 1);
        return;
      }
      case NodeKind::kWhileStmt:
      case NodeKind::kDoStmt: {
        facts_.has_inner_loop = true;
        facts_.has_inner_while = true;
        // A while body may run zero times, so writes inside it are
        // conditional for the written-before-read privatization check
        // (a do body runs at least once, but keep one conservative rule).
        ++cond_depth_;
        node.for_each_child([&](const Node& child) {
          if (child.is_expr()) {
            collect_expr(static_cast<const Expr&>(child), false);
          } else {
            collect_body(child, loop_depth + 1);
          }
        });
        --cond_depth_;
        return;
      }
      case NodeKind::kIfStmt: {
        const auto& s = static_cast<const IfStmt&>(node);
        collect_expr(*s.cond, false);
        ++cond_depth_;
        collect_body(*s.then_branch, loop_depth);
        if (s.else_branch) collect_body(*s.else_branch, loop_depth);
        --cond_depth_;
        return;
      }
      case NodeKind::kBreakStmt:
        // break exits only the innermost loop: an early exit of the
        // profiled loop only at depth 0.
        if (loop_depth == 0) facts_.has_break = true;
        return;
      case NodeKind::kReturnStmt:
        // return exits every enclosing loop level, however deeply nested.
        facts_.has_break = true;
        node.for_each_child([&](const Node& child) {
          if (child.is_expr()) collect_expr(static_cast<const Expr&>(child), false);
        });
        return;
      case NodeKind::kDeclStmt: {
        const auto& d = static_cast<const DeclStmt&>(node);
        for (const auto& decl : d.decls) {
          auto& info = facts_.written_scalars[std::string(decl->name)];
          info.declared_in_body = true;
          record_order_first_write(decl->name, /*plain_write=*/true);
          if (decl->init) collect_expr(*decl->init, false);
        }
        return;
      }
      case NodeKind::kExprStmt:
        collect_expr(*static_cast<const ExprStmt&>(node).expr, false);
        return;
      default:
        if (node.is_expr()) {
          collect_expr(static_cast<const Expr&>(node), false);
          return;
        }
        node.for_each_child([&](const Node& child) { collect_body(child, loop_depth); });
        return;
    }
  }

  void collect_expr(const Expr& expr, bool is_write_target) {
    switch (expr.kind()) {
      case NodeKind::kAssignment: {
        const auto& a = static_cast<const Assignment&>(expr);
        // Source-order semantics: the RHS (and a compound update's implicit
        // target read) happen before the write, which matters for the
        // written-before-read privatization check. The self-reference inside
        // an explicit self-update (s = s + e) is part of the update, not an
        // "outside" read, so it must not disqualify the reduction.
        const std::string_view target = declref_name(*a.lhs);
        const Expr* self_ref = nullptr;
        if (!target.empty() && !a.is_compound()) {
          if (auto m = match_self_update(*a.rhs, target)) self_ref = m->self;
        }
        collect_rhs(*a.rhs, self_ref);
        if (a.is_compound()) note_target_read(*a.lhs);
        if (self_ref != nullptr) note_target_read(*a.lhs);
        record_write(*a.lhs, a);
        return;
      }
      case NodeKind::kUnaryOperator: {
        const auto& u = static_cast<const UnaryOperator&>(expr);
        if (u.op == "++" || u.op == "--") {
          record_incdec(*u.operand, u.op);
          return;
        }
        if (u.op == "*") {
          facts_.has_pointer_deref = true;
        }
        collect_expr(*u.operand, is_write_target);
        return;
      }
      case NodeKind::kCallExpr: {
        const auto& c = static_cast<const CallExpr&>(expr);
        facts_.has_call = true;
        if (is_impure_builtin(c.callee)) {
          facts_.has_impure_call = true;
        } else if (is_pure_builtin(c.callee)) {
          facts_.has_pure_builtin_call = true;
        } else if (tu_ && tu_->find_function(c.callee)) {
          facts_.has_defined_call = true;
        } else {
          facts_.has_unknown_call = true;
        }
        for (const auto& arg : c.args) collect_expr(*arg, false);
        return;
      }
      case NodeKind::kArraySubscript: {
        record_array_ref(expr, /*is_write=*/false);
        // Also walk subscripts for scalar reads.
        std::vector<const Expr*> subs;
        subscript_chain(expr, subs);
        for (const Expr* s : subs) collect_expr(*s, false);
        return;
      }
      case NodeKind::kMemberExpr: {
        facts_.has_member_access = true;
        const auto& m = static_cast<const MemberExpr&>(expr);
        if (m.base->kind() == NodeKind::kArraySubscript) {
          record_array_ref(expr, false);
          std::vector<const Expr*> subs;
          subscript_chain(expr, subs);
          for (const Expr* s : subs) collect_expr(*s, false);
        } else {
          collect_expr(*m.base, false);
        }
        return;
      }
      case NodeKind::kDeclRef: {
        note_scalar_read(static_cast<const DeclRef&>(expr).name);
        return;
      }
      case NodeKind::kConditional: {
        const auto& c = static_cast<const Conditional&>(expr);
        collect_expr(*c.cond, false);
        ++cond_depth_;  // either arm may not execute
        collect_expr(*c.then_expr, false);
        collect_expr(*c.else_expr, false);
        --cond_depth_;
        return;
      }
      default:
        expr.for_each_child([&](const Node& child) {
          if (child.is_expr()) collect_expr(static_cast<const Expr&>(child), false);
        });
        return;
    }
  }

  void set_index(const std::string& index) { index_ = index; }

 private:
  /// Walk an assignment RHS, skipping the exempted self-update reference.
  /// The exempt node sits on the RHS's paren/binary spine (match_self_update
  /// guarantees that), so recursing through those layers finds it.
  void collect_rhs(const Expr& rhs, const Expr* exempt) {
    if (&rhs == exempt) return;
    if (exempt == nullptr) {
      collect_expr(rhs, false);
      return;
    }
    if (rhs.kind() == NodeKind::kParenExpr) {
      collect_rhs(*static_cast<const ParenExpr&>(rhs).inner, exempt);
      return;
    }
    if (rhs.kind() == NodeKind::kBinaryOperator) {
      const auto& b = static_cast<const BinaryOperator&>(rhs);
      collect_rhs(*b.lhs, exempt);
      collect_rhs(*b.rhs, exempt);
      return;
    }
    collect_expr(rhs, false);
  }

  void record_order_first_write(std::string_view var, bool plain_write) {
    // A write under if/?:/while may not execute, so it cannot anchor the
    // written-before-read privatization argument — but it still counts as
    // the first access (a later unconditional write doesn't rescue it).
    if (seen_order_.insert(std::string(var)).second && plain_write && cond_depth_ == 0) {
      facts_.written_scalars[std::string(var)].first_access_is_plain_write = true;
    }
  }
  void record_order_first_read(std::string_view var) { seen_order_.insert(std::string(var)); }

  void note_scalar_read(std::string_view name) {
    record_order_first_read(name);
    auto it = facts_.written_scalars.find(name);
    if (it != facts_.written_scalars.end()) it->second.read_outside_updates = true;
    reads_seen_.insert(std::string(name));
  }

  /// Reads of the target inside its own compound update don't disqualify a
  /// reduction (s += e reads s by definition).
  void note_target_read(const Expr& lhs) {
    const std::string_view name = declref_name(lhs);
    if (!name.empty()) record_order_first_read(name);
  }

  void record_write(const Expr& lhs, const Assignment& assign) {
    const std::string_view name = declref_name(lhs);
    if (!name.empty()) {
      if (name == index_) facts_.index_written_in_body = true;
      auto& info = facts_.written_scalars[std::string(name)];
      ++info.update_count;
      record_order_first_write(name, assign.op == "=");
      classify_update(info, name, assign);
      return;
    }
    if (lhs.kind() == NodeKind::kArraySubscript || lhs.kind() == NodeKind::kMemberExpr) {
      record_array_ref(lhs, /*is_write=*/true);
      std::vector<const Expr*> subs;
      subscript_chain(lhs, subs);
      for (const Expr* s : subs) collect_expr(*s, false);
      if (lhs.kind() == NodeKind::kMemberExpr) facts_.has_member_access = true;
      return;
    }
    if (lhs.kind() == NodeKind::kUnaryOperator &&
        static_cast<const UnaryOperator&>(lhs).op == "*") {
      facts_.has_pointer_deref = true;
      collect_expr(*static_cast<const UnaryOperator&>(lhs).operand, false);
      return;
    }
    // Unrecognized target: conservative.
    facts_.has_nonaffine_subscript = true;
  }

  void record_incdec(const Expr& target, std::string_view op) {
    const std::string_view name = declref_name(target);
    if (!name.empty()) {
      if (name == index_) facts_.index_written_in_body = true;
      auto& info = facts_.written_scalars[std::string(name)];
      ++info.update_count;
      record_order_first_read(name);
      // Both ++ and -- accumulate additively ('-' normalizes to '+' the
      // same way classify_update folds `s -= e`), so `s -= x; s--;` stays a
      // consistent '+' reduction instead of tripping a spurious op mix.
      (void)op;
      if (info.reduction_op.empty()) {
        info.reduction_op = "+";
      } else if (info.reduction_op != "+") {
        info.non_reduction_form = true;
      }
      return;
    }
    if (target.kind() == NodeKind::kArraySubscript || target.kind() == NodeKind::kMemberExpr) {
      record_array_ref(target, /*is_write=*/true);
      record_array_ref(target, /*is_write=*/false);
      return;
    }
    facts_.has_pointer_deref = true;
  }

  /// Classify `name = rhs` / `name op= rhs` as a reduction-shaped update.
  void classify_update(ScalarUpdateInfo& info, std::string_view name,
                       const Assignment& assign) {
    std::string_view op;
    bool rhs_mentions_self_once_ok = false;
    if (assign.is_compound()) {
      op = assign.underlying_op();
      // s op= e where e must not mention s.
      rhs_mentions_self_once_ok = count_refs(*assign.rhs, name) == 0;
    } else {
      // s = <accumulation of s>: left-spine chains (`s = s + a[i] + b[i]`)
      // and the commutative `s = e op s` — but not `s = e - s`, which
      // flips the sign of s each iteration (match_self_update rejects it).
      if (const auto m = match_self_update(*assign.rhs, name)) {
        op = m->op;
        rhs_mentions_self_once_ok = true;
      }
    }
    if (op.empty() || !rhs_mentions_self_once_ok ||
        (op != "+" && op != "*" && op != "-")) {
      info.non_reduction_form = true;
      return;
    }
    // '-' accumulates like '+' for dependence purposes.
    if (op == "-") op = "+";
    if (info.reduction_op.empty()) {
      info.reduction_op = std::string(op);
    } else if (info.reduction_op != op) {
      info.non_reduction_form = true;
    }
  }

  void record_array_ref(const Expr& e, bool is_write) {
    std::vector<const Expr*> subs;
    const std::string base = subscript_chain(e, subs);
    ArrayRefInfo info;
    info.array = base;
    info.is_write = is_write;
    if (base.empty()) {
      info.affine = false;
      facts_.has_nonaffine_subscript = true;
    }
    for (const Expr* s : subs) {
      LinearForm lf = linear_form_of(*s);
      if (!lf.affine) {
        info.affine = false;
        facts_.has_nonaffine_subscript = true;
      }
      info.subscripts.push_back(std::move(lf));
    }
    if (is_write) {
      facts_.array_writes.push_back(std::move(info));
    } else {
      facts_.array_reads.push_back(std::move(info));
    }
  }

  LoopFacts& facts_;
  const TranslationUnit* tu_;
  std::string index_;
  int cond_depth_ = 0;  // > 0 inside if/?:/while — writes there may not run
  std::set<std::string> seen_order_;  // scalars with a recorded first access
  std::set<std::string> reads_seen_;
};

bool is_perfect_nest(const Stmt& loop) {
  const Stmt* body = body_of(loop);
  if (!body) return false;
  // Direct inner loop, or a compound whose only statement is a loop, or a
  // body with no loops at all (innermost level).
  const Stmt* single = body;
  if (body->kind() == NodeKind::kCompoundStmt) {
    const auto& block = static_cast<const CompoundStmt&>(*body);
    if (block.body.size() == 1) {
      single = block.body[0];
    } else {
      // Multiple statements: perfect only if none of them is a loop.
      for (const auto& s : block.body) {
        if (s->is_loop()) return false;
      }
      return true;
    }
  }
  if (single->is_loop()) return is_perfect_nest(*single);
  return !any_of_subtree(*single, [](const Node& n) {
    return n.is_stmt() && static_cast<const Stmt&>(n).is_loop();
  });
}

}  // namespace

LoopFacts analyze_loop(const Stmt& loop, const TranslationUnit* tu) {
  LoopFacts facts;
  facts.is_for = loop.kind() == NodeKind::kForStmt;
  if (facts.is_for) recognize_header(static_cast<const ForStmt&>(loop), facts);

  const Stmt* body = body_of(loop);
  if (body) {
    FactCollector collector(facts, tu);
    collector.set_index(facts.index_var);
    collector.collect_body(*body, 0);
  }
  facts.nest_depth = loop_nest_depth(loop);
  facts.perfect_nest = is_perfect_nest(loop);
  return facts;
}

bool array_refs_independent(const ArrayRefInfo& write, const ArrayRefInfo& other,
                            const std::string& index) {
  if (write.array != other.array) return true;  // distinct arrays never alias here
  if (!write.affine || !other.affine) return false;
  if (write.subscripts.size() != other.subscripts.size()) return false;
  for (std::size_t d = 0; d < write.subscripts.size(); ++d) {
    const LinearForm& a = write.subscripts[d];
    const LinearForm& b = other.subscripts[d];
    if (a == b && a.coeff_of(index) != 0) {
      return true;  // identical injective map of the analyzed index
    }
  }
  return false;
}

ArrayDependence classify_array_dependence(const ArrayRefInfo& write,
                                          const ArrayRefInfo& other,
                                          const std::string& index,
                                          const std::set<std::string>& varying) {
  if (write.array != other.array) return ArrayDependence::kIndependent;
  if (!write.affine || !other.affine) return ArrayDependence::kUnknown;
  if (write.subscripts.size() != other.subscripts.size()) return ArrayDependence::kUnknown;

  // Solve coeff_d * t = delta_d per dimension for one consistent integer
  // iteration distance t. A dimension only participates when both forms use
  // identical coefficients over loop-invariant variables; any other shape
  // makes the dimension (and, absent a decisive one, the pair) unknown.
  bool have_t = false;
  long long t = 0;
  bool any_unknown_dim = false;
  for (std::size_t d = 0; d < write.subscripts.size(); ++d) {
    const LinearForm& a = write.subscripts[d];
    const LinearForm& b = other.subscripts[d];
    bool analyzable = true;
    for (const auto* form : {&a, &b}) {
      for (const auto& [var, coeff] : form->coeffs) {
        if (var != index && varying.count(var)) analyzable = false;
      }
    }
    if (analyzable) {
      for (const auto& [var, coeff] : a.coeffs) {
        if (var != index && b.coeff_of(var) != coeff) analyzable = false;
      }
      for (const auto& [var, coeff] : b.coeffs) {
        if (var != index && a.coeff_of(var) != coeff) analyzable = false;
      }
      if (a.coeff_of(index) != b.coeff_of(index)) analyzable = false;
    }
    if (!analyzable) {
      any_unknown_dim = true;
      continue;
    }
    const long long c = a.coeff_of(index);
    const long long delta = b.constant - a.constant;
    if (c == 0) {
      // Invariant coordinate: a nonzero delta keeps the cells disjoint on
      // every iteration pair; a zero delta constrains nothing.
      if (delta != 0) return ArrayDependence::kIndependent;
      continue;
    }
    if (delta % c != 0) return ArrayDependence::kIndependent;  // no integer t
    const long long dim_t = delta / c;
    if (!have_t) {
      have_t = true;
      t = dim_t;
    } else if (t != dim_t) {
      return ArrayDependence::kIndependent;  // inconsistent: never the same cell
    }
  }
  // A decisive dimension that pins the iteration distance to 0 proves
  // independence even when other dimensions are unanalyzable: a collision
  // would need both iterations to be the same one, and same-iteration
  // overlap is not a cross-iteration dependence.
  if (have_t && t == 0) return ArrayDependence::kIndependent;
  if (any_unknown_dim) return ArrayDependence::kUnknown;
  if (!have_t) {
    // No dimension distributes by the index: the write hits the same
    // invariant cell(s) on every iteration — a provable output/flow dep.
    return ArrayDependence::kDependent;
  }
  return ArrayDependence::kDependent;  // one consistent nonzero distance
}

std::vector<ReductionCandidate> find_reductions(const LoopFacts& facts) {
  std::vector<ReductionCandidate> out;
  for (const auto& [var, info] : facts.written_scalars) {
    if (var == facts.index_var) continue;
    if (info.declared_in_body) continue;                     // private, not reduction
    if (facts.inner_index_vars.count(var)) continue;         // inner loop index
    if (info.non_reduction_form || info.reduction_op.empty()) continue;
    if (info.read_outside_updates) continue;                 // value consumed mid-loop
    out.push_back(ReductionCandidate{var, info.reduction_op});
  }
  return out;
}

std::vector<std::string> find_private_scalars(const LoopFacts& facts) {
  std::vector<std::string> out;
  for (const auto& [var, info] : facts.written_scalars) {
    if (var == facts.index_var) continue;
    if (info.declared_in_body || info.first_access_is_plain_write) out.push_back(var);
  }
  return out;
}

}  // namespace g2p
