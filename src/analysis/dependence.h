// Static loop analysis shared by the PLUTO / autoPar simulacra (and used by
// the DiscoPoP simulacrum for reduction-pattern recognition).
//
// Provides: canonical-loop-header recognition, structural facts (calls,
// nesting, pointer use), affine linear forms of subscripts, an affine
// array-dependence test, scalar update classification (reduction /
// privatizable), all conservative in the way the paper's §2 describes the
// algorithm-based tools to be.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "frontend/ast.h"

namespace g2p {

class TranslationUnit;

/// Affine linear form: sum(coeffs[v] * v) + constant. `affine` is false when
/// the expression is not linear in program variables.
struct LinearForm {
  std::map<std::string, long long, std::less<>> coeffs;
  long long constant = 0;
  bool affine = false;

  bool is_constant() const { return affine && coeffs.empty(); }
  long long coeff_of(std::string_view var) const {
    auto it = coeffs.find(var);
    return it == coeffs.end() ? 0 : it->second;
  }
  friend bool operator==(const LinearForm&, const LinearForm&) = default;
};

/// Compute the linear form of an expression (handles + - unary- * by
/// constants, parens, casts; anything else is non-affine).
LinearForm linear_form_of(const Expr& expr);

/// One array reference site in a loop body.
struct ArrayRefInfo {
  std::string array;
  std::vector<LinearForm> subscripts;  // per dimension
  bool is_write = false;
  bool affine = true;  // all subscripts affine
};

/// Classification of a scalar that the loop body writes.
struct ScalarUpdateInfo {
  int update_count = 0;           // static count of assignments/inc-dec sites
  std::string reduction_op;       // consistent op across updates, "" if mixed
  bool non_reduction_form = false;  // an update not shaped like s = s op e
  bool read_outside_updates = false;  // s read in other expressions
  bool declared_in_body = false;
  /// Pre-order first access is an *unconditional* plain write `s = e`. A
  /// first write under `if`/`?:`/`while` does not count: the write may not
  /// execute, so a later read could still see the previous iteration's
  /// value (privatization would be unsound).
  bool first_access_is_plain_write = false;
};

/// Everything the static analyzers need to know about one loop.
struct LoopFacts {
  bool is_for = false;
  bool canonical = false;        // for (i = e0; i < e1; i += c) shape
  std::string index_var;
  long long step = 1;
  bool bound_affine = false;     // condition bound is affine

  bool has_call = false;
  bool has_pure_builtin_call = false;
  bool has_defined_call = false;   // callee defined in the TU
  bool has_unknown_call = false;   // neither builtin nor defined
  bool has_impure_call = false;    // printf/rand/...
  bool has_inner_loop = false;
  bool has_inner_while = false;    // while/do nested inside
  bool has_break = false;          // break/return/goto at the profiled level
  bool has_pointer_deref = false;  // unary * or pointer arithmetic base
  bool has_member_access = false;
  bool has_nonaffine_subscript = false;
  bool index_written_in_body = false;  // induction var mutated in the body
  int nest_depth = 1;
  bool perfect_nest = true;        // every loop body is a single inner loop
                                   // (plus the innermost compound of work)

  std::set<std::string> inner_index_vars;  // canonical indices of inner loops
  std::vector<ArrayRefInfo> array_reads;
  std::vector<ArrayRefInfo> array_writes;
  std::map<std::string, ScalarUpdateInfo, std::less<>> written_scalars;
};

/// Analyze a loop statement. `tu` (optional) resolves callee definitions.
LoopFacts analyze_loop(const Stmt& loop, const TranslationUnit* tu = nullptr);

/// Affine independence test w.r.t. one loop index: true when the write and
/// the other reference provably touch different cells on different
/// iterations of `index` (the classic "same affine subscript with nonzero
/// index coefficient in some dimension" criterion).
bool array_refs_independent(const ArrayRefInfo& write, const ArrayRefInfo& other,
                            const std::string& index);

/// Three-way dependence probe used by the verifier (analysis/verifier.h).
/// Unlike the boolean test above, this distinguishes a *provable*
/// cross-iteration dependence from mere failure to prove independence:
///
///   kIndependent — `array_refs_independent` holds, or the refs provably
///                  never touch the same cell (constant subscript deltas
///                  with matching coefficients).
///   kDependent   — both refs are affine over the same array with matching
///                  per-variable coefficients and the constant deltas admit
///                  one consistent nonzero integer iteration distance
///                  (e.g. write a[i] vs read a[i-1]: distance 1).
///   kUnknown     — anything else (non-affine, mismatched coefficients or
///                  ranks, a subscript involving a variable from `varying`).
///
/// `varying` names variables that change value within one iteration or
/// across iterations (inner-loop indices, scalars the body writes): a
/// subscript mentioning one compares different *instances* on each side,
/// so neither equality nor disjointness of the forms proves anything.
/// kDependent is provable modulo the usual dependence-test caveats (the
/// loop must actually span the iteration distance) — see docs/analysis.md.
enum class ArrayDependence { kIndependent, kDependent, kUnknown };
ArrayDependence classify_array_dependence(const ArrayRefInfo& write,
                                          const ArrayRefInfo& other,
                                          const std::string& index,
                                          const std::set<std::string>& varying = {});

/// A recognized reduction: variable + associative-commutative operator.
struct ReductionCandidate {
  std::string var;
  std::string op;
};

/// Scalars whose every update is `s = s op e` / `s op= e` with one
/// consistent associative op (+, *, -) and which are not otherwise read.
std::vector<ReductionCandidate> find_reductions(const LoopFacts& facts);

/// Scalars safely privatizable: declared in the body, or written (plain
/// assignment) before any read in each iteration.
std::vector<std::string> find_private_scalars(const LoopFacts& facts);

}  // namespace g2p
