#include "analysis/interp.h"

#include <cmath>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "support/hash.h"
#include "support/strings.h"

namespace g2p {

namespace {

/// Pure math builtins: (name, arity-1 or arity-2 function).
double call_builtin(std::string_view name, const std::vector<double>& args) {
  auto a0 = [&] { return args.empty() ? 0.0 : args[0]; };
  auto a1 = [&] { return args.size() < 2 ? 0.0 : args[1]; };
  if (name == "fabs" || name == "abs" || name == "labs" || name == "fabsf") return std::fabs(a0());
  if (name == "sqrt" || name == "sqrtf") return std::sqrt(std::fabs(a0()));
  if (name == "sin") return std::sin(a0());
  if (name == "cos") return std::cos(a0());
  if (name == "tan") return std::tan(a0());
  if (name == "exp" || name == "expf") return std::exp(std::min(a0(), 50.0));
  if (name == "log" || name == "logf") return std::log(std::max(std::fabs(a0()), 1e-12));
  if (name == "log2") return std::log2(std::max(std::fabs(a0()), 1e-12));
  if (name == "pow" || name == "powf") {
    return std::pow(std::fabs(a0()) + 1e-9, std::min(a1(), 8.0));
  }
  if (name == "fmax" || name == "max") return std::max(a0(), a1());
  if (name == "fmin" || name == "min") return std::min(a0(), a1());
  if (name == "floor") return std::floor(a0());
  if (name == "ceil") return std::ceil(a0());
  if (name == "round") return std::round(a0());
  if (name == "fmod") return a1() != 0.0 ? std::fmod(a0(), a1()) : 0.0;
  if (name == "atan") return std::atan(a0());
  if (name == "atan2") return std::atan2(a0(), a1());
  if (name == "sinh") return std::sinh(std::min(a0(), 30.0));
  if (name == "cosh") return std::cosh(std::min(a0(), 30.0));
  if (name == "tanh") return std::tanh(a0());
  if (name == "hypot") return std::hypot(a0(), a1());
  return 0.0;
}

constexpr std::string_view kPureBuiltins[] = {
    "fabs", "fabsf", "abs",  "labs",  "sqrt", "sqrtf", "sin",  "cos",   "tan",  "exp",
    "expf", "log",   "logf", "log2",  "pow",  "powf",  "fmax", "fmin",  "max",  "min",
    "floor", "ceil", "round", "fmod", "atan", "atan2", "sinh", "cosh",  "tanh", "hypot"};

constexpr std::string_view kImpureBuiltins[] = {
    "printf", "fprintf", "sprintf", "scanf",  "fscanf", "puts",  "putchar", "getchar",
    "rand",   "srand",   "malloc",  "calloc", "free",   "exit",  "abort",   "fopen",
    "fclose", "fread",   "fwrite",  "memcpy", "memset", "strcpy", "strlen", "time"};

}  // namespace

bool is_pure_builtin(std::string_view name) {
  for (auto b : kPureBuiltins) {
    if (b == name) return true;
  }
  return false;
}

bool is_impure_builtin(std::string_view name) {
  for (auto b : kImpureBuiltins) {
    if (b == name) return true;
  }
  return false;
}

namespace {

/// Abort interpretation (recorded as trace failure, not a user-facing error).
struct InterpAbort {
  std::string reason;
};

/// Non-local control flow signals.
struct ReturnSignal {
  double value;
};
struct BreakSignal {};
struct ContinueSignal {};

/// Backing store for one variable (scalar, array, or struct array).
struct Storage {
  std::string name;
  std::vector<long long> dims;  // empty = scalar; synthetic for materialized
  int fields = 1;               // >1 for struct element types
  std::unordered_map<std::string, int> field_index;
  bool sparse = false;                            // unknown-extent (materialized)
  std::vector<double> dense;                      // !sparse
  std::unordered_map<long long, double> cells;    // sparse

  double read_cell(long long cell) {
    if (sparse) {
      auto it = cells.find(cell);
      return it == cells.end() ? 0.0 : it->second;
    }
    return dense[static_cast<std::size_t>(cell)];
  }
  void write_cell(long long cell, double v) {
    if (sparse) {
      cells[cell] = v;
    } else {
      dense[static_cast<std::size_t>(cell)] = v;
    }
  }
  long long total_elems() const {
    long long n = 1;
    for (long long d : dims) n *= d;
    return n;
  }
};

/// A (possibly partial) reference into a storage: dim_level counts the
/// subscripts applied so far.
struct Ref {
  int storage = -1;
  long long offset = 0;
  int dim_level = 0;
  int field = -1;
};

/// Expression value: a number or a reference (array / pointer / element).
struct Value {
  double num = 0.0;
  Ref ref;  // valid when is_ref
  bool is_ref = false;

  static Value number(double v) {
    Value out;
    out.num = v;
    return out;
  }
  static Value reference(Ref r) {
    Value out;
    out.ref = r;
    out.is_ref = true;
    return out;
  }
};

constexpr std::uint64_t kIoAddr = 0;          // reserved pseudo-address for I/O
constexpr long long kSparseStride = 1 << 20;  // per-subscript stride in sparse arrays

}  // namespace

class Interpreter::Impl {
 public:
  /// RAII scope push/pop — exception-safe against control-flow signals
  /// (ReturnSignal/BreakSignal) unwinding through nested statements.
  class ScopeGuard {
   public:
    explicit ScopeGuard(Impl& impl) : impl_(impl) { impl_.scopes_.emplace_back(); }
    ~ScopeGuard() { impl_.scopes_.pop_back(); }
    ScopeGuard(const ScopeGuard&) = delete;
    ScopeGuard& operator=(const ScopeGuard&) = delete;

   private:
    Impl& impl_;
  };
  Impl(const TranslationUnit* tu, const StructMap* structs,
       InterpLimits limits)
      : tu_(tu), structs_(structs), limits_(limits) {}

  LoopTrace profile_loop(const Stmt& loop) {
    reset();
    profiled_loop_ = &loop;
    seed_loop_environment(loop, /*outermost=*/true);
    LoopTrace out;
    try {
      exec_stmt(loop);
      out.completed = true;
    } catch (const InterpAbort& abort) {
      out.failure = abort.reason;
    } catch (const ReturnSignal&) {
      out.completed = true;  // a return inside the loop body ended it early
    } catch (const BreakSignal&) {
      out.completed = true;
    } catch (const ContinueSignal&) {
      out.completed = true;
    }
    out.iterations = profile_iteration_;
    out.accesses = std::move(trace_);
    return out;
  }

  double eval_expression(const Expr& expr) {
    reset();
    return as_number(eval(expr));
  }

  std::optional<double> run_statement(const Stmt& stmt, const std::string& result_var) {
    reset();
    try {
      exec_stmt(stmt);
    } catch (const ReturnSignal&) {
    }
    // Inner scopes have been popped by now; search the storages themselves,
    // newest first, so block-local results remain observable to tests.
    for (auto it = storages_.rbegin(); it != storages_.rend(); ++it) {
      if (it->name == result_var && it->dims.empty()) return it->read_cell(0);
    }
    return std::nullopt;
  }

 private:
  void reset() {
    storages_.clear();
    scopes_.clear();
    scopes_.emplace_back();
    trace_.clear();
    steps_ = 0;
    profile_iteration_ = 0;
    tracing_depth_ = 0;
    profiled_loop_ = nullptr;
    call_depth_ = 0;
  }

  void tick() {
    if (++steps_ > limits_.max_steps) throw InterpAbort{"step limit exceeded"};
  }

  /// Give materialized loop-control variables values that yield a useful
  /// number of iterations: free upper bounds become 48 for the profiled
  /// loop (6 for inner loops), free strides become 2, free while-loop
  /// counters start at 0. This mirrors how the paper's dynamic tool profiles
  /// whole programs whose inputs exercise the loops.
  void seed_loop_environment(const Stmt& stmt, bool outermost) {
    const auto seed_scalar = [this](std::string_view name, double value) {
      if (name.empty() || lookup(name) >= 0) return;
      const int id = materialize(name, /*as_array=*/false);
      storages_[static_cast<std::size_t>(id)].write_cell(0, value);
    };
    const auto bound_var_of = [](const Expr* cond) -> std::pair<std::string, std::string> {
      // Returns {counter-ish lhs name, bound-ish rhs name} for i < bound.
      if (!cond || cond->kind() != NodeKind::kBinaryOperator) return {"", ""};
      const auto& b = static_cast<const BinaryOperator&>(*cond);
      if (b.op != "<" && b.op != "<=" && b.op != ">" && b.op != ">=") return {"", ""};
      std::string lhs_name, rhs_name;
      if (b.lhs->kind() == NodeKind::kDeclRef) {
        lhs_name = static_cast<const DeclRef&>(*b.lhs).name;
      }
      if (b.rhs->kind() == NodeKind::kDeclRef) {
        rhs_name = static_cast<const DeclRef&>(*b.rhs).name;
      }
      return {lhs_name, rhs_name};
    };

    if (stmt.kind() == NodeKind::kForStmt) {
      const auto& f = static_cast<const ForStmt&>(stmt);
      const auto [_, bound] = bound_var_of(f.cond);
      seed_scalar(bound, outermost ? 48.0 : 6.0);
      if (f.inc && f.inc->kind() == NodeKind::kAssignment) {
        const auto& a = static_cast<const Assignment&>(*f.inc);
        if (a.rhs->kind() == NodeKind::kDeclRef) {
          seed_scalar(static_cast<const DeclRef&>(*a.rhs).name, 2.0);
        }
      }
    } else if (stmt.kind() == NodeKind::kWhileStmt || stmt.kind() == NodeKind::kDoStmt) {
      const Expr* cond = stmt.kind() == NodeKind::kWhileStmt
                             ? static_cast<const WhileStmt&>(stmt).cond
                             : static_cast<const DoStmt&>(stmt).cond;
      const auto [counter, bound] = bound_var_of(cond);
      seed_scalar(counter, 0.0);
      seed_scalar(bound, outermost ? 48.0 : 6.0);
    }
    stmt.for_each_child([this](const Node& child) {
      if (child.is_stmt()) {
        seed_loop_environment(static_cast<const Stmt&>(child), false);
      }
    });
  }

  // ---- environment ---------------------------------------------------------

  int lookup(std::string_view name) {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      auto it = scope->find(name);
      if (it != scope->end()) return it->second;
    }
    return -1;
  }

  /// Deterministic default for a materialized free scalar: small positive,
  /// stable per name (so loop bounds like `n` are reproducible).
  double default_scalar_value(std::string_view name) {
    return static_cast<double>(4 + (fnv1a64(name) % 13));  // 4..16
  }

  int materialize(std::string_view name, bool as_array) {
    Storage s;
    s.name = name;
    if (as_array) {
      s.sparse = true;
      s.dims = {limits_.default_extent};  // synthetic extent
    } else {
      s.dense.assign(1, default_scalar_value(name));
    }
    storages_.push_back(std::move(s));
    const int id = static_cast<int>(storages_.size()) - 1;
    scopes_.front()[std::string(name)] = id;  // free identifiers: global scope
    return id;
  }

  int declare(std::string_view name, const std::vector<long long>& dims,
              std::string_view type_base) {
    Storage s;
    s.name = name;
    s.dims = dims;
    if (structs_ != nullptr) {
      auto it = structs_->find(type_base);
      if (it != structs_->end()) {
        s.fields = static_cast<int>(it->second.fields.size());
        if (s.fields == 0) s.fields = 1;
        int fi = 0;
        for (const auto& f : it->second.fields) s.field_index[f.name] = fi++;
      }
    }
    long long total = s.total_elems() * s.fields;
    if (total <= 0 || total > (1 << 22)) {
      s.sparse = true;  // giant or zero-sized: fall back to sparse cells
    } else {
      s.dense.assign(static_cast<std::size_t>(total), 0.0);
    }
    storages_.push_back(std::move(s));
    const int id = static_cast<int>(storages_.size()) - 1;
    scopes_.back()[std::string(name)] = id;
    return id;
  }

  // ---- tracing ---------------------------------------------------------------

  std::uint64_t address_of(const Ref& ref) {
    const Storage& s = storages_[static_cast<std::size_t>(ref.storage)];
    const long long field = ref.field >= 0 ? ref.field : 0;
    const long long cell = ref.offset * s.fields + field;
    return (static_cast<std::uint64_t>(ref.storage + 1) << 40) ^
           static_cast<std::uint64_t>(cell + 1);
  }

  void record(const Ref& ref, bool is_write) {
    if (tracing_depth_ <= 0) return;
    trace_.push_back(AccessRecord{address_of(ref), profile_iteration_, is_write,
                                  storages_[static_cast<std::size_t>(ref.storage)].name});
  }

  void record_io() {
    if (tracing_depth_ <= 0) return;
    trace_.push_back(AccessRecord{kIoAddr, profile_iteration_, true, "<io>"});
  }

  // ---- memory access -----------------------------------------------------------

  long long resolve_cell(const Ref& ref) {
    Storage& s = storages_[static_cast<std::size_t>(ref.storage)];
    if (s.sparse) return ref.offset;
    const long long total = s.total_elems();
    long long off = ref.offset;
    if (off < 0 || off >= total) {
      // Out-of-synthetic-bounds access (e.g. a[i+1] at the last profiled
      // iteration): clamp into range, mirroring a real run's padded buffers.
      off = ((off % total) + total) % total;
    }
    return off;
  }

  double read_ref(const Ref& ref) {
    Storage& s = storages_[static_cast<std::size_t>(ref.storage)];
    record(ref, /*is_write=*/false);
    const long long cell = resolve_cell(ref);
    const long long field = ref.field >= 0 ? ref.field : 0;
    return s.read_cell(cell * s.fields + field);
  }

  void write_ref(const Ref& ref, double v) {
    Storage& s = storages_[static_cast<std::size_t>(ref.storage)];
    record(ref, /*is_write=*/true);
    const long long cell = resolve_cell(ref);
    const long long field = ref.field >= 0 ? ref.field : 0;
    s.write_cell(cell * s.fields + field, v);
  }

  double as_number(const Value& v) {
    if (!v.is_ref) return v.num;
    const Storage& s = storages_[static_cast<std::size_t>(v.ref.storage)];
    if (v.ref.dim_level >= static_cast<int>(s.dims.size())) {
      return read_ref(v.ref);  // fully-subscripted element
    }
    // Array decaying to a number (pointer comparisons): use a tag value.
    return static_cast<double>(v.ref.storage + 1);
  }

  // ---- lvalue resolution ----------------------------------------------------------

  Ref resolve_lvalue(const Expr& expr) {
    tick();
    switch (expr.kind()) {
      case NodeKind::kDeclRef: {
        const auto& ref = static_cast<const DeclRef&>(expr);
        int id = lookup(ref.name);
        if (id < 0) id = materialize(ref.name, /*as_array=*/false);
        return Ref{id, 0, 0, -1};
      }
      case NodeKind::kArraySubscript: {
        const auto& sub = static_cast<const ArraySubscript&>(expr);
        Ref base = resolve_array_base(*sub.base);
        const long long idx = static_cast<long long>(as_number(eval(*sub.index)));
        Storage& s = storages_[static_cast<std::size_t>(base.storage)];
        if (s.sparse) {
          // Uniform per-level mixing: keeps (i, j, ...) tuple equality and
          // unit-distance adjacency in the innermost level, which is what
          // dependence detection relies on.
          if (static_cast<int>(s.dims.size()) <= base.dim_level) {
            s.dims.push_back(limits_.default_extent);  // grow inferred rank
          }
          return Ref{base.storage, base.offset * kSparseStride + idx, base.dim_level + 1,
                     base.field};
        }
        long long stride = 1;
        for (int d = base.dim_level + 1; d < static_cast<int>(s.dims.size()); ++d) {
          stride *= s.dims[static_cast<std::size_t>(d)];
        }
        return Ref{base.storage, base.offset + idx * stride, base.dim_level + 1, base.field};
      }
      case NodeKind::kMemberExpr: {
        const auto& mem = static_cast<const MemberExpr&>(expr);
        Ref base = mem.arrow ? resolve_array_base(*mem.base) : resolve_lvalue(*mem.base);
        Storage& s = storages_[static_cast<std::size_t>(base.storage)];
        auto it = s.field_index.find(std::string(mem.member));
        int field = 0;
        if (it != s.field_index.end()) {
          field = it->second;
        } else {
          // Unknown layout (materialized struct): assign stable synthetic slots.
          field = static_cast<int>(s.field_index.size());
          s.field_index[std::string(mem.member)] = field;
          if (field >= s.fields) s.fields = field + 1;
          if (!s.sparse) s.sparse = true;  // re-layout safely as sparse cells
        }
        return Ref{base.storage, base.offset, base.dim_level, field};
      }
      case NodeKind::kUnaryOperator: {
        const auto& un = static_cast<const UnaryOperator&>(expr);
        if (un.op == "*") {
          Ref base = resolve_array_base(*un.operand);
          return Ref{base.storage, base.offset, base.dim_level + 1, base.field};
        }
        throw InterpAbort{"unsupported lvalue unary operator " + std::string(un.op)};
      }
      case NodeKind::kParenExpr:
        return resolve_lvalue(*static_cast<const ParenExpr&>(expr).inner);
      default:
        throw InterpAbort{std::string("unsupported lvalue: ") +
                          std::string(node_kind_name(expr.kind()))};
    }
  }

  /// Resolve an expression used as an array/pointer base.
  Ref resolve_array_base(const Expr& expr) {
    if (expr.kind() == NodeKind::kDeclRef) {
      const auto& ref = static_cast<const DeclRef&>(expr);
      int id = lookup(ref.name);
      if (id < 0) id = materialize(ref.name, /*as_array=*/true);
      Storage& s = storages_[static_cast<std::size_t>(id)];
      if (s.dims.empty()) {
        // A scalar used as pointer base: promote to synthetic array.
        s.sparse = true;
        s.dims = {limits_.default_extent};
      }
      return Ref{id, 0, 0, -1};
    }
    if (expr.kind() == NodeKind::kParenExpr) {
      return resolve_array_base(*static_cast<const ParenExpr&>(expr).inner);
    }
    if (expr.kind() == NodeKind::kArraySubscript || expr.kind() == NodeKind::kMemberExpr) {
      // A partially-subscripted chain used as a base (a[i] in a[i][j]): keep
      // it a reference and, for materialized storages, promote the inferred
      // rank instead of collapsing to an element read.
      Ref ref = resolve_lvalue(expr);
      Storage& s = storages_[static_cast<std::size_t>(ref.storage)];
      if (s.sparse && static_cast<int>(s.dims.size()) <= ref.dim_level) {
        s.dims.push_back(limits_.default_extent);
      }
      return ref;
    }
    Value v = eval(expr);
    if (v.is_ref) return v.ref;
    throw InterpAbort{"expression is not an array base"};
  }

  // ---- expression evaluation --------------------------------------------------------

  Value eval(const Expr& expr) {
    tick();
    switch (expr.kind()) {
      case NodeKind::kIntLiteral:
        return Value::number(static_cast<double>(static_cast<const IntLiteral&>(expr).value));
      case NodeKind::kFloatLiteral:
        return Value::number(static_cast<const FloatLiteral&>(expr).value);
      case NodeKind::kCharLiteral:
        return Value::number(65.0);  // stand-in character code
      case NodeKind::kStringLiteral:
        return Value::number(0.0);
      case NodeKind::kDeclRef: {
        const auto& ref = static_cast<const DeclRef&>(expr);
        int id = lookup(ref.name);
        if (id < 0) id = materialize(ref.name, /*as_array=*/false);
        Storage& s = storages_[static_cast<std::size_t>(id)];
        if (s.dims.empty()) return Value::number(read_ref(Ref{id, 0, 0, -1}));
        return Value::reference(Ref{id, 0, 0, -1});  // array decays to ref
      }
      case NodeKind::kArraySubscript:
      case NodeKind::kMemberExpr: {
        Ref ref = resolve_lvalue(expr);
        const Storage& s = storages_[static_cast<std::size_t>(ref.storage)];
        if (ref.dim_level < static_cast<int>(s.dims.size())) {
          return Value::reference(ref);  // partially subscripted, still array
        }
        return Value::number(read_ref(ref));
      }
      case NodeKind::kBinaryOperator:
        return eval_binary(static_cast<const BinaryOperator&>(expr));
      case NodeKind::kUnaryOperator:
        return eval_unary(static_cast<const UnaryOperator&>(expr));
      case NodeKind::kAssignment:
        return eval_assignment(static_cast<const Assignment&>(expr));
      case NodeKind::kConditional: {
        const auto& c = static_cast<const Conditional&>(expr);
        return as_number(eval(*c.cond)) != 0.0 ? eval(*c.then_expr) : eval(*c.else_expr);
      }
      case NodeKind::kCallExpr:
        return eval_call(static_cast<const CallExpr&>(expr));
      case NodeKind::kCastExpr: {
        const auto& cast = static_cast<const CastExpr&>(expr);
        Value v = eval(*cast.operand);
        if (v.is_ref) return v;
        if (!cast.type.is_floating() && cast.type.pointer_depth == 0) {
          return Value::number(std::trunc(v.num));
        }
        return v;
      }
      case NodeKind::kParenExpr:
        return eval(*static_cast<const ParenExpr&>(expr).inner);
      case NodeKind::kSizeofExpr:
        return Value::number(8.0);
      case NodeKind::kInitListExpr:
        return Value::number(0.0);
      default:
        throw InterpAbort{std::string("unsupported expression: ") +
                          std::string(node_kind_name(expr.kind()))};
    }
  }

  Value eval_binary(const BinaryOperator& expr) {
    if (expr.op == "&&") {
      if (as_number(eval(*expr.lhs)) == 0.0) return Value::number(0.0);
      return Value::number(as_number(eval(*expr.rhs)) != 0.0 ? 1.0 : 0.0);
    }
    if (expr.op == "||") {
      if (as_number(eval(*expr.lhs)) != 0.0) return Value::number(1.0);
      return Value::number(as_number(eval(*expr.rhs)) != 0.0 ? 1.0 : 0.0);
    }
    if (expr.op == ",") {
      eval(*expr.lhs);
      return eval(*expr.rhs);
    }
    Value lv = eval(*expr.lhs);
    Value rv = eval(*expr.rhs);
    // Pointer arithmetic: ref ± integer.
    if (lv.is_ref && (expr.op == "+" || expr.op == "-")) {
      const long long delta = static_cast<long long>(as_number(rv));
      Ref moved = lv.ref;
      moved.offset += (expr.op == "+") ? delta : -delta;
      return Value::reference(moved);
    }
    const double a = as_number(lv);
    const double b = as_number(rv);
    if (expr.op == "+") return Value::number(a + b);
    if (expr.op == "-") return Value::number(a - b);
    if (expr.op == "*") return Value::number(a * b);
    if (expr.op == "/") return Value::number(b != 0.0 ? a / b : 0.0);
    if (expr.op == "%") {
      const long long bi = static_cast<long long>(b);
      return Value::number(bi != 0 ? static_cast<double>(static_cast<long long>(a) % bi) : 0.0);
    }
    if (expr.op == "<") return Value::number(a < b ? 1.0 : 0.0);
    if (expr.op == ">") return Value::number(a > b ? 1.0 : 0.0);
    if (expr.op == "<=") return Value::number(a <= b ? 1.0 : 0.0);
    if (expr.op == ">=") return Value::number(a >= b ? 1.0 : 0.0);
    if (expr.op == "==") return Value::number(a == b ? 1.0 : 0.0);
    if (expr.op == "!=") return Value::number(a != b ? 1.0 : 0.0);
    if (expr.op == "&") {
      return Value::number(
          static_cast<double>(static_cast<long long>(a) & static_cast<long long>(b)));
    }
    if (expr.op == "|") {
      return Value::number(
          static_cast<double>(static_cast<long long>(a) | static_cast<long long>(b)));
    }
    if (expr.op == "^") {
      return Value::number(
          static_cast<double>(static_cast<long long>(a) ^ static_cast<long long>(b)));
    }
    if (expr.op == "<<") {
      return Value::number(static_cast<double>(static_cast<long long>(a)
                                               << (static_cast<long long>(b) & 63)));
    }
    if (expr.op == ">>") {
      return Value::number(
          static_cast<double>(static_cast<long long>(a) >> (static_cast<long long>(b) & 63)));
    }
    throw InterpAbort{"unsupported binary operator " + std::string(expr.op)};
  }

  Value eval_unary(const UnaryOperator& expr) {
    if (expr.op == "++" || expr.op == "--") {
      Ref ref = resolve_lvalue(*expr.operand);
      const double old_value = read_ref(ref);
      const double new_value = old_value + (expr.op == "++" ? 1.0 : -1.0);
      write_ref(ref, new_value);
      return Value::number(expr.prefix ? new_value : old_value);
    }
    if (expr.op == "*") {
      Ref base = resolve_array_base(*expr.operand);
      Ref deref{base.storage, base.offset, base.dim_level + 1, base.field};
      const Storage& s = storages_[static_cast<std::size_t>(base.storage)];
      if (deref.dim_level < static_cast<int>(s.dims.size())) return Value::reference(deref);
      return Value::number(read_ref(deref));
    }
    if (expr.op == "&") {
      return Value::reference(resolve_lvalue(*expr.operand));
    }
    const double v = as_number(eval(*expr.operand));
    if (expr.op == "-") return Value::number(-v);
    if (expr.op == "+") return Value::number(v);
    if (expr.op == "!") return Value::number(v == 0.0 ? 1.0 : 0.0);
    if (expr.op == "~") {
      return Value::number(static_cast<double>(~static_cast<long long>(v)));
    }
    if (expr.op == "sizeof") return Value::number(8.0);
    throw InterpAbort{"unsupported unary operator " + std::string(expr.op)};
  }

  Value eval_assignment(const Assignment& expr) {
    Ref ref = resolve_lvalue(*expr.lhs);
    double rhs = as_number(eval(*expr.rhs));
    if (expr.is_compound()) {
      const double old_value = read_ref(ref);
      const std::string_view op = expr.underlying_op();
      if (op == "+") rhs = old_value + rhs;
      else if (op == "-") rhs = old_value - rhs;
      else if (op == "*") rhs = old_value * rhs;
      else if (op == "/") rhs = rhs != 0.0 ? old_value / rhs : 0.0;
      else if (op == "%") {
        const long long b = static_cast<long long>(rhs);
        rhs = b != 0 ? static_cast<double>(static_cast<long long>(old_value) % b) : 0.0;
      } else if (op == "&") {
        rhs = static_cast<double>(static_cast<long long>(old_value) & static_cast<long long>(rhs));
      } else if (op == "|") {
        rhs = static_cast<double>(static_cast<long long>(old_value) | static_cast<long long>(rhs));
      } else if (op == "^") {
        rhs = static_cast<double>(static_cast<long long>(old_value) ^ static_cast<long long>(rhs));
      } else if (op == "<<") {
        rhs = static_cast<double>(static_cast<long long>(old_value)
                                  << (static_cast<long long>(rhs) & 63));
      } else if (op == ">>") {
        rhs = static_cast<double>(static_cast<long long>(old_value) >>
                                  (static_cast<long long>(rhs) & 63));
      } else {
        throw InterpAbort{"unsupported compound assignment " + std::string(expr.op)};
      }
    }
    write_ref(ref, rhs);
    return Value::number(rhs);
  }

  Value eval_call(const CallExpr& expr) {
    // Evaluate arguments left to right (reads are traced).
    std::vector<Value> args;
    args.reserve(expr.args.size());
    for (const auto& a : expr.args) args.push_back(eval(*a));

    if (is_impure_builtin(expr.callee)) {
      record_io();  // serializing side effect
      return Value::number(0.0);
    }
    const FunctionDecl* fn = tu_ ? tu_->find_function(expr.callee) : nullptr;
    if (fn == nullptr) {
      if (is_pure_builtin(expr.callee)) {
        std::vector<double> nums;
        nums.reserve(args.size());
        for (const auto& a : args) nums.push_back(as_number(a));
        return Value::number(call_builtin(expr.callee, nums));
      }
      throw InterpAbort{"cannot execute unknown function '" + std::string(expr.callee) + "'"};
    }
    if (++call_depth_ > 48) {
      --call_depth_;
      throw InterpAbort{"call depth limit exceeded"};
    }

    // New scope; bind parameters (refs alias, numbers copy).
    double result = 0.0;
    {
      ScopeGuard scope(*this);
      for (std::size_t i = 0; i < fn->params.size(); ++i) {
        const auto& param = *fn->params[i];
        if (param.name.empty()) continue;
        if (i < args.size() && args[i].is_ref) {
          scopes_.back()[std::string(param.name)] = args[i].ref.storage;
        } else {
          const int id = declare(param.name, {}, param.type.base);
          storages_[static_cast<std::size_t>(id)].write_cell(
              0, i < args.size() ? as_number(args[i]) : 0.0);
        }
      }
      try {
        exec_stmt(*fn->body);
      } catch (const ReturnSignal& ret) {
        result = ret.value;
      } catch (...) {
        --call_depth_;
        throw;
      }
    }
    --call_depth_;
    return Value::number(result);
  }

  // ---- statements -------------------------------------------------------------------

  void exec_stmt(const Stmt& stmt) {
    tick();
    switch (stmt.kind()) {
      case NodeKind::kCompoundStmt: {
        ScopeGuard scope(*this);
        for (const auto& child : static_cast<const CompoundStmt&>(stmt).body) {
          exec_stmt(*child);
        }
        return;
      }
      case NodeKind::kDeclStmt: {
        for (const auto& decl : static_cast<const DeclStmt&>(stmt).decls) exec_decl(*decl);
        return;
      }
      case NodeKind::kExprStmt:
        eval(*static_cast<const ExprStmt&>(stmt).expr);
        return;
      case NodeKind::kIfStmt: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        if (as_number(eval(*s.cond)) != 0.0) {
          exec_stmt(*s.then_branch);
        } else if (s.else_branch) {
          exec_stmt(*s.else_branch);
        }
        return;
      }
      case NodeKind::kForStmt:
        exec_for(static_cast<const ForStmt&>(stmt));
        return;
      case NodeKind::kWhileStmt:
        exec_while(static_cast<const WhileStmt&>(stmt));
        return;
      case NodeKind::kDoStmt:
        exec_do(static_cast<const DoStmt&>(stmt));
        return;
      case NodeKind::kReturnStmt: {
        const auto& s = static_cast<const ReturnStmt&>(stmt);
        throw ReturnSignal{s.value ? as_number(eval(*s.value)) : 0.0};
      }
      case NodeKind::kBreakStmt:
        throw BreakSignal{};
      case NodeKind::kContinueStmt:
        throw ContinueSignal{};
      case NodeKind::kNullStmt:
        return;
      default:
        throw InterpAbort{std::string("unsupported statement: ") +
                          std::string(node_kind_name(stmt.kind()))};
    }
  }

  void exec_decl(const VarDecl& decl) {
    std::vector<long long> dims;
    for (const auto& dim : decl.array_dims) {
      dims.push_back(static_cast<long long>(as_number(eval(*dim))));
    }
    const int id = declare(decl.name, dims, decl.type.base);
    Storage& s = storages_[static_cast<std::size_t>(id)];
    if (decl.init) {
      if (decl.init->kind() == NodeKind::kInitListExpr) {
        const auto& list = static_cast<const InitListExpr&>(*decl.init);
        long long cell = 0;
        for (const auto& item : list.items) {
          if (item->kind() == NodeKind::kInitListExpr) continue;  // nested: skip detail
          s.write_cell(cell++, as_number(eval(*item)));
        }
      } else if (dims.empty()) {
        const double v = as_number(eval(*decl.init));
        write_ref(Ref{id, 0, 0, -1}, v);
      }
    }
  }

  void exec_for(const ForStmt& stmt) {
    ScopeGuard init_scope(*this);  // for-init scope
    exec_stmt(*stmt.init);
    const bool is_profiled = (&stmt == profiled_loop_);
    long long trips = 0;
    while (true) {
      if (stmt.cond && as_number(eval(*stmt.cond)) == 0.0) break;
      if (is_profiled && profile_iteration_ >= limits_.max_profile_iterations) break;
      if (!stmt.cond && !is_profiled && trips >= limits_.max_loop_trip) {
        throw InterpAbort{"unbounded for loop"};
      }
      if (++trips > limits_.max_loop_trip) {
        throw InterpAbort{"loop trip limit exceeded (possibly non-terminating)"};
      }
      bool broke = false;
      if (is_profiled) ++tracing_depth_;
      try {
        exec_stmt(*stmt.body);
      } catch (const BreakSignal&) {
        broke = true;
      } catch (const ContinueSignal&) {
      } catch (...) {
        if (is_profiled) --tracing_depth_;
        throw;
      }
      if (is_profiled) {
        --tracing_depth_;
        ++profile_iteration_;
      }
      if (broke) break;
      if (stmt.inc) eval(*stmt.inc);
    }
  }

  void exec_while(const WhileStmt& stmt) {
    const bool is_profiled = (&stmt == profiled_loop_);
    long long trips = 0;
    while (as_number(eval(*stmt.cond)) != 0.0) {
      if (is_profiled && profile_iteration_ >= limits_.max_profile_iterations) break;
      if (++trips > limits_.max_loop_trip) {
        throw InterpAbort{"loop trip limit exceeded (possibly non-terminating)"};
      }
      bool broke = false;
      if (is_profiled) ++tracing_depth_;
      try {
        exec_stmt(*stmt.body);
      } catch (const BreakSignal&) {
        broke = true;
      } catch (const ContinueSignal&) {
      } catch (...) {
        if (is_profiled) --tracing_depth_;
        throw;
      }
      if (is_profiled) {
        --tracing_depth_;
        ++profile_iteration_;
      }
      if (broke) break;
    }
  }

  void exec_do(const DoStmt& stmt) {
    const bool is_profiled = (&stmt == profiled_loop_);
    long long trips = 0;
    do {
      if (is_profiled && profile_iteration_ >= limits_.max_profile_iterations) break;
      if (++trips > limits_.max_loop_trip) {
        throw InterpAbort{"loop trip limit exceeded (possibly non-terminating)"};
      }
      bool broke = false;
      if (is_profiled) ++tracing_depth_;
      try {
        exec_stmt(*stmt.body);
      } catch (const BreakSignal&) {
        broke = true;
      } catch (const ContinueSignal&) {
      } catch (...) {
        if (is_profiled) --tracing_depth_;
        throw;
      }
      if (is_profiled) {
        --tracing_depth_;
        ++profile_iteration_;
      }
      if (broke) break;
    } while (as_number(eval(*stmt.cond)) != 0.0);
  }

  const TranslationUnit* tu_;
  const StructMap* structs_;
  InterpLimits limits_;

  std::vector<Storage> storages_;
  std::vector<std::unordered_map<std::string, int, StringHash, std::equal_to<>>> scopes_;

  std::vector<AccessRecord> trace_;
  long long steps_ = 0;
  int profile_iteration_ = 0;
  int tracing_depth_ = 0;
  const Stmt* profiled_loop_ = nullptr;
  int call_depth_ = 0;
};

Interpreter::Interpreter(const TranslationUnit* tu, const StructMap* structs,
                         InterpLimits limits)
    : impl_(std::make_unique<Impl>(tu, structs, limits)) {}

Interpreter::~Interpreter() = default;

LoopTrace Interpreter::profile_loop(const Stmt& loop) { return impl_->profile_loop(loop); }

double Interpreter::eval_expression(const Expr& expr) { return impl_->eval_expression(expr); }

std::optional<double> Interpreter::run_statement(const Stmt& stmt, const std::string& result_var) {
  return impl_->run_statement(stmt, result_var);
}

}  // namespace g2p
