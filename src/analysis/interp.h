// Tree-walking interpreter for the C subset, with memory-access tracing.
//
// This is the substrate for the DiscoPoP simulacrum: DiscoPoP instruments a
// compiled program and derives data dependences from the observed memory
// accesses; here the interpreter executes the (possibly free-standing) loop
// directly and emits the same kind of trace — (address, iteration,
// read/write) triples for every scalar and array cell touched inside the
// profiled loop body.
//
// Free identifiers are materialized with deterministic synthetic values
// (§DESIGN substitutions: the paper profiles whole programs; extracted loops
// get a synthesized environment instead). Unknown *functions* are a hard
// error: a real dynamic tool cannot execute code it cannot link.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "frontend/ast.h"
#include "frontend/parser.h"

namespace g2p {

/// One traced access to a memory cell inside the profiled loop.
struct AccessRecord {
  std::uint64_t addr = 0;
  int iteration = 0;      // iteration index of the profiled loop
  bool is_write = false;
  std::string var;        // name of the underlying variable (diagnostics)
};

/// Result of profiling a loop.
struct LoopTrace {
  bool completed = false;    // ran to completion (or iteration cap) cleanly
  std::string failure;       // reason when !completed
  int iterations = 0;        // number of profiled-loop iterations observed
  std::vector<AccessRecord> accesses;
};

/// Execution limits: keep synthetic profiling bounded.
struct InterpLimits {
  long long max_steps = 2000000;  // total statement/expression evaluations
  int max_profile_iterations = 32;  // profiled-loop iterations to record
  long long max_loop_trip = 10000;  // any single loop's executed trips
  long long default_extent = 16;    // synthesized array extent per dimension
};

/// Interpreter for a translation unit (may be empty for bare loops).
class Interpreter {
 public:
  Interpreter(const TranslationUnit* tu, const StructMap* structs,
              InterpLimits limits = {});
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Execute `loop` in a fresh synthesized environment, tracing memory
  /// accesses in its body per iteration. Never throws: failures are
  /// reported in the returned trace.
  LoopTrace profile_loop(const Stmt& loop);

  /// Evaluate a standalone expression (tests). Throws on unsupported input.
  double eval_expression(const Expr& expr);

  /// Execute a statement in a fresh environment (tests); returns the final
  /// value of `result_var` if it exists.
  std::optional<double> run_statement(const Stmt& stmt, const std::string& result_var);

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// True if `name` is a pure math builtin the interpreter (and a dynamic
/// tool's runtime) can execute: fabs, sqrt, sin, ...
bool is_pure_builtin(std::string_view name);

/// True if `name` is a known side-effecting library routine (printf, rand,
/// malloc, ...). These execute but poison parallelism.
bool is_impure_builtin(std::string_view name);

}  // namespace g2p
