#include "analysis/tools.h"

#include <set>
#include <unordered_map>

#include "analysis/interp.h"

namespace g2p {

namespace {

/// Shared: run the affine dependence test of every array write against every
/// other reference of the same array. Returns false (plus reason) on the
/// first dependence that cannot be disproven.
bool arrays_independent(const LoopFacts& facts, std::string& reason) {
  for (const auto& write : facts.array_writes) {
    for (const auto& other : facts.array_reads) {
      if (!array_refs_independent(write, other, facts.index_var)) {
        reason = "possible flow dependence on array '" + write.array + "'";
        return false;
      }
    }
    for (const auto& other : facts.array_writes) {
      if (&write == &other) continue;
      if (!array_refs_independent(write, other, facts.index_var)) {
        reason = "possible output dependence on array '" + write.array + "'";
        return false;
      }
    }
  }
  // A write that is not provably iteration-private blocks parallelism even
  // without a matching read (output dependence with itself across iterations).
  for (const auto& write : facts.array_writes) {
    if (!array_refs_independent(write, write, facts.index_var)) {
      reason = "array write '" + write.array + "' not indexed by the loop";
      return false;
    }
  }
  return true;
}

bool is_exempt_scalar(const LoopFacts& facts, const std::string& var) {
  return var == facts.index_var || facts.inner_index_vars.count(var) > 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// PLUTO-like
// ---------------------------------------------------------------------------

ToolResult PlutoLikeAnalyzer::analyze(const Stmt& loop, const TranslationUnit* tu,
                                      const StructMap*) const {
  ToolResult out;
  const LoopFacts facts = analyze_loop(loop, tu);

  // Applicability: a static control part — canonical affine for-loop, no
  // irregular control flow inside.
  if (!facts.is_for || !facts.canonical || !facts.bound_affine) {
    out.reason = "not a canonical affine for-loop";
    return out;
  }
  if (facts.has_inner_while || facts.has_break || facts.index_written_in_body) {
    out.reason = "irregular control flow in loop";
    return out;
  }
  out.applicable = true;

  // Detection: pure affine array parallelism only.
  if (facts.has_call) {
    out.reason = "function call prevents polyhedral modeling";
    return out;
  }
  if (facts.has_pointer_deref || facts.has_member_access) {
    out.reason = "pointer/struct access outside the polyhedral model";
    return out;
  }
  if (facts.has_nonaffine_subscript) {
    out.reason = "non-affine array subscript";
    return out;
  }
  for (const auto& [var, info] : facts.written_scalars) {
    if (is_exempt_scalar(facts, var)) continue;
    if (info.declared_in_body) continue;  // loop-local scalar
    out.reason = "scalar '" + var + "' carried across iterations (no reduction support)";
    return out;
  }
  std::string dep_reason;
  if (!arrays_independent(facts, dep_reason)) {
    out.reason = dep_reason;
    return out;
  }
  out.parallel = true;
  out.pattern = PragmaCategory::kPrivate;
  out.reason = "affine do-all nest";
  return out;
}

// ---------------------------------------------------------------------------
// autoPar-like
// ---------------------------------------------------------------------------

ToolResult AutoParLikeAnalyzer::analyze(const Stmt& loop, const TranslationUnit* tu,
                                        const StructMap*) const {
  ToolResult out;
  const LoopFacts facts = analyze_loop(loop, tu);

  // Applicability: canonical *unit-stride* for-loop (ROSE's loop
  // normalization handles stride-1 canonical form; strided loops fall out).
  if (!facts.is_for || !facts.canonical) {
    out.reason = "not a canonical for-loop";
    return out;
  }
  if (facts.step != 1 && facts.step != -1) {
    out.reason = "non-unit stride defeats loop normalization";
    return out;
  }
  if (facts.index_written_in_body) {
    out.reason = "induction variable modified in body";
    return out;
  }
  out.applicable = true;

  if (facts.has_call) {
    out.reason = "cannot prove side-effect freedom of call";
    return out;
  }
  if (facts.has_pointer_deref) {
    out.reason = "pointer dereference defeats alias analysis";
    return out;
  }
  if (facts.has_nonaffine_subscript) {
    out.reason = "unanalyzable array subscript";
    return out;
  }
  if (facts.has_break) {
    out.reason = "early exit from loop";
    return out;
  }
  if (facts.has_inner_while) {
    out.reason = "inner while-loop not analyzable";
    return out;
  }
  if (facts.has_inner_loop && !facts.perfect_nest) {
    out.reason = "imperfect loop nest";
    return out;
  }

  const auto reductions = find_reductions(facts);
  std::set<std::string> reduction_vars;
  for (const auto& r : reductions) reduction_vars.insert(r.var);

  for (const auto& [var, info] : facts.written_scalars) {
    if (is_exempt_scalar(facts, var)) continue;
    if (info.declared_in_body) {
      out.private_vars.push_back(var);
      continue;
    }
    if (reduction_vars.count(var)) continue;
    // Conservative: outer-declared scratch scalars are not privatized
    // (live-out analysis is beyond the tool).
    out.reason = "scalar '" + var + "' may be live across iterations";
    return out;
  }
  std::string dep_reason;
  if (!arrays_independent(facts, dep_reason)) {
    out.reason = dep_reason;
    return out;
  }
  out.parallel = true;
  out.reductions = reductions;
  out.pattern = reductions.empty() ? PragmaCategory::kPrivate : PragmaCategory::kReduction;
  out.reason = reductions.empty() ? "do-all with privatization" : "reduction recognized";
  return out;
}

// ---------------------------------------------------------------------------
// DiscoPoP-like
// ---------------------------------------------------------------------------

ToolResult DiscoPoPLikeAnalyzer::analyze(const Stmt& loop, const TranslationUnit* tu,
                                         const StructMap* structs) const {
  ToolResult out;
  Interpreter interp(tu, structs, limits_);
  const LoopTrace trace = interp.profile_loop(loop);

  if (!trace.completed) {
    out.reason = "cannot execute loop: " + trace.failure;
    return out;
  }
  if (trace.iterations < 2) {
    out.reason = "too few iterations observed to profile";
    return out;
  }
  out.applicable = true;

  const LoopFacts facts = analyze_loop(loop, tu);
  const auto reductions = find_reductions(facts);
  std::set<std::string> single_update_reductions;
  for (const auto& r : reductions) {
    auto it = facts.written_scalars.find(r.var);
    // Instruction-level pattern matching recognizes exactly one update site
    // (the paper's Listing 4, two updates of `v`, is missed this way).
    if (it != facts.written_scalars.end() && it->second.update_count == 1) {
      single_update_reductions.insert(r.var);
    }
  }

  // Scan the trace in program order deriving inter-iteration dependences.
  std::unordered_map<std::uint64_t, int> last_write_iter;
  std::unordered_map<std::uint64_t, int> last_read_iter;
  std::set<std::string> dep_vars;  // variables with blocking dependences
  bool io_dependence = false;
  for (const auto& acc : trace.accesses) {
    if (acc.addr == 0) {  // reserved I/O pseudo-address
      io_dependence = true;
      continue;
    }
    if (acc.is_write) {
      auto w = last_write_iter.find(acc.addr);
      if (w != last_write_iter.end() && w->second != acc.iteration) {
        dep_vars.insert(acc.var);  // WAW across iterations
      }
      auto r = last_read_iter.find(acc.addr);
      if (r != last_read_iter.end() && r->second != acc.iteration) {
        dep_vars.insert(acc.var);  // WAR across iterations
      }
      last_write_iter[acc.addr] = acc.iteration;
    } else {
      auto w = last_write_iter.find(acc.addr);
      if (w != last_write_iter.end() && w->second != acc.iteration) {
        dep_vars.insert(acc.var);  // RAW across iterations (true dependence)
      }
      last_read_iter[acc.addr] = acc.iteration;
    }
  }

  if (io_dependence) {
    out.reason = "I/O side effects serialize iterations";
    return out;
  }

  std::vector<ReductionCandidate> used_reductions;
  for (const auto& var : dep_vars) {
    if (var == facts.index_var) continue;
    if (single_update_reductions.count(var)) {
      for (const auto& r : reductions) {
        if (r.var == var) used_reductions.push_back(r);
      }
      continue;  // dependence explained by a recognized reduction
    }
    out.reason = "inter-iteration dependence on '" + var + "'";
    return out;
  }

  out.parallel = true;
  out.reductions = used_reductions;
  out.pattern =
      used_reductions.empty() ? PragmaCategory::kPrivate : PragmaCategory::kReduction;
  out.reason = used_reductions.empty() ? "no inter-iteration dependences observed"
                                       : "reduction pattern detected";
  return out;
}

std::vector<std::unique_ptr<ParallelismTool>> make_all_tools() {
  std::vector<std::unique_ptr<ParallelismTool>> tools;
  tools.push_back(std::make_unique<PlutoLikeAnalyzer>());
  tools.push_back(std::make_unique<AutoParLikeAnalyzer>());
  tools.push_back(std::make_unique<DiscoPoPLikeAnalyzer>());
  return tools;
}

}  // namespace g2p
