// Algorithm-based parallelism-assistant tool simulacra (§2 of the paper):
// PLUTO (polyhedral static), autoPar (ROSE conservative static), DiscoPoP
// (dynamic, trace-based). Each models its original's *applicability gate*
// (which loops it can process at all) and *detection logic* (conservative,
// zero-false-positive parallelism reporting), so the failure categories of
// Figure 2 and the subset comparisons of Tables 3-4 fall out structurally.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/dependence.h"
#include "analysis/interp.h"
#include "frontend/parser.h"
#include "frontend/pragma.h"

namespace g2p {

/// Verdict of one tool on one loop.
struct ToolResult {
  bool applicable = false;  // tool could process the loop at all
  bool parallel = false;    // tool reports the loop as parallelizable
  PragmaCategory pattern = PragmaCategory::kNone;  // do-all(private)/reduction
  std::vector<ReductionCandidate> reductions;
  std::vector<std::string> private_vars;
  std::string reason;  // why not applicable / not parallel (diagnostics)

  bool detected_parallel() const { return applicable && parallel; }
};

/// Common interface: analyze one loop in (optional) TU context.
class ParallelismTool {
 public:
  virtual ~ParallelismTool() = default;
  virtual std::string_view name() const = 0;
  virtual ToolResult analyze(const Stmt& loop, const TranslationUnit* tu,
                             const StructMap* structs) const = 0;

  ToolResult analyze(const Stmt& loop) const { return analyze(loop, nullptr, nullptr); }
};

/// PLUTO-like polyhedral static analyzer: processes canonical affine
/// for-loops; detects parallelism only in pure affine array code — no calls,
/// no scalar-carried values (no reduction support), no pointers/structs.
class PlutoLikeAnalyzer final : public ParallelismTool {
 public:
  std::string_view name() const override { return "PLUTO"; }
  ToolResult analyze(const Stmt& loop, const TranslationUnit* tu,
                     const StructMap* structs) const override;
};

/// autoPar-like (ROSE) conservative static analyzer: processes canonical
/// for-loops; privatizes body-declared scalars and recognizes reduction
/// clauses, but bails on any function call, pointer dereference, non-affine
/// subscript, imperfect loop nest, or outer-declared scratch scalar.
class AutoParLikeAnalyzer final : public ParallelismTool {
 public:
  std::string_view name() const override { return "autoPar"; }
  ToolResult analyze(const Stmt& loop, const TranslationUnit* tu,
                     const StructMap* structs) const override;
};

/// DiscoPoP-like dynamic analyzer: executes the loop via the interpreter and
/// derives inter-iteration RAW/WAR/WAW dependences from the memory trace;
/// recognizes single-statement scalar reductions. Applicability requires the
/// loop to actually execute (no unknown externals, terminating).
class DiscoPoPLikeAnalyzer final : public ParallelismTool {
 public:
  explicit DiscoPoPLikeAnalyzer(InterpLimits limits = {}) : limits_(limits) {}
  std::string_view name() const override { return "DiscoPoP"; }
  ToolResult analyze(const Stmt& loop, const TranslationUnit* tu,
                     const StructMap* structs) const override;

 private:
  InterpLimits limits_;
};

/// All three simulacra, in the paper's presentation order.
std::vector<std::unique_ptr<ParallelismTool>> make_all_tools();

}  // namespace g2p
