#include "analysis/verifier.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string_view>
#include <utility>

namespace g2p {

namespace {

/// One consistent spelling for every clause edit recorded in
/// repaired_clauses (tests and docs rely on these shapes).
std::string clause_private(const std::string& var) { return "private(" + var + ")"; }
std::string clause_reduction(const std::string& op, const std::string& var) {
  return "reduction(" + op + ":" + var + ")";
}

/// Remove `var` from every reduction clause, dropping emptied clauses.
void erase_reduction_var(std::vector<OmpPragma::Reduction>& reds, const std::string& var) {
  for (auto& red : reds) {
    red.vars.erase(std::remove(red.vars.begin(), red.vars.end(), var), red.vars.end());
  }
  reds.erase(std::remove_if(reds.begin(), reds.end(),
                            [](const OmpPragma::Reduction& r) { return r.vars.empty(); }),
             reds.end());
}

}  // namespace

bool resolve_verify(bool configured) {
  // -1: no override, 0: force off, 1: force on. Read once, like the other
  // G2P_* knobs (docs/tuning.md).
  static const int forced = [] {
    const char* e = std::getenv("G2P_VERIFY");
    if (e == nullptr) return -1;
    const std::string_view v(e);
    if (v == "1" || v == "on" || v == "true") return 1;
    if (v == "0" || v == "off" || v == "false") return 0;
    if (!v.empty()) {
      std::fprintf(stderr, "g2p: unknown G2P_VERIFY '%s' (want 1|0), ignoring\n", e);
    }
    return -1;
  }();
  if (forced == 0) return false;
  if (forced == 1) return true;
  return configured;
}

VerifierResult verify_clauses(const LoopFacts& facts, PragmaCategory category,
                              const std::vector<std::string>& private_vars,
                              const std::vector<OmpPragma::Reduction>& reductions) {
  (void)category;  // every category worksharing-distributes the loop index
  VerifierResult r;
  r.private_vars = private_vars;
  r.reductions = reductions;

  std::string veto;
  std::string unknown;
  const auto note_veto = [&](std::string msg) {
    if (veto.empty()) veto = std::move(msg);
  };
  const auto note_unknown = [&](std::string msg) {
    if (unknown.empty()) unknown = std::move(msg);
  };

  // --- Structural vetoes: shapes no worksharing directive is valid on.
  if (!facts.is_for) {
    note_veto("worksharing directive on a non-for loop");
  } else if (!facts.canonical) {
    note_veto("loop header not in OpenMP canonical form");
  } else if (facts.index_written_in_body) {
    note_veto("induction variable '" + facts.index_var + "' written in the loop body");
  } else if (facts.has_break) {
    note_veto("early exit (break/return) in the loop body");
  }

  if (veto.empty()) {
    // --- Arrays: probe every write against every other reference of the
    // same array. Variables that change inside one iteration (inner loop
    // indices, body-written scalars) make a subscript compare different
    // instances on each side, so the probe treats them as unanalyzable.
    std::set<std::string> varying = facts.inner_index_vars;
    for (const auto& [var, info] : facts.written_scalars) varying.insert(var);

    const auto probe = [&](const ArrayRefInfo& w, const ArrayRefInfo& o) {
      switch (classify_array_dependence(w, o, facts.index_var, varying)) {
        case ArrayDependence::kIndependent:
          return;
        case ArrayDependence::kDependent:
          if (&w == &o) {
            note_veto("every iteration writes the same cell(s) of '" + w.array + "'");
          } else if (o.is_write) {
            note_veto("loop-carried output dependence on '" + w.array + "'");
          } else {
            note_veto("loop-carried dependence on '" + w.array +
                      "' (a cell written on one iteration is read on another)");
          }
          return;
        case ArrayDependence::kUnknown:
          note_unknown("subscripts of '" + w.array + "' not analyzable");
          return;
      }
    };
    for (std::size_t i = 0; i < facts.array_writes.size() && veto.empty(); ++i) {
      const ArrayRefInfo& w = facts.array_writes[i];
      for (std::size_t j = i; j < facts.array_writes.size() && veto.empty(); ++j) {
        probe(w, facts.array_writes[j]);
      }
      for (const ArrayRefInfo& rd : facts.array_reads) {
        if (!veto.empty()) break;
        probe(w, rd);
      }
    }

    // --- Scalars: every scalar the body writes must be iteration-local —
    // declared inside, privatizable (unconditionally written before read),
    // or a consistent-op reduction. The suggested clause set is checked
    // against that classification and repaired where a safe clause exists.
    std::set<std::string> covered_private(r.private_vars.begin(), r.private_vars.end());
    std::map<std::string, std::string, std::less<>> suggested_red_op;
    for (const auto& red : r.reductions) {
      for (const auto& var : red.vars) suggested_red_op[var] = red.op;
    }

    // Clauses naming scalars the body never writes are themselves unsafe
    // (private(x) on a read-only x serves an uninitialized copy): drop them.
    for (auto it = covered_private.begin(); it != covered_private.end();) {
      if (facts.written_scalars.count(*it) == 0) {
        r.repaired_clauses.push_back("dropped " + clause_private(*it) + " (never written)");
        r.private_vars.erase(std::remove(r.private_vars.begin(), r.private_vars.end(), *it),
                             r.private_vars.end());
        it = covered_private.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = suggested_red_op.begin(); it != suggested_red_op.end();) {
      if (facts.written_scalars.count(it->first) == 0) {
        r.repaired_clauses.push_back("dropped " + clause_reduction(it->second, it->first) +
                                     " (never written)");
        erase_reduction_var(r.reductions, it->first);
        it = suggested_red_op.erase(it);
      } else {
        ++it;
      }
    }

    for (const auto& [var, info] : facts.written_scalars) {
      if (!veto.empty()) break;
      if (var == facts.index_var) continue;  // the worksharing construct owns it
      if (info.declared_in_body) continue;   // iteration-local by scoping
      const bool reduction_ok = !info.non_reduction_form && !info.reduction_op.empty() &&
                                !info.read_outside_updates;
      const bool privatizable = info.first_access_is_plain_write;
      const auto red_it = suggested_red_op.find(var);
      if (red_it != suggested_red_op.end()) {
        if (reduction_ok) {
          if (red_it->second != info.reduction_op) {
            r.repaired_clauses.push_back(clause_reduction(red_it->second, var) + " -> " +
                                         clause_reduction(info.reduction_op, var));
            erase_reduction_var(r.reductions, var);
            r.reductions.push_back(OmpPragma::Reduction{info.reduction_op, {var}});
          }
        } else if (privatizable) {
          r.repaired_clauses.push_back(clause_reduction(red_it->second, var) + " -> " +
                                       clause_private(var));
          erase_reduction_var(r.reductions, var);
          r.private_vars.push_back(var);
        } else {
          note_veto("scalar '" + var + "' is carried across iterations (not a valid " +
                    red_it->second + "-reduction)");
        }
      } else if (covered_private.count(var)) {
        if (privatizable) {
          // covered and safe
        } else if (reduction_ok) {
          r.repaired_clauses.push_back(clause_private(var) + " -> " +
                                       clause_reduction(info.reduction_op, var));
          r.private_vars.erase(std::remove(r.private_vars.begin(), r.private_vars.end(), var),
                               r.private_vars.end());
          r.reductions.push_back(OmpPragma::Reduction{info.reduction_op, {var}});
        } else {
          note_veto("scalar '" + var + "' may be read before written (not privatizable)");
        }
      } else {
        if (reduction_ok) {
          r.repaired_clauses.push_back("added " + clause_reduction(info.reduction_op, var));
          r.reductions.push_back(OmpPragma::Reduction{info.reduction_op, {var}});
        } else if (privatizable) {
          r.repaired_clauses.push_back("added " + clause_private(var));
          r.private_vars.push_back(var);
        } else {
          note_veto("scalar '" + var + "' carried across iterations with no safe clause");
        }
      }
    }
  }

  // --- Unanalyzable constructs degrade the verdict to unknown (never to
  // verified): the analysis cannot see through them, and a veto needs
  // proof, so the suggestion passes through flagged.
  if (facts.has_unknown_call) note_unknown("call to an unknown function");
  if (facts.has_impure_call) note_unknown("impure call (I/O, RNG) in the body");
  if (facts.has_defined_call) note_unknown("call with unanalyzed side effects");
  if (facts.has_pointer_deref) note_unknown("pointer dereference (may alias)");
  if (facts.has_nonaffine_subscript) note_unknown("non-affine subscript");

  if (!veto.empty()) {
    r.verdict = Verdict::kVetoed;
    r.veto_reason = std::move(veto);
    r.repaired_clauses.clear();
    r.private_vars.clear();
    r.reductions.clear();
  } else if (!unknown.empty()) {
    // Pass through untouched: repairs derived from an analysis that already
    // gave up elsewhere are not trustworthy enough to rewrite the pragma.
    r.verdict = Verdict::kUnknown;
    r.veto_reason = std::move(unknown);
    r.repaired_clauses.clear();
    r.private_vars = private_vars;
    r.reductions = reductions;
  } else if (!r.repaired_clauses.empty()) {
    r.verdict = Verdict::kRepaired;
  } else {
    r.verdict = Verdict::kVerified;
  }
  return r;
}

void apply_verifier_result(VerifierResult result, LoopSuggestion& s) {
  s.verdict = result.verdict;
  s.veto_reason = std::move(result.veto_reason);
  s.repaired_clauses = std::move(result.repaired_clauses);
  if (result.verdict == Verdict::kVetoed) {
    // Withdraw the pragma but keep the model's confidence: the suggestion
    // stays recognizable as model-said-parallel, analysis overruled.
    s.parallel = false;
    s.category = PragmaCategory::kNone;
    s.suggested_pragma.clear();
  } else if (result.verdict == Verdict::kRepaired) {
    s.suggested_pragma = render_pragma(s.category, result.private_vars, result.reductions);
  }
}

void verify_suggestion(const Stmt& loop, const TranslationUnit* tu, LoopSuggestion& s) {
  if (!s.parallel) {
    s.verdict = Verdict::kVerified;  // no pragma, nothing to race
    s.veto_reason.clear();
    s.repaired_clauses.clear();
    return;
  }
  const LoopFacts facts = analyze_loop(loop, tu);
  const OmpPragma parsed = parse_omp_pragma(s.suggested_pragma);
  std::vector<std::string> privates = parsed.private_vars;
  privates.insert(privates.end(), parsed.firstprivate_vars.begin(),
                  parsed.firstprivate_vars.end());
  privates.insert(privates.end(), parsed.lastprivate_vars.begin(),
                  parsed.lastprivate_vars.end());
  apply_verifier_result(verify_clauses(facts, s.category, privates, parsed.reductions), s);
}

}  // namespace g2p
