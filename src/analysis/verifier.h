// Static race verifier: the conservative dependence check that runs AFTER
// the model and before a suggestion is served (ROADMAP item: hybrid
// model-plus-analysis serving, per OMP-Engineer and the graph-transformer
// advisement line of work in PAPERS.md).
//
// The model decides *whether* a loop looks parallelizable; this pass decides
// whether the suggested pragma is *safe*. It reuses the analysis layer the
// PLUTO/autoPar/DiscoPoP simulacra are built on — use-def sets over the loop
// body (LoopFacts), the affine cross-iteration dependence probe
// (classify_array_dependence), and scalar update classification
// (ScalarUpdateInfo) — and folds the result into a four-point verdict
// lattice on each LoopSuggestion:
//
//   verified — no provable cross-iteration dependence under the suggested
//              clause set; the pragma is served as the model emitted it.
//   repaired — safe after the verifier added or corrected clauses (a
//              missing private(t), a missing or wrong-op reduction(op:s));
//              suggested_pragma is re-rendered and repaired_clauses records
//              each change.
//   vetoed   — a provable race: loop-carried flow/anti/output dependence on
//              an array (a[i] = a[i-1]), an unprivatizable scalar carried
//              across iterations, a mutated induction variable, an early
//              exit, or a non-canonical header no worksharing directive is
//              valid on. The pragma is withdrawn (parallel=false,
//              suggested_pragma="") and veto_reason says why.
//   unknown  — the body is not analyzable (calls with unseen side effects,
//              pointer aliasing, non-affine subscripts). The suggestion is
//              passed through UNCHANGED with the flag — conservatism here
//              means never claiming safety, not silently blocking the model.
//
// Conservatism contract: a veto requires a *provable* dependence — failure
// to prove independence is never enough (that degrades to unknown). The
// verdict is a pure function of the loop's AST, so it is deterministic
// across suggest / suggest_batch_results / cache replay.
//
// Knobs: Pipeline::Options::verify_suggestions (default on) wires this into
// serving; the G2P_VERIFY env var (1/0) overrides it process-wide, read
// once like every other knob (docs/tuning.md). The full story, including
// the lattice's guarantees and worked examples, lives in docs/analysis.md.
#pragma once

#include <string>
#include <vector>

#include "analysis/dependence.h"
#include "core/suggestion.h"
#include "frontend/pragma.h"

namespace g2p {

class TranslationUnit;

/// Outcome of verifying one parallel suggestion's clause set.
struct VerifierResult {
  Verdict verdict = Verdict::kVerified;
  /// Why the pragma was withdrawn (vetoed) or why analysis gave up
  /// (unknown); empty for verified/repaired.
  std::string veto_reason;
  /// Human-readable clause edits, e.g. "added private(t)",
  /// "reduction(*:s) -> reduction(+:s)". Empty unless verdict==kRepaired.
  std::vector<std::string> repaired_clauses;
  /// Final clause sets after repairs (== the input sets when no repair was
  /// needed); callers render these with render_pragma.
  std::vector<std::string> private_vars;
  std::vector<OmpPragma::Reduction> reductions;
};

/// Core check: classify every written array and scalar of `facts` against
/// the suggested clause set. This is the entry point the pipeline uses —
/// it works on the clause lists directly (no pragma re-parsing), so the
/// sequential, batched, and cached serving paths render byte-identical
/// pragmas from one code path.
VerifierResult verify_clauses(const LoopFacts& facts, PragmaCategory category,
                              const std::vector<std::string>& private_vars,
                              const std::vector<OmpPragma::Reduction>& reductions);

/// Convenience wrapper over a rendered suggestion (tests, external tools):
/// analyzes `loop`, parses s.suggested_pragma, runs verify_clauses, and
/// applies the outcome to `s` in place — pragma re-rendered on repair,
/// withdrawn on veto. Non-parallel suggestions get kVerified (there is no
/// pragma to race).
void verify_suggestion(const Stmt& loop, const TranslationUnit* tu, LoopSuggestion& s);

/// Apply a VerifierResult to a suggestion (shared by verify_suggestion and
/// the pipeline): sets verdict fields and rewrites or withdraws the pragma.
void apply_verifier_result(VerifierResult result, LoopSuggestion& s);

/// Resolved on/off state of serving-path verification: `configured` unless
/// the G2P_VERIFY env override pins it. Read once per process.
bool resolve_verify(bool configured);

}  // namespace g2p
