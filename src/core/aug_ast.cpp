#include "core/aug_ast.h"

#include <set>

#include "graph/cfg.h"

namespace g2p {

HetNodeType het_type_of(const Node& node) {
  switch (node.kind()) {
    case NodeKind::kForStmt:
    case NodeKind::kWhileStmt:
    case NodeKind::kDoStmt:
      return HetNodeType::kLoop;
    case NodeKind::kIfStmt:
    case NodeKind::kConditional:
      return HetNodeType::kBranch;
    case NodeKind::kBinaryOperator:
      return HetNodeType::kBinaryOp;
    case NodeKind::kUnaryOperator:
      return HetNodeType::kUnaryOp;
    case NodeKind::kAssignment:
      return HetNodeType::kAssign;
    case NodeKind::kCallExpr:
      return HetNodeType::kCall;
    case NodeKind::kArraySubscript:
      return HetNodeType::kArrayAccess;
    case NodeKind::kMemberExpr:
      return HetNodeType::kMemberAccess;
    case NodeKind::kDeclRef:
      return HetNodeType::kVarRef;
    case NodeKind::kIntLiteral:
    case NodeKind::kFloatLiteral:
    case NodeKind::kCharLiteral:
    case NodeKind::kStringLiteral:
      return HetNodeType::kLiteral;
    case NodeKind::kVarDecl:
    case NodeKind::kParamDecl:
    case NodeKind::kFunctionDecl:
      return HetNodeType::kDecl;
    case NodeKind::kCompoundStmt:
      return HetNodeType::kBlock;
    default:
      return HetNodeType::kStmtOther;
  }
}

std::string_view node_text_attribute(const Node& node) {
  switch (node.kind()) {
    case NodeKind::kIntLiteral: {
      // Small constants are kept verbatim (0/1/2 carry meaning for bounds
      // and strides); the rest collapse to a class token.
      const auto& lit = static_cast<const IntLiteral&>(node);
      if (lit.value == 0) return "0";
      if (lit.value == 1) return "1";
      if (lit.value == 2) return "2";
      return "<int>";
    }
    case NodeKind::kFloatLiteral: return "<float>";
    case NodeKind::kCharLiteral: return "<char>";
    case NodeKind::kStringLiteral: return "<str>";
    case NodeKind::kDeclRef: return static_cast<const DeclRef&>(node).name;
    case NodeKind::kBinaryOperator: return static_cast<const BinaryOperator&>(node).op;
    case NodeKind::kUnaryOperator: {
      // Postfix forms are only ever ++ / --.
      const auto& u = static_cast<const UnaryOperator&>(node);
      if (u.prefix) return u.op;
      return u.op == "++" ? "++post" : "--post";
    }
    case NodeKind::kAssignment: return static_cast<const Assignment&>(node).op;
    case NodeKind::kConditional: return "?:";
    case NodeKind::kCallExpr: return static_cast<const CallExpr&>(node).callee;
    case NodeKind::kArraySubscript: return "[]";
    case NodeKind::kMemberExpr: return static_cast<const MemberExpr&>(node).member;
    case NodeKind::kCastExpr: {
      thread_local std::string scratch;  // valid until the next call
      scratch = static_cast<const CastExpr&>(node).type.spelling();
      return scratch;
    }
    case NodeKind::kParenExpr: return "()";
    case NodeKind::kInitListExpr: return "{init}";
    case NodeKind::kSizeofExpr: return "sizeof";
    case NodeKind::kCompoundStmt: return "{}";
    case NodeKind::kDeclStmt: return "decl";
    case NodeKind::kExprStmt: return "expr";
    case NodeKind::kIfStmt: return "if";
    case NodeKind::kForStmt: return "for";
    case NodeKind::kWhileStmt: return "while";
    case NodeKind::kDoStmt: return "do";
    case NodeKind::kReturnStmt: return "return";
    case NodeKind::kBreakStmt: return "break";
    case NodeKind::kContinueStmt: return "continue";
    case NodeKind::kNullStmt: return ";";
    case NodeKind::kVarDecl: return static_cast<const VarDecl&>(node).name;
    case NodeKind::kParamDecl: return static_cast<const ParamDecl&>(node).name;
    case NodeKind::kFunctionDecl: return static_cast<const FunctionDecl&>(node).name;
    case NodeKind::kTranslationUnit: return "<tu>";
  }
  return "<unk>";
}

void collect_text_attributes(const Node& root, std::unordered_map<std::string, int>& counts) {
  walk(root, [&counts](const Node& n) { ++counts[std::string(node_text_attribute(n))]; });
}

namespace {

constexpr int kMaxPosition = 7;  // sibling-position attribute clamp

/// Adds the whole subtree of `root` to the graph: nodes with heterogeneous
/// attributes, AST child/parent edge pairs. Returns the root's index.
int add_subtree(const Node& root, int position, const Vocab& vocab, HetGraph& graph,
                std::unordered_map<const Node*, int>& index_of) {
  const int idx = graph.add_node(het_type_of(root), vocab.id(node_text_attribute(root)),
                                 std::min(position, kMaxPosition));
  index_of.emplace(&root, idx);
  int child_pos = 0;
  root.for_each_child([&](const Node& child) {
    const int child_idx = add_subtree(child, child_pos++, vocab, graph, index_of);
    graph.add_edge_pair(idx, child_idx, HetEdgeType::kAstChild, HetEdgeType::kAstParent);
  });
  return idx;
}

/// Collect leaves (nodes without children) in source (pre-order) order.
void collect_leaves(const Node& root, std::vector<const Node*>& leaves) {
  bool has_child = false;
  root.for_each_child([&](const Node&) { has_child = true; });
  if (!has_child) {
    leaves.push_back(&root);
    return;
  }
  root.for_each_child([&](const Node& child) { collect_leaves(child, leaves); });
}

/// All distinct callee names invoked anywhere in the subtree. Views are
/// stable: they alias the arena-owned AST spellings.
std::set<std::string_view> callee_names(const Node& root) {
  std::set<std::string_view> names;
  walk(root, [&names](const Node& n) {
    if (n.kind() == NodeKind::kCallExpr) {
      names.insert(static_cast<const CallExpr&>(n).callee);
    }
  });
  return names;
}

}  // namespace

LoopGraph AugAstBuilder::build(const Stmt& loop, const TranslationUnit* tu) const {
  LoopGraph out;

  // ---- §5.1.1: the AST as a heterogeneous graph -----------------------------
  // One cheap counting walk up front sizes the node/edge storage so the
  // build never rehashes index_of or regrows the graph vectors mid-insert.
  const std::size_t approx_nodes = subtree_size(loop);
  out.index_of.reserve(approx_nodes * 2);
  out.graph.nodes.reserve(approx_nodes);
  out.graph.edges.reserve(approx_nodes * 6);
  out.root = add_subtree(loop, 0, *vocab_, out.graph, out.index_of);
  out.num_ast_nodes = out.graph.num_nodes();

  // ---- §5.1.3: lexical (token-distance) edges over the loop's leaves --------
  if (options_.lexical_edges) {
    std::vector<const Node*> leaves;
    collect_leaves(loop, leaves);
    for (std::size_t i = 0; i + 1 < leaves.size(); ++i) {
      out.graph.add_edge_pair(out.index_of.at(leaves[i]), out.index_of.at(leaves[i + 1]),
                              HetEdgeType::kLexNext, HetEdgeType::kLexPrev);
    }
  }

  // ---- §5.1.2: merge the control flow graph ---------------------------------
  if (options_.cfg_edges) {
    const Cfg cfg = build_cfg(loop);
    for (const auto& [src, dst] : cfg.edges) {
      auto si = out.index_of.find(src);
      auto di = out.index_of.find(dst);
      if (si != out.index_of.end() && di != out.index_of.end()) {
        out.graph.add_edge_pair(si->second, di->second, HetEdgeType::kCfgNext,
                                HetEdgeType::kCfgPrev);
      }
    }
  }

  // ---- §5.1.2: call-site edges into callee bodies ---------------------------
  if (options_.call_edges && tu != nullptr) {
    // Breadth-first over the call graph reachable from the loop, each callee
    // body added once and linked from every call site of that callee.
    std::set<std::string_view> expanded;
    std::unordered_map<std::string_view, int> body_root_of;
    std::vector<std::string_view> frontier;
    for (const auto& name : callee_names(loop)) frontier.push_back(name);

    while (!frontier.empty()) {
      const std::string_view name = frontier.back();
      frontier.pop_back();
      if (expanded.count(name)) continue;
      expanded.insert(name);
      const FunctionDecl* fn = tu->find_function(name);
      if (!fn || !fn->body) continue;  // extern/builtin: nothing to merge

      const int body_root = add_subtree(*fn->body, 0, *vocab_, out.graph, out.index_of);
      body_root_of[name] = body_root;
      // Merge the callee body's own CFG so statement order inside the
      // function is visible too.
      if (options_.cfg_edges) {
        const Cfg body_cfg = build_cfg(*fn->body);
        for (const auto& [src, dst] : body_cfg.edges) {
          auto si = out.index_of.find(src);
          auto di = out.index_of.find(dst);
          if (si != out.index_of.end() && di != out.index_of.end()) {
            out.graph.add_edge_pair(si->second, di->second, HetEdgeType::kCfgNext,
                                    HetEdgeType::kCfgPrev);
          }
        }
      }
      for (const auto& inner : callee_names(*fn->body)) {
        if (!expanded.count(inner)) frontier.push_back(inner);
      }
    }

    // Link every call site (in the loop or in merged callee bodies) to the
    // callee body root with flow edges: call -> body (enter), body -> call
    // (return).
    for (const auto& [ast_node, graph_idx] : out.index_of) {
      if (ast_node->kind() != NodeKind::kCallExpr) continue;
      const auto& call = static_cast<const CallExpr&>(*ast_node);
      auto it = body_root_of.find(call.callee);
      if (it != body_root_of.end()) {
        out.graph.add_edge_pair(graph_idx, it->second, HetEdgeType::kCfgNext,
                                HetEdgeType::kCfgPrev);
      }
    }
  }

  out.num_callee_nodes = out.graph.num_nodes() - out.num_ast_nodes;
  return out;
}

}  // namespace g2p
