// The heterogeneous augmented-AST (aug-AST) representation — §5.1.
//
// Starting from the loop's AST (expressed as a heterogeneous graph, §5.1.1),
// the builder merges in:
//   * CFG edges between statements/predicates, plus call-site edges linking
//     a CallExpr to the callee's body when it is defined in the same
//     translation unit (§5.1.2 — these let the model see potential data
//     races inside calls, cf. the paper's Figure 3 node f1),
//   * lexical edges chaining consecutive leaf nodes in token order to
//     recover token-distance information (§5.1.3).
//
// Each node carries heterogeneous attributes: its AST category (node type),
// the vocabulary id of its text (operator / identifier / literal class), and
// its position among siblings (the paper's left/right order attribute).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "frontend/ast.h"
#include "graph/hetgraph.h"
#include "graph/vocab.h"

namespace g2p {

/// Edge-set toggles. Defaults build the full aug-AST; the ablation bench and
/// the vanilla-AST baseline (HGT-AST in Table 3) turn parts off.
struct AugAstOptions {
  bool cfg_edges = true;
  bool lexical_edges = true;
  bool call_edges = true;  // include callee bodies reachable from the loop
};

/// Result of building: the graph plus bookkeeping for tests/inspection.
struct LoopGraph {
  HetGraph graph;
  int root = 0;                       // graph index of the loop statement
  int num_ast_nodes = 0;              // nodes from the loop subtree itself
  int num_callee_nodes = 0;           // nodes added from callee bodies
  std::unordered_map<const Node*, int> index_of;  // AST node -> graph index
};

/// Map an AST node kind to its heterogeneous node type.
HetNodeType het_type_of(const Node& node);

/// The text attribute of a node (operator spelling, identifier, literal
/// class, ...) fed through the vocabulary. Zero-copy on the hot path: the
/// view aliases the node's spelling or a static class token; the only
/// synthesized case (cast type spellings) lives in a thread-local scratch
/// buffer that stays valid until the next call on the same thread.
std::string_view node_text_attribute(const Node& node);

class AugAstBuilder {
 public:
  AugAstBuilder(const Vocab& vocab, AugAstOptions options = {})
      : vocab_(&vocab), options_(options) {}

  /// Build the aug-AST of one loop. `tu` (optional) supplies callee
  /// definitions for call-edge expansion.
  LoopGraph build(const Stmt& loop, const TranslationUnit* tu = nullptr) const;

  const AugAstOptions& options() const { return options_; }

 private:
  const Vocab* vocab_;
  AugAstOptions options_;
};

/// Collect every node-text attribute in a subtree (vocabulary building).
void collect_text_attributes(const Node& root,
                             std::unordered_map<std::string, int>& counts);

}  // namespace g2p
