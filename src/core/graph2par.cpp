#include "core/graph2par.h"

#include <stdexcept>

namespace g2p {

std::string_view prediction_task_name(PredictionTask task) {
  switch (task) {
    case PredictionTask::kParallel: return "parallel";
    case PredictionTask::kPrivate: return "private";
    case PredictionTask::kReduction: return "reduction";
    case PredictionTask::kSimd: return "simd";
    case PredictionTask::kTarget: return "target";
  }
  return "?";
}

Graph2ParModel::Graph2ParModel(const Graph2ParConfig& config, Rng& rng)
    : config_(config),
      type_embed_(kNumHetNodeTypes, config.dim, rng),
      token_embed_(config.vocab_size, config.dim, rng),
      position_embed_(config.max_position, config.dim, rng),
      encoder_(config.dim, config.heads, config.layers, rng) {
  if (config.vocab_size <= 0) {
    throw std::invalid_argument("Graph2ParModel: vocab_size must be set");
  }
  register_child(type_embed_);
  register_child(token_embed_);
  register_child(position_embed_);
  register_child(encoder_);
  for (int t = 0; t < kNumPredictionTasks; ++t) {
    heads_.push_back(std::make_unique<Linear>(config.dim, 2, rng));
    register_child(*heads_.back());
  }
}

Tensor Graph2ParModel::node_features(const HetGraph& graph) const {
  std::vector<int> types, tokens, positions;
  types.reserve(graph.nodes.size());
  tokens.reserve(graph.nodes.size());
  positions.reserve(graph.nodes.size());
  for (const auto& node : graph.nodes) {
    types.push_back(static_cast<int>(node.type));
    tokens.push_back(node.token_id < config_.vocab_size ? node.token_id : 0);
    positions.push_back(std::min(node.position, config_.max_position - 1));
  }
  return add(add(type_embed_.forward(types), token_embed_.forward(tokens)),
             position_embed_.forward(positions));
}

Tensor Graph2ParModel::encode(const BatchedGraph& batch) const {
  const Tensor features = node_features(batch.merged);
  const Tensor states = encoder_.forward(features, batch.index);
  return segment_mean_rows(states, batch.segment_of_node, batch.num_graphs);
}

Tensor Graph2ParModel::encode(const HetGraph& graph) const {
  return encode(batch_graphs({&graph}));
}

Tensor Graph2ParModel::task_logits(const Tensor& pooled, PredictionTask task) const {
  return heads_[static_cast<std::size_t>(task)]->forward(pooled);
}

}  // namespace g2p
