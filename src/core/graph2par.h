// Graph2Par: the paper's model — heterogeneous aug-AST in, pragma
// predictions out (§5.2).
//
// Architecture: node features = type-embedding + token-embedding +
// position-embedding (the heterogeneous attributes of §5.1.1), a stack of
// HGT layers, mean pooling over each graph, and five 2-way heads:
// pragma existence (Table 2/3/4) plus private / reduction / simd / target
// (Table 5). The same class with cfg/lexical/call edges disabled at graph
// construction is the "HGT-AST" vanilla baseline of Table 3.
#pragma once

#include <memory>
#include <utility>

#include "core/aug_ast.h"
#include "graph/hetgraph.h"
#include "graph/hetgraph_index.h"
#include "nn/hgt.h"
#include "nn/layers.h"

namespace g2p {

struct Graph2ParConfig {
  int vocab_size = 0;   // required
  int dim = 32;
  int heads = 4;
  int layers = 2;
  int max_position = 8;  // sibling-position attribute clamp + 1
};

/// Task heads, indexable for uniform evaluation.
enum class PredictionTask {
  kParallel = 0,  // pragma existence
  kPrivate = 1,
  kReduction = 2,
  kSimd = 3,
  kTarget = 4,
};
inline constexpr int kNumPredictionTasks = 5;

std::string_view prediction_task_name(PredictionTask task);

class Graph2ParModel : public Module {
 public:
  Graph2ParModel(const Graph2ParConfig& config, Rng& rng);

  /// Initial node features from the heterogeneous attributes.
  Tensor node_features(const HetGraph& graph) const;

  /// Pooled graph representations [num_graphs, dim] for a batched graph.
  /// The batch's precomputed CSR index drives every HGT layer; the readout
  /// is a segment-mean keyed by `segment_of_node` (empty graphs pool to 0).
  Tensor encode(const BatchedGraph& batch) const;

  /// Single-graph convenience wrapper -> pooled [1, dim].
  Tensor encode(const HetGraph& graph) const;

  /// Logits [num_graphs, 2] for one task head.
  Tensor task_logits(const Tensor& pooled, PredictionTask task) const;

  /// Route inference (NoGradGuard) forwards through the fused HGT kernel
  /// (default) or pin the taped reference path (debugging / A-B benching).
  /// Training always uses the reference path regardless of this setting.
  void set_fused_inference(bool enabled) { encoder_.set_fused_inference(enabled); }

  /// Serving precision of the fused path (see HgtLayer::set_precision):
  /// fp32 (default) or int8 weight-quantized projections. Training and the
  /// reference path are unaffected.
  void set_precision(Precision p) { encoder_.set_precision(p); }

  /// Worker pool for the fused forward's projection GEMMs (see HgtLayer):
  /// the encoder's K/Q/V/A stages fan row panels across it, so a single
  /// batch-shaped forward scales across cores. Null pins them to one thread.
  void set_thread_pool(std::shared_ptr<ThreadPool> pool) {
    encoder_.set_thread_pool(std::move(pool));
  }

  const Graph2ParConfig& config() const { return config_; }

 private:
  Graph2ParConfig config_;
  Embedding type_embed_;
  Embedding token_embed_;
  Embedding position_embed_;
  HgtEncoder encoder_;
  std::vector<std::unique_ptr<Linear>> heads_;
};

}  // namespace g2p
