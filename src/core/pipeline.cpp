#include "core/pipeline.h"

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "dataset/generator.h"
#include "frontend/loop_extractor.h"
#include "support/failpoint.h"
#include "support/log.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace g2p {

namespace {

/// Build the per-source frontend artifact: lex, parse, extract loops, build
/// aug-ASTs. The measured wall time rides along so cache hits can report how
/// much frontend work they skipped.
std::shared_ptr<const FrontendArtifact> build_artifact(std::string_view c_source,
                                                       const Vocab& vocab,
                                                       const AugAstOptions& aug) {
  const auto start = std::chrono::steady_clock::now();
  // Failpoint: a parse-stage fault is a per-source error — it rides the
  // same exception_ptr slot a real parse error would, poisoning nothing.
  if (failpoint::triggered("frontend.parse")) {
    throw failpoint::FailpointError("frontend.parse");
  }
  // Resource governor (install a GovernorScope to arm it): the statically
  // checkable dimension first, then cooperative checks between every stage.
  // Lexer/parser/arena charge their own dimensions through the same scope.
  ResourceGovernor* gov = ResourceGovernor::current();
  if (gov != nullptr) gov->charge_source_bytes(c_source.size());
  auto out = std::make_shared<FrontendArtifact>();
  out->parsed = parse_translation_unit(c_source);
  if (gov != nullptr) gov->checkpoint();
  out->loops = extract_loops(*out->parsed.tu);
  if (gov != nullptr) gov->charge_loops(out->loops.size());
  AugAstBuilder builder(vocab, aug);
  out->graphs.reserve(out->loops.size());
  for (const auto& loop : out->loops) {
    out->graphs.push_back(builder.build(*loop.loop, out->parsed.tu));
    if (gov != nullptr) {
      gov->charge_nodes(out->graphs.back().graph.nodes.size());
      gov->checkpoint();
    }
  }
  out->frontend_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return out;
}

/// Turn model outputs for one loop into a rendered suggestion. Every
/// serving entry point (sequential, batched, cached replay) funnels through
/// here, so verification behaves bitwise-identically across them.
LoopSuggestion make_suggestion(const ExtractedLoop& loop, const TranslationUnit* tu,
                               double confidence, const std::array<int, 4>& clause_pred,
                               bool verify) {
  // The wall-clock dimension reaches into the verifier stage: one
  // cooperative check per rendered loop (also the `governor.check`
  // failpoint site).
  if (ResourceGovernor* gov = ResourceGovernor::current()) gov->checkpoint();
  LoopSuggestion suggestion;
  suggestion.loop_source = loop.source;
  suggestion.line = loop.loop->line;
  if (loop.function) suggestion.function_name = std::string(loop.function->name);
  suggestion.confidence = confidence;
  suggestion.parallel = suggestion.confidence >= 0.5;
  if (suggestion.parallel) {
    // Clause priority mirrors the dataset bucketing: target > simd >
    // reduction > private (do-all).
    if (clause_pred[3] == 1) {
      suggestion.category = PragmaCategory::kTarget;
    } else if (clause_pred[2] == 1) {
      suggestion.category = PragmaCategory::kSimd;
    } else if (clause_pred[1] == 1) {
      suggestion.category = PragmaCategory::kReduction;
    } else {
      suggestion.category = PragmaCategory::kPrivate;
    }
    // Fill clause payloads from the static analysis (the model decides the
    // pattern; the analyzer names the variables).
    const LoopFacts facts = analyze_loop(*loop.loop, tu);
    std::vector<OmpPragma::Reduction> reductions;
    if (suggestion.category == PragmaCategory::kReduction) {
      for (const auto& red : find_reductions(facts)) {
        reductions.push_back(OmpPragma::Reduction{red.op, {red.var}});
      }
    }
    std::vector<std::string> privates;
    for (const auto& var : find_private_scalars(facts)) {
      const auto& info = facts.written_scalars.at(var);
      if (!info.declared_in_body) privates.push_back(var);
    }
    suggestion.suggested_pragma = render_pragma(suggestion.category, privates, reductions);
    if (verify) {
      // The verifier reuses the facts computed above, so its cost is the
      // clause classification itself — no second analysis pass.
      apply_verifier_result(
          verify_clauses(facts, suggestion.category, privates, reductions), suggestion);
    }
  } else if (verify) {
    suggestion.verdict = Verdict::kVerified;  // no pragma, nothing to race
  }
  return suggestion;
}

/// Full-result cache keys are salted with the resolved verifier config:
/// verified/vetoed renders and raw model renders must never alias when
/// G2P_VERIFY or set_verify_suggestions toggles between calls. The frontend
/// tier stays on the raw content hash — artifacts are config-independent.
Hash128 result_cache_key(Hash128 key, bool verify) {
  if (verify) {
    key.lo ^= 0x9e3779b97f4a7c15ull;
    key.hi ^= 0xc2b2ae3d27d4eb4full;
  }
  return key;
}

}  // namespace

Pipeline::Pipeline(Options options, Vocab vocab)
    : options_(std::move(options)),
      vocab_(std::move(vocab)),
      budget_(resolve_budget(options_.budget)) {
  options_.model.vocab_size = vocab_.size();
  Rng rng(options_.train.seed);
  model_ = std::make_unique<Graph2ParModel>(options_.model, rng);
  // Serving (`suggest*` under NoGradGuard) routes every HGT layer through
  // the fused inference kernel; training is unaffected by this switch.
  model_->set_fused_inference(options_.fused_inference);
  // Configured serving precision; the env override is resolved inside the
  // layers at forward time, so the member just carries the option through.
  model_->set_precision(options_.precision);
  cache_ = std::make_unique<SuggestCache>(options_.cache_bytes);
  if (options_.pool_threads > 0) pool_ = std::make_shared<ThreadPool>(options_.pool_threads);
  // The encoder's projection GEMMs fan row panels across the serving pool
  // (single big forwards scale across cores; nested calls from pool workers
  // run inline, so per-chunk encodes are unaffected).
  model_->set_thread_pool(shared_pool());
}

Pipeline::Pipeline(Pipeline&& other) noexcept
    : options_(std::move(other.options_)),
      vocab_(std::move(other.vocab_)),
      budget_(other.budget_),
      model_(std::move(other.model_)),
      pool_(std::move(other.pool_)),
      cache_(std::move(other.cache_)),
      model_stamp_(other.model_stamp_.load(std::memory_order_relaxed)),
      replica_id_(other.replica_id_) {}

Pipeline& Pipeline::operator=(Pipeline&& other) noexcept {
  if (this != &other) {
    options_ = std::move(other.options_);
    vocab_ = std::move(other.vocab_);
    budget_ = other.budget_;
    model_ = std::move(other.model_);
    pool_ = std::move(other.pool_);
    cache_ = std::move(other.cache_);
    model_stamp_.store(other.model_stamp_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    replica_id_ = other.replica_id_;
  }
  return *this;
}

ThreadPool& Pipeline::pool() const {
  if (pool_) return *pool_;
  // Shared default for the bare API, built on first use. Intentionally
  // leaked: a static pool's destructor would join workers during static
  // teardown, racing other globals those threads may still touch.
  static ThreadPool* const shared = new ThreadPool();
  return *shared;
}

std::shared_ptr<ThreadPool> Pipeline::shared_pool() const {
  if (pool_) return pool_;
  return std::shared_ptr<ThreadPool>(&pool(), [](ThreadPool*) {});
}

void Pipeline::set_thread_pool(std::shared_ptr<ThreadPool> pool) {
  if (!pool && options_.pool_threads > 0) {
    pool = std::make_shared<ThreadPool>(options_.pool_threads);
  }
  pool_ = std::move(pool);
  model_->set_thread_pool(shared_pool());
}

Pipeline Pipeline::train(const Options& options) {
  const Corpus corpus = CorpusGenerator(options.corpus).generate();
  const auto split = corpus.split();
  Vocab vocab = build_corpus_vocab(corpus, split.train);
  Pipeline pipeline(options, std::move(vocab));

  const auto train_examples =
      prepare_examples(corpus, split.train, pipeline.vocab_, options.aug);
  G2P_LOG_INFO << "Pipeline::train: " << train_examples.size() << " training loops, vocab "
               << pipeline.vocab_.size();
  train_graph_model(*pipeline.model_, train_examples, options.train);
  return pipeline;
}

std::vector<LoopSuggestion> Pipeline::suggest(std::string_view c_source) const {
  const NoGradGuard no_grad;  // serving: skip tape construction
  // One governor for the whole sequential request: frontend charges and
  // verifier checkpoints accumulate against the same budget.
  ResourceGovernor governor(budget_);
  const GovernorScope governor_scope(&governor);
  const std::uint64_t stamp = model_stamp_.load(std::memory_order_acquire);
  const bool verify = verify_active();
  const bool cached = cache_->enabled();
  Hash128 key{};
  Hash128 rkey{};
  std::shared_ptr<const FrontendArtifact> artifact;
  if (cached) {
    key = hash_source(c_source);
    rkey = result_cache_key(key, verify);
    if (auto hit = cache_->get_result(rkey, stamp)) return *hit;  // skip everything
    artifact = cache_->get_frontend(key);
  }
  if (!artifact) {
    artifact = build_artifact(c_source, vocab_, options_.aug);
    cache_->put_frontend(key, artifact);
  }
  std::vector<LoopSuggestion> out;
  if (artifact->loops.empty()) {
    if (cached) {
      cache_->put_result(rkey, stamp, std::make_shared<std::vector<LoopSuggestion>>(),
                         artifact->frontend_ns);
    }
    return out;
  }

  // Model inference isn't governed work — pause the wall clock so the
  // frontend budget means the same thing here as on the batched path.
  governor.clock_pause();
  std::vector<const HetGraph*> graph_ptrs;
  graph_ptrs.reserve(artifact->graphs.size());
  for (const auto& g : artifact->graphs) graph_ptrs.push_back(&g.graph);
  const auto batch = batch_graphs(graph_ptrs);

  const Tensor pooled = model_->encode(batch);
  const Tensor parallel_probs =
      softmax_rows(model_->task_logits(pooled, PredictionTask::kParallel));
  std::array<std::vector<int>, 4> clause_preds;
  for (int c = 0; c < 4; ++c) {
    clause_preds[static_cast<std::size_t>(c)] =
        argmax_rows(model_->task_logits(pooled, static_cast<PredictionTask>(c + 1)));
  }
  governor.clock_resume();

  out.reserve(artifact->loops.size());
  for (std::size_t i = 0; i < artifact->loops.size(); ++i) {
    out.push_back(make_suggestion(
        artifact->loops[i], artifact->parsed.tu,
        parallel_probs.at({static_cast<int>(i), 1}),
        {clause_preds[0][i], clause_preds[1][i], clause_preds[2][i], clause_preds[3][i]},
        verify));
  }
  if (cached) {
    cache_->put_result(rkey, stamp, std::make_shared<std::vector<LoopSuggestion>>(out),
                       artifact->frontend_ns);
  }
  return out;
}

std::optional<std::vector<LoopSuggestion>> Pipeline::try_cached(
    std::string_view c_source) const {
  if (!cache_->enabled()) return std::nullopt;
  const std::uint64_t stamp = model_stamp_.load(std::memory_order_acquire);
  const Hash128 rkey = result_cache_key(hash_source(c_source), verify_active());
  if (auto hit = cache_->get_result(rkey, stamp)) return *hit;
  return std::nullopt;
}

std::vector<std::vector<LoopSuggestion>> Pipeline::suggest_batch(
    std::span<const std::string_view> sources) const {
  auto results = suggest_batch_results(sources);
  std::vector<std::vector<LoopSuggestion>> out;
  out.reserve(results.size());
  for (auto& r : results) {
    if (r.error) std::rethrow_exception(r.error);
    out.push_back(std::move(r.suggestions));
  }
  return out;
}

std::vector<Pipeline::SourceResult> Pipeline::suggest_batch_results(
    std::span<const std::string_view> sources) const {
  const NoGradGuard no_grad;  // serving: skip tape construction
  std::vector<SourceResult> out(sources.size());
  if (sources.empty()) return out;
  ThreadPool& pool = this->pool();
  const std::uint64_t stamp = model_stamp_.load(std::memory_order_acquire);
  const bool verify = verify_active();
  const bool cached = cache_->enabled();

  // Stage 0 (serial, cheap): content-address every source. Full-result hits
  // complete their slot immediately; frontend hits pin their artifact, and
  // duplicate keys within the batch collapse onto their first slot so one
  // cold source submitted N times is built once.
  std::vector<Hash128> keys(sources.size());
  std::vector<std::shared_ptr<const FrontendArtifact>> artifacts(sources.size());
  std::vector<char> done(sources.size(), 0);
  std::vector<std::size_t> build_owner(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) build_owner[i] = i;
  if (cached) {
    std::unordered_map<Hash128, std::size_t, Hash128Hasher> first_of;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      keys[i] = hash_source(sources[i]);
      if (auto hit = cache_->get_result(result_cache_key(keys[i], verify), stamp)) {
        out[i].suggestions = *hit;
        done[i] = 1;
        continue;
      }
      artifacts[i] = cache_->get_frontend(keys[i]);
      if (!artifacts[i]) build_owner[i] = first_of.emplace(keys[i], i).first->second;
    }
  }

  // Stage 1 (parallel): per-source frontend for the cache misses — lex,
  // parse, extract loops, build aug-ASTs. Each source is independent; a
  // failure is recorded in that source's slot and the rest of the batch
  // proceeds. Every slot gets its own resource governor — one poison source
  // trips *its* budget and fails *its* slot; batch-mates never share a tally.
  // The governor outlives this stage so stage 3's verifier checkpoints
  // charge the same request (stages never overlap, so the handoff is safe);
  // its wall clock pauses across the handoff so the shared model stage and
  // batch queueing never count against a slot's frontend budget.
  std::vector<std::unique_ptr<ResourceGovernor>> governors(sources.size());
  pool.parallel_for(sources.size(), [&](std::size_t i) {
    if (done[i] || artifacts[i] || build_owner[i] != i) return;
    governors[i] = std::make_unique<ResourceGovernor>(budget_);
    const GovernorScope governor_scope(governors[i].get());
    try {
      artifacts[i] = build_artifact(sources[i], vocab_, options_.aug);
      if (cached) cache_->put_frontend(keys[i], artifacts[i]);
    } catch (...) {
      out[i].error = std::current_exception();
    }
    governors[i]->clock_pause();
  });
  // Fan the owner's artifact (or its parse error — identical bytes fail
  // identically) back out to the duplicate slots.
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const std::size_t owner = build_owner[i];
    if (done[i] || owner == i) continue;
    artifacts[i] = artifacts[owner];
    if (!artifacts[i]) out[i].error = out[owner].error;
  }

  // Stage 2 (batched): every loop of every healthy, not-yet-complete source
  // joins a disjoint union so the request costs one batched forward per
  // worker — a single forward on a one-thread pool, or per-worker
  // sub-batches that encode concurrently (disjoint unions pool per graph,
  // so sub-batching is output-identical).
  std::vector<const HetGraph*> graph_ptrs;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    if (done[s] || out[s].error) continue;
    for (const auto& g : artifacts[s]->graphs) graph_ptrs.push_back(&g.graph);
  }
  if (graph_ptrs.empty()) {
    if (cached) {
      for (std::size_t s = 0; s < sources.size(); ++s) {
        if (!done[s] && !out[s].error) {
          cache_->put_result(result_cache_key(keys[s], verify), stamp,
                             std::make_shared<std::vector<LoopSuggestion>>(),
                             artifacts[s]->frontend_ns);
        }
      }
    }
    return out;
  }

  const std::size_t num_chunks =
      std::max<std::size_t>(1, std::min(pool.size(), graph_ptrs.size() / 8));
  Tensor pooled;
  if (num_chunks == 1) {
    pooled = model_->encode(batch_graphs(graph_ptrs));
  } else {
    const std::size_t per_chunk = (graph_ptrs.size() + num_chunks - 1) / num_chunks;
    std::vector<Tensor> chunk_pooled((graph_ptrs.size() + per_chunk - 1) / per_chunk);
    pool.parallel_for(chunk_pooled.size(), [&](std::size_t c) {
      const NoGradGuard worker_no_grad;  // thread-local: set per worker
      const std::size_t begin = c * per_chunk;
      const std::size_t end = std::min(graph_ptrs.size(), begin + per_chunk);
      chunk_pooled[c] = model_->encode(batch_graphs(
          {graph_ptrs.begin() + static_cast<std::ptrdiff_t>(begin),
           graph_ptrs.begin() + static_cast<std::ptrdiff_t>(end)}));
    });
    pooled = concat_rows(chunk_pooled);
  }
  const Tensor parallel_probs =
      softmax_rows(model_->task_logits(pooled, PredictionTask::kParallel));
  std::array<std::vector<int>, 4> clause_preds;
  for (int c = 0; c < 4; ++c) {
    clause_preds[static_cast<std::size_t>(c)] =
        argmax_rows(model_->task_logits(pooled, static_cast<PredictionTask>(c + 1)));
  }

  // Stage 3 (parallel): peel rows back apart, one suggestion list per
  // healthy source; the clause analysis behind each rendered pragma is
  // per-source independent, so it runs on the pool too. Fresh results are
  // published to the cache as they complete.
  std::vector<std::size_t> first_row(sources.size());
  std::size_t row = 0;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    first_row[s] = row;
    if (!done[s] && !out[s].error) row += artifacts[s]->loops.size();
  }
  pool.parallel_for(sources.size(), [&](std::size_t s) {
    if (done[s] || out[s].error) return;
    // Re-arm this slot's governor (null for cache/duplicate slots — their
    // frontend work was already vetted under a budget) and restart its wall
    // clock: only this slot's own verify work accrues from here.
    const GovernorScope governor_scope(governors[s].get());
    if (governors[s]) governors[s]->clock_resume();
    try {
      std::size_t r = first_row[s];
      const FrontendArtifact& artifact = *artifacts[s];
      out[s].suggestions.reserve(artifact.loops.size());
      for (std::size_t i = 0; i < artifact.loops.size(); ++i, ++r) {
        out[s].suggestions.push_back(make_suggestion(
            artifact.loops[i], artifact.parsed.tu,
            parallel_probs.at({static_cast<int>(r), 1}),
            {clause_preds[0][r], clause_preds[1][r], clause_preds[2][r],
             clause_preds[3][r]},
            verify));
      }
      if (cached) {
        cache_->put_result(
            result_cache_key(keys[s], verify), stamp,
            std::make_shared<std::vector<LoopSuggestion>>(out[s].suggestions),
            artifact.frontend_ns);
      }
    } catch (...) {
      out[s].suggestions.clear();
      out[s].error = std::current_exception();
    }
  });
  return out;
}

bool Pipeline::save(const std::string& model_path, const std::string& vocab_path) const {
  // Stage both files and rename only once both are fully written: a failure
  // mid-save must never leave a fresh model next to a stale vocab — two
  // same-sized vocabs load cleanly and silently mis-map tokens to weights.
  const std::string model_tmp = model_path + ".tmp";
  const std::string vocab_tmp = vocab_path + ".tmp";
  if (!model_->save_file(model_tmp)) {
    std::remove(model_tmp.c_str());
    return false;
  }
  bool vocab_ok = false;
  {
    std::ofstream vocab_out(vocab_tmp);
    if (vocab_out) {
      vocab_out << vocab_.serialize();
      vocab_out.flush();
      vocab_ok = vocab_out.good();
    }
  }
  if (!vocab_ok || std::rename(model_tmp.c_str(), model_path.c_str()) != 0) {
    std::remove(model_tmp.c_str());
    std::remove(vocab_tmp.c_str());
    return false;
  }
  if (std::rename(vocab_tmp.c_str(), vocab_path.c_str()) != 0) {
    std::remove(vocab_tmp.c_str());
    return false;
  }
  return true;
}

std::optional<Pipeline> Pipeline::load(const Options& options, const std::string& model_path,
                                       const std::string& vocab_path) {
  std::ifstream vocab_in(vocab_path);
  if (!vocab_in) return std::nullopt;
  std::stringstream buffer;
  buffer << vocab_in.rdbuf();
  try {
    Pipeline pipeline(options, Vocab::deserialize(buffer.str()));
    if (!pipeline.model_->load_file(model_path)) return std::nullopt;
    return pipeline;
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt vocab: fail soft like a missing file
  }
}

bool Pipeline::load_weights(const std::string& model_path) {
  // Invalidate before, stamp after: a result rendered from the old weights
  // that races this swap carries the old stamp either way, so it can never
  // be served once the new generation is visible.
  cache_->invalidate_results();
  const bool ok = model_->load_file(model_path);
  model_stamp_.fetch_add(1, std::memory_order_acq_rel);
  return ok;
}

std::string Pipeline::snapshot_weights() const {
  std::ostringstream out(std::ios::binary);
  model_->save(out);
  return std::move(out).str();
}

bool Pipeline::restore_weights(const std::string& snapshot) {
  cache_->invalidate_results();
  std::istringstream in(snapshot, std::ios::binary);
  bool ok = true;
  try {
    model_->load(in);
  } catch (const std::exception&) {
    ok = false;  // staged load: current weights untouched
  }
  model_stamp_.fetch_add(1, std::memory_order_acq_rel);
  return ok;
}

Pipeline Pipeline::clone() const {
  Pipeline copy(options_, vocab_);
  copy.replica_id_ = replica_id_;
  // The binary checkpoint format round-trips floats exactly, so the clone's
  // forwards are bitwise-identical to this pipeline's.
  std::stringstream weights(std::ios::in | std::ios::out | std::ios::binary);
  model_->save(weights);
  copy.model_->load(weights);
  return copy;
}

}  // namespace g2p
