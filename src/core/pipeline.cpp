#include "core/pipeline.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "dataset/generator.h"
#include "frontend/loop_extractor.h"
#include "support/log.h"
#include "support/rng.h"

namespace g2p {

Pipeline::Pipeline(Options options, Vocab vocab)
    : options_(std::move(options)), vocab_(std::move(vocab)) {
  options_.model.vocab_size = vocab_.size();
  Rng rng(options_.train.seed);
  model_ = std::make_unique<Graph2ParModel>(options_.model, rng);
}

Pipeline Pipeline::train(const Options& options) {
  const Corpus corpus = CorpusGenerator(options.corpus).generate();
  const auto split = corpus.split();
  Vocab vocab = build_corpus_vocab(corpus, split.train);
  Pipeline pipeline(options, std::move(vocab));

  const auto train_examples =
      prepare_examples(corpus, split.train, pipeline.vocab_, options.aug);
  G2P_LOG_INFO << "Pipeline::train: " << train_examples.size() << " training loops, vocab "
               << pipeline.vocab_.size();
  train_graph_model(*pipeline.model_, train_examples, options.train);
  return pipeline;
}

std::vector<LoopSuggestion> Pipeline::suggest(std::string_view c_source) const {
  const auto parsed = parse_translation_unit(c_source);
  const auto loops = extract_loops(*parsed.tu);
  std::vector<LoopSuggestion> out;
  if (loops.empty()) return out;

  AugAstBuilder builder(vocab_, options_.aug);
  std::vector<LoopGraph> graphs;
  std::vector<const HetGraph*> graph_ptrs;
  graphs.reserve(loops.size());
  for (const auto& loop : loops) {
    graphs.push_back(builder.build(*loop.loop, parsed.tu.get()));
  }
  for (const auto& g : graphs) graph_ptrs.push_back(&g.graph);
  const auto batch = batch_graphs(graph_ptrs);

  const Tensor pooled = model_->encode(batch);
  const Tensor parallel_probs =
      softmax_rows(model_->task_logits(pooled, PredictionTask::kParallel));
  std::array<std::vector<int>, 4> clause_preds;
  for (int c = 0; c < 4; ++c) {
    clause_preds[static_cast<std::size_t>(c)] =
        argmax_rows(model_->task_logits(pooled, static_cast<PredictionTask>(c + 1)));
  }

  for (std::size_t i = 0; i < loops.size(); ++i) {
    LoopSuggestion suggestion;
    suggestion.loop_source = loops[i].source;
    suggestion.line = loops[i].loop->line;
    if (loops[i].function) suggestion.function_name = loops[i].function->name;
    suggestion.confidence = parallel_probs.at({static_cast<int>(i), 1});
    suggestion.parallel = suggestion.confidence >= 0.5;
    if (suggestion.parallel) {
      // Clause priority mirrors the dataset bucketing: target > simd >
      // reduction > private (do-all).
      if (clause_preds[3][i] == 1) {
        suggestion.category = PragmaCategory::kTarget;
      } else if (clause_preds[2][i] == 1) {
        suggestion.category = PragmaCategory::kSimd;
      } else if (clause_preds[1][i] == 1) {
        suggestion.category = PragmaCategory::kReduction;
      } else {
        suggestion.category = PragmaCategory::kPrivate;
      }
      // Fill clause payloads from the static analysis (the model decides the
      // pattern; the analyzer names the variables).
      const LoopFacts facts = analyze_loop(*loops[i].loop, parsed.tu.get());
      std::vector<OmpPragma::Reduction> reductions;
      if (suggestion.category == PragmaCategory::kReduction) {
        for (const auto& red : find_reductions(facts)) {
          reductions.push_back(OmpPragma::Reduction{red.op, {red.var}});
        }
      }
      std::vector<std::string> privates;
      for (const auto& var : find_private_scalars(facts)) {
        const auto& info = facts.written_scalars.at(var);
        if (!info.declared_in_body) privates.push_back(var);
      }
      suggestion.suggested_pragma = render_pragma(suggestion.category, privates, reductions);
    }
    out.push_back(std::move(suggestion));
  }
  return out;
}

void Pipeline::save(const std::string& model_path, const std::string& vocab_path) const {
  model_->save_file(model_path);
  std::ofstream vocab_out(vocab_path);
  vocab_out << vocab_.serialize();
}

std::optional<Pipeline> Pipeline::load(const Options& options, const std::string& model_path,
                                       const std::string& vocab_path) {
  std::ifstream vocab_in(vocab_path);
  if (!vocab_in) return std::nullopt;
  std::stringstream buffer;
  buffer << vocab_in.rdbuf();
  Pipeline pipeline(options, Vocab::deserialize(buffer.str()));
  if (!pipeline.model_->load_file(model_path)) return std::nullopt;
  return pipeline;
}

}  // namespace g2p
