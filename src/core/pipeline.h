// End-to-end suggestion pipeline: C source in, per-loop OpenMP pragma
// suggestions out (§6.4: Graph2Par assists the developer with suggestions
// rather than rewriting code).
//
// A Pipeline bundles a vocabulary, a trained Graph2Par model, the aug-AST
// builder options, and a content-addressed serving cache (suggest_cache.h):
// repeat sources skip the frontend (and, when the model has not changed,
// the forward pass too).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "analysis/dependence.h"
#include "analysis/verifier.h"
#include "core/graph2par.h"
#include "core/suggest_cache.h"
#include "core/suggestion.h"
#include "dataset/corpus.h"
#include "dataset/generator.h"
#include "eval/trainer.h"
#include "support/resource_governor.h"

namespace g2p {

class ThreadPool;

class Pipeline {
 public:
  struct Options {
    GeneratorConfig corpus;      // training-corpus generation
    Graph2ParConfig model;       // vocab_size is filled in automatically
    TrainConfig train;
    AugAstOptions aug;           // full aug-AST by default
    /// Worker threads for the batched serving path. 0 keeps the process-wide
    /// shared default pool (hardware-sized); nonzero gives this pipeline a
    /// private pool of that size. `set_thread_pool` overrides either.
    unsigned pool_threads = 0;
    /// Serve through the fused HGT inference kernel (SIMD backend,
    /// edge-blocked CSR pass). Off pins the taped reference forward —
    /// numerically within ~1e-7 relative of the fused path, just slower.
    bool fused_inference = true;
    /// Serving precision of the fused path: fp32 (default, numerically
    /// identical to earlier builds) or int8 weight-quantized projections
    /// (Kernels::gemm_s8 — faster, suggestions agree with fp32 at the
    /// ≥99% level, see bench/hgt_kernel). The G2P_PRECISION env var
    /// overrides this at runtime; training always runs fp32.
    Precision precision = Precision::kFp32;
    /// Byte budget of the content-addressed serving cache (two LRU tiers:
    /// rendered results + frontend artifacts). 0 disables caching.
    std::size_t cache_bytes = 64u << 20;
    /// Run the static race verifier (analysis/verifier.h) on every
    /// suggestion: provable races are vetoed, missing/wrong clauses are
    /// repaired, unanalyzable loops pass through flagged kUnknown. The
    /// G2P_VERIFY env var overrides this at runtime (docs/analysis.md).
    bool verify_suggestions = true;
    /// Per-request resource caps enforced through lex, parse, loop
    /// extraction, aug-AST build, and verification (the adversarial-input
    /// governor, support/resource_governor.h). The defaults admit any
    /// reasonable translation unit; `ResourceBudget::unlimited()` restores
    /// the ungoverned behaviour. G2P_MAX_* / G2P_GOVERNOR env vars override
    /// individual caps at construction (docs/tuning.md).
    ResourceBudget budget;
    Options() { corpus.scale = 0.03; }
  };

  /// Outcome of one source in a tolerant batch call: either a suggestion
  /// list (possibly empty — a source without loops is not an error) or the
  /// exception that source raised while being parsed/analyzed.
  struct SourceResult {
    std::vector<LoopSuggestion> suggestions;
    std::exception_ptr error;  // null on success
    bool ok() const { return error == nullptr; }
  };

  /// Generate a corpus, build the vocabulary, train the model. Deterministic
  /// for fixed options.
  static Pipeline train(const Options& options = {});

  /// Analyze a C translation unit and produce one suggestion per loop.
  /// Consults the serving cache: identical (normalized) sources skip the
  /// frontend, and skip the model forward too when the checkpoint has not
  /// changed since the cached entry was rendered.
  std::vector<LoopSuggestion> suggest(std::string_view c_source) const;

  /// Full-result cache probe without a forward: the rendered suggestions
  /// for this (normalized) source if the cache holds them under the current
  /// model generation, std::nullopt otherwise. Never parses, never runs the
  /// model — this is what the server's cache-hits-only degradation mode
  /// serves from when the forward path is saturated.
  std::optional<std::vector<LoopSuggestion>> try_cached(std::string_view c_source) const;

  /// Batched serving entry point: many translation units in, one suggestion
  /// list per unit out (aligned with `sources`). Per-source frontend work
  /// (parse, loop extraction, aug-AST construction) runs on a worker pool;
  /// all loops across all sources are merged into a single disjoint batch
  /// union for one model forward. Numerically equivalent to calling
  /// `suggest` per source, just faster. Throws on the first source that
  /// fails to parse, like `suggest` does.
  std::vector<std::vector<LoopSuggestion>> suggest_batch(
      std::span<const std::string_view> sources) const;

  /// Error-tolerant batch entry point for servers: a source that fails to
  /// parse or analyze reports its exception in its own slot instead of
  /// poisoning batch-mates; every healthy source still gets suggestions
  /// numerically equivalent to per-source `suggest`. Aligned with `sources`.
  std::vector<SourceResult> suggest_batch_results(
      std::span<const std::string_view> sources) const;

  /// Persist trained weights (vocabulary travels alongside). Returns false —
  /// without writing a partial vocab when the model already failed — if
  /// either file cannot be opened or fully flushed.
  [[nodiscard]] bool save(const std::string& model_path, const std::string& vocab_path) const;
  /// Restore a saved pipeline. Missing, truncated, or corrupt files yield
  /// std::nullopt, never a crash or a half-initialized pipeline.
  static std::optional<Pipeline> load(const Options& options, const std::string& model_path,
                                      const std::string& vocab_path);

  /// Hot checkpoint swap: load new weights into this pipeline (vocabulary
  /// must be unchanged — same training configuration). Bumps the model
  /// stamp, so every cached *result* becomes unservable at once, while
  /// cached frontend artifacts survive and keep skipping lex/parse/build.
  /// Returns false if the file is missing or corrupt; the load is staged
  /// before it commits, so a failure leaves the previous generation's
  /// weights fully intact and serving (the cache invalidation that already
  /// happened is harmless — results re-render from the old weights on
  /// demand). Callers should
  /// quiesce in-flight forwards; concurrent `suggest` calls may race the
  /// weight write itself, exactly like an optimizer step would.
  [[nodiscard]] bool load_weights(const std::string& model_path);

  /// In-memory checkpoint of the current weights (same binary format as
  /// `save`'s model file, integrity trailer included). A replica set keeps
  /// one of these across a rollout so a failed canary can roll back without
  /// touching the filesystem.
  std::string snapshot_weights() const;
  /// Restore a `snapshot_weights` image. Same semantics as `load_weights`:
  /// invalidates cached results, bumps the model stamp, stages before it
  /// commits — a corrupt snapshot leaves the current generation serving.
  [[nodiscard]] bool restore_weights(const std::string& snapshot);

  /// Clone this pipeline for replicated serving: identical options, vocab,
  /// and weights (bitwise — the copy travels through the lossless binary
  /// checkpoint format), but a fresh empty cache, its own model stamp, and
  /// its own pool selection. Replicas therefore serve bitwise-identical
  /// suggestions while failing independently.
  Pipeline clone() const;

  /// Identity of this pipeline inside a ReplicaSet (-1 when standalone).
  /// Purely observational — stats, logs, and bench output use it to
  /// attribute work to a replica; routing never consults it.
  int replica_id() const { return replica_id_; }
  void set_replica_id(int id) { replica_id_ = id; }

  /// Replace the worker pool used by `suggest_batch*`. Null restores the
  /// behavior selected by Options::pool_threads. A server injects its own
  /// pool here so serving concurrency is owned by the server, not a global.
  void set_thread_pool(std::shared_ptr<ThreadPool> pool);

  /// The precision the fused path actually serves: Options::precision
  /// unless the G2P_PRECISION env override is set (stats / --json surface
  /// this, not the configured value).
  Precision active_precision() const { return resolve_precision(options_.precision); }

  /// Whether serving actually verifies: Options::verify_suggestions unless
  /// the G2P_VERIFY env override pins it (resolve_verify, analysis/verifier.h).
  bool verify_active() const { return resolve_verify(options_.verify_suggestions); }
  /// Runtime toggle (benches/tests compare model-only vs model+verifier on
  /// one trained pipeline). The result-cache key is salted with the
  /// resolved verifier config, so toggling can never serve stale verdicts.
  void set_verify_suggestions(bool on) { options_.verify_suggestions = on; }

  /// Serving-cache counters (hits per tier, bytes, frontend time saved).
  SuggestCache::Stats cache_stats() const { return cache_->stats(); }
  /// Drop every cache entry (tests, memory pressure).
  void clear_cache() const { cache_->clear(); }
  /// Resize the serving cache at runtime (0 disables; evicts to fit).
  void set_cache_bytes(std::size_t bytes) { cache_->set_byte_cap(bytes); }

  const Graph2ParModel& model() const { return *model_; }
  const Vocab& vocab() const { return vocab_; }

  /// The per-request budget serving enforces: Options::budget with env
  /// overrides applied once at construction. SuggestServer admission uses
  /// `max_source_bytes` to reject statically-oversized requests before they
  /// ever occupy a batch slot.
  const ResourceBudget& active_budget() const { return budget_; }

  Pipeline(Pipeline&& other) noexcept;
  Pipeline& operator=(Pipeline&& other) noexcept;

 private:
  Pipeline(Options options, Vocab vocab);

  ThreadPool& pool() const;
  /// The pool as a shareable handle (non-owning for the process-wide
  /// default, which is intentionally leaked) — handed to the model so the
  /// encoder's projection GEMMs fan out over serving workers.
  std::shared_ptr<ThreadPool> shared_pool() const;

  Options options_;
  Vocab vocab_;
  /// Options::budget with G2P_MAX_* / G2P_GOVERNOR overrides resolved.
  ResourceBudget budget_;
  std::unique_ptr<Graph2ParModel> model_;
  std::shared_ptr<ThreadPool> pool_;  // null: shared process-wide default
  /// Content-addressed serving cache; mutable because `suggest` is
  /// logically const (the cache is a memo, not observable state). Held by
  /// pointer: the cache owns a mutex, and Pipeline must stay movable.
  mutable std::unique_ptr<SuggestCache> cache_;
  /// Monotonic checkpoint generation; cached results are stamped with it.
  std::atomic<std::uint64_t> model_stamp_{1};
  /// Replica attribution (see replica_id); moves with the pipeline.
  int replica_id_ = -1;
};

}  // namespace g2p
