#include "core/pragformer.h"

#include "frontend/lexer.h"

namespace g2p {

PragFormerModel::PragFormerModel(const PragFormerConfig& config, Rng& rng)
    : config_(config),
      encoder_(
          TransformerEncoder::Config{config.vocab_size, config.dim, config.heads, config.layers,
                                     config.ffn_hidden, config.max_len},
          rng) {
  register_child(encoder_);
  for (int t = 0; t < kNumPredictionTasks; ++t) {
    heads_.push_back(std::make_unique<Linear>(config.dim, 2, rng));
    register_child(*heads_.back());
  }
}

Tensor PragFormerModel::task_logits(const Tensor& pooled, PredictionTask task) const {
  return heads_[static_cast<std::size_t>(task)]->forward(pooled);
}

std::vector<int> tokenize_for_model(std::string_view loop_source, const Vocab& vocab,
                                    int max_len) {
  std::vector<int> ids;
  ids.push_back(Vocab::kCls);
  try {
    Arena arena;  // holds folded pragma spellings for the scan's lifetime
    for (const auto& token : lex_code_tokens(loop_source, arena)) {
      if (static_cast<int>(ids.size()) >= max_len) break;
      ids.push_back(vocab.id(token.text));
    }
  } catch (const LexError&) {
    // Unlexable source (should not happen for generated loops): keep prefix.
  }
  return ids;
}

}  // namespace g2p
