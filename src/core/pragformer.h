// PragFormer-style baseline (Harel et al. 2022): token representation +
// transformer encoder for pragma classification. The paper uses this as the
// state-of-the-art token-based comparator in Tables 2 and 5.
#pragma once

#include <memory>

#include "core/graph2par.h"  // PredictionTask
#include "graph/vocab.h"
#include "nn/transformer.h"

namespace g2p {

struct PragFormerConfig {
  int vocab_size = 0;
  int dim = 32;
  int heads = 4;
  int layers = 2;
  int ffn_hidden = 64;
  int max_len = 128;
};

class PragFormerModel : public Module {
 public:
  PragFormerModel(const PragFormerConfig& config, Rng& rng);

  /// Encode one token-id sequence into [1, dim].
  Tensor encode(std::span<const int> token_ids) const { return encoder_.encode(token_ids); }

  /// Logits [rows, 2] for one task head over pooled representations.
  Tensor task_logits(const Tensor& pooled, PredictionTask task) const;

  const PragFormerConfig& config() const { return config_; }

 private:
  PragFormerConfig config_;
  TransformerEncoder encoder_;
  std::vector<std::unique_ptr<Linear>> heads_;
};

/// Tokenize a loop's source into vocabulary ids (the PragFormer input).
std::vector<int> tokenize_for_model(std::string_view loop_source, const Vocab& vocab,
                                    int max_len);

}  // namespace g2p
