#include "core/suggest_cache.h"

#include "support/failpoint.h"

namespace g2p {

namespace {

std::size_t suggestions_bytes(const std::vector<LoopSuggestion>& suggestions) {
  std::size_t bytes = sizeof(std::vector<LoopSuggestion>);
  for (const auto& s : suggestions) {
    bytes += sizeof(LoopSuggestion) + s.loop_source.capacity() +
             s.function_name.capacity() + s.suggested_pragma.capacity() +
             s.veto_reason.capacity();
    for (const auto& clause : s.repaired_clauses) {
      bytes += sizeof(std::string) + clause.capacity();
    }
  }
  return bytes;
}

}  // namespace

std::size_t FrontendArtifact::approx_bytes() const {
  std::size_t bytes = sizeof(FrontendArtifact);
  if (parsed.arena) bytes += parsed.arena->bytes_reserved();
  for (const auto& loop : loops) {
    bytes += sizeof(ExtractedLoop) + loop.source.capacity();
  }
  for (const auto& g : graphs) {
    bytes += g.graph.nodes.capacity() * sizeof(HetNode) +
             g.graph.edges.capacity() * sizeof(HetEdge) +
             // unordered_map node overhead: bucket pointer + node (key,
             // value, hash, next) — ~6 words per entry in libstdc++.
             g.index_of.size() * 6 * sizeof(void*);
  }
  return bytes;
}

void SuggestCache::set_byte_cap(std::size_t byte_cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  byte_cap_ = byte_cap;
  results_.cap = byte_cap / 8;
  frontend_.cap = byte_cap - results_.cap;
  evict_to_cap(results_);
  evict_to_cap(frontend_);
}

template <typename Entry>
void SuggestCache::evict_to_cap(Tier<Entry>& tier) {
  while (tier.bytes > tier.cap && !tier.lru.empty()) {
    const Entry& victim = tier.lru.back();
    tier.bytes -= victim.bytes;
    tier.index.erase(victim.key);
    tier.lru.pop_back();
    ++stats_.evictions;
  }
}

std::shared_ptr<const std::vector<LoopSuggestion>> SuggestCache::get_result(
    const Hash128& key, std::uint64_t model_stamp) {
  if (!enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = results_.index.find(key);
  if (it == results_.index.end()) return nullptr;
  if (it->second->model_stamp != model_stamp) {
    // Stale checkpoint generation: drop on sight.
    results_.bytes -= it->second->bytes;
    results_.lru.erase(it->second);
    results_.index.erase(it);
    return nullptr;
  }
  results_.lru.splice(results_.lru.begin(), results_.lru, it->second);
  ++stats_.full_hits;
  stats_.frontend_saved_ns += it->second->frontend_ns;
  return it->second->value;
}

void SuggestCache::put_result(const Hash128& key, std::uint64_t model_stamp,
                              std::shared_ptr<const std::vector<LoopSuggestion>> value,
                              std::uint64_t frontend_ns) {
  if (!enabled() || !value) return;
  // Failpoint: a failed insert degrades the cache, never correctness — the
  // caller already holds the rendered result it is publishing.
  if (failpoint::triggered("cache.insert")) return;
  const std::size_t bytes = suggestions_bytes(*value) + sizeof(ResultEntry);
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes > results_.cap) return;  // would evict the whole tier for one entry
  auto it = results_.index.find(key);
  if (it != results_.index.end()) {
    // Refresh (new stamp after reload, or concurrent builders racing).
    results_.bytes -= it->second->bytes;
    results_.lru.erase(it->second);
    results_.index.erase(it);
  }
  results_.lru.push_front(ResultEntry{key, model_stamp, std::move(value), frontend_ns, bytes});
  results_.index[key] = results_.lru.begin();
  results_.bytes += bytes;
  evict_to_cap(results_);
}

std::shared_ptr<const FrontendArtifact> SuggestCache::get_frontend(const Hash128& key) {
  if (!enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = frontend_.index.find(key);
  if (it == frontend_.index.end()) return nullptr;
  frontend_.lru.splice(frontend_.lru.begin(), frontend_.lru, it->second);
  ++stats_.frontend_hits;
  stats_.frontend_saved_ns += it->second->value->frontend_ns;
  return it->second->value;
}

void SuggestCache::put_frontend(const Hash128& key,
                                std::shared_ptr<const FrontendArtifact> value) {
  if (!enabled() || !value) return;
  // Failpoint (checked outside the lock — a delay-action must not wedge
  // readers): the artifact is dropped, but the miss still happened and
  // stays counted so hit-rate stats remain truthful under injection.
  const bool drop = failpoint::triggered("cache.insert");
  const std::size_t bytes = value->approx_bytes() + sizeof(FrontendEntry);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;  // a frontend insert happens exactly once per cold source
  if (drop) return;
  if (bytes > frontend_.cap) return;
  auto it = frontend_.index.find(key);
  if (it != frontend_.index.end()) {
    frontend_.bytes -= it->second->bytes;
    frontend_.lru.erase(it->second);
    frontend_.index.erase(it);
  }
  frontend_.lru.push_front(FrontendEntry{key, std::move(value), bytes});
  frontend_.index[key] = frontend_.lru.begin();
  frontend_.bytes += bytes;
  evict_to_cap(frontend_);
}

void SuggestCache::invalidate_results() {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.lru.clear();
  results_.index.clear();
  results_.bytes = 0;
}

void SuggestCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.lru.clear();
  results_.index.clear();
  results_.bytes = 0;
  frontend_.lru.clear();
  frontend_.index.clear();
  frontend_.bytes = 0;
}

SuggestCache::Stats SuggestCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.result_entries = results_.lru.size();
  out.frontend_entries = frontend_.lru.size();
  out.result_bytes = results_.bytes;
  out.frontend_bytes = frontend_.bytes;
  return out;
}

}  // namespace g2p
