// Content-addressed serving cache for the suggestion pipeline.
//
// Serving traffic is highly repetitive (interactive advisement re-submits
// the same translation unit after every keystroke-save), so identical
// sources should never pay the frontend twice. The cache is keyed by a
// 128-bit hash of the normalized source (hash_source: '\r'-insensitive) and
// has two tiers:
//
//   * full-result tier — the rendered LoopSuggestion list. A hit skips
//     everything: frontend, model forward, clause analysis. Entries carry
//     the pipeline's model-version stamp; a checkpoint swap bumps the stamp,
//     so stale suggestions can never be served (lazy invalidation). The
//     pipeline salts this tier's key with the resolved verifier config
//     (pipeline.cpp result_cache_key), so toggling G2P_VERIFY or
//     set_verify_suggestions can never replay a verdict rendered under the
//     other configuration.
//   * frontend tier — the built frontend artifact (parse result, extracted
//     loops, aug-AST graphs). A hit skips lex/parse/extract/build but still
//     runs the model forward — exactly what is needed right after a
//     checkpoint reload, when results are stale but sources have not
//     changed. Artifacts are model-independent and survive reloads.
//
// Both tiers are LRU with independent byte caps (like the tensor_pool byte
// cap, but LRU rather than FIFO: repeat-heavy serving wants recency). All
// operations are thread-safe; values are shared_ptr-to-const so readers can
// keep using an artifact after it is evicted.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/aug_ast.h"
#include "core/suggestion.h"
#include "frontend/loop_extractor.h"
#include "frontend/parser.h"
#include "support/hash.h"

namespace g2p {

/// Everything `suggest` needs downstream of parsing, for one translation
/// unit. Loops point into `parsed.tu`; the arena inside `parsed` owns every
/// node, so the artifact is self-contained and immutable once built.
struct FrontendArtifact {
  ParseResult parsed;
  std::vector<ExtractedLoop> loops;
  std::vector<LoopGraph> graphs;
  std::uint64_t frontend_ns = 0;  // measured build cost (drives saved-time stats)

  /// Approximate resident footprint, for the byte cap.
  std::size_t approx_bytes() const;
};

class SuggestCache {
 public:
  struct Stats {
    std::uint64_t full_hits = 0;
    std::uint64_t frontend_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t result_entries = 0;
    std::uint64_t frontend_entries = 0;
    std::uint64_t result_bytes = 0;
    std::uint64_t frontend_bytes = 0;
    /// Frontend time not spent, summed over hits in either tier (each hit
    /// credits the build cost measured when that source was first seen).
    std::uint64_t frontend_saved_ns = 0;

    double hit_rate() const {
      const std::uint64_t total = full_hits + frontend_hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(full_hits + frontend_hits) /
                              static_cast<double>(total);
    }
  };

  /// `byte_cap` covers both tiers: 1/8 for rendered results (they are
  /// small), the rest for frontend artifacts. 0 disables caching entirely.
  explicit SuggestCache(std::size_t byte_cap = 0) { set_byte_cap(byte_cap); }

  void set_byte_cap(std::size_t byte_cap);
  bool enabled() const { return byte_cap_ > 0; }

  /// Full-result lookup; null on miss or model-stamp mismatch (stale
  /// entries are dropped on sight).
  std::shared_ptr<const std::vector<LoopSuggestion>> get_result(const Hash128& key,
                                                                std::uint64_t model_stamp);
  void put_result(const Hash128& key, std::uint64_t model_stamp,
                  std::shared_ptr<const std::vector<LoopSuggestion>> value,
                  std::uint64_t frontend_ns);

  std::shared_ptr<const FrontendArtifact> get_frontend(const Hash128& key);
  void put_frontend(const Hash128& key, std::shared_ptr<const FrontendArtifact> value);

  /// Checkpoint swap: drop every rendered result, keep frontend artifacts
  /// (they are model-independent). The stamp check already guarantees
  /// correctness; this just frees the bytes eagerly.
  void invalidate_results();

  void clear();
  Stats stats() const;

 private:
  struct ResultEntry {
    Hash128 key;
    std::uint64_t model_stamp = 0;
    std::shared_ptr<const std::vector<LoopSuggestion>> value;
    std::uint64_t frontend_ns = 0;
    std::size_t bytes = 0;
  };
  struct FrontendEntry {
    Hash128 key;
    std::shared_ptr<const FrontendArtifact> value;
    std::size_t bytes = 0;
  };

  template <typename Entry>
  struct Tier {
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<Hash128, typename std::list<Entry>::iterator, Hash128Hasher> index;
    std::size_t bytes = 0;
    std::size_t cap = 0;
  };

  template <typename Entry>
  void evict_to_cap(Tier<Entry>& tier);

  mutable std::mutex mutex_;
  std::size_t byte_cap_ = 0;
  Tier<ResultEntry> results_;
  Tier<FrontendEntry> frontend_;
  Stats stats_;
};

}  // namespace g2p
