// The per-loop suggestion record returned by the serving pipeline.
//
// Lives in its own header so the serving cache (suggest_cache.h) and the
// pipeline can both name it without a cycle; pipeline.h re-exports it, so
// existing includes keep working.
#pragma once

#include <string>
#include <vector>

#include "frontend/pragma.h"

namespace g2p {

/// Static race-verifier verdict lattice for one suggestion (see
/// analysis/verifier.h and docs/analysis.md). Ordered by severity:
/// vetoed > unknown > repaired > verified; kUnchecked means the verifier
/// did not run (Options::verify_suggestions off / G2P_VERIFY=0).
enum class Verdict {
  kUnchecked,
  kVerified,  // no provable cross-iteration dependence under the clauses
  kRepaired,  // safe after the verifier added/corrected clauses
  kVetoed,    // provable race — the pragma was withdrawn
  kUnknown,   // unanalyzable (calls, aliasing, non-affine): passed through
};

constexpr const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kUnchecked: return "unchecked";
    case Verdict::kVerified: return "verified";
    case Verdict::kRepaired: return "repaired";
    case Verdict::kVetoed: return "vetoed";
    case Verdict::kUnknown: return "unknown";
  }
  return "unchecked";
}

/// One suggestion for one loop found in the input source.
struct LoopSuggestion {
  std::string loop_source;
  int line = 0;
  std::string function_name;
  bool parallel = false;
  double confidence = 0.0;  // softmax probability of the parallel class
  PragmaCategory category = PragmaCategory::kNone;
  std::string suggested_pragma;  // rendered directive, "" when not parallel

  // Filled by the static race verifier when verification is enabled. A
  // veto withdraws the pragma (parallel=false, suggested_pragma="") and
  // explains why; a repair lists the clauses the verifier added or fixed
  // (already merged into suggested_pragma). `confidence` always remains
  // the model's belief, so a vetoed suggestion is recognizable as a
  // model-said-parallel loop the analysis overruled.
  Verdict verdict = Verdict::kUnchecked;
  std::string veto_reason;
  std::vector<std::string> repaired_clauses;
};

}  // namespace g2p
