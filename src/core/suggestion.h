// The per-loop suggestion record returned by the serving pipeline.
//
// Lives in its own header so the serving cache (suggest_cache.h) and the
// pipeline can both name it without a cycle; pipeline.h re-exports it, so
// existing includes keep working.
#pragma once

#include <string>
#include <vector>

#include "frontend/pragma.h"

namespace g2p {

/// One suggestion for one loop found in the input source.
struct LoopSuggestion {
  std::string loop_source;
  int line = 0;
  std::string function_name;
  bool parallel = false;
  double confidence = 0.0;  // softmax probability of the parallel class
  PragmaCategory category = PragmaCategory::kNone;
  std::string suggested_pragma;  // rendered directive, "" when not parallel
};

}  // namespace g2p
