#include "dataset/corpus.h"

#include <filesystem>
#include <fstream>

#include "support/hash.h"
#include "support/log.h"

namespace g2p {

int Corpus::count_parallel() const {
  int n = 0;
  for (const auto& s : samples) n += s.parallel;
  return n;
}

int Corpus::count_category(PragmaCategory cat) const {
  int n = 0;
  for (const auto& s : samples) n += (s.category == cat);
  return n;
}

CorpusSplit Corpus::split(double train_frac, double validation_frac) const {
  CorpusSplit out;
  for (int i = 0; i < size(); ++i) {
    // Stable bucket from the id hash: resilient to sample reordering.
    // fnv1a64 (support/hash.h) is the same FNV-1a the local helper used, so
    // historical splits are unchanged.
    const double u =
        static_cast<double>(fnv1a64(samples[static_cast<std::size_t>(i)].id) % 10000) / 10000.0;
    if (u < train_frac) {
      out.train.push_back(i);
    } else if (u < train_frac + validation_frac) {
      out.validation.push_back(i);
    } else {
      out.test.push_back(i);
    }
  }
  return out;
}

Corpus build_corpus(const std::vector<GeneratedFile>& files) {
  Corpus corpus;
  int dropped = 0;
  for (const auto& file : files) {
    std::shared_ptr<ParseResult> parsed;
    try {
      parsed = std::make_shared<ParseResult>(parse_translation_unit(file.source));
    } catch (const std::exception&) {
      ++dropped;  // mirrors the paper dropping non-compilable crawled files
      continue;
    }
    const auto loops = extract_loops(*parsed->tu);
    int loop_index = 0;
    for (const auto& extracted : loops) {
      LoopSample sample;
      sample.id = file.name + (loops.size() > 1 ? "#" + std::to_string(loop_index) : "");
      sample.file_source = file.source;
      sample.loop_source = extracted.source;
      sample.origin = file.origin;
      sample.parallel = extracted.labeled_parallel();
      sample.category = extracted.category();
      sample.has_function_call = extracted.has_function_call;
      sample.is_nested = extracted.is_nested;
      sample.loc = extracted.loc;
      sample.parsed = parsed;
      sample.loop = extracted.loop;
      corpus.samples.push_back(std::move(sample));
      ++loop_index;
    }
  }
  if (dropped > 0) {
    G2P_LOG_DEBUG << "build_corpus: dropped " << dropped << " unparseable files";
  }
  return corpus;
}

void write_corpus(const Corpus& corpus, const std::string& dir) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  std::ofstream labels(fs::path(dir) / "labels.tsv");
  labels << "id\torigin\tparallel\tcategory\thas_call\tnested\tloc\n";
  for (const auto& s : corpus.samples) {
    std::string file_name = s.id;
    for (auto& c : file_name) {
      if (c == '#' || c == '/') c = '_';
    }
    std::ofstream out(fs::path(dir) / (file_name + ".c"));
    out << s.file_source;
    labels << s.id << '\t' << (s.origin == SampleOrigin::kGitHub ? "github" : "synthetic")
           << '\t' << (s.parallel ? 1 : 0) << '\t' << pragma_category_name(s.category) << '\t'
           << (s.has_function_call ? 1 : 0) << '\t' << (s.is_nested ? 1 : 0) << '\t' << s.loc
           << '\n';
  }
}

}  // namespace g2p
