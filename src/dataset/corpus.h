// The OMP_Serial dataset (§4): labeled loops assembled from generated
// "GitHub-crawl-like" C files and Jinja-templated synthetic programs.
//
// Each sample keeps its parsed translation unit alive so that the tool
// simulacra (which need callee bodies and struct layouts) and the aug-AST
// builder (which merges callee bodies) can run on the original tree.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "frontend/loop_extractor.h"
#include "frontend/parser.h"
#include "frontend/pragma.h"

namespace g2p {

/// Where a sample came from (Table 1 groups statistics by source).
enum class SampleOrigin { kGitHub, kSynthetic };

/// One labeled loop.
struct LoopSample {
  std::string id;            // stable unique id, e.g. "gh-reduction-0042"
  std::string file_source;   // the full C file text the loop was mined from
  std::string loop_source;   // regenerated loop (pragma stripped)
  SampleOrigin origin = SampleOrigin::kGitHub;

  // Labels (§4.2): pragma presence -> parallel; clause -> category.
  bool parallel = false;
  PragmaCategory category = PragmaCategory::kNone;

  // Structural features (Table 1 / Figure 2 bookkeeping).
  bool has_function_call = false;
  bool is_nested = false;
  int loc = 0;

  // Parsed artifacts (shared_ptr: the TU owns the loop node).
  std::shared_ptr<ParseResult> parsed;
  const Stmt* loop = nullptr;
};

/// A train/validation/test partition of sample indices.
struct CorpusSplit {
  std::vector<int> train;
  std::vector<int> validation;
  std::vector<int> test;
};

struct Corpus {
  std::vector<LoopSample> samples;

  int size() const { return static_cast<int>(samples.size()); }
  int count_parallel() const;
  int count_category(PragmaCategory cat) const;

  /// Deterministic split by hash of sample id (ratios ~70/10/20).
  CorpusSplit split(double train_frac = 0.7, double validation_frac = 0.1) const;
};

/// A generated C file before labeling.
struct GeneratedFile {
  std::string name;
  std::string source;
  SampleOrigin origin = SampleOrigin::kGitHub;
};

/// The §4.2 pipeline: parse each file, extract loops, strip comments, attach
/// pragma labels. Files that fail to parse are dropped (the paper keeps only
/// the 5731 compilable files out of 16000 crawled).
Corpus build_corpus(const std::vector<GeneratedFile>& files);

/// Write a corpus to `dir` as one .c file per sample plus labels.tsv
/// (id, origin, parallel, category, has_call, nested, loc).
void write_corpus(const Corpus& corpus, const std::string& dir);

}  // namespace g2p
