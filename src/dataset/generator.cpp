#include "dataset/generator.h"

#include <set>
#include <string>

#include "dataset/template_engine.h"
#include "support/rng.h"
#include "support/strings.h"

namespace g2p {

namespace {

// ---- name pools -------------------------------------------------------------

const std::vector<std::string> kIndexNames = {"i", "j", "k", "idx", "ii", "p"};
const std::vector<std::string> kBoundNames = {"n", "m", "size", "len", "count", "num_items",
                                              "num_pixels", "N", "total"};
const std::vector<std::string> kArrayNames = {"a", "b", "c", "data", "buf", "vec", "arr",
                                              "values", "out", "in", "grid", "field", "img"};
const std::vector<std::string> kAccNames = {"sum", "total", "acc", "err", "error", "prod",
                                            "res", "fitness", "norm", "energy"};
const std::vector<std::string> kTempNames = {"t", "tmp", "tmp1", "v", "x", "val", "w", "s"};
const std::vector<std::string> kFnNames = {"compute", "process", "transform", "update",
                                           "evaluate", "filter_fn", "blend", "score"};
const std::vector<std::string> kPureBuiltinPool = {"fabs", "sqrt", "sin", "cos", "exp",
                                                   "log", "tanh", "floor"};

/// Per-file fresh-name allocator: draws without replacement so one file
/// never reuses a name for two different roles.
class Names {
 public:
  explicit Names(Rng& rng) : rng_(&rng) {}

  std::string index() { return fresh(kIndexNames, "i"); }
  std::string bound() { return fresh(kBoundNames, "n"); }
  std::string array() { return fresh(kArrayNames, "a"); }
  std::string acc() { return fresh(kAccNames, "sum"); }
  std::string temp() { return fresh(kTempNames, "t"); }
  std::string fn() { return fresh(kFnNames, "compute"); }

 private:
  std::string fresh(const std::vector<std::string>& pool, const std::string& fallback) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::string& candidate = rng_->pick(pool);
      if (used_.insert(candidate).second) return candidate;
    }
    // Pool exhausted: synthesize a numbered name.
    std::string name = fallback + std::to_string(counter_++);
    used_.insert(name);
    return name;
  }

  Rng* rng_;
  std::set<std::string> used_;
  int counter_ = 0;
};

std::string rand_bound_literal(Rng& rng) {
  static const std::vector<std::string> kBounds = {"100",   "256",   "1000", "1024",
                                                   "4096",  "10000", "512",  "2048"};
  return rng.pick(kBounds);
}

std::string rand_coeff(Rng& rng) {
  static const std::vector<std::string> kCoeffs = {"2", "3", "4", "5", "0.5", "1.5", "2.5",
                                                   "0.25"};
  return rng.pick(kCoeffs);
}

std::string rand_arith_op(Rng& rng) {
  static const std::vector<std::string> kOps = {"+", "-", "*"};
  return rng.pick(kOps);
}

/// Standard file preamble with light variety (the crawl kept full files).
std::string preamble(Rng& rng) {
  std::string out = "#include <stdio.h>\n#include <math.h>\n";
  if (rng.chance(0.4)) out += "#include <stdlib.h>\n";
  if (rng.chance(0.3)) out += "#define BLOCK 16\n";
  out += "\n";
  return out;
}

struct FileParts {
  std::string helpers;   // functions defined before the kernel
  std::string pragma;    // "" for non-parallel loops
  std::string loop;      // the loop statement text
  std::string kernel_params;
  std::string kernel_locals;
  std::string kernel_name = "kernel";
  std::string after_loop;  // statements following the loop (uses of results)
};

std::string assemble(Rng& rng, const FileParts& parts) {
  std::string out = preamble(rng);
  out += parts.helpers;
  out += "void " + parts.kernel_name + "(" + parts.kernel_params + ") {\n";
  out += parts.kernel_locals;
  if (!parts.pragma.empty()) out += "  " + parts.pragma + "\n";
  // Indent the loop text by one level.
  for (const auto& line : split(parts.loop, '\n')) {
    if (!line.empty()) out += "  " + line + "\n";
  }
  out += parts.after_loop;
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Parallel pattern families (pragma-labeled, parallel by construction)
// ---------------------------------------------------------------------------

/// Reduction loops: acc (+|*)= f(data[i]); optionally nested 2-D sums and
/// pure-builtin calls (the paper's Listing 1 family).
std::string make_reduction_file(Rng& rng, bool with_call, bool nested) {
  Names names(rng);
  FileParts parts;
  const std::string i = names.index();
  const std::string arr = names.array();
  const std::string acc = names.acc();
  const std::string bound = rng.chance(0.5) ? names.bound() : rand_bound_literal(rng);
  const std::string op = rng.chance(0.8) ? "+" : "*";

  std::string term = arr + "[" + i + "]";
  if (nested) {
    const std::string j = names.index();
    const std::string inner_bound = rng.chance(0.5) ? names.bound() : rand_bound_literal(rng);
    term = arr + "[" + i + "][" + j + "]";
    if (with_call) term = rng.pick(kPureBuiltinPool) + "(" + term + ")";
    std::string body = acc + " " + op + "= " + term + ";";
    if (rng.chance(0.3)) {
      const std::string vec = names.array();
      body = acc + " " + op + "= " + term + " * " + vec + "[" + j + "];";
    }
    parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++)\n" +
                 "  for (int " + j + " = 0; " + j + " < " + inner_bound + "; " + j + "++)\n" +
                 "    " + body;
    parts.kernel_params = "double " + arr + "[1024][128]";
  } else {
    if (with_call) term = rng.pick(kPureBuiltinPool) + "(" + term + ")";
    std::string update;
    if (rng.chance(0.5)) {
      update = acc + " " + op + "= " + term + ";";
    } else {
      update = acc + " = " + acc + " " + op + " " + term + ";";
    }
    if (rng.chance(0.3) && !with_call) {
      const std::string other = names.array();
      update = acc + " " + op + "= " + arr + "[" + i + "] * " + other + "[" + i + "];";
    }
    parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++)\n  " + update;
    parts.kernel_params = "double* " + arr;
  }
  parts.kernel_locals = "  int " + i + ";\n  double " + acc + " = " +
                        (op == "*" ? "1" : "0") + ";\n";
  parts.pragma = "#pragma omp parallel for reduction(" + op + ":" + acc + ")";
  parts.after_loop = "  printf(\"%f\\n\", " + acc + ");\n";
  return assemble(rng, parts);
}

/// Do-all loops with private temporaries (the paper's `private` category).
/// Variants: temp declared inside the body (tools can privatize) or outside
/// (only the learned model generalizes); guarded updates; 2-D nests;
/// callee-dependent pairs handled separately.
std::string make_private_file(Rng& rng, bool with_call, bool nested) {
  Names names(rng);
  FileParts parts;
  const std::string i = names.index();
  const std::string src = names.array();
  const std::string dst = names.array();
  const std::string t = names.temp();
  const std::string bound = rng.chance(0.6) ? names.bound() : rand_bound_literal(rng);
  const bool temp_inside = rng.chance(0.5);
  const bool nonaffine_bound = rng.chance(0.08);
  const std::string bound_expr =
      nonaffine_bound ? bound + " * " + names.bound() : bound;

  std::string rhs = src + "[" + i + "] " + rand_arith_op(rng) + " " + rand_coeff(rng);
  if (with_call) rhs = rng.pick(kPureBuiltinPool) + "(" + rhs + ")";

  std::string body;
  if (nested) {
    const std::string j = names.index();
    const std::string inner_bound = rand_bound_literal(rng);
    const std::string decl = temp_inside ? "double " + t : t;
    body = "{\n  for (int " + j + " = 0; " + j + " < " + inner_bound + "; " + j + "++) {\n" +
           "    " + decl + " = " + src + "[" + i + "][" + j + "] * " + rand_coeff(rng) +
           ";\n    " + dst + "[" + i + "][" + j + "] = " + t + " + " +
           (with_call ? rng.pick(kPureBuiltinPool) + "(" + t + ")" : rand_coeff(rng)) +
           ";\n  }\n}";
    parts.loop = "for (" + i + " = 0; " + i + " < " + bound_expr + "; " + i + "++) " + body;
    parts.kernel_params = "double " + src + "[512][64], double " + dst + "[512][64]";
  } else {
    const std::string decl = temp_inside ? "double " + t : t;
    if (rng.chance(0.35)) {
      // Guarded elementwise update.
      body = "{\n  " + decl + " = " + rhs + ";\n  if (" + t + " > 0) {\n    " + dst + "[" + i +
             "] = " + t + ";\n  } else {\n    " + dst + "[" + i + "] = -" + t + ";\n  }\n}";
    } else {
      body = "{\n  " + decl + " = " + rhs + ";\n  " + dst + "[" + i + "] = " + t + " * " + t +
             ";\n}";
    }
    parts.loop = "for (" + i + " = 0; " + i + " < " + bound_expr + "; " + i + "++) " + body;
    parts.kernel_params = "double* " + src + ", double* " + dst;
  }
  parts.kernel_locals = "  int " + i + ";\n";
  if (!temp_inside) parts.kernel_locals += "  double " + t + ";\n";
  parts.pragma =
      temp_inside ? "#pragma omp parallel for" : "#pragma omp parallel for private(" + t + ")";
  return assemble(rng, parts);
}

/// Parallel loop calling an extern function declared by prototype only (the
/// body lives in another translation unit). The developer's pragma encodes
/// knowledge no tool can reconstruct: static tools cannot prove purity,
/// dynamic tools cannot execute the call — a large applicability sink in the
/// paper's GitHub data.
std::string make_extern_call_file(Rng& rng, PragmaCategory category) {
  Names names(rng);
  FileParts parts;
  const std::string i = names.index();
  const std::string arr = names.array();
  const std::string fn = names.fn();
  const std::string bound = rng.chance(0.5) ? names.bound() : rand_bound_literal(rng);

  parts.helpers = "double " + fn + "(double value);\n\n";
  if (category == PragmaCategory::kReduction) {
    const std::string acc = names.acc();
    parts.kernel_locals = "  int " + i + ";\n  double " + acc + " = 0;\n";
    parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++)\n  " + acc +
                 " += " + fn + "(" + arr + "[" + i + "]);";
    parts.pragma = "#pragma omp parallel for reduction(+:" + acc + ")";
  } else {
    parts.kernel_locals = "  int " + i + ";\n";
    parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++)\n  " + arr +
                 "[" + i + "] = " + fn + "(" + arr + "[" + i + "]);";
    parts.pragma = "#pragma omp parallel for";
  }
  parts.kernel_params = "double* " + arr;
  return assemble(rng, parts);
}

/// Callee-dependent pair (§5.1.2 motivation): loop body is the same, the
/// label depends on whether the helper is pure. Returns the file; `pure`
/// chooses the variant.
std::string make_callee_pair_file(Rng& rng, bool pure) {
  Names names(rng);
  FileParts parts;
  const std::string i = names.index();
  const std::string arr = names.array();
  const std::string fn = names.fn();
  const std::string bound = rng.chance(0.5) ? names.bound() : rand_bound_literal(rng);

  if (pure) {
    parts.helpers = "double " + fn + "(double x) {\n  double y = x * " + rand_coeff(rng) +
                    " + " + rand_coeff(rng) + ";\n  return y;\n}\n\n";
  } else {
    // Hidden shared state: the helper accumulates into a global.
    const std::string state = names.acc();
    parts.helpers = "double " + state + " = 0;\n\ndouble " + fn +
                    "(double x) {\n  " + state + " = " + state + " + x;\n  return " + state +
                    ";\n}\n\n";
  }
  parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++)\n  " + arr + "[" +
               i + "] = " + fn + "(" + arr + "[" + i + "]);";
  parts.kernel_params = "double* " + arr;
  parts.kernel_locals = "  int " + i + ";\n";
  parts.pragma = pure ? "#pragma omp parallel for" : "";
  return assemble(rng, parts);
}

/// Long-bodied loop whose discriminating statement is the *last* one — the
/// long-range-dependence family motivating the lexical edges of §5.1.3.
/// Token models that truncate the sequence never see the tail; graph models
/// have no truncation. `serial` selects whether the tail statement carries a
/// loop-carried flow dependence.
std::string make_long_tail_file(Rng& rng, bool serial) {
  Names names(rng);
  FileParts parts;
  const std::string i = names.index();
  const std::string src = names.array();
  const std::string dst = names.array();
  const std::string other = names.array();
  const std::string bound = rng.chance(0.5) ? names.bound() : rand_bound_literal(rng);

  std::string body = "{\n";
  const int pads = static_cast<int>(rng.uniform_int(12, 16));
  for (int p = 0; p < pads; ++p) {
    const std::string& pad_arr = (p % 2 == 0) ? dst : other;
    body += "  " + pad_arr + "[" + i + "] = " + pad_arr + "[" + i + "] " +
            rand_arith_op(rng) + " " + src + "[" + i + "] * " + rand_coeff(rng) + ";\n";
  }
  // The tail decides the label: reading this array's previous element is a
  // flow dependence only when it is the written array.
  const std::string read_base = serial ? dst : src;
  body += "  " + dst + "[" + i + "] = " + read_base + "[" + i + " - 1] + " + src + "[" + i +
          "];\n}";
  parts.loop = "for (" + i + " = 1; " + i + " < " + bound + "; " + i + "++) " + body;
  parts.kernel_params = "double* " + src + ", double* " + dst + ", double* " + other;
  parts.kernel_locals = "  int " + i + ";\n";
  parts.pragma = serial ? "" : "#pragma omp parallel for";
  return assemble(rng, parts);
}

/// SIMD loops: short elementwise bodies (Table 1: avg 2.65 LOC).
std::string make_simd_file(Rng& rng, bool with_call, bool nested) {
  Names names(rng);
  FileParts parts;
  const std::string i = names.index();
  const std::string a = names.array();
  const std::string b = names.array();
  const std::string bound = rng.chance(0.4) ? names.bound() : rand_bound_literal(rng);
  const bool strided = rng.chance(0.25);
  const std::string step = strided ? " += 2" : "++";

  std::string rhs;
  if (rng.chance(0.5)) {
    const std::string c = names.array();
    rhs = b + "[" + i + "] " + rand_arith_op(rng) + " " + c + "[" + i + "]";
    parts.kernel_params = "float* " + a + ", float* " + b + ", float* " + c;
  } else {
    rhs = b + "[" + i + "] * " + rand_coeff(rng);
    parts.kernel_params = "float* " + a + ", float* " + b;
  }
  if (with_call) rhs = rng.pick(kPureBuiltinPool) + "(" + rhs + ")";

  if (nested) {
    const std::string j = names.index();
    parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++)\n  for (int " +
                 j + " = 0; " + j + " < 8; " + j + "++)\n    " + a + "[" + i + " * 8 + " + j +
                 "] = " + b + "[" + i + " * 8 + " + j + "] + 1;";
  } else {
    parts.loop =
        "for (" + i + " = 0; " + i + " < " + bound + "; " + i + step + ")\n  " + a + "[" + i +
        "] = " + rhs + ";";
  }
  parts.kernel_locals = "  int " + i + ";\n";
  parts.pragma = "#pragma omp simd";
  return assemble(rng, parts);
}

/// Target offload kernels: saxpy / matrix-scale style (avg 3.04 LOC).
std::string make_target_file(Rng& rng, bool with_call, bool nested) {
  Names names(rng);
  FileParts parts;
  const std::string i = names.index();
  const std::string a = names.array();
  const std::string b = names.array();
  const std::string bound = rng.chance(0.5) ? names.bound() : rand_bound_literal(rng);

  if (nested) {
    const std::string j = names.index();
    parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++)\n  for (int " +
                 j + " = 0; " + j + " < 64; " + j + "++)\n    " + a + "[" + i + "][" + j +
                 "] = " + b + "[" + i + "][" + j + "] * " + rand_coeff(rng) + " + " +
                 rand_coeff(rng) + ";";
    parts.kernel_params = "double " + a + "[256][64], double " + b + "[256][64]";
  } else {
    std::string rhs = b + "[" + i + "] * " + rand_coeff(rng) + " + " + a + "[" + i + "]";
    if (with_call) rhs = rng.pick(kPureBuiltinPool) + "(" + rhs + ")";
    parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++)\n  " + a + "[" +
                 i + "] = " + rhs + ";";
    parts.kernel_params = "double* " + a + ", double* " + b;
  }
  parts.kernel_locals = "  int " + i + ";\n";
  parts.pragma = "#pragma omp target teams distribute parallel for";
  return assemble(rng, parts);
}

// ---------------------------------------------------------------------------
// Serial pattern families (no pragma; every loop carries a real dependence)
// ---------------------------------------------------------------------------

enum class SerialKind {
  kFlowDep,        // a[i] = a[i-1] op e
  kAntiDep,        // a[i] = a[i+1] op e
  kRecurrence,     // x = x*alpha + b[i]; a[i] = x
  kPrefixSum,      // s += b[i]; a[i] = s
  kStencilInPlace, // a[i] = (a[i-1] + a[i+1]) / 2
  kSharedCell,     // a[0] = a[0] + a[i]
  kIoLoop,         // printf inside
  kSearchLast,     // last = i recorded every matching iteration (live-out)
  kPointerChase,   // while (node) { ...; node = next[node]; }
  kConvergence,    // while (err > tol) { err = err * 0.5; ... }
  kUnknownCall,    // result accumulated through an extern function
  kImpureCallee,   // defined helper mutating global state (pair of do-all)
  kNestedOuterDep, // outer-carried dep under an inner loop
  kLongTail,       // long body whose final statement carries the dependence
  kCount
};

std::string make_serial_file(Rng& rng, SerialKind kind, bool with_call, bool nested) {
  Names names(rng);
  FileParts parts;
  const std::string i = names.index();
  const std::string a = names.array();
  const std::string b = names.array();
  const std::string bound = rng.chance(0.6) ? names.bound() : rand_bound_literal(rng);
  parts.kernel_params = "double* " + a + ", double* " + b;
  parts.kernel_locals = "  int " + i + ";\n";

  auto wrap_call = [&](const std::string& expr) {
    return with_call ? rng.pick(kPureBuiltinPool) + "(" + expr + ")" : expr;
  };

  switch (kind) {
    case SerialKind::kFlowDep:
      parts.loop = "for (" + i + " = 1; " + i + " < " + bound + "; " + i + "++)\n  " + a +
                   "[" + i + "] = " + wrap_call(a + "[" + i + " - 1]") + " " +
                   rand_arith_op(rng) + " " + b + "[" + i + "];";
      break;
    case SerialKind::kAntiDep:
      parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++)\n  " + a +
                   "[" + i + "] = " + wrap_call(a + "[" + i + " + 1]") + " * " +
                   rand_coeff(rng) + ";";
      break;
    case SerialKind::kRecurrence: {
      const std::string x = names.temp();
      parts.kernel_locals += "  double " + x + " = 1;\n";
      parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++) {\n  " + x +
                   " = " + x + " * " + rand_coeff(rng) + " + " + wrap_call(b + "[" + i + "]") +
                   ";\n  " + a + "[" + i + "] = " + x + ";\n}";
      break;
    }
    case SerialKind::kPrefixSum: {
      const std::string s = names.acc();
      parts.kernel_locals += "  double " + s + " = 0;\n";
      parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++) {\n  " + s +
                   " += " + wrap_call(b + "[" + i + "]") + ";\n  " + a + "[" + i + "] = " + s +
                   ";\n}";
      break;
    }
    case SerialKind::kStencilInPlace:
      parts.loop = "for (" + i + " = 1; " + i + " < " + bound + "; " + i + "++)\n  " + a +
                   "[" + i + "] = (" + a + "[" + i + " - 1] + " + a + "[" + i + " + 1]) * 0.5;";
      break;
    case SerialKind::kSharedCell:
      parts.loop = "for (" + i + " = 1; " + i + " < " + bound + "; " + i + "++)\n  " + a +
                   "[0] = " + a + "[0] + " + wrap_call(a + "[" + i + "]") + ";";
      break;
    case SerialKind::kIoLoop:
      parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++)\n  " +
                   "printf(\"%d %f\\n\", " + i + ", " + a + "[" + i + "]);";
      break;
    case SerialKind::kSearchLast: {
      const std::string last = names.temp();
      parts.kernel_locals += "  int " + last + " = -1;\n";
      parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++) {\n  if (" +
                   a + "[" + i + "] >= 0) {\n    " + last + " = " + i + ";\n  }\n}";
      parts.after_loop = "  printf(\"%d\\n\", " + last + ");\n";
      break;
    }
    case SerialKind::kPointerChase: {
      const std::string node = names.temp();
      parts.kernel_locals += "  int " + node + " = 1;\n  double total = 0;\n";
      parts.loop = "while (" + node + " > 0) {\n  total += " + a + "[" + node + "];\n  " +
                   node + " = (int)" + b + "[" + node + "];\n}";
      parts.after_loop = "  printf(\"%f\\n\", total);\n";
      break;
    }
    case SerialKind::kConvergence: {
      const std::string err = names.acc();
      parts.kernel_locals += "  double " + err + " = 1000;\n";
      parts.loop = "while (" + err + " > 1) {\n  " + err + " = " + err + " * 0.5;\n  " + a +
                   "[0] = " + err + ";\n}";
      break;
    }
    case SerialKind::kUnknownCall: {
      const std::string fn = names.fn();
      const std::string s = names.acc();
      parts.kernel_locals += "  double " + s + " = 0;\n";
      // No definition anywhere: dynamic tools cannot execute this.
      parts.helpers = "double " + fn + "(double v, int pos);\n\n";
      parts.loop = "for (" + i + " = 0; " + i + " < " + bound + "; " + i + "++) {\n  " + s +
                   " = " + fn + "(" + s + " + " + a + "[" + i + "], " + i + ");\n  " + b +
                   "[" + i + "] = " + s + ";\n}";
      break;
    }
    case SerialKind::kImpureCallee:
      return make_callee_pair_file(rng, /*pure=*/false);
    case SerialKind::kLongTail:
      return make_long_tail_file(rng, /*serial=*/true);
    case SerialKind::kNestedOuterDep: {
      const std::string j = names.index();
      parts.loop = "for (" + i + " = 1; " + i + " < " + bound + "; " + i + "++)\n  for (int " +
                   j + " = 0; " + j + " < 32; " + j + "++)\n    " + a + "[" + i + "][" + j +
                   "] = " + wrap_call(a + "[" + i + " - 1][" + j + "]") + " + " +
                   rand_coeff(rng) + ";";
      parts.kernel_params = "double " + a + "[256][32], double* " + b;
      break;
    }
    case SerialKind::kCount:
      break;
  }
  parts.pragma = "";
  return assemble(rng, parts);
}

/// Replace the generated file's pragma line (clause-category blurring: in
/// real GitHub data the simd / parallel-for / target choice for an
/// elementwise loop is partly the developer's taste, so the categories
/// overlap — the source of Table 5's imperfect simd/target scores).
std::string swap_pragma(std::string file, const std::string& new_pragma) {
  const std::size_t at = file.find("#pragma omp");
  if (at == std::string::npos) return file;
  const std::size_t line_end = file.find('\n', at);
  return file.substr(0, at) + new_pragma + file.substr(line_end);
}

SerialKind pick_serial_kind(Rng& rng, bool with_call, bool nested) {
  if (nested) {
    (void)with_call;  // the nested family honors with_call via wrap_call
    return SerialKind::kNestedOuterDep;
  }
  if (with_call) {
    static const std::vector<SerialKind> kCallKinds = {
        SerialKind::kFlowDep,      SerialKind::kRecurrence,   SerialKind::kPrefixSum,
        SerialKind::kIoLoop,       SerialKind::kUnknownCall,  SerialKind::kUnknownCall,
        SerialKind::kImpureCallee, SerialKind::kImpureCallee, SerialKind::kSharedCell};
    return rng.pick(kCallKinds);
  }
  static const std::vector<SerialKind> kPlainKinds = {
      SerialKind::kFlowDep,       SerialKind::kAntiDep,        SerialKind::kRecurrence,
      SerialKind::kPrefixSum,     SerialKind::kStencilInPlace, SerialKind::kSharedCell,
      SerialKind::kSearchLast,    SerialKind::kPointerChase,   SerialKind::kConvergence,
      SerialKind::kLongTail,      SerialKind::kLongTail};
  return rng.pick(kPlainKinds);
}

// ---------------------------------------------------------------------------
// Synthetic templates (§4.3: Jinja2-rendered complete programs)
// ---------------------------------------------------------------------------

/// Do-all synthetic template: a complete program whose init loop is a serial
/// recurrence (so its non-pragma label is sound) and whose kernel is an
/// annotated do-all. Rendered with the Jinja-style engine.
constexpr std::string_view kSynthDoAllTemplate = R"TPL(#include <stdio.h>
#include <math.h>

#define SIZE {{size}}

double {{arr}}[SIZE];
double {{out}}[SIZE];

int main(void) {
  int {{i}};
  double seed = {{seed}};
  for ({{i}} = 0; {{i}} < SIZE; {{i}}++) {
    seed = seed * 1.1 + {{c0}};
    {{arr}}[{{i}}] = seed;
  }
{% for r in 0..pad %}  {{arr}}[{{r}}] = {{arr}}[{{r}}] + 0.5;
{% endfor %}
  #pragma omp parallel for private({{t}})
  for ({{i}} = 0; {{i}} < SIZE; {{i}}++) {
    double {{t}} = {{fn}}({{arr}}[{{i}}] {{op}} {{c1}});
    {{out}}[{{i}}] = {{t}} * {{c2}};
  }
  printf("%f\n", {{out}}[0]);
  return 0;
}
)TPL";

/// Reduction synthetic template (same structure, reduction kernel).
constexpr std::string_view kSynthReductionTemplate = R"TPL(#include <stdio.h>
#include <math.h>

#define SIZE {{size}}

double {{arr}}[SIZE];

int main(void) {
  int {{i}};
  double {{acc}} = 0;
  double seed = {{seed}};
  for ({{i}} = 0; {{i}} < SIZE; {{i}}++) {
    seed = seed * 0.99 + {{c0}};
    {{arr}}[{{i}}] = seed;
  }
{% for r in 0..pad %}  {{arr}}[{{r}}] = {{arr}}[{{r}}] - 0.25;
{% endfor %}
  #pragma omp parallel for reduction(+:{{acc}})
  for ({{i}} = 0; {{i}} < SIZE; {{i}}++) {
    {{acc}} += {{fn}}({{arr}}[{{i}}] {{op}} {{c1}});
  }
  printf("%f\n", {{acc}});
  return 0;
}
)TPL";

/// Serial synthetic template: pure recurrence program, no calls, no nests.
constexpr std::string_view kSynthSerialTemplate = R"TPL(#include <stdio.h>

#define SIZE {{size}}

double {{arr}}[SIZE];

int main(void) {
  int {{i}};
  double {{x}} = {{seed}};
  for ({{i}} = 1; {{i}} < SIZE; {{i}}++) {
    {{arr}}[{{i}}] = {{arr}}[{{i}} - 1] * {{c0}} + {{c1}};
  }
  printf("%f\n", {{arr}}[SIZE - 1] + {{x}});
  return 0;
}
)TPL";

std::string make_synth_file(Rng& rng, std::string_view tmpl) {
  Names names(rng);
  TemplateBindings vars;
  vars["size"] = rand_bound_literal(rng);
  vars["arr"] = names.array();
  vars["out"] = names.array();
  vars["i"] = names.index();
  vars["t"] = names.temp();
  vars["x"] = names.temp();
  vars["acc"] = names.acc();
  vars["fn"] = rng.pick(kPureBuiltinPool);
  vars["op"] = rng.chance(0.7) ? "+" : "*";
  vars["seed"] = rand_coeff(rng);
  vars["c0"] = rand_coeff(rng);
  vars["c1"] = rand_coeff(rng);
  vars["c2"] = rand_coeff(rng);
  vars["pad"] = std::to_string(rng.uniform_int(0, 3));
  return render_template(tmpl, vars);
}

}  // namespace

std::vector<GeneratedFile> CorpusGenerator::generate_files() const {
  std::vector<GeneratedFile> files;
  Rng root(config_.seed);

  struct Quota {
    const char* tag;
    int count;
    double call_frac;
    double nested_frac;
    std::string (*make)(Rng&, bool, bool);
    SampleOrigin origin;
  };

  const auto serial_maker = [](Rng& rng, bool with_call, bool nested) {
    return make_serial_file(rng, pick_serial_kind(rng, with_call, nested), with_call, nested);
  };
  // Callee-dependent pure pairs draw from the private quota (they are
  // plain parallel-for do-alls whose parallelism hinges on the callee).
  const auto private_maker = [](Rng& rng, bool with_call, bool nested) {
    if (with_call) {
      const double r = rng.uniform();
      if (r < 0.40) return make_extern_call_file(rng, PragmaCategory::kPrivate);
      if (r < 0.75) return make_callee_pair_file(rng, /*pure=*/true);
      return make_private_file(rng, /*with_call=*/true, nested);
    }
    if (!nested && rng.chance(0.3)) return make_long_tail_file(rng, /*serial=*/false);
    if (!nested && rng.chance(0.18)) {
      // simd-looking short body under a plain parallel-for (category blur).
      return swap_pragma(make_simd_file(rng, false, false), "#pragma omp parallel for");
    }
    return make_private_file(rng, /*with_call=*/false, nested);
  };
  const auto reduction_maker = [](Rng& rng, bool with_call, bool nested) {
    if (with_call && rng.chance(0.5)) {
      return make_extern_call_file(rng, PragmaCategory::kReduction);
    }
    return make_reduction_file(rng, with_call, nested);
  };
  const auto simd_maker = [](Rng& rng, bool with_call, bool nested) {
    if (!with_call && !nested && rng.chance(0.25)) {
      // private-style body the developer annotated as simd (category blur).
      return swap_pragma(make_private_file(rng, false, false), "#pragma omp simd");
    }
    return make_simd_file(rng, with_call, nested);
  };
  const auto target_maker = [](Rng& rng, bool with_call, bool nested) {
    if (!with_call && rng.chance(0.25)) {
      return swap_pragma(make_private_file(rng, false, nested),
                         "#pragma omp target teams distribute parallel for");
    }
    return make_target_file(rng, with_call, nested);
  };

  const Quota quotas[] = {
      {"gh-reduction", config_.scaled(config_.github_reduction), config_.reduction_call_frac,
       config_.reduction_nested_frac, reduction_maker, SampleOrigin::kGitHub},
      {"gh-private", config_.scaled(config_.github_private), config_.private_call_frac,
       config_.private_nested_frac, private_maker, SampleOrigin::kGitHub},
      {"gh-simd", config_.scaled(config_.github_simd), config_.simd_call_frac,
       config_.simd_nested_frac, simd_maker, SampleOrigin::kGitHub},
      {"gh-target", config_.scaled(config_.github_target), config_.target_call_frac,
       config_.target_nested_frac, target_maker, SampleOrigin::kGitHub},
      {"gh-serial", config_.scaled(config_.github_nonparallel), config_.nonparallel_call_frac,
       config_.nonparallel_nested_frac, serial_maker, SampleOrigin::kGitHub},
  };

  for (const auto& quota : quotas) {
    Rng stream = root.fork(quota.tag);
    for (int k = 0; k < quota.count; ++k) {
      const bool with_call = stream.chance(quota.call_frac);
      const bool nested = stream.chance(quota.nested_frac);
      GeneratedFile file;
      file.name = std::string(quota.tag) + "-" + std::to_string(k);
      file.source = quota.make(stream, with_call, nested);
      file.origin = quota.origin;
      files.push_back(std::move(file));
    }
  }

  // Synthetic programs (§4.3). Each parallel program also contributes its
  // serial init loop, so the dedicated serial quota is reduced accordingly.
  {
    Rng stream = root.fork("synth-doall");
    for (int k = 0; k < config_.scaled(config_.synth_doall); ++k) {
      files.push_back(GeneratedFile{"synth-doall-" + std::to_string(k),
                                    make_synth_file(stream, kSynthDoAllTemplate),
                                    SampleOrigin::kSynthetic});
    }
  }
  {
    Rng stream = root.fork("synth-reduction");
    for (int k = 0; k < config_.scaled(config_.synth_reduction); ++k) {
      files.push_back(GeneratedFile{"synth-reduction-" + std::to_string(k),
                                    make_synth_file(stream, kSynthReductionTemplate),
                                    SampleOrigin::kSynthetic});
    }
  }
  {
    Rng stream = root.fork("synth-serial");
    const int init_loops =
        config_.scaled(config_.synth_doall) + config_.scaled(config_.synth_reduction);
    const int remaining = std::max(0, config_.scaled(config_.synth_nonparallel) - init_loops);
    for (int k = 0; k < remaining; ++k) {
      files.push_back(GeneratedFile{"synth-serial-" + std::to_string(k),
                                    make_synth_file(stream, kSynthSerialTemplate),
                                    SampleOrigin::kSynthetic});
    }
  }
  return files;
}

}  // namespace g2p
