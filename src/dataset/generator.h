// OMP_Serial corpus generator (§4).
//
// Substitutes for the paper's GitHub crawl + benchmark-derived Jinja2
// templates: a deterministic generator that reproduces the published
// marginal statistics of Table 1 (loops per pragma category, function-call
// and nested-loop fractions, approximate LOC) and the qualitative pattern
// families the paper names — do-all, reduction, simd-style short loops,
// target offload kernels, and the serial patterns (loop-carried flow deps,
// scalar recurrences, prefix sums, pointer chasing, I/O, search loops)
// that algorithm-based tools correctly refuse to parallelize.
//
// Every pragma-labeled loop is parallel by construction; every unlabeled
// loop carries a real dependence (verified in tests with the DiscoPoP
// simulacrum, mirroring the paper's §4.3 verification step).
#pragma once

#include <cstdint>

#include "dataset/corpus.h"

namespace g2p {

struct GeneratorConfig {
  std::uint64_t seed = 20230509;  // arXiv submission date of the paper
  /// Fraction of Table 1's counts to generate (1.0 = paper-size corpus).
  double scale = 0.1;

  // Table 1 targets at scale 1.0 — GitHub source.
  int github_reduction = 3705;
  int github_private = 6278;
  int github_simd = 3574;
  int github_target = 2155;
  int github_nonparallel = 13972;
  // Synthetic source.
  int synth_reduction = 200;
  int synth_doall = 200;
  int synth_nonparallel = 700;

  // Structural fractions (function-call / nested columns of Table 1).
  double reduction_call_frac = 0.075;
  double reduction_nested_frac = 0.24;
  double private_call_frac = 0.108;
  double private_nested_frac = 0.41;
  double simd_call_frac = 0.012;
  double simd_nested_frac = 0.056;
  double target_call_frac = 0.046;
  double target_nested_frac = 0.089;
  double nonparallel_call_frac = 0.218;
  double nonparallel_nested_frac = 0.424;

  int scaled(int count) const {
    const int n = static_cast<int>(count * scale + 0.5);
    return n < 1 ? 1 : n;
  }
};

class CorpusGenerator {
 public:
  explicit CorpusGenerator(GeneratorConfig config = {}) : config_(config) {}

  /// Generate all source files (GitHub-like + synthetic).
  std::vector<GeneratedFile> generate_files() const;

  /// generate_files() + the §4.2 labeling pipeline.
  Corpus generate() const { return build_corpus(generate_files()); }

  const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;
};

}  // namespace g2p
