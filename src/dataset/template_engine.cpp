#include "dataset/template_engine.h"

#include <cstdlib>

#include "support/strings.h"

namespace g2p {

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }

  /// Render until end-of-input or a matching {% endfor %} (when `in_block`).
  std::string render(const TemplateBindings& bindings, bool in_block) {
    std::string out;
    while (!done()) {
      const std::size_t open = text.find('{', pos);
      if (open == std::string_view::npos) {
        out += text.substr(pos);
        pos = text.size();
        return finish(out, in_block);
      }
      out += text.substr(pos, open - pos);
      pos = open;
      if (text.substr(pos, 2) == "{{") {
        out += render_variable(bindings);
      } else if (text.substr(pos, 2) == "{%") {
        const std::size_t tag_end = text.find("%}", pos);
        if (tag_end == std::string_view::npos) throw TemplateError("unterminated {% tag");
        const auto tag = trim(text.substr(pos + 2, tag_end - pos - 2));
        if (tag == "endfor") {
          if (!in_block) throw TemplateError("stray {% endfor %}");
          pos = tag_end + 2;
          return out;
        }
        out += render_for(tag, tag_end, bindings);
      } else {
        out += text[pos];
        ++pos;
      }
    }
    return finish(out, in_block);
  }

  std::string finish(std::string out, bool in_block) {
    if (in_block) throw TemplateError("missing {% endfor %}");
    return out;
  }

  std::string render_variable(const TemplateBindings& bindings) {
    const std::size_t end = text.find("}}", pos);
    if (end == std::string_view::npos) throw TemplateError("unterminated {{ variable");
    const auto name = std::string(trim(text.substr(pos + 2, end - pos - 2)));
    pos = end + 2;
    auto it = bindings.find(name);
    if (it == bindings.end()) throw TemplateError("unbound template variable '" + name + "'");
    return it->second;
  }

  std::string render_for(std::string_view tag, std::size_t tag_end,
                         const TemplateBindings& bindings) {
    // tag: "for VAR in LO..HI"
    const auto words = split_ws(tag);
    if (words.size() != 4 || words[0] != "for" || words[2] != "in") {
      throw TemplateError("malformed for tag: " + std::string(tag));
    }
    const std::string& var = words[1];
    const auto range = words[3];
    const std::size_t dots = range.find("..");
    if (dots == std::string::npos) throw TemplateError("for range must be LO..HI");

    auto resolve_int = [&](const std::string& token) -> long long {
      if (!token.empty() && (std::isdigit(static_cast<unsigned char>(token[0])) ||
                             token[0] == '-')) {
        return std::strtoll(token.c_str(), nullptr, 10);
      }
      auto it = bindings.find(token);
      if (it == bindings.end()) throw TemplateError("unbound range variable '" + token + "'");
      return std::strtoll(it->second.c_str(), nullptr, 10);
    };
    const long long lo = resolve_int(range.substr(0, dots));
    const long long hi = resolve_int(range.substr(dots + 2));

    pos = tag_end + 2;
    const std::size_t body_start = pos;
    std::string out;
    if (lo >= hi) {
      // Skip the body once to find the endfor.
      TemplateBindings inner = bindings;
      inner[var] = "0";
      Parser probe{text, body_start};
      probe.render(inner, /*in_block=*/true);
      pos = probe.pos;
      return out;
    }
    for (long long i = lo; i < hi; ++i) {
      TemplateBindings inner = bindings;
      inner[var] = std::to_string(i);
      Parser iteration{text, body_start};
      out += iteration.render(inner, /*in_block=*/true);
      pos = iteration.pos;
    }
    return out;
  }
};

}  // namespace

std::string render_template(std::string_view tmpl, const TemplateBindings& bindings) {
  Parser parser{tmpl, 0};
  return parser.render(bindings, /*in_block=*/false);
}

}  // namespace g2p
