// Minimal Jinja2-style template engine (§4.3: the paper generates synthetic
// C programs with Jinja2). Supports {{var}} substitution and
// {% for x in 0..n %} ... {% endfor %} repetition — enough to express the
// paper's do-all / reduction templates with randomized identifiers,
// constants, and operators.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

namespace g2p {

class TemplateError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Variable bindings for one render.
using TemplateBindings = std::map<std::string, std::string>;

/// Render a template:
///   {{name}}                      -> bindings.at("name")
///   {% for i in 0..3 %}X{{i}}{% endfor %} -> X0X1X2  (exclusive bound)
/// Unknown variables throw TemplateError. Nested for-blocks are supported;
/// the loop variable shadows outer bindings.
std::string render_template(std::string_view tmpl, const TemplateBindings& bindings);

}  // namespace g2p
