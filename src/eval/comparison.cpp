#include "eval/comparison.h"

namespace g2p {

ToolRunResults run_tools_on_corpus(const Corpus& corpus) {
  ToolRunResults out;
  const auto tools = make_all_tools();
  for (const auto& tool : tools) {
    auto& results = out.by_tool[std::string(tool->name())];
    results.reserve(corpus.samples.size());
    for (const auto& sample : corpus.samples) {
      results.push_back(
          tool->analyze(*sample.loop, sample.parsed->tu, &sample.parsed->structs));
    }
  }
  return out;
}

std::string_view loop_category_name(LoopCategory cat) {
  switch (cat) {
    case LoopCategory::kReduction: return "Loops with reduction";
    case LoopCategory::kFunctionCall: return "Loops with function call";
    case LoopCategory::kReductionAndCall: return "Loops with reduction and function call";
    case LoopCategory::kNested: return "Nested loops";
    case LoopCategory::kOthers: return "Others";
  }
  return "?";
}

LoopCategory categorize_loop(const LoopSample& sample) {
  const bool reduction = sample.category == PragmaCategory::kReduction;
  if (reduction && sample.has_function_call) return LoopCategory::kReductionAndCall;
  if (reduction) return LoopCategory::kReduction;
  if (sample.has_function_call) return LoopCategory::kFunctionCall;
  if (sample.is_nested) return LoopCategory::kNested;
  return LoopCategory::kOthers;
}

std::map<std::string, std::map<LoopCategory, int>> missed_by_category(
    const Corpus& corpus, const ToolRunResults& results) {
  std::map<std::string, std::map<LoopCategory, int>> out;
  for (const auto& [tool, verdicts] : results.by_tool) {
    auto& buckets = out[tool];
    for (std::size_t i = 0; i < corpus.samples.size(); ++i) {
      const auto& sample = corpus.samples[i];
      if (!sample.parallel) continue;
      if (verdicts[i].detected_parallel()) continue;  // found it
      ++buckets[categorize_loop(sample)];
    }
  }
  return out;
}

std::vector<SubsetComparison> build_subsets(const Corpus& corpus,
                                            const ToolRunResults& results,
                                            const std::vector<int>& candidate_indices) {
  std::vector<SubsetComparison> out;
  for (const auto& [tool, verdicts] : results.by_tool) {
    SubsetComparison cmp;
    cmp.tool = tool;
    for (int idx : candidate_indices) {
      const auto& verdict = verdicts[static_cast<std::size_t>(idx)];
      if (!verdict.applicable) continue;
      cmp.subset.push_back(idx);
      cmp.tool_metrics.add(verdict.parallel,
                           corpus.samples[static_cast<std::size_t>(idx)].parallel);
    }
    out.push_back(std::move(cmp));
  }
  return out;
}

int count_detected(const Corpus& corpus, const ToolRunResults& results,
                   const std::string& tool, const std::vector<int>& indices) {
  const auto it = results.by_tool.find(tool);
  if (it == results.by_tool.end()) return 0;
  int detected = 0;
  for (int idx : indices) {
    const auto& verdict = it->second[static_cast<std::size_t>(idx)];
    if (verdict.detected_parallel() && corpus.samples[static_cast<std::size_t>(idx)].parallel) {
      ++detected;
    }
  }
  return detected;
}

}  // namespace g2p
