// Tool-vs-model comparison harness: the machinery behind Figure 2 and
// Tables 3-4 (subset construction, category-wise miss bucketing, TP/TN/FP/FN
// accounting).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/tools.h"
#include "dataset/corpus.h"
#include "eval/metrics.h"

namespace g2p {

/// Cached verdict of every tool on every corpus sample.
struct ToolRunResults {
  // tool name -> per-sample result (indexed like corpus.samples).
  std::map<std::string, std::vector<ToolResult>> by_tool;
};

ToolRunResults run_tools_on_corpus(const Corpus& corpus);

/// Figure 2 categories.
enum class LoopCategory {
  kReduction,
  kFunctionCall,
  kReductionAndCall,
  kNested,
  kOthers,
};
std::string_view loop_category_name(LoopCategory cat);

/// Bucket a sample by its structural features (reduction+call beats the
/// individual buckets, matching the figure's disjoint categories).
LoopCategory categorize_loop(const LoopSample& sample);

/// Figure 2: for each tool, the number of *parallel-labeled* loops it fails
/// to detect, per category.
std::map<std::string, std::map<LoopCategory, int>> missed_by_category(
    const Corpus& corpus, const ToolRunResults& results);

/// Table 4 row: tool-vs-model on the subset of `indices` that the tool can
/// process.
struct SubsetComparison {
  std::string tool;
  std::vector<int> subset;     // corpus indices processable by the tool
  BinaryMetrics tool_metrics;  // tool's detection quality on the subset
};

/// The subset of `candidate_indices` each tool can process, with the tool's
/// own detection metrics (model metrics are added by the bench).
std::vector<SubsetComparison> build_subsets(const Corpus& corpus,
                                            const ToolRunResults& results,
                                            const std::vector<int>& candidate_indices);

/// Table 3: number of parallel-labeled loops detected by a tool over the
/// given indices.
int count_detected(const Corpus& corpus, const ToolRunResults& results,
                   const std::string& tool, const std::vector<int>& indices);

}  // namespace g2p
