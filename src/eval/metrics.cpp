#include "eval/metrics.h"

#include "support/strings.h"

namespace g2p {

std::string BinaryMetrics::summary() const {
  return "P=" + fmt_fixed(precision(), 2) + " R=" + fmt_fixed(recall(), 2) +
         " F1=" + fmt_fixed(f1(), 2) + " Acc=" + fmt_fixed(accuracy(), 2);
}

}  // namespace g2p
