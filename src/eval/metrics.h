// Binary classification metrics: the precision / recall / F1 / accuracy
// columns of Tables 2, 4, and 5.
#pragma once

#include <string>

namespace g2p {

struct BinaryMetrics {
  int tp = 0, tn = 0, fp = 0, fn = 0;

  void add(bool predicted, bool actual) {
    if (predicted && actual) ++tp;
    else if (predicted && !actual) ++fp;
    else if (!predicted && actual) ++fn;
    else ++tn;
  }

  int total() const { return tp + tn + fp + fn; }
  double precision() const { return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp); }
  double recall() const { return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn); }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double accuracy() const {
    return total() == 0 ? 0.0 : static_cast<double>(tp + tn) / total();
  }

  /// "P=0.92 R=0.82 F1=0.87 Acc=0.85" style summary.
  std::string summary() const;
};

}  // namespace g2p
