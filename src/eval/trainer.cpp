#include "eval/trainer.h"

#include <algorithm>

#include "frontend/lexer.h"
#include "support/log.h"
#include "support/rng.h"
#include "tensor/optim.h"

namespace g2p {

Vocab build_corpus_vocab(const Corpus& corpus, const std::vector<int>& train_indices,
                         int min_freq, int max_size) {
  std::unordered_map<std::string, int> counts;
  for (int idx : train_indices) {
    const auto& sample = corpus.samples[static_cast<std::size_t>(idx)];
    // Node attributes of the whole file (covers callee bodies merged into
    // aug-ASTs) plus raw code tokens of the loop (PragFormer input).
    collect_text_attributes(*sample.parsed->tu, counts);
    try {
      Arena arena;
      for (const auto& token : lex_code_tokens(sample.loop_source, arena)) {
        ++counts[std::string(token.text)];
      }
    } catch (const std::exception&) {
    }
  }
  return Vocab::build(counts, min_freq, max_size);
}

std::vector<Example> prepare_examples(const Corpus& corpus, const std::vector<int>& indices,
                                      const Vocab& vocab, const AugAstOptions& aug,
                                      int token_max_len) {
  AugAstBuilder builder(vocab, aug);
  std::vector<Example> out;
  out.reserve(indices.size());
  for (int idx : indices) {
    const auto& sample = corpus.samples[static_cast<std::size_t>(idx)];
    Example ex;
    ex.corpus_index = idx;
    ex.graph = builder.build(*sample.loop, sample.parsed->tu);
    ex.tokens = tokenize_for_model(sample.loop_source, vocab, token_max_len);
    ex.label_parallel = sample.parallel ? 1 : 0;
    ex.clause_labels = {sample.category == PragmaCategory::kPrivate ? 1 : 0,
                        sample.category == PragmaCategory::kReduction ? 1 : 0,
                        sample.category == PragmaCategory::kSimd ? 1 : 0,
                        sample.category == PragmaCategory::kTarget ? 1 : 0};
    out.push_back(std::move(ex));
  }
  return out;
}

namespace {

/// Merge a shuffled mini-batch of example graphs into one indexed
/// BatchedGraph; every HGT layer of the step shares the precomputed CSR.
BatchedGraph batch_of(const std::vector<Example>& examples, std::span<const int> order,
                      std::size_t begin, std::size_t end) {
  std::vector<const HetGraph*> graphs;
  graphs.reserve(end - begin);
  for (std::size_t k = begin; k < end; ++k) {
    graphs.push_back(&examples[static_cast<std::size_t>(order[k])].graph.graph);
  }
  return batch_graphs(graphs);
}

/// Contiguous (unshuffled) batch for evaluation/prediction passes.
BatchedGraph batch_of(const std::vector<Example>& examples, std::size_t begin,
                      std::size_t end) {
  std::vector<const HetGraph*> graphs;
  graphs.reserve(end - begin);
  for (std::size_t k = begin; k < end; ++k) graphs.push_back(&examples[k].graph.graph);
  return batch_graphs(graphs);
}

/// Cross-entropy restricted to rows where `mask` is true; null tensor if no
/// rows qualify.
Tensor masked_ce(const Tensor& logits, const std::vector<int>& labels,
                 const std::vector<bool>& mask) {
  std::vector<int> rows;
  std::vector<int> kept_labels;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) {
      rows.push_back(static_cast<int>(i));
      kept_labels.push_back(labels[i]);
    }
  }
  if (rows.empty()) return Tensor();
  return cross_entropy(index_select_rows(logits, rows), kept_labels);
}

}  // namespace

void train_graph_model(Graph2ParModel& model, const std::vector<Example>& train,
                       const TrainConfig& config) {
  Rng rng(config.seed);
  Adam opt(model.parameters(), config.lr, 0.9f, 0.999f, 1e-8f, config.weight_decay);

  std::vector<int> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (std::size_t begin = 0; begin < order.size();
         begin += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t end =
          std::min(order.size(), begin + static_cast<std::size_t>(config.batch_size));
      const auto batch = batch_of(train, order, begin, end);

      std::vector<int> parallel_labels;
      std::vector<bool> is_parallel;
      std::array<std::vector<int>, 4> clause_labels;
      for (std::size_t k = begin; k < end; ++k) {
        const Example& ex = train[static_cast<std::size_t>(order[k])];
        parallel_labels.push_back(ex.label_parallel);
        is_parallel.push_back(ex.label_parallel == 1);
        for (int c = 0; c < 4; ++c) {
          clause_labels[static_cast<std::size_t>(c)].push_back(
              ex.clause_labels[static_cast<std::size_t>(c)]);
        }
      }

      opt.zero_grad();
      const Tensor pooled = model.encode(batch);
      Tensor loss = cross_entropy(model.task_logits(pooled, PredictionTask::kParallel),
                                  parallel_labels);
      // Clause heads: only parallel loops carry a clause label (§6.3).
      for (int c = 0; c < 4; ++c) {
        const Tensor clause_loss =
            masked_ce(model.task_logits(pooled, static_cast<PredictionTask>(c + 1)),
                      clause_labels[static_cast<std::size_t>(c)], is_parallel);
        if (clause_loss.defined()) {
          loss = add(loss, scale(clause_loss, config.clause_loss_weight));
        }
      }
      loss.backward();
      opt.clip_grad_norm(config.clip_norm);
      opt.step();
      epoch_loss += loss.item();
      ++batches;
    }
    if (config.verbose) {
      G2P_LOG_INFO << "graph-model epoch " << epoch + 1 << "/" << config.epochs
                   << " loss=" << (batches ? epoch_loss / batches : 0.0);
    }
  }
}

EvalReport evaluate_graph_model(const Graph2ParModel& model,
                                const std::vector<Example>& examples, int batch_size) {
  EvalReport report;
  const NoGradGuard no_grad;
  for (std::size_t begin = 0; begin < examples.size();
       begin += static_cast<std::size_t>(batch_size)) {
    const std::size_t end =
        std::min(examples.size(), begin + static_cast<std::size_t>(batch_size));
    const auto batch = batch_of(examples, begin, end);
    const Tensor pooled = model.encode(batch);
    const auto parallel_pred =
        argmax_rows(model.task_logits(pooled, PredictionTask::kParallel));
    std::array<std::vector<int>, 4> clause_preds;
    for (int c = 0; c < 4; ++c) {
      clause_preds[static_cast<std::size_t>(c)] =
          argmax_rows(model.task_logits(pooled, static_cast<PredictionTask>(c + 1)));
    }
    for (std::size_t k = begin; k < end; ++k) {
      const Example& ex = examples[k];
      const std::size_t row = k - begin;
      report.tasks[0].add(parallel_pred[row] == 1, ex.label_parallel == 1);
      // Clause tasks are evaluated on parallel loops (§6.3 labeling rule).
      if (ex.label_parallel == 1) {
        for (int c = 0; c < 4; ++c) {
          report.tasks[static_cast<std::size_t>(c + 1)].add(
              clause_preds[static_cast<std::size_t>(c)][row] == 1,
              ex.clause_labels[static_cast<std::size_t>(c)] == 1);
        }
      }
    }
  }
  return report;
}

std::vector<bool> predict_parallel(const Graph2ParModel& model,
                                   const std::vector<Example>& examples, int batch_size) {
  std::vector<bool> out(examples.size());
  const NoGradGuard no_grad;
  for (std::size_t begin = 0; begin < examples.size();
       begin += static_cast<std::size_t>(batch_size)) {
    const std::size_t end =
        std::min(examples.size(), begin + static_cast<std::size_t>(batch_size));
    const auto batch = batch_of(examples, begin, end);
    const auto preds =
        argmax_rows(model.task_logits(model.encode(batch), PredictionTask::kParallel));
    for (std::size_t k = begin; k < end; ++k) out[k] = preds[k - begin] == 1;
  }
  return out;
}

// ---------------------------------------------------------------------------
// PragFormer
// ---------------------------------------------------------------------------

void train_token_model(PragFormerModel& model, const std::vector<Example>& train,
                       const TrainConfig& config) {
  Rng rng(config.seed);
  Adam opt(model.parameters(), config.lr, 0.9f, 0.999f, 1e-8f, config.weight_decay);

  std::vector<int> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (std::size_t begin = 0; begin < order.size();
         begin += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t end =
          std::min(order.size(), begin + static_cast<std::size_t>(config.batch_size));

      // Sequences are encoded one by one (ragged lengths); pooled rows are
      // then concatenated into one batch for the heads.
      std::vector<Tensor> pooled_rows;
      std::vector<int> parallel_labels;
      std::vector<bool> is_parallel;
      std::array<std::vector<int>, 4> clause_labels;
      for (std::size_t k = begin; k < end; ++k) {
        const Example& ex = train[static_cast<std::size_t>(order[k])];
        pooled_rows.push_back(model.encode(ex.tokens));
        parallel_labels.push_back(ex.label_parallel);
        is_parallel.push_back(ex.label_parallel == 1);
        for (int c = 0; c < 4; ++c) {
          clause_labels[static_cast<std::size_t>(c)].push_back(
              ex.clause_labels[static_cast<std::size_t>(c)]);
        }
      }
      opt.zero_grad();
      const Tensor pooled = concat_rows(pooled_rows);
      Tensor loss = cross_entropy(model.task_logits(pooled, PredictionTask::kParallel),
                                  parallel_labels);
      for (int c = 0; c < 4; ++c) {
        const Tensor clause_loss =
            masked_ce(model.task_logits(pooled, static_cast<PredictionTask>(c + 1)),
                      clause_labels[static_cast<std::size_t>(c)], is_parallel);
        if (clause_loss.defined()) {
          loss = add(loss, scale(clause_loss, config.clause_loss_weight));
        }
      }
      loss.backward();
      opt.clip_grad_norm(config.clip_norm);
      opt.step();
      epoch_loss += loss.item();
      ++batches;
    }
    if (config.verbose) {
      G2P_LOG_INFO << "token-model epoch " << epoch + 1 << "/" << config.epochs
                   << " loss=" << (batches ? epoch_loss / batches : 0.0);
    }
  }
}

EvalReport evaluate_token_model(const PragFormerModel& model,
                                const std::vector<Example>& examples) {
  EvalReport report;
  const NoGradGuard no_grad;
  for (const Example& ex : examples) {
    const Tensor pooled = model.encode(ex.tokens);
    const bool parallel_pred =
        argmax_rows(model.task_logits(pooled, PredictionTask::kParallel))[0] == 1;
    report.tasks[0].add(parallel_pred, ex.label_parallel == 1);
    if (ex.label_parallel == 1) {
      for (int c = 0; c < 4; ++c) {
        const bool pred =
            argmax_rows(model.task_logits(pooled, static_cast<PredictionTask>(c + 1)))[0] == 1;
        report.tasks[static_cast<std::size_t>(c + 1)].add(
            pred, ex.clause_labels[static_cast<std::size_t>(c)] == 1);
      }
    }
  }
  return report;
}

std::vector<bool> predict_parallel_tokens(const PragFormerModel& model,
                                          const std::vector<Example>& examples) {
  std::vector<bool> out(examples.size());
  const NoGradGuard no_grad;
  for (std::size_t i = 0; i < examples.size(); ++i) {
    const Tensor pooled = model.encode(examples[i].tokens);
    out[i] = argmax_rows(model.task_logits(pooled, PredictionTask::kParallel))[0] == 1;
  }
  return out;
}

}  // namespace g2p
