// Training and evaluation harness for the Graph2Par model and the
// PragFormer baseline ("Training and Prediction" stage of Figure 1).
//
// Examples are prepared once per representation (full aug-AST, vanilla AST,
// or token sequence) and reused across epochs; mini-batches of graphs are
// merged into one disjoint union so every HGT step is a single dense pass.
#pragma once

#include <array>
#include <vector>

#include "core/graph2par.h"
#include "core/pragformer.h"
#include "dataset/corpus.h"
#include "eval/metrics.h"

namespace g2p {

/// One model-ready example.
struct Example {
  int corpus_index = -1;
  LoopGraph graph;          // graph representations
  std::vector<int> tokens;  // token representation
  int label_parallel = 0;
  std::array<int, 4> clause_labels = {0, 0, 0, 0};  // private/reduction/simd/target
};

/// Shared vocabulary over node attributes and code tokens of the corpus
/// (built on training data only, in the paper's spirit).
Vocab build_corpus_vocab(const Corpus& corpus, const std::vector<int>& train_indices,
                         int min_freq = 2, int max_size = 6000);

/// Build examples for the given corpus rows. `aug` controls the edge
/// families (full aug-AST vs vanilla AST ablation). Token sequences are
/// always attached so the same examples serve PragFormer.
std::vector<Example> prepare_examples(const Corpus& corpus, const std::vector<int>& indices,
                                      const Vocab& vocab, const AugAstOptions& aug,
                                      int token_max_len = 128);

struct TrainConfig {
  int epochs = 6;
  int batch_size = 16;
  float lr = 3e-3f;
  float weight_decay = 1e-4f;
  float clip_norm = 5.0f;
  float clause_loss_weight = 0.5f;  // clause heads vs the parallel head
  std::uint64_t seed = 7;
  bool verbose = false;
};

/// Per-task metrics of one evaluation pass.
struct EvalReport {
  std::array<BinaryMetrics, kNumPredictionTasks> tasks;
  const BinaryMetrics& parallel() const { return tasks[0]; }
};

// ---- Graph2Par ----

/// Train all heads jointly; clause heads see only parallel-labeled examples.
void train_graph_model(Graph2ParModel& model, const std::vector<Example>& train,
                       const TrainConfig& config);

EvalReport evaluate_graph_model(const Graph2ParModel& model,
                                const std::vector<Example>& examples, int batch_size = 32);

/// Per-example parallel predictions (Table 3/4 counting).
std::vector<bool> predict_parallel(const Graph2ParModel& model,
                                   const std::vector<Example>& examples, int batch_size = 32);

// ---- PragFormer ----

void train_token_model(PragFormerModel& model, const std::vector<Example>& train,
                       const TrainConfig& config);

EvalReport evaluate_token_model(const PragFormerModel& model,
                                const std::vector<Example>& examples);

std::vector<bool> predict_parallel_tokens(const PragFormerModel& model,
                                          const std::vector<Example>& examples);

}  // namespace g2p
