#include "frontend/ast.h"

namespace g2p {

std::string_view node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kIntLiteral: return "IntLiteral";
    case NodeKind::kFloatLiteral: return "FloatLiteral";
    case NodeKind::kCharLiteral: return "CharLiteral";
    case NodeKind::kStringLiteral: return "StringLiteral";
    case NodeKind::kDeclRef: return "DeclRefExpr";
    case NodeKind::kBinaryOperator: return "BinaryOperator";
    case NodeKind::kUnaryOperator: return "UnaryOperator";
    case NodeKind::kAssignment: return "Assignment";
    case NodeKind::kConditional: return "ConditionalOperator";
    case NodeKind::kCallExpr: return "CallExpr";
    case NodeKind::kArraySubscript: return "ArraySubscriptExpr";
    case NodeKind::kMemberExpr: return "MemberExpr";
    case NodeKind::kCastExpr: return "CastExpr";
    case NodeKind::kParenExpr: return "ParenExpr";
    case NodeKind::kInitListExpr: return "InitListExpr";
    case NodeKind::kSizeofExpr: return "SizeofExpr";
    case NodeKind::kCompoundStmt: return "CompoundStmt";
    case NodeKind::kDeclStmt: return "DeclStmt";
    case NodeKind::kExprStmt: return "ExprStmt";
    case NodeKind::kIfStmt: return "IfStmt";
    case NodeKind::kForStmt: return "ForStmt";
    case NodeKind::kWhileStmt: return "WhileStmt";
    case NodeKind::kDoStmt: return "DoStmt";
    case NodeKind::kReturnStmt: return "ReturnStmt";
    case NodeKind::kBreakStmt: return "BreakStmt";
    case NodeKind::kContinueStmt: return "ContinueStmt";
    case NodeKind::kNullStmt: return "NullStmt";
    case NodeKind::kVarDecl: return "VarDecl";
    case NodeKind::kParamDecl: return "ParamDecl";
    case NodeKind::kFunctionDecl: return "FunctionDecl";
    case NodeKind::kTranslationUnit: return "TranslationUnit";
  }
  return "?";
}

std::string Type::spelling() const {
  std::string s(base);
  for (int i = 0; i < pointer_depth; ++i) s += "*";
  return s;
}

void DeclStmt::for_each_child(FunctionRef<void(const Node&)> fn) const {
  for (const auto& d : decls) fn(*d);
}

const FunctionDecl* TranslationUnit::find_function(std::string_view name) const {
  for (const auto& d : decls) {
    if (d->kind() != NodeKind::kFunctionDecl) continue;
    const auto* fn = static_cast<const FunctionDecl*>(d);
    if (fn->name == name && fn->is_definition()) return fn;
  }
  return nullptr;
}

void walk(const Node& node, FunctionRef<void(const Node&)> fn) {
  fn(node);
  node.for_each_child([fn](const Node& child) { walk(child, fn); });
}

std::size_t subtree_size(const Node& node) {
  std::size_t n = 0;
  walk(node, [&n](const Node&) { ++n; });
  return n;
}

std::vector<const Node*> collect_kind(const Node& root, NodeKind kind) {
  std::vector<const Node*> out;
  walk(root, [&](const Node& n) {
    if (n.kind() == kind) out.push_back(&n);
  });
  return out;
}

bool any_of_subtree(const Node& root, FunctionRef<bool(const Node&)> pred) {
  bool found = false;
  walk(root, [&](const Node& n) {
    if (!found && pred(n)) found = true;
  });
  return found;
}

}  // namespace g2p
