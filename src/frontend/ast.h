// Abstract syntax tree for the C subset.
//
// Node categories deliberately mirror Clang's AST class names (ForStmt,
// BinaryOperator, CallExpr, DeclRefExpr, ...) because the paper builds its
// aug-AST from Clang output; downstream code (graph construction, analyses,
// interpreter) dispatches on NodeKind.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace g2p {

enum class NodeKind {
  // Expressions.
  kIntLiteral,
  kFloatLiteral,
  kCharLiteral,
  kStringLiteral,
  kDeclRef,
  kBinaryOperator,
  kUnaryOperator,
  kAssignment,       // = and compound assignments
  kConditional,      // ?:
  kCallExpr,
  kArraySubscript,
  kMemberExpr,       // . and ->
  kCastExpr,
  kParenExpr,
  kInitListExpr,
  kSizeofExpr,
  // Statements.
  kCompoundStmt,
  kDeclStmt,
  kExprStmt,
  kIfStmt,
  kForStmt,
  kWhileStmt,
  kDoStmt,
  kReturnStmt,
  kBreakStmt,
  kContinueStmt,
  kNullStmt,
  // Declarations.
  kVarDecl,
  kParamDecl,
  kFunctionDecl,
  kTranslationUnit,
};

std::string_view node_kind_name(NodeKind kind);

/// A (simplified) C type: base spelling plus pointer depth. Array-ness lives
/// on the declarator (VarDecl::array_dims).
struct Type {
  std::string base = "int";   // "int", "unsigned long", "float", "struct pixel", ...
  int pointer_depth = 0;

  bool is_floating() const {
    return base == "float" || base == "double" || base == "long double";
  }
  bool is_void() const { return base == "void" && pointer_depth == 0; }
  std::string spelling() const;

  friend bool operator==(const Type&, const Type&) = default;
};

class Node;
using NodePtr = std::unique_ptr<Node>;

/// Base class of every AST node. Children are owned; traversal is via
/// for_each_child so graph/analysis code never needs per-kind boilerplate.
class Node {
 public:
  explicit Node(NodeKind kind) : kind_(kind) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  int line = 0;

  bool is_expr() const { return kind_ <= NodeKind::kSizeofExpr; }
  bool is_stmt() const {
    return kind_ >= NodeKind::kCompoundStmt && kind_ <= NodeKind::kNullStmt;
  }
  bool is_loop() const {
    return kind_ == NodeKind::kForStmt || kind_ == NodeKind::kWhileStmt ||
           kind_ == NodeKind::kDoStmt;
  }

  /// Invoke `fn` on each direct child, in source order.
  virtual void for_each_child(const std::function<void(const Node&)>& fn) const = 0;

  /// OpenMP pragma text attached to this statement, if any
  /// (e.g. "pragma omp parallel for reduction(+:sum)").
  std::optional<std::string> pragma_text;

 private:
  NodeKind kind_;
};

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

class Expr : public Node {
 public:
  using Node::Node;
};
using ExprPtr = std::unique_ptr<Expr>;

class IntLiteral final : public Expr {
 public:
  IntLiteral(long long v, std::string spelling)
      : Expr(NodeKind::kIntLiteral), value(v), text(std::move(spelling)) {}
  long long value;
  std::string text;
  void for_each_child(const std::function<void(const Node&)>&) const override {}
};

class FloatLiteral final : public Expr {
 public:
  FloatLiteral(double v, std::string spelling)
      : Expr(NodeKind::kFloatLiteral), value(v), text(std::move(spelling)) {}
  double value;
  std::string text;
  void for_each_child(const std::function<void(const Node&)>&) const override {}
};

class CharLiteral final : public Expr {
 public:
  explicit CharLiteral(std::string spelling)
      : Expr(NodeKind::kCharLiteral), text(std::move(spelling)) {}
  std::string text;  // including quotes
  void for_each_child(const std::function<void(const Node&)>&) const override {}
};

class StringLiteral final : public Expr {
 public:
  explicit StringLiteral(std::string spelling)
      : Expr(NodeKind::kStringLiteral), text(std::move(spelling)) {}
  std::string text;  // including quotes
  void for_each_child(const std::function<void(const Node&)>&) const override {}
};

class DeclRef final : public Expr {
 public:
  explicit DeclRef(std::string n) : Expr(NodeKind::kDeclRef), name(std::move(n)) {}
  std::string name;
  void for_each_child(const std::function<void(const Node&)>&) const override {}
};

class BinaryOperator final : public Expr {
 public:
  BinaryOperator(std::string o, ExprPtr l, ExprPtr r)
      : Expr(NodeKind::kBinaryOperator), op(std::move(o)), lhs(std::move(l)), rhs(std::move(r)) {}
  std::string op;  // + - * / % << >> < > <= >= == != & ^ | && || ,
  ExprPtr lhs, rhs;
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*lhs);
    fn(*rhs);
  }
};

class UnaryOperator final : public Expr {
 public:
  UnaryOperator(std::string o, bool pre, ExprPtr e)
      : Expr(NodeKind::kUnaryOperator), op(std::move(o)), prefix(pre), operand(std::move(e)) {}
  std::string op;  // + - ! ~ * & ++ --
  bool prefix;
  ExprPtr operand;
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*operand);
  }
};

class Assignment final : public Expr {
 public:
  Assignment(std::string o, ExprPtr l, ExprPtr r)
      : Expr(NodeKind::kAssignment), op(std::move(o)), lhs(std::move(l)), rhs(std::move(r)) {}
  std::string op;  // = += -= *= /= %= &= ^= |= <<= >>=
  ExprPtr lhs, rhs;
  bool is_compound() const { return op != "="; }
  /// For "+=", returns "+"; for "=", returns "".
  std::string underlying_op() const { return is_compound() ? op.substr(0, op.size() - 1) : ""; }
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*lhs);
    fn(*rhs);
  }
};

class Conditional final : public Expr {
 public:
  Conditional(ExprPtr c, ExprPtr t, ExprPtr f)
      : Expr(NodeKind::kConditional),
        cond(std::move(c)),
        then_expr(std::move(t)),
        else_expr(std::move(f)) {}
  ExprPtr cond, then_expr, else_expr;
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*cond);
    fn(*then_expr);
    fn(*else_expr);
  }
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string c, std::vector<ExprPtr> a)
      : Expr(NodeKind::kCallExpr), callee(std::move(c)), args(std::move(a)) {}
  std::string callee;
  std::vector<ExprPtr> args;
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    for (const auto& a : args) fn(*a);
  }
};

class ArraySubscript final : public Expr {
 public:
  ArraySubscript(ExprPtr b, ExprPtr i)
      : Expr(NodeKind::kArraySubscript), base(std::move(b)), index(std::move(i)) {}
  ExprPtr base, index;
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*base);
    fn(*index);
  }
};

class MemberExpr final : public Expr {
 public:
  MemberExpr(ExprPtr b, std::string m, bool arr)
      : Expr(NodeKind::kMemberExpr), base(std::move(b)), member(std::move(m)), arrow(arr) {}
  ExprPtr base;
  std::string member;
  bool arrow;  // true for ->, false for .
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*base);
  }
};

class CastExpr final : public Expr {
 public:
  CastExpr(Type t, ExprPtr e)
      : Expr(NodeKind::kCastExpr), type(std::move(t)), operand(std::move(e)) {}
  Type type;
  ExprPtr operand;
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*operand);
  }
};

class ParenExpr final : public Expr {
 public:
  explicit ParenExpr(ExprPtr e) : Expr(NodeKind::kParenExpr), inner(std::move(e)) {}
  ExprPtr inner;
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*inner);
  }
};

class InitListExpr final : public Expr {
 public:
  explicit InitListExpr(std::vector<ExprPtr> e)
      : Expr(NodeKind::kInitListExpr), items(std::move(e)) {}
  std::vector<ExprPtr> items;
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    for (const auto& i : items) fn(*i);
  }
};

class SizeofExpr final : public Expr {
 public:
  explicit SizeofExpr(Type t) : Expr(NodeKind::kSizeofExpr), type(std::move(t)) {}
  Type type;
  void for_each_child(const std::function<void(const Node&)>&) const override {}
};

// --------------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------------

class Stmt : public Node {
 public:
  using Node::Node;
};
using StmtPtr = std::unique_ptr<Stmt>;

class CompoundStmt final : public Stmt {
 public:
  CompoundStmt() : Stmt(NodeKind::kCompoundStmt) {}
  std::vector<StmtPtr> body;
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    for (const auto& s : body) fn(*s);
  }
};

class VarDecl;

class DeclStmt final : public Stmt {
 public:
  DeclStmt() : Stmt(NodeKind::kDeclStmt) {}
  std::vector<std::unique_ptr<VarDecl>> decls;
  void for_each_child(const std::function<void(const Node&)>& fn) const override;
};

class ExprStmt final : public Stmt {
 public:
  explicit ExprStmt(ExprPtr e) : Stmt(NodeKind::kExprStmt), expr(std::move(e)) {}
  ExprPtr expr;  // never null (empty statements are kNullStmt)
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*expr);
  }
};

class IfStmt final : public Stmt {
 public:
  IfStmt(ExprPtr c, StmtPtr t, StmtPtr e)
      : Stmt(NodeKind::kIfStmt),
        cond(std::move(c)),
        then_branch(std::move(t)),
        else_branch(std::move(e)) {}
  ExprPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*cond);
    fn(*then_branch);
    if (else_branch) fn(*else_branch);
  }
};

class ForStmt final : public Stmt {
 public:
  ForStmt(StmtPtr i, ExprPtr c, ExprPtr n, StmtPtr b)
      : Stmt(NodeKind::kForStmt),
        init(std::move(i)),
        cond(std::move(c)),
        inc(std::move(n)),
        body(std::move(b)) {}
  StmtPtr init;  // DeclStmt, ExprStmt, or NullStmt; never null
  ExprPtr cond;  // may be null
  ExprPtr inc;   // may be null
  StmtPtr body;
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*init);
    if (cond) fn(*cond);
    if (inc) fn(*inc);
    fn(*body);
  }
};

class WhileStmt final : public Stmt {
 public:
  WhileStmt(ExprPtr c, StmtPtr b)
      : Stmt(NodeKind::kWhileStmt), cond(std::move(c)), body(std::move(b)) {}
  ExprPtr cond;
  StmtPtr body;
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*cond);
    fn(*body);
  }
};

class DoStmt final : public Stmt {
 public:
  DoStmt(StmtPtr b, ExprPtr c)
      : Stmt(NodeKind::kDoStmt), body(std::move(b)), cond(std::move(c)) {}
  StmtPtr body;
  ExprPtr cond;
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    fn(*body);
    fn(*cond);
  }
};

class ReturnStmt final : public Stmt {
 public:
  explicit ReturnStmt(ExprPtr v) : Stmt(NodeKind::kReturnStmt), value(std::move(v)) {}
  ExprPtr value;  // may be null
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    if (value) fn(*value);
  }
};

class BreakStmt final : public Stmt {
 public:
  BreakStmt() : Stmt(NodeKind::kBreakStmt) {}
  void for_each_child(const std::function<void(const Node&)>&) const override {}
};

class ContinueStmt final : public Stmt {
 public:
  ContinueStmt() : Stmt(NodeKind::kContinueStmt) {}
  void for_each_child(const std::function<void(const Node&)>&) const override {}
};

class NullStmt final : public Stmt {
 public:
  NullStmt() : Stmt(NodeKind::kNullStmt) {}
  void for_each_child(const std::function<void(const Node&)>&) const override {}
};

// --------------------------------------------------------------------------
// Declarations
// --------------------------------------------------------------------------

class Decl : public Node {
 public:
  using Node::Node;
};
using DeclPtr = std::unique_ptr<Decl>;

class VarDecl final : public Decl {
 public:
  VarDecl(Type t, std::string n) : Decl(NodeKind::kVarDecl), type(std::move(t)), name(std::move(n)) {}
  Type type;
  std::string name;
  std::vector<ExprPtr> array_dims;  // e.g. int a[10][20] -> {10, 20}
  ExprPtr init;                     // may be null
  bool is_array() const { return !array_dims.empty(); }
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    for (const auto& d : array_dims) fn(*d);
    if (init) fn(*init);
  }
};

class ParamDecl final : public Decl {
 public:
  ParamDecl(Type t, std::string n)
      : Decl(NodeKind::kParamDecl), type(std::move(t)), name(std::move(n)) {}
  Type type;
  std::string name;
  bool is_array = false;  // e.g. float a[]
  void for_each_child(const std::function<void(const Node&)>&) const override {}
};

class FunctionDecl final : public Decl {
 public:
  FunctionDecl(Type rt, std::string n)
      : Decl(NodeKind::kFunctionDecl), return_type(std::move(rt)), name(std::move(n)) {}
  Type return_type;
  std::string name;
  std::vector<std::unique_ptr<ParamDecl>> params;
  std::unique_ptr<CompoundStmt> body;  // null for prototypes
  bool is_definition() const { return body != nullptr; }
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    for (const auto& p : params) fn(*p);
    if (body) fn(*body);
  }
};

class TranslationUnit final : public Node {
 public:
  TranslationUnit() : Node(NodeKind::kTranslationUnit) {}
  std::vector<DeclPtr> decls;  // globals and functions in source order
  void for_each_child(const std::function<void(const Node&)>& fn) const override {
    for (const auto& d : decls) fn(*d);
  }
  /// Find a function definition by name, or nullptr.
  const FunctionDecl* find_function(std::string_view name) const;
};

// --------------------------------------------------------------------------
// Generic traversal helpers
// --------------------------------------------------------------------------

/// Pre-order walk of the whole subtree rooted at `node` (inclusive).
void walk(const Node& node, const std::function<void(const Node&)>& fn);

/// Count nodes in a subtree.
std::size_t subtree_size(const Node& node);

/// Collect all nodes of a given kind in a subtree, pre-order.
std::vector<const Node*> collect_kind(const Node& root, NodeKind kind);

/// True if any node in the subtree satisfies `pred`.
bool any_of_subtree(const Node& root, const std::function<bool(const Node&)>& pred);

}  // namespace g2p
