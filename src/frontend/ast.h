// Abstract syntax tree for the C subset.
//
// Node categories deliberately mirror Clang's AST class names (ForStmt,
// BinaryOperator, CallExpr, DeclRefExpr, ...) because the paper builds its
// aug-AST from Clang output; downstream code (graph construction, analyses,
// interpreter) dispatches on NodeKind.
//
// Ownership is arena-based: every node lives in the Arena carried by the
// ParseResult (or ArenaRoot) that produced it, children are plain pointers,
// and every spelling (`DeclRef::name`, operators, literal text, type bases)
// is a `string_view` into that arena's source copy or intern pool. Nothing
// here allocates per node beyond the bump pointer; the handful of nodes with
// child vectors register their destructor with the arena.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/function_ref.h"

namespace g2p {

enum class NodeKind {
  // Expressions.
  kIntLiteral,
  kFloatLiteral,
  kCharLiteral,
  kStringLiteral,
  kDeclRef,
  kBinaryOperator,
  kUnaryOperator,
  kAssignment,       // = and compound assignments
  kConditional,      // ?:
  kCallExpr,
  kArraySubscript,
  kMemberExpr,       // . and ->
  kCastExpr,
  kParenExpr,
  kInitListExpr,
  kSizeofExpr,
  // Statements.
  kCompoundStmt,
  kDeclStmt,
  kExprStmt,
  kIfStmt,
  kForStmt,
  kWhileStmt,
  kDoStmt,
  kReturnStmt,
  kBreakStmt,
  kContinueStmt,
  kNullStmt,
  // Declarations.
  kVarDecl,
  kParamDecl,
  kFunctionDecl,
  kTranslationUnit,
};

std::string_view node_kind_name(NodeKind kind);

/// A (simplified) C type: base spelling plus pointer depth. Array-ness lives
/// on the declarator (VarDecl::array_dims). `base` views the source buffer
/// (single-word bases) or the parse arena (multi-word spellings).
struct Type {
  std::string_view base = "int";  // "int", "unsigned long", "float", "struct pixel", ...
  int pointer_depth = 0;

  bool is_floating() const {
    return base == "float" || base == "double" || base == "long double";
  }
  bool is_void() const { return base == "void" && pointer_depth == 0; }
  std::string spelling() const;

  friend bool operator==(const Type&, const Type&) = default;
};

class Node;
using NodePtr = Node*;

/// Base class of every AST node. Children are arena-owned; traversal is via
/// for_each_child so graph/analysis code never needs per-kind boilerplate.
/// The destructor is intentionally non-virtual: nodes are destroyed by the
/// arena through their exact type, and leaf nodes (now all-`string_view`)
/// are trivially destructible — the arena frees them with zero work.
class Node {
 public:
  explicit Node(NodeKind kind) : kind_(kind) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  int line = 0;

  bool is_expr() const { return kind_ <= NodeKind::kSizeofExpr; }
  bool is_stmt() const {
    return kind_ >= NodeKind::kCompoundStmt && kind_ <= NodeKind::kNullStmt;
  }
  bool is_loop() const {
    return kind_ == NodeKind::kForStmt || kind_ == NodeKind::kWhileStmt ||
           kind_ == NodeKind::kDoStmt;
  }

  /// Invoke `fn` on each direct child, in source order.
  virtual void for_each_child(FunctionRef<void(const Node&)> fn) const = 0;

  /// OpenMP pragma text attached to this statement, if any
  /// (e.g. "pragma omp parallel for reduction(+:sum)").
  std::optional<std::string_view> pragma_text;

 protected:
  ~Node() = default;  // arena-owned: never deleted through the base

 private:
  NodeKind kind_;
};

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

class Expr : public Node {
 public:
  using Node::Node;

 protected:
  ~Expr() = default;
};
using ExprPtr = Expr*;

class IntLiteral final : public Expr {
 public:
  IntLiteral(long long v, std::string_view spelling)
      : Expr(NodeKind::kIntLiteral), value(v), text(spelling) {}
  long long value;
  std::string_view text;
  void for_each_child(FunctionRef<void(const Node&)>) const override {}
};

class FloatLiteral final : public Expr {
 public:
  FloatLiteral(double v, std::string_view spelling)
      : Expr(NodeKind::kFloatLiteral), value(v), text(spelling) {}
  double value;
  std::string_view text;
  void for_each_child(FunctionRef<void(const Node&)>) const override {}
};

class CharLiteral final : public Expr {
 public:
  explicit CharLiteral(std::string_view spelling)
      : Expr(NodeKind::kCharLiteral), text(spelling) {}
  std::string_view text;  // including quotes
  void for_each_child(FunctionRef<void(const Node&)>) const override {}
};

class StringLiteral final : public Expr {
 public:
  explicit StringLiteral(std::string_view spelling)
      : Expr(NodeKind::kStringLiteral), text(spelling) {}
  std::string_view text;  // including quotes
  void for_each_child(FunctionRef<void(const Node&)>) const override {}
};

class DeclRef final : public Expr {
 public:
  explicit DeclRef(std::string_view n) : Expr(NodeKind::kDeclRef), name(n) {}
  std::string_view name;
  void for_each_child(FunctionRef<void(const Node&)>) const override {}
};

class BinaryOperator final : public Expr {
 public:
  BinaryOperator(std::string_view o, ExprPtr l, ExprPtr r)
      : Expr(NodeKind::kBinaryOperator), op(o), lhs(l), rhs(r) {}
  std::string_view op;  // + - * / % << >> < > <= >= == != & ^ | && || ,
  ExprPtr lhs, rhs;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*lhs);
    fn(*rhs);
  }
};

class UnaryOperator final : public Expr {
 public:
  UnaryOperator(std::string_view o, bool pre, ExprPtr e)
      : Expr(NodeKind::kUnaryOperator), op(o), prefix(pre), operand(e) {}
  std::string_view op;  // + - ! ~ * & ++ --
  bool prefix;
  ExprPtr operand;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*operand);
  }
};

class Assignment final : public Expr {
 public:
  Assignment(std::string_view o, ExprPtr l, ExprPtr r)
      : Expr(NodeKind::kAssignment), op(o), lhs(l), rhs(r) {}
  std::string_view op;  // = += -= *= /= %= &= ^= |= <<= >>=
  ExprPtr lhs, rhs;
  bool is_compound() const { return op != "="; }
  /// For "+=", returns "+"; for "=", returns "".
  std::string_view underlying_op() const {
    return is_compound() ? op.substr(0, op.size() - 1) : std::string_view{};
  }
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*lhs);
    fn(*rhs);
  }
};

class Conditional final : public Expr {
 public:
  Conditional(ExprPtr c, ExprPtr t, ExprPtr f)
      : Expr(NodeKind::kConditional), cond(c), then_expr(t), else_expr(f) {}
  ExprPtr cond, then_expr, else_expr;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*cond);
    fn(*then_expr);
    fn(*else_expr);
  }
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string_view c, std::vector<ExprPtr> a)
      : Expr(NodeKind::kCallExpr), callee(c), args(std::move(a)) {}
  std::string_view callee;
  std::vector<ExprPtr> args;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    for (const auto& a : args) fn(*a);
  }
};

class ArraySubscript final : public Expr {
 public:
  ArraySubscript(ExprPtr b, ExprPtr i)
      : Expr(NodeKind::kArraySubscript), base(b), index(i) {}
  ExprPtr base, index;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*base);
    fn(*index);
  }
};

class MemberExpr final : public Expr {
 public:
  MemberExpr(ExprPtr b, std::string_view m, bool arr)
      : Expr(NodeKind::kMemberExpr), base(b), member(m), arrow(arr) {}
  ExprPtr base;
  std::string_view member;
  bool arrow;  // true for ->, false for .
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*base);
  }
};

class CastExpr final : public Expr {
 public:
  CastExpr(Type t, ExprPtr e) : Expr(NodeKind::kCastExpr), type(t), operand(e) {}
  Type type;
  ExprPtr operand;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*operand);
  }
};

class ParenExpr final : public Expr {
 public:
  explicit ParenExpr(ExprPtr e) : Expr(NodeKind::kParenExpr), inner(e) {}
  ExprPtr inner;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*inner);
  }
};

class InitListExpr final : public Expr {
 public:
  explicit InitListExpr(std::vector<ExprPtr> e)
      : Expr(NodeKind::kInitListExpr), items(std::move(e)) {}
  std::vector<ExprPtr> items;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    for (const auto& i : items) fn(*i);
  }
};

class SizeofExpr final : public Expr {
 public:
  explicit SizeofExpr(Type t) : Expr(NodeKind::kSizeofExpr), type(t) {}
  Type type;
  void for_each_child(FunctionRef<void(const Node&)>) const override {}
};

// --------------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------------

class Stmt : public Node {
 public:
  using Node::Node;

 protected:
  ~Stmt() = default;
};
using StmtPtr = Stmt*;

class CompoundStmt final : public Stmt {
 public:
  CompoundStmt() : Stmt(NodeKind::kCompoundStmt) {}
  std::vector<StmtPtr> body;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    for (const auto& s : body) fn(*s);
  }
};

class VarDecl;

class DeclStmt final : public Stmt {
 public:
  DeclStmt() : Stmt(NodeKind::kDeclStmt) {}
  std::vector<VarDecl*> decls;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override;
};

class ExprStmt final : public Stmt {
 public:
  explicit ExprStmt(ExprPtr e) : Stmt(NodeKind::kExprStmt), expr(e) {}
  ExprPtr expr;  // never null (empty statements are kNullStmt)
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*expr);
  }
};

class IfStmt final : public Stmt {
 public:
  IfStmt(ExprPtr c, StmtPtr t, StmtPtr e)
      : Stmt(NodeKind::kIfStmt), cond(c), then_branch(t), else_branch(e) {}
  ExprPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*cond);
    fn(*then_branch);
    if (else_branch) fn(*else_branch);
  }
};

class ForStmt final : public Stmt {
 public:
  ForStmt(StmtPtr i, ExprPtr c, ExprPtr n, StmtPtr b)
      : Stmt(NodeKind::kForStmt), init(i), cond(c), inc(n), body(b) {}
  StmtPtr init;  // DeclStmt, ExprStmt, or NullStmt; never null
  ExprPtr cond;  // may be null
  ExprPtr inc;   // may be null
  StmtPtr body;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*init);
    if (cond) fn(*cond);
    if (inc) fn(*inc);
    fn(*body);
  }
};

class WhileStmt final : public Stmt {
 public:
  WhileStmt(ExprPtr c, StmtPtr b) : Stmt(NodeKind::kWhileStmt), cond(c), body(b) {}
  ExprPtr cond;
  StmtPtr body;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*cond);
    fn(*body);
  }
};

class DoStmt final : public Stmt {
 public:
  DoStmt(StmtPtr b, ExprPtr c) : Stmt(NodeKind::kDoStmt), body(b), cond(c) {}
  StmtPtr body;
  ExprPtr cond;
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    fn(*body);
    fn(*cond);
  }
};

class ReturnStmt final : public Stmt {
 public:
  explicit ReturnStmt(ExprPtr v) : Stmt(NodeKind::kReturnStmt), value(v) {}
  ExprPtr value;  // may be null
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    if (value) fn(*value);
  }
};

class BreakStmt final : public Stmt {
 public:
  BreakStmt() : Stmt(NodeKind::kBreakStmt) {}
  void for_each_child(FunctionRef<void(const Node&)>) const override {}
};

class ContinueStmt final : public Stmt {
 public:
  ContinueStmt() : Stmt(NodeKind::kContinueStmt) {}
  void for_each_child(FunctionRef<void(const Node&)>) const override {}
};

class NullStmt final : public Stmt {
 public:
  NullStmt() : Stmt(NodeKind::kNullStmt) {}
  void for_each_child(FunctionRef<void(const Node&)>) const override {}
};

// --------------------------------------------------------------------------
// Declarations
// --------------------------------------------------------------------------

class Decl : public Node {
 public:
  using Node::Node;

 protected:
  ~Decl() = default;
};
using DeclPtr = Decl*;

class VarDecl final : public Decl {
 public:
  VarDecl(Type t, std::string_view n) : Decl(NodeKind::kVarDecl), type(t), name(n) {}
  Type type;
  std::string_view name;
  std::vector<ExprPtr> array_dims;  // e.g. int a[10][20] -> {10, 20}
  ExprPtr init = nullptr;           // may be null
  bool is_array() const { return !array_dims.empty(); }
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    for (const auto& d : array_dims) fn(*d);
    if (init) fn(*init);
  }
};

class ParamDecl final : public Decl {
 public:
  ParamDecl(Type t, std::string_view n) : Decl(NodeKind::kParamDecl), type(t), name(n) {}
  Type type;
  std::string_view name;
  bool is_array = false;  // e.g. float a[]
  void for_each_child(FunctionRef<void(const Node&)>) const override {}
};

class FunctionDecl final : public Decl {
 public:
  FunctionDecl(Type rt, std::string_view n)
      : Decl(NodeKind::kFunctionDecl), return_type(rt), name(n) {}
  Type return_type;
  std::string_view name;
  std::vector<ParamDecl*> params;
  CompoundStmt* body = nullptr;  // null for prototypes
  bool is_definition() const { return body != nullptr; }
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    for (const auto& p : params) fn(*p);
    if (body) fn(*body);
  }
};

class TranslationUnit final : public Node {
 public:
  TranslationUnit() : Node(NodeKind::kTranslationUnit) {}
  std::vector<DeclPtr> decls;  // globals and functions in source order
  void for_each_child(FunctionRef<void(const Node&)> fn) const override {
    for (const auto& d : decls) fn(*d);
  }
  /// Find a function definition by name, or nullptr.
  const FunctionDecl* find_function(std::string_view name) const;
};

// --------------------------------------------------------------------------
// Generic traversal helpers
// --------------------------------------------------------------------------

/// Pre-order walk of the whole subtree rooted at `node` (inclusive).
void walk(const Node& node, FunctionRef<void(const Node&)> fn);

/// Count nodes in a subtree.
std::size_t subtree_size(const Node& node);

/// Collect all nodes of a given kind in a subtree, pre-order.
std::vector<const Node*> collect_kind(const Node& root, NodeKind kind);

/// True if any node in the subtree satisfies `pred`.
bool any_of_subtree(const Node& root, FunctionRef<bool(const Node&)> pred);

}  // namespace g2p
