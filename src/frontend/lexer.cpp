#include "frontend/lexer.h"

#include <array>
#include <cstdint>

#include "support/resource_governor.h"
#include "support/strings.h"

namespace g2p {

namespace {

// ---- char-class table -------------------------------------------------------
// One 256-entry flag table replaces the <cctype> calls and per-candidate
// substring probes of the old scanner: every dispatch in the hot loop is a
// single indexed load.

constexpr std::uint8_t kWs = 1;          // space, tab, CR
constexpr std::uint8_t kIdentStart = 2;  // A-Z a-z _
constexpr std::uint8_t kIdentCont = 4;   // ident start or digit
constexpr std::uint8_t kDigit = 8;       // 0-9
constexpr std::uint8_t kXDigit = 16;     // 0-9 a-f A-F
constexpr std::uint8_t kPunct = 32;      // operator / separator start

constexpr std::array<std::uint8_t, 256> build_char_classes() {
  std::array<std::uint8_t, 256> t{};
  t[' '] = t['\t'] = t['\r'] = kWs;
  for (int c = 'A'; c <= 'Z'; ++c) t[c] = kIdentStart | kIdentCont;
  for (int c = 'a'; c <= 'z'; ++c) t[c] = kIdentStart | kIdentCont;
  t['_'] = kIdentStart | kIdentCont;
  for (int c = '0'; c <= '9'; ++c) t[c] = kDigit | kIdentCont | kXDigit;
  for (int c = 'a'; c <= 'f'; ++c) t[c] |= kXDigit;
  for (int c = 'A'; c <= 'F'; ++c) t[c] |= kXDigit;
  for (char c : {'+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^', '~', '?', ':',
                 ';', ',', '.', '(', ')', '{', '}', '[', ']'}) {
    t[static_cast<unsigned char>(c)] |= kPunct;
  }
  return t;
}

constexpr std::array<std::uint8_t, 256> kCharClass = build_char_classes();

inline std::uint8_t char_class(char c) { return kCharClass[static_cast<unsigned char>(c)]; }

/// Single-pass branch-lean scanner. Positions index straight into `src_`;
/// token text is a view of the scanned span. Line starts are tracked so the
/// column of a token is one subtraction, not a per-character counter.
class Scanner {
 public:
  Scanner(std::string_view src, Arena& arena, bool keep_pragmas, bool append_eof,
          std::vector<Token>& out)
      : src_(src), arena_(arena), keep_pragmas_(keep_pragmas), append_eof_(append_eof),
        out_(out) {}

  void run() {
    const std::size_t n = src_.size();
    // Serving-shaped sources average one token per ~3.5 bytes; reserving
    // once keeps vector growth out of the scan.
    out_.reserve(n / 3 + 8);
    while (pos_ < n) {
      const char c = src_[pos_];
      const std::uint8_t cls = char_class(c);
      if (cls & kWs) {
        ++pos_;
        continue;
      }
      if (c == '\n') {
        newline(++pos_);
        continue;
      }
      if (cls & kIdentStart) {
        lex_word();
        continue;
      }
      if (cls & kDigit) {
        lex_number();
        continue;
      }
      if (c == '/' && pos_ + 1 < n && (src_[pos_ + 1] == '/' || src_[pos_ + 1] == '*')) {
        lex_comment();
        continue;
      }
      if (c == '.' && pos_ + 1 < n && (char_class(src_[pos_ + 1]) & kDigit)) {
        lex_number();
        continue;
      }
      if (cls & kPunct) {
        lex_punct();
        continue;
      }
      if (c == '"') {
        lex_quoted('"', TokenKind::kStringLiteral);
        continue;
      }
      if (c == '\'') {
        lex_quoted('\'', TokenKind::kCharLiteral);
        continue;
      }
      if (c == '#') {
        lex_directive();
        continue;
      }
      throw LexError(std::string("unexpected character '") + c + "'", line_);
    }
    if (append_eof_) out_.push_back(Token{TokenKind::kEof, {}, line_, column(pos_)});
  }

 private:
  void newline(std::size_t next_pos) {
    ++line_;
    line_start_ = next_pos;
  }
  int column(std::size_t pos) const { return static_cast<int>(pos - line_start_) + 1; }

  /// Charge one token against the request's governor (token bombs trip the
  /// budget here, inside the scan, before the vector grows unboundedly).
  void charge() {
    if (gov_ != nullptr) gov_->charge_tokens(1);
  }

  void emit(TokenKind kind, std::size_t start, std::size_t end, int line, int col) {
    charge();
    out_.push_back(Token{kind, src_.substr(start, end - start), line, col});
  }

  void lex_word() {
    const std::size_t start = pos_;
    const std::size_t n = src_.size();
    std::size_t p = pos_ + 1;
    while (p < n && (char_class(src_[p]) & kIdentCont)) ++p;
    const std::string_view word = src_.substr(start, p - start);
    const TokenKind kind = is_c_keyword(word) ? TokenKind::kKeyword : TokenKind::kIdentifier;
    charge();
    out_.push_back(Token{kind, word, line_, column(start)});
    pos_ = p;
  }

  void lex_number() {
    const std::size_t start = pos_;
    const std::size_t n = src_.size();
    std::size_t p = pos_;
    bool is_float = false;

    if (src_[p] == '0' && p + 1 < n && (src_[p + 1] == 'x' || src_[p + 1] == 'X')) {
      p += 2;
      while (p < n && (char_class(src_[p]) & kXDigit)) ++p;
    } else {
      while (p < n && (char_class(src_[p]) & kDigit)) ++p;
      // After digits a '.' always belongs to the literal (member access can
      // only follow an identifier or bracket, never a digit sequence).
      if (p < n && src_[p] == '.') {
        is_float = true;
        ++p;
        while (p < n && (char_class(src_[p]) & kDigit)) ++p;
      }
      if (p < n && (src_[p] == 'e' || src_[p] == 'E')) {
        const char sign = p + 1 < n ? src_[p + 1] : '\0';
        const char after_sign = p + 2 < n ? src_[p + 2] : '\0';
        if ((char_class(sign) & kDigit) ||
            ((sign == '+' || sign == '-') && (char_class(after_sign) & kDigit))) {
          is_float = true;
          ++p;
          if (src_[p] == '+' || src_[p] == '-') ++p;
          while (p < n && (char_class(src_[p]) & kDigit)) ++p;
        }
      }
    }
    // Suffixes: f/F/l/L/u/U in any reasonable combination.
    while (p < n) {
      const char s = src_[p];
      if (s == 'f' || s == 'F') {
        is_float = true;
      } else if (s != 'l' && s != 'L' && s != 'u' && s != 'U') {
        break;
      }
      ++p;
    }
    emit(is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral, start, p, line_,
         column(start));
    pos_ = p;
  }

  /// Maximal-munch punctuator match, dispatched on the first char instead of
  /// probing a candidate list.
  void lex_punct() {
    const std::size_t start = pos_;
    const char c = src_[start];
    const char c1 = start + 1 < src_.size() ? src_[start + 1] : '\0';
    const char c2 = start + 2 < src_.size() ? src_[start + 2] : '\0';
    std::size_t len = 1;
    switch (c) {
      case '<':
        len = (c1 == '<') ? (c2 == '=' ? 3 : 2) : (c1 == '=' ? 2 : 1);
        break;
      case '>':
        len = (c1 == '>') ? (c2 == '=' ? 3 : 2) : (c1 == '=' ? 2 : 1);
        break;
      case '.':
        len = (c1 == '.' && c2 == '.') ? 3 : 1;
        break;
      case '-':
        len = (c1 == '>' || c1 == '-' || c1 == '=') ? 2 : 1;
        break;
      case '+':
        len = (c1 == '+' || c1 == '=') ? 2 : 1;
        break;
      case '&':
        len = (c1 == '&' || c1 == '=') ? 2 : 1;
        break;
      case '|':
        len = (c1 == '|' || c1 == '=') ? 2 : 1;
        break;
      case '=':
      case '!':
      case '*':
      case '/':
      case '%':
      case '^':
        len = (c1 == '=') ? 2 : 1;
        break;
      default:
        break;  // ~ ? : ; , ( ) { } [ ] are always single
    }
    emit(TokenKind::kPunct, start, start + len, line_, column(start));
    pos_ = start + len;
  }

  void lex_quoted(char quote, TokenKind kind) {
    const std::size_t start = pos_;
    const int line = line_;
    const int col = column(start);
    const std::size_t n = src_.size();
    std::size_t p = pos_ + 1;  // opening quote
    while (p < n && src_[p] != quote) {
      if (src_[p] == '\\') {
        // An escaped newline would silently desynchronize line tracking;
        // the frontend has always rejected literals that span lines.
        if (p + 1 < n && src_[p + 1] == '\n') throw LexError("unterminated literal", line);
        p += 2;
        continue;
      }
      if (src_[p] == '\n') throw LexError("unterminated literal", line);
      ++p;
    }
    if (p >= n) throw LexError("unterminated literal", line);
    ++p;  // closing quote
    emit(kind, start, p, line, col);
    pos_ = p;
  }

  void lex_comment() {
    const std::size_t n = src_.size();
    if (src_[pos_ + 1] == '/') {
      std::size_t p = pos_ + 2;
      while (p < n && src_[p] != '\n') ++p;
      pos_ = p;  // the newline itself is handled by the main loop
      return;
    }
    const int line = line_;
    std::size_t p = pos_ + 2;
    while (p + 1 < n && !(src_[p] == '*' && src_[p + 1] == '/')) {
      if (src_[p] == '\n') newline(p + 1);
      ++p;
    }
    if (p + 1 >= n) throw LexError("unterminated block comment", line);
    pos_ = p + 2;
  }

  /// Consume a preprocessor line starting at '#'. Emits a kPragma token for
  /// #pragma (line continuations folded to spaces); other directives are
  /// irrelevant to loop-level analysis and dropped.
  void lex_directive() {
    const int line = line_;
    const int col = column(pos_);
    const std::size_t n = src_.size();
    const std::size_t body_start = pos_ + 1;  // past '#'
    std::size_t p = body_start;
    bool folded = false;
    while (p < n && src_[p] != '\n') {
      if (src_[p] == '\\' && p + 1 < n && src_[p + 1] == '\n') {
        folded = true;
        newline(p + 2);
        p += 2;
        continue;
      }
      ++p;
    }
    std::string_view text;
    if (!folded) {
      text = trim(src_.substr(body_start, p - body_start));
    } else {
      std::string synthesized;
      synthesized.reserve(p - body_start);
      for (std::size_t q = body_start; q < p; ++q) {
        if (src_[q] == '\\' && q + 1 < p && src_[q + 1] == '\n') {
          synthesized += ' ';
          ++q;
          continue;
        }
        synthesized += src_[q];
      }
      text = arena_.intern(trim(synthesized));
    }
    if (keep_pragmas_ && starts_with(text, "pragma")) {
      charge();
      out_.push_back(Token{TokenKind::kPragma, text, line, col});
    }
    pos_ = p;  // the terminating newline is handled by the main loop
  }

  std::string_view src_;
  Arena& arena_;
  bool keep_pragmas_;
  bool append_eof_;
  ResourceGovernor* gov_ = ResourceGovernor::current();
  std::vector<Token>& out_;
  std::size_t pos_ = 0;
  std::size_t line_start_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source, Arena& arena) {
  std::vector<Token> out;
  Scanner(source, arena, /*keep_pragmas=*/true, /*append_eof=*/true, out).run();
  return out;
}

std::vector<Token> lex_code_tokens(std::string_view source, Arena& arena) {
  std::vector<Token> out;
  Scanner(source, arena, /*keep_pragmas=*/false, /*append_eof=*/false, out).run();
  return out;
}

}  // namespace g2p
