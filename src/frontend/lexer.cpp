#include "frontend/lexer.h"

#include <cctype>

#include "support/strings.h"

namespace g2p {

namespace {

/// Multi-character punctuators, longest-match-first.
constexpr std::string_view kPuncts3[] = {"<<=", ">>=", "..."};
constexpr std::string_view kPuncts2[] = {"->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
                                         "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "^=",
                                         "|="};

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  bool match(std::string_view text) {
    if (src_.substr(pos_, text.size()) != text) return false;
    for (std::size_t i = 0; i < text.size(); ++i) advance();
    return true;
  }
  int line() const { return line_; }
  int column() const { return col_; }
  std::size_t pos() const { return pos_; }
  std::string_view slice(std::size_t from) const { return src_.substr(from, pos_ - from); }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void lex_number(Cursor& cur, std::vector<Token>& out) {
  const int line = cur.line();
  const int col = cur.column();
  const std::size_t start = cur.pos();
  bool is_float = false;

  if (cur.peek() == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X')) {
    cur.advance();
    cur.advance();
    while (std::isxdigit(static_cast<unsigned char>(cur.peek()))) cur.advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(cur.peek()))) cur.advance();
    // After digits a '.' always belongs to the literal (member access can
    // only follow an identifier or bracket, never a digit sequence).
    if (cur.peek() == '.') {
      is_float = true;
      cur.advance();
      while (std::isdigit(static_cast<unsigned char>(cur.peek()))) cur.advance();
    }
    if (cur.peek() == 'e' || cur.peek() == 'E') {
      const char sign = cur.peek(1);
      if (std::isdigit(static_cast<unsigned char>(sign)) ||
          ((sign == '+' || sign == '-') && std::isdigit(static_cast<unsigned char>(cur.peek(2))))) {
        is_float = true;
        cur.advance();
        if (cur.peek() == '+' || cur.peek() == '-') cur.advance();
        while (std::isdigit(static_cast<unsigned char>(cur.peek()))) cur.advance();
      }
    }
  }
  // Suffixes: f/F/l/L/u/U in any reasonable combination.
  while (cur.peek() == 'f' || cur.peek() == 'F' || cur.peek() == 'l' || cur.peek() == 'L' ||
         cur.peek() == 'u' || cur.peek() == 'U') {
    if (cur.peek() == 'f' || cur.peek() == 'F') is_float = true;
    cur.advance();
  }
  out.push_back(Token{is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral,
                      std::string(cur.slice(start)), line, col});
}

void lex_quoted(Cursor& cur, char quote, TokenKind kind, std::vector<Token>& out) {
  const int line = cur.line();
  const int col = cur.column();
  const std::size_t start = cur.pos();
  cur.advance();  // opening quote
  while (!cur.done() && cur.peek() != quote) {
    if (cur.peek() == '\\') cur.advance();
    if (cur.done()) break;
    if (cur.peek() == '\n') throw LexError("unterminated literal", line);
    cur.advance();
  }
  if (cur.done()) throw LexError("unterminated literal", line);
  cur.advance();  // closing quote
  out.push_back(Token{kind, std::string(cur.slice(start)), line, col});
}

/// Consume a preprocessor line starting at '#'. Returns the directive text
/// with line continuations folded; emits a kPragma token for #pragma.
void lex_directive(Cursor& cur, std::vector<Token>& out) {
  const int line = cur.line();
  const int col = cur.column();
  cur.advance();  // '#'
  std::string text;
  while (!cur.done() && cur.peek() != '\n') {
    if (cur.peek() == '\\' && cur.peek(1) == '\n') {
      cur.advance();
      cur.advance();
      text += ' ';
      continue;
    }
    text += cur.advance();
  }
  const auto trimmed = std::string(trim(text));
  if (starts_with(trimmed, "pragma")) {
    out.push_back(Token{TokenKind::kPragma, trimmed, line, col});
  }
  // #include/#define/#if... are irrelevant to loop-level analysis: dropped.
}

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  Cursor cur(source);

  while (!cur.done()) {
    const char c = cur.peek();

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      cur.advance();
      continue;
    }
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      const int line = cur.line();
      cur.advance();
      cur.advance();
      while (!cur.done() && !(cur.peek() == '*' && cur.peek(1) == '/')) cur.advance();
      if (cur.done()) throw LexError("unterminated block comment", line);
      cur.advance();
      cur.advance();
      continue;
    }
    if (c == '#') {
      lex_directive(cur, out);
      continue;
    }
    if (is_ident_start(c)) {
      const int line = cur.line();
      const int col = cur.column();
      const std::size_t start = cur.pos();
      while (is_ident_char(cur.peek())) cur.advance();
      std::string word(cur.slice(start));
      const TokenKind kind = is_c_keyword(word) ? TokenKind::kKeyword : TokenKind::kIdentifier;
      out.push_back(Token{kind, std::move(word), line, col});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
      lex_number(cur, out);
      continue;
    }
    if (c == '"') {
      lex_quoted(cur, '"', TokenKind::kStringLiteral, out);
      continue;
    }
    if (c == '\'') {
      lex_quoted(cur, '\'', TokenKind::kCharLiteral, out);
      continue;
    }

    // Punctuators, longest match first.
    {
      const int line = cur.line();
      const int col = cur.column();
      bool matched = false;
      for (auto p : kPuncts3) {
        if (cur.match(p)) {
          out.push_back(Token{TokenKind::kPunct, std::string(p), line, col});
          matched = true;
          break;
        }
      }
      if (matched) continue;
      for (auto p : kPuncts2) {
        if (cur.match(p)) {
          out.push_back(Token{TokenKind::kPunct, std::string(p), line, col});
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static constexpr std::string_view kSingles = "+-*/%<>=!&|^~?:;,.(){}[]";
      if (kSingles.find(c) != std::string_view::npos) {
        cur.advance();
        out.push_back(Token{TokenKind::kPunct, std::string(1, c), line, col});
        continue;
      }
      throw LexError(std::string("unexpected character '") + c + "'", cur.line());
    }
  }

  out.push_back(Token{TokenKind::kEof, "", cur.line(), cur.column()});
  return out;
}

std::vector<Token> lex_code_tokens(std::string_view source) {
  auto tokens = lex(source);
  std::vector<Token> out;
  out.reserve(tokens.size());
  for (auto& t : tokens) {
    if (t.kind == TokenKind::kPragma || t.kind == TokenKind::kEof) continue;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace g2p
