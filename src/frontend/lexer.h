// Lexer for the C subset.
//
// Responsibilities (mirrors the paper's pre-processing step, §4.2):
//  * strip // and /* */ comments,
//  * drop preprocessor directives except `#pragma`, which is kept as a
//    kPragma token so OpenMP pragmas can be re-attached to the loops they
//    annotate,
//  * produce the token stream consumed both by the parser and by the
//    token-based PragFormer baseline.
//
// Zero-copy: tokens view straight into `source` — the caller's buffer must
// outlive the token vector. The only synthesized spellings are `#pragma`
// lines with line continuations folded; those are interned into `arena`
// (directives without continuations view the source directly). The scanner
// itself is a single pass driven by a 256-entry char-class table.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "frontend/token.h"
#include "support/arena.h"

namespace g2p {

/// Thrown on malformed input (unterminated string/comment, stray char).
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, int line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Tokenize a full source buffer. Appends a trailing kEof token. Token text
/// views `source` (or `arena` for folded pragma lines).
std::vector<Token> lex(std::string_view source, Arena& arena);

/// Tokenize with kPragma tokens dropped *during the scan* (no second
/// pass/copy) and no trailing kEof — the raw token sequence used by the
/// token-representation baseline (PragFormer) and the lexical aug-AST edges.
std::vector<Token> lex_code_tokens(std::string_view source, Arena& arena);

}  // namespace g2p
