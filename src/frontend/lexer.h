// Lexer for the C subset.
//
// Responsibilities (mirrors the paper's pre-processing step, §4.2):
//  * strip // and /* */ comments,
//  * drop preprocessor directives except `#pragma`, which is kept as a
//    kPragma token so OpenMP pragmas can be re-attached to the loops they
//    annotate,
//  * produce the token stream consumed both by the parser and by the
//    token-based PragFormer baseline.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "frontend/token.h"

namespace g2p {

/// Thrown on malformed input (unterminated string/comment, stray char).
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, int line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Tokenize a full source buffer. Appends a trailing kEof token.
std::vector<Token> lex(std::string_view source);

/// Tokenize and drop kPragma tokens — the raw token sequence used by the
/// token-representation baseline (PragFormer) and the lexical aug-AST edges.
std::vector<Token> lex_code_tokens(std::string_view source);

}  // namespace g2p
