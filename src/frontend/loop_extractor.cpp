#include "frontend/loop_extractor.h"

#include "frontend/printer.h"
#include "support/strings.h"

namespace g2p {

namespace {

/// The body subtree of a loop statement (excludes for-header expressions so
/// that "for (i = 0; i < n; i++)" does not count header calls as body calls —
/// matches how the paper's categories treat calls inside the loop).
const Stmt* loop_body(const Stmt& loop) {
  switch (loop.kind()) {
    case NodeKind::kForStmt: return static_cast<const ForStmt&>(loop).body;
    case NodeKind::kWhileStmt: return static_cast<const WhileStmt&>(loop).body;
    case NodeKind::kDoStmt: return static_cast<const DoStmt&>(loop).body;
    default: return nullptr;
  }
}

void collect_loops_rec(const Node& node, const FunctionDecl* fn, bool outermost_only,
                       std::vector<ExtractedLoop>& out);

ExtractedLoop make_record(const Stmt& loop, const FunctionDecl* fn) {
  ExtractedLoop rec;
  rec.loop = &loop;
  rec.function = fn;
  rec.source = to_source(loop);
  if (loop.pragma_text) rec.pragma = parse_omp_pragma(*loop.pragma_text);
  rec.has_function_call = loop_has_call(loop);
  rec.is_nested = loop_has_inner_loop(loop);
  rec.loc = count_loc(rec.source);
  rec.depth = loop_nest_depth(loop);
  return rec;
}

void collect_loops_rec(const Node& node, const FunctionDecl* fn, bool outermost_only,
                       std::vector<ExtractedLoop>& out) {
  const FunctionDecl* enclosing =
      node.kind() == NodeKind::kFunctionDecl ? static_cast<const FunctionDecl*>(&node) : fn;

  if (node.is_stmt() && static_cast<const Stmt&>(node).is_loop()) {
    const auto& loop = static_cast<const Stmt&>(node);
    out.push_back(make_record(loop, enclosing));
    if (outermost_only) {
      // Still descend to pick up *pragma-annotated* inner loops: the dataset
      // treats a developer-annotated inner loop as its own data point.
      node.for_each_child([&](const Node& child) {
        walk(child, [&](const Node& n) {
          if (n.is_stmt() && static_cast<const Stmt&>(n).is_loop() && n.pragma_text) {
            out.push_back(make_record(static_cast<const Stmt&>(n), enclosing));
          }
        });
      });
      return;
    }
  }
  node.for_each_child(
      [&](const Node& child) { collect_loops_rec(child, enclosing, outermost_only, out); });
}

}  // namespace

std::vector<ExtractedLoop> extract_loops(const TranslationUnit& tu, bool outermost_only) {
  std::vector<ExtractedLoop> out;
  collect_loops_rec(tu, nullptr, outermost_only, out);
  return out;
}

bool loop_has_call(const Stmt& loop) {
  const Stmt* body = loop_body(loop);
  if (!body) return false;
  return any_of_subtree(*body,
                        [](const Node& n) { return n.kind() == NodeKind::kCallExpr; });
}

bool loop_has_inner_loop(const Stmt& loop) {
  const Stmt* body = loop_body(loop);
  if (!body) return false;
  return any_of_subtree(*body, [](const Node& n) {
    return n.is_stmt() && static_cast<const Stmt&>(n).is_loop();
  });
}

namespace {

int depth_rec(const Node& node) {
  int child_max = 0;
  node.for_each_child([&](const Node& child) {
    child_max = std::max(child_max, depth_rec(child));
  });
  const bool is_loop = node.is_stmt() && static_cast<const Stmt&>(node).is_loop();
  return child_max + (is_loop ? 1 : 0);
}

}  // namespace

int loop_nest_depth(const Stmt& loop) { return depth_rec(loop); }

}  // namespace g2p
