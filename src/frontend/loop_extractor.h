// Loop extraction: the data pre-processing step of §4.2.
//
// Walks a parsed translation unit, finds loop statements, re-attaches the
// OpenMP pragma that precedes each one, and records the structural features
// the paper's Table 1 and Figure 2 report (function calls, nesting, LOC).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "frontend/ast.h"
#include "frontend/pragma.h"

namespace g2p {

/// One extracted loop (a data point of the OMP_Serial dataset).
struct ExtractedLoop {
  const Stmt* loop = nullptr;              // non-owning; lives in the TU
  const FunctionDecl* function = nullptr;  // enclosing function, if any
  std::string source;                      // regenerated loop source (no pragma)
  std::optional<OmpPragma> pragma;         // attached OpenMP pragma, if any
  bool has_function_call = false;          // any CallExpr in the loop subtree
  bool is_nested = false;                  // contains an inner loop
  int loc = 0;                             // non-blank source lines
  int depth = 0;                           // max loop-nest depth (1 = flat)

  bool labeled_parallel() const { return pragma && pragma->marks_parallel_loop(); }
  PragmaCategory category() const {
    return pragma ? categorize(*pragma) : PragmaCategory::kNone;
  }
};

/// Extract loops from a translation unit. With `outermost_only` (the
/// dataset's convention), inner loops of a nest are not emitted as separate
/// data points unless they carry their own OpenMP pragma.
std::vector<ExtractedLoop> extract_loops(const TranslationUnit& tu, bool outermost_only = true);

/// Structural feature helpers (also used by analyses and the corpus
/// generator's bookkeeping).
bool loop_has_call(const Stmt& loop);
bool loop_has_inner_loop(const Stmt& loop);
int loop_nest_depth(const Stmt& loop);

}  // namespace g2p
