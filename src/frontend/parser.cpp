#include "frontend/parser.h"

#include <cstdlib>
#include <set>
#include <utility>

#include "frontend/lexer.h"
#include "support/resource_governor.h"

namespace g2p {

namespace {

/// Arm the request's arena byte cap before any allocation happens. The
/// handler must not return; throwing the typed ResourceExhausted fails just
/// this request's slot.
void arm_arena_cap(Arena& arena) {
  ResourceGovernor* gov = ResourceGovernor::current();
  if (gov == nullptr) return;
  const std::uint64_t cap = gov->budget().max_arena_bytes;
  if (cap == 0) return;
  arena.set_byte_cap(static_cast<std::size_t>(cap),
                     [](std::size_t attempted, std::size_t limit) {
                       throw ResourceExhausted(ResourceLimit::kArenaBytes, attempted, limit);
                     });
}

/// Binary operator precedence (C). Higher binds tighter. Assignment and
/// conditional are handled separately (right-associative).
int binary_precedence(std::string_view op) {
  if (op == "*" || op == "/" || op == "%") return 10;
  if (op == "+" || op == "-") return 9;
  if (op == "<<" || op == ">>") return 8;
  if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
  if (op == "==" || op == "!=") return 6;
  if (op == "&") return 5;
  if (op == "^") return 4;
  if (op == "|") return 3;
  if (op == "&&") return 2;
  if (op == "||") return 1;
  return -1;
}

/// Builtin typedef names every parse knows without populating a per-parse
/// set (the common case: sources declare no typedefs of their own).
bool is_builtin_typedef(std::string_view name) {
  switch (name.size()) {
    case 4:
      return name == "FILE" || name == "bool";
    case 6:
      return name == "size_t" || name == "int8_t";
    case 7:
      return name == "int16_t" || name == "int32_t" || name == "int64_t" ||
             name == "uint8_t" || name == "ssize_t";
    case 8:
      return name == "uint16_t" || name == "uint32_t" || name == "uint64_t";
    case 9:
      return name == "ptrdiff_t";
    default:
      return false;
  }
}

bool is_assign_op(std::string_view op) {
  return op == "=" || op == "+=" || op == "-=" || op == "*=" || op == "/=" || op == "%=" ||
         op == "&=" || op == "^=" || op == "|=" || op == "<<=" || op == ">>=";
}

/// Numeric literal parsing from a (non-null-terminated) spelling view.
/// Spellings are lexer-bounded, so a stack copy is always enough.
long long parse_int_literal(std::string_view text) {
  char buf[64];
  const std::size_t len = std::min(text.size(), sizeof buf - 1);
  text.copy(buf, len);
  buf[len] = '\0';
  return std::strtoll(buf, nullptr, 0);  // base 0: handles 0x / octal
}

double parse_float_literal(std::string_view text) {
  char buf[64];
  const std::size_t len = std::min(text.size(), sizeof buf - 1);
  text.copy(buf, len);
  buf[len] = '\0';
  return std::strtod(buf, nullptr);
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, Arena& arena)
      : tokens_(std::move(tokens)), arena_(arena) {
    if (gov_ != nullptr && gov_->budget().max_parse_depth != 0) {
      max_depth_ = gov_->budget().max_parse_depth;
    }
    // Every productive grammar rule consumes at least one token, so a parse
    // that burns this much fuel is cycling without advancing — a grammar bug
    // an adversarial input found. Terminate it with a typed error instead of
    // spinning (the backstop for satellite "non-advancing parse" regressions).
    fuel_ = tokens_.size() * 8 + 64;
  }

  ParseResult parse_unit() {
    ParseResult result;
    result.tu = make<TranslationUnit>();
    while (!peek().is(TokenKind::kEof)) {
      if (peek().is(TokenKind::kPragma)) {
        pending_pragma_ = advance().text;
        continue;
      }
      parse_top_level(*result.tu);
    }
    result.structs = std::move(structs_);
    result.typedefs.reserve(typedefs_.size());
    for (const auto& t : typedefs_) result.typedefs.emplace_back(t);
    return result;
  }

  StmtPtr parse_single_statement() {
    auto stmt = parse_statement();
    expect_eof();
    return stmt;
  }

  ExprPtr parse_single_expression() {
    auto expr = parse_expr();
    expect_eof();
    return expr;
  }

 private:
  // ---- adversarial-input guards -------------------------------------------

  /// Hard ceiling on recursive-descent nesting when no governor is installed
  /// (training, tools, tests): deep enough for any real translation unit,
  /// shallow enough that the C++ stack cannot overflow first.
  static constexpr std::uint32_t kDepthBackstop = 512;

  /// RAII depth accounting for every input-driven recursion site. Throws the
  /// typed ResourceExhausted before the native stack is at risk.
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : p(parser) {
      if (++p.depth_ > p.max_depth_) {
        throw ResourceExhausted(ResourceLimit::kParseDepth, p.depth_, p.max_depth_);
      }
    }
    ~DepthGuard() { --p.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& p;
  };

  /// Progress assertion: called once per grammar-rule dispatch. Fuel is
  /// proportional to the token count, so a non-advancing parse runs dry and
  /// terminates with a typed error instead of looping.
  void burn_fuel() {
    if (fuel_ == 0) {
      throw ParseError("parser stalled: no progress on malformed input near '" +
                           std::string(peek().text) + "'",
                       peek().line);
    }
    --fuel_;
  }

  /// Arena-create plus a one-node charge against the request's governor —
  /// the only way Parser makes AST nodes, so node bombs trip the budget at
  /// the allocation site.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    if (gov_ != nullptr) gov_->charge_nodes(1);
    return arena_.create<T>(std::forward<Args>(args)...);
  }

  // ---- token plumbing -----------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool match_punct(std::string_view p) {
    if (peek().is_punct(p)) {
      advance();
      return true;
    }
    return false;
  }
  bool match_keyword(std::string_view k) {
    if (peek().is_keyword(k)) {
      advance();
      return true;
    }
    return false;
  }
  void expect_punct(std::string_view p) {
    if (!match_punct(p)) {
      throw ParseError("expected '" + std::string(p) + "', got '" + std::string(peek().text) +
                           "'",
                       peek().line);
    }
  }
  void expect_eof() {
    if (!peek().is(TokenKind::kEof)) {
      throw ParseError("trailing tokens after input: '" + std::string(peek().text) + "'",
                       peek().line);
    }
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message + " near '" + std::string(peek().text) + "'", peek().line);
  }

  // ---- type recognition ---------------------------------------------------

  bool is_typedef_name(std::string_view name) const {
    return is_builtin_typedef(name) || typedefs_.count(name) > 0;
  }

  bool at_type_start() const {
    const Token& t = peek();
    if (t.is(TokenKind::kKeyword) && is_type_start_keyword(t.text)) return true;
    if (t.is(TokenKind::kIdentifier) && is_typedef_name(t.text)) return true;
    return false;
  }

  /// Parse a type specifier: qualifiers + base + pointer stars. Single-token
  /// bases view the source; multi-word spellings are interned in the arena.
  Type parse_type() {
    Type type;
    std::string_view base;
    std::string multi;  // only materialized for multi-word bases
    bool saw_base = false;
    // Qualifiers and multi-word bases ("unsigned long long", "const float").
    while (true) {
      const Token& t = peek();
      if (t.is(TokenKind::kKeyword) &&
          (t.text == "const" || t.text == "static" || t.text == "register" ||
           t.text == "volatile" || t.text == "inline" || t.text == "extern")) {
        advance();  // qualifiers don't affect our analyses
        continue;
      }
      if (t.is(TokenKind::kKeyword) && t.text == "struct") {
        advance();
        if (!peek().is(TokenKind::kIdentifier)) fail("expected struct name");
        multi = "struct ";
        multi += advance().text;
        base = {};
        saw_base = true;
        continue;
      }
      if (t.is(TokenKind::kKeyword) &&
          (t.text == "void" || t.text == "char" || t.text == "short" || t.text == "int" ||
           t.text == "long" || t.text == "float" || t.text == "double" || t.text == "signed" ||
           t.text == "unsigned")) {
        if (!saw_base) {
          base = advance().text;
        } else {
          if (multi.empty()) multi = base;
          multi += " ";
          multi += advance().text;
          base = {};
        }
        saw_base = true;
        continue;
      }
      if (!saw_base && t.is(TokenKind::kIdentifier) && is_typedef_name(t.text)) {
        base = advance().text;
        saw_base = true;
        continue;
      }
      break;
    }
    if (!saw_base) fail("expected type");
    type.base = multi.empty() ? base : arena_.intern(multi);
    while (match_punct("*")) ++type.pointer_depth;
    return type;
  }

  // ---- top level ----------------------------------------------------------

  void parse_top_level(TranslationUnit& tu) {
    if (peek().is_keyword("typedef")) {
      parse_typedef();
      return;
    }
    if (peek().is_keyword("struct") && peek(1).is(TokenKind::kIdentifier) &&
        peek(2).is_punct("{")) {
      parse_struct_definition();
      return;
    }
    if (!at_type_start()) fail("expected declaration");

    const int line = peek().line;
    Type type = parse_type();
    if (!peek().is(TokenKind::kIdentifier)) fail("expected declarator name");
    std::string_view name = advance().text;

    if (peek().is_punct("(")) {
      tu.decls.push_back(parse_function_rest(type, name, line));
      return;
    }
    // Global variable(s).
    DeclStmt* decl_stmt = parse_var_decl_rest(type, name, line);
    for (auto* vd : decl_stmt->decls) tu.decls.push_back(vd);
  }

  void parse_typedef() {
    advance();  // typedef
    // Anonymous-struct typedefs: typedef struct { ... } name;
    if (peek().is_keyword("struct") && (peek(1).is_punct("{") ||
                                        (peek(1).is(TokenKind::kIdentifier) && peek(2).is_punct("{")))) {
      advance();  // struct
      std::string tag;
      if (peek().is(TokenKind::kIdentifier)) tag = std::string(advance().text);
      StructInfo info = parse_struct_body(tag);
      if (!peek().is(TokenKind::kIdentifier)) fail("expected typedef name");
      std::string alias(advance().text);
      expect_punct(";");
      info.name = alias;
      structs_[alias] = info;
      if (!tag.empty()) structs_["struct " + tag] = info;
      typedefs_.insert(std::move(alias));
      return;
    }
    // Plain alias: consume tokens until ';', last identifier is the alias.
    std::string alias;
    while (!peek().is_punct(";") && !peek().is(TokenKind::kEof)) {
      if (peek().is(TokenKind::kIdentifier)) alias = std::string(peek().text);
      advance();
    }
    expect_punct(";");
    if (alias.empty()) fail("typedef without a name");
    typedefs_.insert(std::move(alias));
  }

  void parse_struct_definition() {
    advance();  // struct
    std::string tag(advance().text);
    StructInfo info = parse_struct_body(tag);
    structs_["struct " + tag] = info;
    expect_punct(";");
  }

  StructInfo parse_struct_body(const std::string& tag) {
    StructInfo info;
    info.name = tag.empty() ? "<anon>" : "struct " + tag;
    expect_punct("{");
    while (!peek().is_punct("}")) {
      Type field_type = parse_type();
      while (true) {
        if (!peek().is(TokenKind::kIdentifier)) fail("expected field name");
        StructInfo::Field field;
        field.type = field_type;
        field.name = std::string(advance().text);
        while (match_punct("[")) {
          if (!peek().is(TokenKind::kIntLiteral)) fail("expected constant array bound");
          field.array_dims.push_back(parse_int_literal(advance().text));
          expect_punct("]");
        }
        info.fields.push_back(std::move(field));
        if (!match_punct(",")) break;
      }
      expect_punct(";");
    }
    expect_punct("}");
    return info;
  }

  DeclPtr parse_function_rest(Type return_type, std::string_view name, int line) {
    auto* fn = make<FunctionDecl>(return_type, name);
    fn->line = line;
    expect_punct("(");
    if (!peek().is_punct(")")) {
      if (peek().is_keyword("void") && peek(1).is_punct(")")) {
        advance();
      } else {
        while (true) {
          Type ptype = parse_type();
          std::string_view pname;
          if (peek().is(TokenKind::kIdentifier)) pname = advance().text;
          auto* param = make<ParamDecl>(ptype, pname);
          param->line = peek().line;
          while (match_punct("[")) {  // array params decay to pointers
            param->is_array = true;
            if (peek().is(TokenKind::kIntLiteral) || peek().is(TokenKind::kIdentifier)) advance();
            expect_punct("]");
          }
          fn->params.push_back(param);
          if (!match_punct(",")) break;
        }
      }
    }
    expect_punct(")");
    if (match_punct(";")) return fn;  // prototype
    fn->body = static_cast<CompoundStmt*>(parse_compound());
    return fn;
  }

  // ---- statements ----------------------------------------------------------

  StmtPtr parse_statement() {
    // Attach any pending pragma to the statement we are about to parse.
    if (peek().is(TokenKind::kPragma)) {
      pending_pragma_ = advance().text;
    }
    const std::string_view pragma = std::exchange(pending_pragma_, {});

    auto stmt = parse_statement_inner();
    if (!pragma.empty()) stmt->pragma_text = pragma;
    return stmt;
  }

  StmtPtr parse_statement_inner() {
    DepthGuard depth(*this);
    burn_fuel();
    const int line = peek().line;
    StmtPtr stmt = nullptr;
    if (peek().is_punct("{")) {
      stmt = parse_compound();
    } else if (peek().is_keyword("if")) {
      stmt = parse_if();
    } else if (peek().is_keyword("for")) {
      stmt = parse_for();
    } else if (peek().is_keyword("while")) {
      stmt = parse_while();
    } else if (peek().is_keyword("do")) {
      stmt = parse_do();
    } else if (match_keyword("return")) {
      ExprPtr value = nullptr;
      if (!peek().is_punct(";")) value = parse_expr();
      expect_punct(";");
      stmt = make<ReturnStmt>(value);
    } else if (match_keyword("break")) {
      expect_punct(";");
      stmt = make<BreakStmt>();
    } else if (match_keyword("continue")) {
      expect_punct(";");
      stmt = make<ContinueStmt>();
    } else if (match_punct(";")) {
      stmt = make<NullStmt>();
    } else if (at_type_start()) {
      stmt = parse_decl_stmt();
    } else {
      ExprPtr expr = parse_expr();
      expect_punct(";");
      stmt = make<ExprStmt>(expr);
    }
    stmt->line = line;
    return stmt;
  }

  StmtPtr parse_compound() {
    auto* block = make<CompoundStmt>();
    block->line = peek().line;
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (peek().is(TokenKind::kEof)) fail("unterminated block");
      block->body.push_back(parse_statement());
    }
    expect_punct("}");
    return block;
  }

  StmtPtr parse_if() {
    advance();  // if
    expect_punct("(");
    ExprPtr cond = parse_expr();
    expect_punct(")");
    StmtPtr then_branch = parse_statement();
    StmtPtr else_branch = nullptr;
    if (match_keyword("else")) else_branch = parse_statement();
    return make<IfStmt>(cond, then_branch, else_branch);
  }

  StmtPtr parse_for() {
    advance();  // for
    expect_punct("(");
    StmtPtr init = nullptr;
    if (match_punct(";")) {
      init = make<NullStmt>();
    } else if (at_type_start()) {
      init = parse_decl_stmt();  // consumes ';'
    } else {
      ExprPtr e = parse_expr();
      expect_punct(";");
      init = make<ExprStmt>(e);
    }
    ExprPtr cond = nullptr;
    if (!peek().is_punct(";")) cond = parse_expr();
    expect_punct(";");
    ExprPtr inc = nullptr;
    if (!peek().is_punct(")")) inc = parse_expr();
    expect_punct(")");
    StmtPtr body = parse_statement();
    return make<ForStmt>(init, cond, inc, body);
  }

  StmtPtr parse_while() {
    advance();  // while
    expect_punct("(");
    ExprPtr cond = parse_expr();
    expect_punct(")");
    StmtPtr body = parse_statement();
    return make<WhileStmt>(cond, body);
  }

  StmtPtr parse_do() {
    advance();  // do
    StmtPtr body = parse_statement();
    if (!match_keyword("while")) fail("expected 'while' after do-body");
    expect_punct("(");
    ExprPtr cond = parse_expr();
    expect_punct(")");
    expect_punct(";");
    return make<DoStmt>(body, cond);
  }

  StmtPtr parse_decl_stmt() {
    const int line = peek().line;
    Type type = parse_type();
    if (!peek().is(TokenKind::kIdentifier)) fail("expected variable name");
    std::string_view name = advance().text;
    return parse_var_decl_rest(type, name, line);
  }

  /// Parse the remainder of a variable declaration after "type name",
  /// including array dims, initializer, and comma-separated declarators.
  /// Consumes the terminating ';'.
  DeclStmt* parse_var_decl_rest(Type type, std::string_view first_name, int line) {
    auto* stmt = make<DeclStmt>();
    stmt->line = line;
    std::string_view name = first_name;
    while (true) {
      auto* decl = make<VarDecl>(type, name);
      decl->line = line;
      while (match_punct("[")) {
        if (peek().is_punct("]")) {
          decl->array_dims.push_back(make<IntLiteral>(0, "0"));
        } else {
          decl->array_dims.push_back(parse_assignment_expr());
        }
        expect_punct("]");
      }
      if (match_punct("=")) {
        if (peek().is_punct("{")) {
          decl->init = parse_init_list();
        } else {
          decl->init = parse_assignment_expr();
        }
      }
      stmt->decls.push_back(decl);
      if (!match_punct(",")) break;
      // Subsequent declarators may have their own stars: int a, *p;
      Type next = type;
      next.pointer_depth = 0;
      while (match_punct("*")) ++next.pointer_depth;
      type = next;
      if (!peek().is(TokenKind::kIdentifier)) fail("expected declarator after ','");
      name = advance().text;
    }
    expect_punct(";");
    return stmt;
  }

  ExprPtr parse_init_list() {
    DepthGuard depth(*this);
    burn_fuel();
    expect_punct("{");
    std::vector<ExprPtr> items;
    if (!peek().is_punct("}")) {
      while (true) {
        if (peek().is_punct("{")) {
          items.push_back(parse_init_list());
        } else {
          items.push_back(parse_assignment_expr());
        }
        if (!match_punct(",")) break;
        if (peek().is_punct("}")) break;  // trailing comma
      }
    }
    expect_punct("}");
    return make<InitListExpr>(std::move(items));
  }

  // ---- expressions ----------------------------------------------------------

  ExprPtr parse_expr() {
    ExprPtr expr = parse_assignment_expr();
    while (peek().is_punct(",")) {
      advance();
      ExprPtr rhs = parse_assignment_expr();
      expr = make<BinaryOperator>(",", expr, rhs);
    }
    return expr;
  }

  ExprPtr parse_assignment_expr() {
    // The guard must span the right-recursive call below: `x=x=…=1` grows the
    // native stack one frame per '=' even though each lhs's inner guards have
    // already unwound, so without a live guard here depth_ stays near zero
    // while the real stack grows unboundedly.
    DepthGuard depth(*this);
    burn_fuel();
    ExprPtr lhs = parse_conditional();
    if (peek().is(TokenKind::kPunct) && is_assign_op(peek().text)) {
      std::string_view op = advance().text;
      ExprPtr rhs = parse_assignment_expr();  // right-assoc
      auto* node = make<Assignment>(op, lhs, rhs);
      node->line = node->lhs->line;
      return node;
    }
    return lhs;
  }

  ExprPtr parse_conditional() {
    // Same right-recursion hazard as assignment: `a?b:a?b:…` nests through
    // the else arm, so the guard must outlive that call.
    DepthGuard depth(*this);
    burn_fuel();
    ExprPtr cond = parse_binary(1);
    if (!match_punct("?")) return cond;
    ExprPtr then_expr = parse_expr();
    expect_punct(":");
    ExprPtr else_expr = parse_assignment_expr();
    return make<Conditional>(cond, then_expr, else_expr);
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    while (peek().is(TokenKind::kPunct)) {
      const int prec = binary_precedence(peek().text);
      if (prec < min_prec) break;
      std::string_view op = advance().text;
      ExprPtr rhs = parse_binary(prec + 1);
      auto* node = make<BinaryOperator>(op, lhs, rhs);
      node->line = node->lhs->line;
      lhs = node;
    }
    return lhs;
  }

  bool at_cast_start() const {
    if (!peek().is_punct("(")) return false;
    const Token& t = peek(1);
    if (t.is(TokenKind::kKeyword) && is_type_start_keyword(t.text)) return true;
    if (t.is(TokenKind::kIdentifier) && is_typedef_name(t.text)) {
      // "(T)" or "(T*)" is a cast; "(x)" is parenthesized expression.
      return peek(2).is_punct(")") || peek(2).is_punct("*");
    }
    return false;
  }

  ExprPtr parse_unary() {
    DepthGuard depth(*this);
    burn_fuel();
    const Token& t = peek();
    const int line = t.line;
    if (t.is_punct("+") || t.is_punct("-") || t.is_punct("!") || t.is_punct("~") ||
        t.is_punct("*") || t.is_punct("&") || t.is_punct("++") || t.is_punct("--")) {
      std::string_view op = advance().text;
      ExprPtr operand = parse_unary();
      auto* node = make<UnaryOperator>(op, /*prefix=*/true, operand);
      node->line = line;
      return node;
    }
    if (t.is_keyword("sizeof")) {
      advance();
      if (peek().is_punct("(") &&
          (peek(1).is(TokenKind::kKeyword) ? is_type_start_keyword(peek(1).text)
                                           : is_typedef_name(peek(1).text))) {
        advance();  // (
        Type type = parse_type();
        expect_punct(")");
        auto* node = make<SizeofExpr>(type);
        node->line = line;
        return node;
      }
      ExprPtr operand = parse_unary();
      auto* node = make<UnaryOperator>("sizeof", /*prefix=*/true, operand);
      node->line = line;
      return node;
    }
    if (at_cast_start()) {
      advance();  // (
      Type type = parse_type();
      expect_punct(")");
      ExprPtr operand = parse_unary();
      auto* node = make<CastExpr>(type, operand);
      node->line = line;
      return node;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr expr = parse_primary();
    while (true) {
      if (peek().is_punct("[")) {
        advance();
        ExprPtr index = parse_expr();
        expect_punct("]");
        expr = make<ArraySubscript>(expr, index);
      } else if (peek().is_punct(".") && peek(1).is(TokenKind::kIdentifier)) {
        advance();
        std::string_view member = advance().text;
        expr = make<MemberExpr>(expr, member, false);
      } else if (peek().is_punct("->")) {
        advance();
        if (!peek().is(TokenKind::kIdentifier)) fail("expected member name after '->'");
        std::string_view member = advance().text;
        expr = make<MemberExpr>(expr, member, true);
      } else if (peek().is_punct("++") || peek().is_punct("--")) {
        std::string_view op = advance().text;
        expr = make<UnaryOperator>(op, /*prefix=*/false, expr);
      } else {
        break;
      }
    }
    return expr;
  }

  ExprPtr parse_primary() {
    DepthGuard depth(*this);
    burn_fuel();
    const Token& t = peek();
    const int line = t.line;
    ExprPtr node = nullptr;
    if (t.is(TokenKind::kIntLiteral)) {
      node = make<IntLiteral>(parse_int_literal(t.text), t.text);
      advance();
    } else if (t.is(TokenKind::kFloatLiteral)) {
      node = make<FloatLiteral>(parse_float_literal(t.text), t.text);
      advance();
    } else if (t.is(TokenKind::kCharLiteral)) {
      node = make<CharLiteral>(t.text);
      advance();
    } else if (t.is(TokenKind::kStringLiteral)) {
      node = make<StringLiteral>(t.text);
      advance();
    } else if (t.is(TokenKind::kIdentifier)) {
      std::string_view name = advance().text;
      if (peek().is_punct("(")) {
        advance();
        std::vector<ExprPtr> args;
        if (!peek().is_punct(")")) {
          while (true) {
            args.push_back(parse_assignment_expr());
            if (!match_punct(",")) break;
          }
        }
        expect_punct(")");
        node = make<CallExpr>(name, std::move(args));
      } else {
        node = make<DeclRef>(name);
      }
    } else if (t.is_punct("(")) {
      advance();
      ExprPtr inner = parse_expr();
      expect_punct(")");
      node = make<ParenExpr>(inner);
    } else {
      fail("expected expression");
    }
    node->line = line;
    return node;
  }

  std::vector<Token> tokens_;
  Arena& arena_;
  ResourceGovernor* gov_ = ResourceGovernor::current();
  std::uint32_t depth_ = 0;
  std::uint32_t max_depth_ = kDepthBackstop;
  std::uint64_t fuel_ = 0;
  std::size_t pos_ = 0;
  std::set<std::string, std::less<>> typedefs_;  // user typedefs only
  std::map<std::string, StructInfo, std::less<>> structs_;
  std::string_view pending_pragma_;
};

}  // namespace

ParseResult parse_translation_unit(std::string_view source) {
  auto arena = std::make_unique<Arena>();
  arm_arena_cap(*arena);
  // Copy the source into the arena first: every token and AST spelling views
  // this copy, so the result does not dangle when the caller's buffer dies.
  const std::string_view owned = arena->intern(source);
  Parser parser(lex(owned, *arena), *arena);
  ParseResult result = parser.parse_unit();
  result.arena = std::move(arena);
  return result;
}

ParsedStmt parse_statement(std::string_view source) {
  auto arena = std::make_unique<Arena>();
  arm_arena_cap(*arena);
  const std::string_view owned = arena->intern(source);
  Parser parser(lex(owned, *arena), *arena);
  Stmt* root = parser.parse_single_statement();
  return ParsedStmt(std::move(arena), root);
}

ParsedExpr parse_expression(std::string_view source) {
  auto arena = std::make_unique<Arena>();
  arm_arena_cap(*arena);
  const std::string_view owned = arena->intern(source);
  Parser parser(lex(owned, *arena), *arena);
  Expr* root = parser.parse_single_expression();
  return ParsedExpr(std::move(arena), root);
}

}  // namespace g2p
