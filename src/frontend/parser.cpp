#include "frontend/parser.h"

#include <cstdlib>
#include <set>

#include "frontend/lexer.h"

namespace g2p {

namespace {

/// Binary operator precedence (C). Higher binds tighter. Assignment and
/// conditional are handled separately (right-associative).
int binary_precedence(std::string_view op) {
  if (op == "*" || op == "/" || op == "%") return 10;
  if (op == "+" || op == "-") return 9;
  if (op == "<<" || op == ">>") return 8;
  if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
  if (op == "==" || op == "!=") return 6;
  if (op == "&") return 5;
  if (op == "^") return 4;
  if (op == "|") return 3;
  if (op == "&&") return 2;
  if (op == "||") return 1;
  return -1;
}

bool is_assign_op(std::string_view op) {
  return op == "=" || op == "+=" || op == "-=" || op == "*=" || op == "/=" || op == "%=" ||
         op == "&=" || op == "^=" || op == "|=" || op == "<<=" || op == ">>=";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParseResult parse_unit() {
    ParseResult result;
    result.tu = std::make_unique<TranslationUnit>();
    while (!peek().is(TokenKind::kEof)) {
      if (peek().is(TokenKind::kPragma)) {
        pending_pragma_ = advance().text;
        continue;
      }
      parse_top_level(*result.tu);
    }
    result.structs = structs_;
    result.typedefs.assign(typedefs_.begin(), typedefs_.end());
    return result;
  }

  StmtPtr parse_single_statement() {
    auto stmt = parse_statement();
    expect_eof();
    return stmt;
  }

  ExprPtr parse_single_expression() {
    auto expr = parse_expr();
    expect_eof();
    return expr;
  }

 private:
  // ---- token plumbing -----------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool match_punct(std::string_view p) {
    if (peek().is_punct(p)) {
      advance();
      return true;
    }
    return false;
  }
  bool match_keyword(std::string_view k) {
    if (peek().is_keyword(k)) {
      advance();
      return true;
    }
    return false;
  }
  void expect_punct(std::string_view p) {
    if (!match_punct(p)) {
      throw ParseError("expected '" + std::string(p) + "', got '" + peek().text + "'",
                       peek().line);
    }
  }
  void expect_eof() {
    if (!peek().is(TokenKind::kEof)) {
      throw ParseError("trailing tokens after input: '" + peek().text + "'", peek().line);
    }
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message + " near '" + peek().text + "'", peek().line);
  }

  // ---- type recognition ---------------------------------------------------

  bool at_type_start() const {
    const Token& t = peek();
    if (t.is(TokenKind::kKeyword) && is_type_start_keyword(t.text)) return true;
    if (t.is(TokenKind::kIdentifier) && typedefs_.count(t.text)) return true;
    return false;
  }

  /// Parse a type specifier: qualifiers + base + pointer stars.
  Type parse_type() {
    Type type;
    std::string base;
    bool saw_base = false;
    // Qualifiers and multi-word bases ("unsigned long long", "const float").
    while (true) {
      const Token& t = peek();
      if (t.is(TokenKind::kKeyword) &&
          (t.text == "const" || t.text == "static" || t.text == "register" ||
           t.text == "volatile" || t.text == "inline" || t.text == "extern")) {
        advance();  // qualifiers don't affect our analyses
        continue;
      }
      if (t.is(TokenKind::kKeyword) && t.text == "struct") {
        advance();
        if (!peek().is(TokenKind::kIdentifier)) fail("expected struct name");
        base = "struct " + advance().text;
        saw_base = true;
        continue;
      }
      if (t.is(TokenKind::kKeyword) &&
          (t.text == "void" || t.text == "char" || t.text == "short" || t.text == "int" ||
           t.text == "long" || t.text == "float" || t.text == "double" || t.text == "signed" ||
           t.text == "unsigned")) {
        if (!base.empty()) base += " ";
        base += advance().text;
        saw_base = true;
        continue;
      }
      if (!saw_base && t.is(TokenKind::kIdentifier) && typedefs_.count(t.text)) {
        base = advance().text;
        saw_base = true;
        continue;
      }
      break;
    }
    if (!saw_base) fail("expected type");
    type.base = base;
    while (match_punct("*")) ++type.pointer_depth;
    return type;
  }

  // ---- top level ----------------------------------------------------------

  void parse_top_level(TranslationUnit& tu) {
    if (peek().is_keyword("typedef")) {
      parse_typedef();
      return;
    }
    if (peek().is_keyword("struct") && peek(1).is(TokenKind::kIdentifier) &&
        peek(2).is_punct("{")) {
      parse_struct_definition();
      return;
    }
    if (!at_type_start()) fail("expected declaration");

    const int line = peek().line;
    Type type = parse_type();
    if (!peek().is(TokenKind::kIdentifier)) fail("expected declarator name");
    std::string name = advance().text;

    if (peek().is_punct("(")) {
      tu.decls.push_back(parse_function_rest(std::move(type), std::move(name), line));
      return;
    }
    // Global variable(s).
    auto decl_stmt = parse_var_decl_rest(std::move(type), std::move(name), line);
    for (auto& vd : decl_stmt->decls) tu.decls.push_back(std::move(vd));
  }

  void parse_typedef() {
    advance();  // typedef
    // Anonymous-struct typedefs: typedef struct { ... } name;
    if (peek().is_keyword("struct") && (peek(1).is_punct("{") ||
                                        (peek(1).is(TokenKind::kIdentifier) && peek(2).is_punct("{")))) {
      advance();  // struct
      std::string tag;
      if (peek().is(TokenKind::kIdentifier)) tag = advance().text;
      StructInfo info = parse_struct_body(tag);
      if (!peek().is(TokenKind::kIdentifier)) fail("expected typedef name");
      std::string alias = advance().text;
      expect_punct(";");
      info.name = alias;
      structs_[alias] = info;
      if (!tag.empty()) structs_["struct " + tag] = info;
      typedefs_.insert(alias);
      return;
    }
    // Plain alias: consume tokens until ';', last identifier is the alias.
    std::string alias;
    while (!peek().is_punct(";") && !peek().is(TokenKind::kEof)) {
      if (peek().is(TokenKind::kIdentifier)) alias = peek().text;
      advance();
    }
    expect_punct(";");
    if (alias.empty()) fail("typedef without a name");
    typedefs_.insert(alias);
  }

  void parse_struct_definition() {
    advance();  // struct
    std::string tag = advance().text;
    StructInfo info = parse_struct_body(tag);
    structs_["struct " + tag] = info;
    expect_punct(";");
  }

  StructInfo parse_struct_body(const std::string& tag) {
    StructInfo info;
    info.name = tag.empty() ? "<anon>" : "struct " + tag;
    expect_punct("{");
    while (!peek().is_punct("}")) {
      Type field_type = parse_type();
      while (true) {
        if (!peek().is(TokenKind::kIdentifier)) fail("expected field name");
        StructInfo::Field field;
        field.type = field_type;
        field.name = advance().text;
        while (match_punct("[")) {
          if (!peek().is(TokenKind::kIntLiteral)) fail("expected constant array bound");
          field.array_dims.push_back(std::strtoll(advance().text.c_str(), nullptr, 0));
          expect_punct("]");
        }
        info.fields.push_back(std::move(field));
        if (!match_punct(",")) break;
      }
      expect_punct(";");
    }
    expect_punct("}");
    return info;
  }

  DeclPtr parse_function_rest(Type return_type, std::string name, int line) {
    auto fn = std::make_unique<FunctionDecl>(std::move(return_type), std::move(name));
    fn->line = line;
    expect_punct("(");
    if (!peek().is_punct(")")) {
      if (peek().is_keyword("void") && peek(1).is_punct(")")) {
        advance();
      } else {
        while (true) {
          Type ptype = parse_type();
          std::string pname;
          if (peek().is(TokenKind::kIdentifier)) pname = advance().text;
          auto param = std::make_unique<ParamDecl>(std::move(ptype), std::move(pname));
          param->line = peek().line;
          while (match_punct("[")) {  // array params decay to pointers
            param->is_array = true;
            if (peek().is(TokenKind::kIntLiteral) || peek().is(TokenKind::kIdentifier)) advance();
            expect_punct("]");
          }
          fn->params.push_back(std::move(param));
          if (!match_punct(",")) break;
        }
      }
    }
    expect_punct(")");
    if (match_punct(";")) return fn;  // prototype
    auto body = parse_compound();
    fn->body.reset(static_cast<CompoundStmt*>(body.release()));
    return fn;
  }

  // ---- statements ----------------------------------------------------------

  StmtPtr parse_statement() {
    // Attach any pending pragma to the statement we are about to parse.
    if (peek().is(TokenKind::kPragma)) {
      pending_pragma_ = advance().text;
    }
    std::string pragma = std::move(pending_pragma_);
    pending_pragma_.clear();

    auto stmt = parse_statement_inner();
    if (!pragma.empty()) stmt->pragma_text = std::move(pragma);
    return stmt;
  }

  StmtPtr parse_statement_inner() {
    const int line = peek().line;
    StmtPtr stmt;
    if (peek().is_punct("{")) {
      stmt = parse_compound();
    } else if (peek().is_keyword("if")) {
      stmt = parse_if();
    } else if (peek().is_keyword("for")) {
      stmt = parse_for();
    } else if (peek().is_keyword("while")) {
      stmt = parse_while();
    } else if (peek().is_keyword("do")) {
      stmt = parse_do();
    } else if (match_keyword("return")) {
      ExprPtr value;
      if (!peek().is_punct(";")) value = parse_expr();
      expect_punct(";");
      stmt = std::make_unique<ReturnStmt>(std::move(value));
    } else if (match_keyword("break")) {
      expect_punct(";");
      stmt = std::make_unique<BreakStmt>();
    } else if (match_keyword("continue")) {
      expect_punct(";");
      stmt = std::make_unique<ContinueStmt>();
    } else if (match_punct(";")) {
      stmt = std::make_unique<NullStmt>();
    } else if (at_type_start()) {
      stmt = parse_decl_stmt();
    } else {
      ExprPtr expr = parse_expr();
      expect_punct(";");
      stmt = std::make_unique<ExprStmt>(std::move(expr));
    }
    stmt->line = line;
    return stmt;
  }

  StmtPtr parse_compound() {
    auto block = std::make_unique<CompoundStmt>();
    block->line = peek().line;
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (peek().is(TokenKind::kEof)) fail("unterminated block");
      block->body.push_back(parse_statement());
    }
    expect_punct("}");
    return block;
  }

  StmtPtr parse_if() {
    advance();  // if
    expect_punct("(");
    ExprPtr cond = parse_expr();
    expect_punct(")");
    StmtPtr then_branch = parse_statement();
    StmtPtr else_branch;
    if (match_keyword("else")) else_branch = parse_statement();
    return std::make_unique<IfStmt>(std::move(cond), std::move(then_branch),
                                    std::move(else_branch));
  }

  StmtPtr parse_for() {
    advance();  // for
    expect_punct("(");
    StmtPtr init;
    if (match_punct(";")) {
      init = std::make_unique<NullStmt>();
    } else if (at_type_start()) {
      init = parse_decl_stmt();  // consumes ';'
    } else {
      ExprPtr e = parse_expr();
      expect_punct(";");
      init = std::make_unique<ExprStmt>(std::move(e));
    }
    ExprPtr cond;
    if (!peek().is_punct(";")) cond = parse_expr();
    expect_punct(";");
    ExprPtr inc;
    if (!peek().is_punct(")")) inc = parse_expr();
    expect_punct(")");
    StmtPtr body = parse_statement();
    return std::make_unique<ForStmt>(std::move(init), std::move(cond), std::move(inc),
                                     std::move(body));
  }

  StmtPtr parse_while() {
    advance();  // while
    expect_punct("(");
    ExprPtr cond = parse_expr();
    expect_punct(")");
    StmtPtr body = parse_statement();
    return std::make_unique<WhileStmt>(std::move(cond), std::move(body));
  }

  StmtPtr parse_do() {
    advance();  // do
    StmtPtr body = parse_statement();
    if (!match_keyword("while")) fail("expected 'while' after do-body");
    expect_punct("(");
    ExprPtr cond = parse_expr();
    expect_punct(")");
    expect_punct(";");
    return std::make_unique<DoStmt>(std::move(body), std::move(cond));
  }

  StmtPtr parse_decl_stmt() {
    const int line = peek().line;
    Type type = parse_type();
    if (!peek().is(TokenKind::kIdentifier)) fail("expected variable name");
    std::string name = advance().text;
    auto stmt = parse_var_decl_rest(std::move(type), std::move(name), line);
    return stmt;
  }

  /// Parse the remainder of a variable declaration after "type name",
  /// including array dims, initializer, and comma-separated declarators.
  /// Consumes the terminating ';'.
  std::unique_ptr<DeclStmt> parse_var_decl_rest(Type type, std::string first_name, int line) {
    auto stmt = std::make_unique<DeclStmt>();
    stmt->line = line;
    std::string name = std::move(first_name);
    while (true) {
      auto decl = std::make_unique<VarDecl>(type, name);
      decl->line = line;
      while (match_punct("[")) {
        if (peek().is_punct("]")) {
          decl->array_dims.push_back(std::make_unique<IntLiteral>(0, "0"));
        } else {
          decl->array_dims.push_back(parse_assignment_expr());
        }
        expect_punct("]");
      }
      if (match_punct("=")) {
        if (peek().is_punct("{")) {
          decl->init = parse_init_list();
        } else {
          decl->init = parse_assignment_expr();
        }
      }
      stmt->decls.push_back(std::move(decl));
      if (!match_punct(",")) break;
      // Subsequent declarators may have their own stars: int a, *p;
      Type next = type;
      next.pointer_depth = 0;
      while (match_punct("*")) ++next.pointer_depth;
      type = next;
      if (!peek().is(TokenKind::kIdentifier)) fail("expected declarator after ','");
      name = advance().text;
    }
    expect_punct(";");
    return stmt;
  }

  ExprPtr parse_init_list() {
    expect_punct("{");
    std::vector<ExprPtr> items;
    if (!peek().is_punct("}")) {
      while (true) {
        if (peek().is_punct("{")) {
          items.push_back(parse_init_list());
        } else {
          items.push_back(parse_assignment_expr());
        }
        if (!match_punct(",")) break;
        if (peek().is_punct("}")) break;  // trailing comma
      }
    }
    expect_punct("}");
    return std::make_unique<InitListExpr>(std::move(items));
  }

  // ---- expressions ----------------------------------------------------------

  ExprPtr parse_expr() {
    ExprPtr expr = parse_assignment_expr();
    while (peek().is_punct(",")) {
      advance();
      ExprPtr rhs = parse_assignment_expr();
      expr = std::make_unique<BinaryOperator>(",", std::move(expr), std::move(rhs));
    }
    return expr;
  }

  ExprPtr parse_assignment_expr() {
    ExprPtr lhs = parse_conditional();
    if (peek().is(TokenKind::kPunct) && is_assign_op(peek().text)) {
      std::string op = advance().text;
      ExprPtr rhs = parse_assignment_expr();  // right-assoc
      auto node = std::make_unique<Assignment>(std::move(op), std::move(lhs), std::move(rhs));
      node->line = node->lhs->line;
      return node;
    }
    return lhs;
  }

  ExprPtr parse_conditional() {
    ExprPtr cond = parse_binary(1);
    if (!match_punct("?")) return cond;
    ExprPtr then_expr = parse_expr();
    expect_punct(":");
    ExprPtr else_expr = parse_assignment_expr();
    return std::make_unique<Conditional>(std::move(cond), std::move(then_expr),
                                         std::move(else_expr));
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    while (peek().is(TokenKind::kPunct)) {
      const int prec = binary_precedence(peek().text);
      if (prec < min_prec) break;
      std::string op = advance().text;
      ExprPtr rhs = parse_binary(prec + 1);
      auto node = std::make_unique<BinaryOperator>(std::move(op), std::move(lhs), std::move(rhs));
      node->line = node->lhs->line;
      lhs = std::move(node);
    }
    return lhs;
  }

  bool at_cast_start() const {
    if (!peek().is_punct("(")) return false;
    const Token& t = peek(1);
    if (t.is(TokenKind::kKeyword) && is_type_start_keyword(t.text)) return true;
    if (t.is(TokenKind::kIdentifier) && typedefs_.count(t.text)) {
      // "(T)" or "(T*)" is a cast; "(x)" is parenthesized expression.
      return peek(2).is_punct(")") || peek(2).is_punct("*");
    }
    return false;
  }

  ExprPtr parse_unary() {
    const Token& t = peek();
    const int line = t.line;
    if (t.is_punct("+") || t.is_punct("-") || t.is_punct("!") || t.is_punct("~") ||
        t.is_punct("*") || t.is_punct("&") || t.is_punct("++") || t.is_punct("--")) {
      std::string op = advance().text;
      ExprPtr operand = parse_unary();
      auto node = std::make_unique<UnaryOperator>(std::move(op), /*prefix=*/true,
                                                  std::move(operand));
      node->line = line;
      return node;
    }
    if (t.is_keyword("sizeof")) {
      advance();
      if (peek().is_punct("(") &&
          (peek(1).is(TokenKind::kKeyword) ? is_type_start_keyword(peek(1).text)
                                           : typedefs_.count(peek(1).text) > 0)) {
        advance();  // (
        Type type = parse_type();
        expect_punct(")");
        auto node = std::make_unique<SizeofExpr>(std::move(type));
        node->line = line;
        return node;
      }
      ExprPtr operand = parse_unary();
      auto node =
          std::make_unique<UnaryOperator>("sizeof", /*prefix=*/true, std::move(operand));
      node->line = line;
      return node;
    }
    if (at_cast_start()) {
      advance();  // (
      Type type = parse_type();
      expect_punct(")");
      ExprPtr operand = parse_unary();
      auto node = std::make_unique<CastExpr>(std::move(type), std::move(operand));
      node->line = line;
      return node;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr expr = parse_primary();
    while (true) {
      if (peek().is_punct("[")) {
        advance();
        ExprPtr index = parse_expr();
        expect_punct("]");
        expr = std::make_unique<ArraySubscript>(std::move(expr), std::move(index));
      } else if (peek().is_punct(".") && peek(1).is(TokenKind::kIdentifier)) {
        advance();
        std::string member = advance().text;
        expr = std::make_unique<MemberExpr>(std::move(expr), std::move(member), false);
      } else if (peek().is_punct("->")) {
        advance();
        if (!peek().is(TokenKind::kIdentifier)) fail("expected member name after '->'");
        std::string member = advance().text;
        expr = std::make_unique<MemberExpr>(std::move(expr), std::move(member), true);
      } else if (peek().is_punct("++") || peek().is_punct("--")) {
        std::string op = advance().text;
        expr = std::make_unique<UnaryOperator>(std::move(op), /*prefix=*/false, std::move(expr));
      } else {
        break;
      }
    }
    return expr;
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    const int line = t.line;
    ExprPtr node;
    if (t.is(TokenKind::kIntLiteral)) {
      node = std::make_unique<IntLiteral>(std::strtoll(t.text.c_str(), nullptr, 0), t.text);
      advance();
    } else if (t.is(TokenKind::kFloatLiteral)) {
      node = std::make_unique<FloatLiteral>(std::strtod(t.text.c_str(), nullptr), t.text);
      advance();
    } else if (t.is(TokenKind::kCharLiteral)) {
      node = std::make_unique<CharLiteral>(t.text);
      advance();
    } else if (t.is(TokenKind::kStringLiteral)) {
      node = std::make_unique<StringLiteral>(t.text);
      advance();
    } else if (t.is(TokenKind::kIdentifier)) {
      std::string name = advance().text;
      if (peek().is_punct("(")) {
        advance();
        std::vector<ExprPtr> args;
        if (!peek().is_punct(")")) {
          while (true) {
            args.push_back(parse_assignment_expr());
            if (!match_punct(",")) break;
          }
        }
        expect_punct(")");
        node = std::make_unique<CallExpr>(std::move(name), std::move(args));
      } else {
        node = std::make_unique<DeclRef>(std::move(name));
      }
    } else if (t.is_punct("(")) {
      advance();
      ExprPtr inner = parse_expr();
      expect_punct(")");
      node = std::make_unique<ParenExpr>(std::move(inner));
    } else {
      fail("expected expression");
    }
    node->line = line;
    return node;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::set<std::string> typedefs_ = {"size_t", "int8_t", "int16_t", "int32_t", "int64_t",
                                     "uint8_t", "uint16_t", "uint32_t", "uint64_t",
                                     "ssize_t", "ptrdiff_t", "FILE", "bool"};
  std::map<std::string, StructInfo> structs_;
  std::string pending_pragma_;
};

}  // namespace

ParseResult parse_translation_unit(std::string_view source) {
  Parser parser(lex(source));
  return parser.parse_unit();
}

StmtPtr parse_statement(std::string_view source) {
  Parser parser(lex(source));
  return parser.parse_single_statement();
}

ExprPtr parse_expression(std::string_view source) {
  Parser parser(lex(source));
  return parser.parse_single_expression();
}

}  // namespace g2p
