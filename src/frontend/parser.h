// Recursive-descent parser for the C subset.
//
// The grammar covers the loop-centric C that the OMP_Serial dataset
// exercises: global/local declarations, struct definitions, typedefs,
// function definitions, all structured control flow, and the full C
// expression precedence ladder. OpenMP pragma tokens are attached to the
// statement that follows them (Node::pragma_text).
//
// All nodes and spellings of one parse live in a single Arena; the
// ParseResult (or ArenaRoot, for snippet parses) carries it, so node
// lifetime is exactly what it was under per-node ownership — tied to the
// result object — without the per-node allocations.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "frontend/ast.h"
#include "frontend/token.h"
#include "support/arena.h"

namespace g2p {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// A struct definition's layout (field order matters for the interpreter).
struct StructInfo {
  std::string name;
  struct Field {
    Type type;
    std::string name;
    std::vector<long long> array_dims;
  };
  std::vector<Field> fields;
};

/// Struct layouts by name ("struct tag" / typedef alias), heterogeneous
/// lookup so `Type::base` views probe without a temporary string.
using StructMap = std::map<std::string, StructInfo, std::less<>>;

/// Output of a parse: the tree plus the type environment discovered. The
/// arena owns every node and spelling reachable from `tu`; moving a
/// ParseResult moves the whole translation unit, nodes staying put.
struct ParseResult {
  std::unique_ptr<Arena> arena;
  TranslationUnit* tu = nullptr;
  StructMap structs;
  std::vector<std::string> typedefs;  // user-declared typedefs (builtins like
                                      // size_t are known implicitly)
};

/// Owning handle for a snippet parse: the arena plus the root node it owns.
/// Smart-pointer surface (`*`, `->`, `get()`) so call sites read like the
/// old `unique_ptr` API.
template <typename T>
class ArenaRoot {
 public:
  ArenaRoot() = default;
  ArenaRoot(std::unique_ptr<Arena> arena, T* node) : arena_(std::move(arena)), node_(node) {}

  T* get() const { return node_; }
  T& operator*() const { return *node_; }
  T* operator->() const { return node_; }
  explicit operator bool() const { return node_ != nullptr; }

 private:
  std::unique_ptr<Arena> arena_;
  T* node_ = nullptr;
};

using ParsedStmt = ArenaRoot<Stmt>;
using ParsedExpr = ArenaRoot<Expr>;

/// Parse a full translation unit. Throws ParseError / LexError on bad input.
/// The source text is copied into the result's arena, so the result is
/// self-contained even if `source`'s buffer dies.
ParseResult parse_translation_unit(std::string_view source);

/// Parse a single statement (convenience for loop snippets and tests).
/// The snippet may reference undeclared identifiers.
ParsedStmt parse_statement(std::string_view source);

/// Parse a single expression (tests).
ParsedExpr parse_expression(std::string_view source);

}  // namespace g2p
