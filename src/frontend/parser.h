// Recursive-descent parser for the C subset.
//
// The grammar covers the loop-centric C that the OMP_Serial dataset
// exercises: global/local declarations, struct definitions, typedefs,
// function definitions, all structured control flow, and the full C
// expression precedence ladder. OpenMP pragma tokens are attached to the
// statement that follows them (Node::pragma_text).
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "frontend/ast.h"
#include "frontend/token.h"

namespace g2p {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// A struct definition's layout (field order matters for the interpreter).
struct StructInfo {
  std::string name;
  struct Field {
    Type type;
    std::string name;
    std::vector<long long> array_dims;
  };
  std::vector<Field> fields;
};

/// Output of a parse: the tree plus the type environment discovered.
struct ParseResult {
  std::unique_ptr<TranslationUnit> tu;
  std::map<std::string, StructInfo> structs;
  std::vector<std::string> typedefs;
};

/// Parse a full translation unit. Throws ParseError / LexError on bad input.
ParseResult parse_translation_unit(std::string_view source);

/// Parse a single statement (convenience for loop snippets and tests).
/// The snippet may reference undeclared identifiers.
StmtPtr parse_statement(std::string_view source);

/// Parse a single expression (tests).
ExprPtr parse_expression(std::string_view source);

}  // namespace g2p
