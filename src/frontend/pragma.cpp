#include "frontend/pragma.h"

#include <cctype>

#include "support/strings.h"

namespace g2p {

namespace {

/// Tokenize a pragma body into words, '(' ')' ':' ',' as separate tokens.
std::vector<std::string> pragma_tokens(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '(' || c == ')' || c == ':' || c == ',') {
      out.emplace_back(1, c);
      ++i;
      continue;
    }
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])) &&
           text[i] != '(' && text[i] != ')' && text[i] != ':' && text[i] != ',') {
      ++i;
    }
    out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

/// Parse a parenthesized comma-separated list starting at tokens[i] == "(".
/// Returns items and advances i past the ")".
std::vector<std::string> parse_paren_list(const std::vector<std::string>& tokens,
                                          std::size_t& i) {
  std::vector<std::string> items;
  if (i >= tokens.size() || tokens[i] != "(") return items;
  ++i;
  while (i < tokens.size() && tokens[i] != ")") {
    if (tokens[i] != ",") items.push_back(tokens[i]);
    ++i;
  }
  if (i < tokens.size()) ++i;  // skip ')'
  return items;
}

}  // namespace

OmpPragma parse_omp_pragma(std::string_view text) {
  OmpPragma out;
  out.raw = std::string(trim(text));
  std::string_view body = out.raw;
  if (starts_with(body, "#")) body.remove_prefix(1);
  body = trim(body);
  if (starts_with(body, "pragma")) body.remove_prefix(6);
  body = trim(body);

  auto tokens = pragma_tokens(body);
  if (tokens.empty() || tokens[0] != "omp") return out;
  out.is_omp = true;

  std::size_t i = 1;
  while (i < tokens.size()) {
    const std::string& t = tokens[i];
    if (t == "parallel") {
      out.has_parallel = true;
      ++i;
    } else if (t == "for" || t == "loop" || t == "distribute") {
      out.has_for = true;
      ++i;
    } else if (t == "simd") {
      out.simd = true;
      ++i;
    } else if (t == "target" || t == "teams") {
      out.target = true;
      ++i;
    } else if (t == "private") {
      ++i;
      auto vars = parse_paren_list(tokens, i);
      out.private_vars.insert(out.private_vars.end(), vars.begin(), vars.end());
    } else if (t == "firstprivate") {
      ++i;
      auto vars = parse_paren_list(tokens, i);
      out.firstprivate_vars.insert(out.firstprivate_vars.end(), vars.begin(), vars.end());
    } else if (t == "lastprivate") {
      ++i;
      auto vars = parse_paren_list(tokens, i);
      out.lastprivate_vars.insert(out.lastprivate_vars.end(), vars.begin(), vars.end());
    } else if (t == "shared") {
      ++i;
      auto vars = parse_paren_list(tokens, i);
      out.shared_vars.insert(out.shared_vars.end(), vars.begin(), vars.end());
    } else if (t == "reduction") {
      ++i;
      // reduction(op : a, b)
      if (i < tokens.size() && tokens[i] == "(") {
        ++i;
        OmpPragma::Reduction red;
        if (i < tokens.size()) red.op = tokens[i++];
        if (i < tokens.size() && tokens[i] == ":") ++i;
        while (i < tokens.size() && tokens[i] != ")") {
          if (tokens[i] != ",") red.vars.push_back(tokens[i]);
          ++i;
        }
        if (i < tokens.size()) ++i;  // ')'
        out.reductions.push_back(std::move(red));
      }
    } else if (t == "schedule") {
      ++i;
      auto items = parse_paren_list(tokens, i);
      out.schedule = join(items, ",");
    } else if (t == "collapse") {
      ++i;
      auto items = parse_paren_list(tokens, i);
      if (!items.empty()) out.collapse = std::atoi(items[0].c_str());
    } else if (t == "num_threads") {
      ++i;
      auto items = parse_paren_list(tokens, i);
      if (!items.empty()) out.num_threads = std::atoi(items[0].c_str());
    } else {
      // Unknown clause (nowait, default(...), map(...), ...): skip token and
      // any parenthesized payload.
      ++i;
      if (i < tokens.size() && tokens[i] == "(") parse_paren_list(tokens, i);
    }
  }
  return out;
}

std::string_view pragma_category_name(PragmaCategory cat) {
  switch (cat) {
    case PragmaCategory::kNone: return "none";
    case PragmaCategory::kPrivate: return "private";
    case PragmaCategory::kReduction: return "reduction";
    case PragmaCategory::kSimd: return "simd";
    case PragmaCategory::kTarget: return "target";
  }
  return "?";
}

PragmaCategory categorize(const OmpPragma& pragma) {
  if (!pragma.is_omp || !pragma.marks_parallel_loop()) return PragmaCategory::kNone;
  if (pragma.target) return PragmaCategory::kTarget;
  if (pragma.simd) return PragmaCategory::kSimd;
  if (!pragma.reductions.empty()) return PragmaCategory::kReduction;
  return PragmaCategory::kPrivate;  // includes plain do-all parallel-for
}

std::string render_pragma(PragmaCategory cat, const std::vector<std::string>& private_vars,
                          const std::vector<OmpPragma::Reduction>& reductions) {
  std::string out = "#pragma omp ";
  switch (cat) {
    case PragmaCategory::kSimd: out += "simd"; break;
    case PragmaCategory::kTarget: out += "target teams distribute parallel for"; break;
    default: out += "parallel for"; break;
  }
  for (const auto& red : reductions) {
    out += " reduction(" + red.op + ":" + join(red.vars, ",") + ")";
  }
  if (!private_vars.empty()) {
    out += " private(" + join(private_vars, ",") + ")";
  }
  return out;
}

}  // namespace g2p
