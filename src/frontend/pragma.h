// OpenMP pragma parsing and the dataset labeling scheme of §4.2.
//
// The dataset labels each loop as parallel / non-parallel from the presence
// of "#pragma omp parallel for" or "#pragma omp for", and parallel loops are
// further bucketed into four pragma categories: private, reduction, simd,
// target.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace g2p {

/// Parsed form of an OpenMP directive.
struct OmpPragma {
  bool is_omp = false;        // directive begins with "pragma omp"
  bool has_parallel = false;  // "parallel" present
  bool has_for = false;       // "for" present
  bool simd = false;          // "simd" present
  bool target = false;        // "target" present

  std::vector<std::string> private_vars;
  std::vector<std::string> firstprivate_vars;
  std::vector<std::string> lastprivate_vars;
  std::vector<std::string> shared_vars;

  struct Reduction {
    std::string op;                  // + * - & | ^ && || min max
    std::vector<std::string> vars;
  };
  std::vector<Reduction> reductions;

  std::string schedule;  // "static", "dynamic,4", ...
  int collapse = 0;
  int num_threads = 0;

  std::string raw;  // original directive text

  /// "#pragma omp for" or "#pragma omp parallel for" (the parallelism label
  /// criterion of §6.2; simd/target directives also mark worksharing loops).
  bool marks_parallel_loop() const {
    return is_omp && (has_for || simd || target);
  }
};

/// Parse a directive line. Accepts with or without the leading '#'
/// ("pragma omp parallel for private(i)").
OmpPragma parse_omp_pragma(std::string_view text);

/// The four pragma categories of Table 1 / Table 5, plus none.
enum class PragmaCategory { kNone, kPrivate, kReduction, kSimd, kTarget };

std::string_view pragma_category_name(PragmaCategory cat);

/// Dataset bucketing rule (§4.2): target > simd > reduction > private.
/// A parallel-for with no clauses counts as private (do-all) per the paper's
/// private/do-all merge in Table 1.
PragmaCategory categorize(const OmpPragma& pragma);

/// Render a suggested pragma line for a loop, e.g.
/// "#pragma omp parallel for reduction(+:sum) private(tmp)".
std::string render_pragma(PragmaCategory cat, const std::vector<std::string>& private_vars,
                          const std::vector<OmpPragma::Reduction>& reductions);

}  // namespace g2p
