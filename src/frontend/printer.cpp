#include "frontend/printer.h"

#include <sstream>

namespace g2p {

namespace {

std::string ind(int level) { return std::string(static_cast<std::size_t>(level) * 2, ' '); }

class Printer {
 public:
  std::string print_expr(const Expr& e) {
    switch (e.kind()) {
      case NodeKind::kIntLiteral:
        return static_cast<const IntLiteral&>(e).text;
      case NodeKind::kFloatLiteral:
        return static_cast<const FloatLiteral&>(e).text;
      case NodeKind::kCharLiteral:
        return static_cast<const CharLiteral&>(e).text;
      case NodeKind::kStringLiteral:
        return static_cast<const StringLiteral&>(e).text;
      case NodeKind::kDeclRef:
        return static_cast<const DeclRef&>(e).name;
      case NodeKind::kBinaryOperator: {
        const auto& b = static_cast<const BinaryOperator&>(e);
        return print_operand(*b.lhs) + " " + b.op + " " + print_operand(*b.rhs);
      }
      case NodeKind::kUnaryOperator: {
        const auto& u = static_cast<const UnaryOperator&>(e);
        if (u.op == "sizeof") return "sizeof " + print_operand(*u.operand);
        return u.prefix ? u.op + print_operand(*u.operand)
                        : print_operand(*u.operand) + u.op;
      }
      case NodeKind::kAssignment: {
        const auto& a = static_cast<const Assignment&>(e);
        return print_expr(*a.lhs) + " " + a.op + " " + print_expr(*a.rhs);
      }
      case NodeKind::kConditional: {
        const auto& c = static_cast<const Conditional&>(e);
        return print_operand(*c.cond) + " ? " + print_expr(*c.then_expr) + " : " +
               print_expr(*c.else_expr);
      }
      case NodeKind::kCallExpr: {
        const auto& c = static_cast<const CallExpr&>(e);
        std::string out = c.callee + "(";
        for (std::size_t i = 0; i < c.args.size(); ++i) {
          if (i) out += ", ";
          out += print_expr(*c.args[i]);
        }
        return out + ")";
      }
      case NodeKind::kArraySubscript: {
        const auto& a = static_cast<const ArraySubscript&>(e);
        return print_operand(*a.base) + "[" + print_expr(*a.index) + "]";
      }
      case NodeKind::kMemberExpr: {
        const auto& m = static_cast<const MemberExpr&>(e);
        return print_operand(*m.base) + (m.arrow ? "->" : ".") + m.member;
      }
      case NodeKind::kCastExpr: {
        const auto& c = static_cast<const CastExpr&>(e);
        return "(" + c.type.spelling() + ")" + print_operand(*c.operand);
      }
      case NodeKind::kParenExpr:
        return "(" + print_expr(*static_cast<const ParenExpr&>(e).inner) + ")";
      case NodeKind::kInitListExpr: {
        const auto& l = static_cast<const InitListExpr&>(e);
        std::string out = "{";
        for (std::size_t i = 0; i < l.items.size(); ++i) {
          if (i) out += ", ";
          out += print_expr(*l.items[i]);
        }
        return out + "}";
      }
      case NodeKind::kSizeofExpr:
        return "sizeof(" + static_cast<const SizeofExpr&>(e).type.spelling() + ")";
      default:
        return "/*?expr?*/";
    }
  }

  /// Print a sub-expression, parenthesizing anything that is not atomic.
  /// Slightly over-parenthesizes; correctness beats minimality here.
  std::string print_operand(const Expr& e) {
    switch (e.kind()) {
      case NodeKind::kIntLiteral:
      case NodeKind::kFloatLiteral:
      case NodeKind::kCharLiteral:
      case NodeKind::kStringLiteral:
      case NodeKind::kDeclRef:
      case NodeKind::kCallExpr:
      case NodeKind::kArraySubscript:
      case NodeKind::kMemberExpr:
      case NodeKind::kParenExpr:
      case NodeKind::kSizeofExpr:
        return print_expr(e);
      case NodeKind::kUnaryOperator:
        return print_expr(e);
      default:
        return "(" + print_expr(e) + ")";
    }
  }

  void print_stmt(const Stmt& s, int level, std::ostringstream& out) {
    if (s.pragma_text) out << ind(level) << "#" << *s.pragma_text << "\n";
    switch (s.kind()) {
      case NodeKind::kCompoundStmt: {
        const auto& c = static_cast<const CompoundStmt&>(s);
        out << ind(level) << "{\n";
        for (const auto& child : c.body) print_stmt(*child, level + 1, out);
        out << ind(level) << "}\n";
        break;
      }
      case NodeKind::kDeclStmt: {
        const auto& d = static_cast<const DeclStmt&>(s);
        out << ind(level) << print_decl_group(d) << ";\n";
        break;
      }
      case NodeKind::kExprStmt: {
        const auto& e = static_cast<const ExprStmt&>(s);
        out << ind(level) << print_expr(*e.expr) << ";\n";
        break;
      }
      case NodeKind::kIfStmt: {
        const auto& i = static_cast<const IfStmt&>(s);
        out << ind(level) << "if (" << print_expr(*i.cond) << ")\n";
        print_branch(*i.then_branch, level, out);
        if (i.else_branch) {
          out << ind(level) << "else\n";
          print_branch(*i.else_branch, level, out);
        }
        break;
      }
      case NodeKind::kForStmt: {
        const auto& f = static_cast<const ForStmt&>(s);
        out << ind(level) << "for (" << print_for_init(*f.init) << " "
            << (f.cond ? print_expr(*f.cond) : "") << "; "
            << (f.inc ? print_expr(*f.inc) : "") << ")\n";
        print_branch(*f.body, level, out);
        break;
      }
      case NodeKind::kWhileStmt: {
        const auto& w = static_cast<const WhileStmt&>(s);
        out << ind(level) << "while (" << print_expr(*w.cond) << ")\n";
        print_branch(*w.body, level, out);
        break;
      }
      case NodeKind::kDoStmt: {
        const auto& d = static_cast<const DoStmt&>(s);
        out << ind(level) << "do\n";
        print_branch(*d.body, level, out);
        out << ind(level) << "while (" << print_expr(*d.cond) << ");\n";
        break;
      }
      case NodeKind::kReturnStmt: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        out << ind(level) << "return";
        if (r.value) out << " " << print_expr(*r.value);
        out << ";\n";
        break;
      }
      case NodeKind::kBreakStmt:
        out << ind(level) << "break;\n";
        break;
      case NodeKind::kContinueStmt:
        out << ind(level) << "continue;\n";
        break;
      case NodeKind::kNullStmt:
        out << ind(level) << ";\n";
        break;
      default:
        out << ind(level) << "/*?stmt?*/;\n";
    }
  }

  /// For-init renders without its trailing newline; DeclStmt keeps its ';'.
  std::string print_for_init(const Stmt& s) {
    if (s.kind() == NodeKind::kNullStmt) return ";";
    if (s.kind() == NodeKind::kExprStmt) {
      return print_expr(*static_cast<const ExprStmt&>(s).expr) + ";";
    }
    if (s.kind() == NodeKind::kDeclStmt) {
      return print_decl_group(static_cast<const DeclStmt&>(s)) + ";";
    }
    return ";";
  }

  std::string print_decl_group(const DeclStmt& d) {
    std::string out;
    for (std::size_t i = 0; i < d.decls.size(); ++i) {
      const VarDecl& v = *d.decls[i];
      if (i == 0) {
        out += v.type.base + " ";
        for (int p = 0; p < v.type.pointer_depth; ++p) out += "*";
      } else {
        out += ", ";
        for (int p = 0; p < v.type.pointer_depth; ++p) out += "*";
      }
      out += v.name;
      for (const auto& dim : v.array_dims) out += "[" + print_expr(*dim) + "]";
      if (v.init) out += " = " + print_expr(*v.init);
    }
    return out;
  }

  void print_branch(const Stmt& body, int level, std::ostringstream& out) {
    if (body.kind() == NodeKind::kCompoundStmt) {
      print_stmt(body, level, out);
    } else {
      print_stmt(body, level + 1, out);
    }
  }

  void print_decl(const Decl& d, int level, std::ostringstream& out) {
    switch (d.kind()) {
      case NodeKind::kVarDecl: {
        const auto& v = static_cast<const VarDecl&>(d);
        out << ind(level) << v.type.spelling() << " " << v.name;
        for (const auto& dim : v.array_dims) out << "[" << print_expr(*dim) << "]";
        if (v.init) out << " = " << print_expr(*v.init);
        out << ";\n";
        break;
      }
      case NodeKind::kParamDecl: {
        const auto& p = static_cast<const ParamDecl&>(d);
        out << p.type.spelling() << " " << p.name << (p.is_array ? "[]" : "");
        break;
      }
      case NodeKind::kFunctionDecl: {
        const auto& f = static_cast<const FunctionDecl&>(d);
        out << ind(level) << f.return_type.spelling() << " " << f.name << "(";
        for (std::size_t i = 0; i < f.params.size(); ++i) {
          if (i) out << ", ";
          print_decl(*f.params[i], 0, out);
        }
        out << ")";
        if (f.body) {
          out << "\n";
          print_stmt(*f.body, level, out);
        } else {
          out << ";\n";
        }
        break;
      }
      default:
        out << ind(level) << "/*?decl?*/;\n";
    }
  }

  std::string print_node(const Node& n, int level) {
    std::ostringstream out;
    if (n.kind() == NodeKind::kTranslationUnit) {
      const auto& tu = static_cast<const TranslationUnit&>(n);
      for (const auto& d : tu.decls) {
        print_decl(*d, level, out);
        out << "\n";
      }
    } else if (n.is_expr()) {
      out << print_expr(static_cast<const Expr&>(n));
    } else if (n.is_stmt()) {
      print_stmt(static_cast<const Stmt&>(n), level, out);
    } else {
      print_decl(static_cast<const Decl&>(n), level, out);
    }
    return out.str();
  }
};

}  // namespace

std::string to_source(const Node& node, int indent) {
  Printer printer;
  return printer.print_node(node, indent);
}

std::string expr_to_source(const Expr& expr) {
  Printer printer;
  return printer.print_expr(expr);
}

}  // namespace g2p
