#include "frontend/printer.h"

namespace g2p {

namespace {

/// Append-style printer: every production appends to one output buffer, so
/// regenerating a loop costs one growing allocation instead of a temporary
/// string per sub-expression (this path runs once per extracted loop on the
/// serving frontend). Output is byte-identical to the historical
/// ostringstream printer — the frontend oracle test pins that.
class Printer {
 public:
  explicit Printer(std::string& out) : out_(out) {}

  void indent(int level) { out_.append(static_cast<std::size_t>(level) * 2, ' '); }

  void print_expr(const Expr& e) {
    switch (e.kind()) {
      case NodeKind::kIntLiteral:
        out_ += static_cast<const IntLiteral&>(e).text;
        break;
      case NodeKind::kFloatLiteral:
        out_ += static_cast<const FloatLiteral&>(e).text;
        break;
      case NodeKind::kCharLiteral:
        out_ += static_cast<const CharLiteral&>(e).text;
        break;
      case NodeKind::kStringLiteral:
        out_ += static_cast<const StringLiteral&>(e).text;
        break;
      case NodeKind::kDeclRef:
        out_ += static_cast<const DeclRef&>(e).name;
        break;
      case NodeKind::kBinaryOperator: {
        const auto& b = static_cast<const BinaryOperator&>(e);
        print_operand(*b.lhs);
        out_ += ' ';
        out_ += b.op;
        out_ += ' ';
        print_operand(*b.rhs);
        break;
      }
      case NodeKind::kUnaryOperator: {
        const auto& u = static_cast<const UnaryOperator&>(e);
        if (u.op == "sizeof") {
          out_ += "sizeof ";
          print_operand(*u.operand);
        } else if (u.prefix) {
          out_ += u.op;
          print_operand(*u.operand);
        } else {
          print_operand(*u.operand);
          out_ += u.op;
        }
        break;
      }
      case NodeKind::kAssignment: {
        const auto& a = static_cast<const Assignment&>(e);
        print_expr(*a.lhs);
        out_ += ' ';
        out_ += a.op;
        out_ += ' ';
        print_expr(*a.rhs);
        break;
      }
      case NodeKind::kConditional: {
        const auto& c = static_cast<const Conditional&>(e);
        print_operand(*c.cond);
        out_ += " ? ";
        print_expr(*c.then_expr);
        out_ += " : ";
        print_expr(*c.else_expr);
        break;
      }
      case NodeKind::kCallExpr: {
        const auto& c = static_cast<const CallExpr&>(e);
        out_ += c.callee;
        out_ += '(';
        for (std::size_t i = 0; i < c.args.size(); ++i) {
          if (i) out_ += ", ";
          print_expr(*c.args[i]);
        }
        out_ += ')';
        break;
      }
      case NodeKind::kArraySubscript: {
        const auto& a = static_cast<const ArraySubscript&>(e);
        print_operand(*a.base);
        out_ += '[';
        print_expr(*a.index);
        out_ += ']';
        break;
      }
      case NodeKind::kMemberExpr: {
        const auto& m = static_cast<const MemberExpr&>(e);
        print_operand(*m.base);
        out_ += m.arrow ? "->" : ".";
        out_ += m.member;
        break;
      }
      case NodeKind::kCastExpr: {
        const auto& c = static_cast<const CastExpr&>(e);
        out_ += '(';
        print_type(c.type);
        out_ += ')';
        print_operand(*c.operand);
        break;
      }
      case NodeKind::kParenExpr:
        out_ += '(';
        print_expr(*static_cast<const ParenExpr&>(e).inner);
        out_ += ')';
        break;
      case NodeKind::kInitListExpr: {
        const auto& l = static_cast<const InitListExpr&>(e);
        out_ += '{';
        for (std::size_t i = 0; i < l.items.size(); ++i) {
          if (i) out_ += ", ";
          print_expr(*l.items[i]);
        }
        out_ += '}';
        break;
      }
      case NodeKind::kSizeofExpr:
        out_ += "sizeof(";
        print_type(static_cast<const SizeofExpr&>(e).type);
        out_ += ')';
        break;
      default:
        out_ += "/*?expr?*/";
    }
  }

  /// Print a sub-expression, parenthesizing anything that is not atomic.
  /// Slightly over-parenthesizes; correctness beats minimality here.
  void print_operand(const Expr& e) {
    switch (e.kind()) {
      case NodeKind::kIntLiteral:
      case NodeKind::kFloatLiteral:
      case NodeKind::kCharLiteral:
      case NodeKind::kStringLiteral:
      case NodeKind::kDeclRef:
      case NodeKind::kCallExpr:
      case NodeKind::kArraySubscript:
      case NodeKind::kMemberExpr:
      case NodeKind::kParenExpr:
      case NodeKind::kSizeofExpr:
      case NodeKind::kUnaryOperator:
        print_expr(e);
        break;
      default:
        out_ += '(';
        print_expr(e);
        out_ += ')';
    }
  }

  void print_type(const Type& t) {
    out_ += t.base;
    for (int i = 0; i < t.pointer_depth; ++i) out_ += '*';
  }

  void print_stmt(const Stmt& s, int level) {
    if (s.pragma_text) {
      indent(level);
      out_ += '#';
      out_ += *s.pragma_text;
      out_ += '\n';
    }
    switch (s.kind()) {
      case NodeKind::kCompoundStmt: {
        const auto& c = static_cast<const CompoundStmt&>(s);
        indent(level);
        out_ += "{\n";
        for (const auto& child : c.body) print_stmt(*child, level + 1);
        indent(level);
        out_ += "}\n";
        break;
      }
      case NodeKind::kDeclStmt: {
        indent(level);
        print_decl_group(static_cast<const DeclStmt&>(s));
        out_ += ";\n";
        break;
      }
      case NodeKind::kExprStmt: {
        indent(level);
        print_expr(*static_cast<const ExprStmt&>(s).expr);
        out_ += ";\n";
        break;
      }
      case NodeKind::kIfStmt: {
        const auto& i = static_cast<const IfStmt&>(s);
        indent(level);
        out_ += "if (";
        print_expr(*i.cond);
        out_ += ")\n";
        print_branch(*i.then_branch, level);
        if (i.else_branch) {
          indent(level);
          out_ += "else\n";
          print_branch(*i.else_branch, level);
        }
        break;
      }
      case NodeKind::kForStmt: {
        const auto& f = static_cast<const ForStmt&>(s);
        indent(level);
        out_ += "for (";
        print_for_init(*f.init);
        out_ += ' ';
        if (f.cond) print_expr(*f.cond);
        out_ += "; ";
        if (f.inc) print_expr(*f.inc);
        out_ += ")\n";
        print_branch(*f.body, level);
        break;
      }
      case NodeKind::kWhileStmt: {
        const auto& w = static_cast<const WhileStmt&>(s);
        indent(level);
        out_ += "while (";
        print_expr(*w.cond);
        out_ += ")\n";
        print_branch(*w.body, level);
        break;
      }
      case NodeKind::kDoStmt: {
        const auto& d = static_cast<const DoStmt&>(s);
        indent(level);
        out_ += "do\n";
        print_branch(*d.body, level);
        indent(level);
        out_ += "while (";
        print_expr(*d.cond);
        out_ += ");\n";
        break;
      }
      case NodeKind::kReturnStmt: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        indent(level);
        out_ += "return";
        if (r.value) {
          out_ += ' ';
          print_expr(*r.value);
        }
        out_ += ";\n";
        break;
      }
      case NodeKind::kBreakStmt:
        indent(level);
        out_ += "break;\n";
        break;
      case NodeKind::kContinueStmt:
        indent(level);
        out_ += "continue;\n";
        break;
      case NodeKind::kNullStmt:
        indent(level);
        out_ += ";\n";
        break;
      default:
        indent(level);
        out_ += "/*?stmt?*/;\n";
    }
  }

  /// For-init renders without its trailing newline; DeclStmt keeps its ';'.
  void print_for_init(const Stmt& s) {
    if (s.kind() == NodeKind::kExprStmt) {
      print_expr(*static_cast<const ExprStmt&>(s).expr);
    } else if (s.kind() == NodeKind::kDeclStmt) {
      print_decl_group(static_cast<const DeclStmt&>(s));
    }
    out_ += ';';
  }

  void print_decl_group(const DeclStmt& d) {
    for (std::size_t i = 0; i < d.decls.size(); ++i) {
      const VarDecl& v = *d.decls[i];
      if (i == 0) {
        out_ += v.type.base;
        out_ += ' ';
        for (int p = 0; p < v.type.pointer_depth; ++p) out_ += '*';
      } else {
        out_ += ", ";
        for (int p = 0; p < v.type.pointer_depth; ++p) out_ += '*';
      }
      out_ += v.name;
      for (const auto& dim : v.array_dims) {
        out_ += '[';
        print_expr(*dim);
        out_ += ']';
      }
      if (v.init) {
        out_ += " = ";
        print_expr(*v.init);
      }
    }
  }

  void print_branch(const Stmt& body, int level) {
    print_stmt(body, body.kind() == NodeKind::kCompoundStmt ? level : level + 1);
  }

  void print_decl(const Decl& d, int level) {
    switch (d.kind()) {
      case NodeKind::kVarDecl: {
        const auto& v = static_cast<const VarDecl&>(d);
        indent(level);
        print_type(v.type);
        out_ += ' ';
        out_ += v.name;
        for (const auto& dim : v.array_dims) {
          out_ += '[';
          print_expr(*dim);
          out_ += ']';
        }
        if (v.init) {
          out_ += " = ";
          print_expr(*v.init);
        }
        out_ += ";\n";
        break;
      }
      case NodeKind::kParamDecl: {
        const auto& p = static_cast<const ParamDecl&>(d);
        print_type(p.type);
        out_ += ' ';
        out_ += p.name;
        if (p.is_array) out_ += "[]";
        break;
      }
      case NodeKind::kFunctionDecl: {
        const auto& f = static_cast<const FunctionDecl&>(d);
        indent(level);
        print_type(f.return_type);
        out_ += ' ';
        out_ += f.name;
        out_ += '(';
        for (std::size_t i = 0; i < f.params.size(); ++i) {
          if (i) out_ += ", ";
          print_decl(*f.params[i], 0);
        }
        out_ += ')';
        if (f.body) {
          out_ += '\n';
          print_stmt(*f.body, level);
        } else {
          out_ += ";\n";
        }
        break;
      }
      default:
        indent(level);
        out_ += "/*?decl?*/;\n";
    }
  }

  void print_node(const Node& n, int level) {
    if (n.kind() == NodeKind::kTranslationUnit) {
      const auto& tu = static_cast<const TranslationUnit&>(n);
      for (const auto& d : tu.decls) {
        print_decl(*d, level);
        out_ += '\n';
      }
    } else if (n.is_expr()) {
      print_expr(static_cast<const Expr&>(n));
    } else if (n.is_stmt()) {
      print_stmt(static_cast<const Stmt&>(n), level);
    } else {
      print_decl(static_cast<const Decl&>(n), level);
    }
  }

 private:
  std::string& out_;
};

}  // namespace

std::string to_source(const Node& node, int indent) {
  std::string out;
  Printer(out).print_node(node, indent);
  return out;
}

std::string expr_to_source(const Expr& expr) {
  std::string out;
  Printer(out).print_expr(expr);
  return out;
}

}  // namespace g2p
