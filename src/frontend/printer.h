// AST -> C source regeneration.
//
// Used for (a) round-trip tests of the parser, (b) emitting the synthetic
// corpus as compilable C files, and (c) showing loops in examples/benches.
#pragma once

#include <string>

#include "frontend/ast.h"

namespace g2p {

/// Render any node back to C source. Statements are indented with
/// `indent` levels of two spaces.
std::string to_source(const Node& node, int indent = 0);

/// Render an expression with minimal parentheses (children are
/// re-parenthesized from structure, not from the original text).
std::string expr_to_source(const Expr& expr);

}  // namespace g2p
