#include "frontend/token.h"

#include <array>

namespace g2p {

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "eof";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kIntLiteral: return "int-literal";
    case TokenKind::kFloatLiteral: return "float-literal";
    case TokenKind::kCharLiteral: return "char-literal";
    case TokenKind::kStringLiteral: return "string-literal";
    case TokenKind::kPunct: return "punct";
    case TokenKind::kPragma: return "pragma";
  }
  return "?";
}

bool is_c_keyword(std::string_view word) {
  static constexpr std::array<std::string_view, 32> kKeywords = {
      "auto",     "break",  "case",    "char",   "const",    "continue", "default",
      "do",       "double", "else",    "enum",   "extern",   "float",    "for",
      "goto",     "if",     "inline",  "int",    "long",     "register", "return",
      "short",    "signed", "sizeof",  "static", "struct",   "switch",   "typedef",
      "union",    "unsigned", "void",  "while",
  };
  for (auto k : kKeywords) {
    if (k == word) return true;
  }
  return false;
}

bool is_type_start_keyword(std::string_view word) {
  static constexpr std::array<std::string_view, 13> kTypeStarts = {
      "void", "char", "short", "int", "long", "float", "double", "signed",
      "unsigned", "const", "struct", "static", "register",
  };
  for (auto k : kTypeStarts) {
    if (k == word) return true;
  }
  return false;
}

}  // namespace g2p
