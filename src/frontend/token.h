// Token definitions for the C-subset frontend.
//
// The lexer produces a flat token stream; `#pragma` lines are captured as
// single kPragma tokens (the dataset pipeline needs them attached to loops),
// and other preprocessor directives are dropped.
//
// Tokens are zero-copy: `text` is a `string_view` into the caller's source
// buffer (or, for synthesized spellings like folded pragma lines, into the
// Arena passed to `lex`). A Token is trivially copyable — growing the token
// vector moves plain words, never heap strings.
#pragma once

#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace g2p {

enum class TokenKind {
  kEof,
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kFloatLiteral,
  kCharLiteral,
  kStringLiteral,
  kPunct,    // operators and separators: + - * / ( ) { } [ ] ; , etc.
  kPragma,   // a whole "#pragma ..." line, text in Token::text
};

/// One lexical token. `text` always holds the exact source spelling
/// (for kPragma, the full directive line without the leading '#').
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string_view text;
  int line = 0;
  int column = 0;

  bool is(TokenKind k) const { return kind == k; }
  bool is_punct(std::string_view p) const { return kind == TokenKind::kPunct && text == p; }
  bool is_keyword(std::string_view k) const { return kind == TokenKind::kKeyword && text == k; }
  bool is_identifier(std::string_view name) const {
    return kind == TokenKind::kIdentifier && text == name;
  }
};

static_assert(std::is_trivially_copyable_v<Token>);

/// Human-readable token kind name (diagnostics, tests).
std::string_view token_kind_name(TokenKind kind);

/// True if `word` is a keyword of the supported C subset.
bool is_c_keyword(std::string_view word);

/// True if `word` names a builtin type or type qualifier that can begin a
/// declaration (int, unsigned, const, struct, ...).
bool is_type_start_keyword(std::string_view word);

}  // namespace g2p
