#include "graph/cfg.h"

#include <algorithm>

namespace g2p {

bool Cfg::has_edge(const Node* src, const Node* dst) const {
  return std::find(edges.begin(), edges.end(), std::make_pair(src, dst)) != edges.end();
}

namespace {

/// A partial CFG of one statement: where control enters and which nodes'
/// control continues past the statement. A fragment with no entries and no
/// exits is transparent (e.g. an empty block).
struct Fragment {
  std::vector<const Node*> entries;
  std::vector<const Node*> exits;
  bool transparent() const { return entries.empty() && exits.empty(); }
};

class CfgBuilder {
 public:
  Cfg run(const Stmt& root) {
    build(root);
    return std::move(cfg_);
  }

 private:
  const Node* register_node(const Node& n) {
    cfg_.nodes.push_back(&n);
    return &n;
  }

  void connect(const std::vector<const Node*>& froms, const std::vector<const Node*>& tos) {
    for (const Node* f : froms) {
      for (const Node* t : tos) cfg_.edges.emplace_back(f, t);
    }
  }

  Fragment build(const Stmt& stmt) {
    switch (stmt.kind()) {
      case NodeKind::kCompoundStmt:
        return build_compound(static_cast<const CompoundStmt&>(stmt));
      case NodeKind::kIfStmt:
        return build_if(static_cast<const IfStmt&>(stmt));
      case NodeKind::kForStmt:
        return build_for(static_cast<const ForStmt&>(stmt));
      case NodeKind::kWhileStmt:
        return build_while(static_cast<const WhileStmt&>(stmt));
      case NodeKind::kDoStmt:
        return build_do(static_cast<const DoStmt&>(stmt));
      case NodeKind::kBreakStmt: {
        const Node* n = register_node(stmt);
        if (!break_targets_.empty()) break_targets_.back()->push_back(n);
        return Fragment{{n}, {}};
      }
      case NodeKind::kContinueStmt: {
        const Node* n = register_node(stmt);
        if (!continue_targets_.empty()) continue_targets_.back()->push_back(n);
        return Fragment{{n}, {}};
      }
      case NodeKind::kReturnStmt: {
        const Node* n = register_node(stmt);
        return Fragment{{n}, {}};  // control leaves the region
      }
      default: {
        // Simple statement: decl, expression, null.
        const Node* n = register_node(stmt);
        return Fragment{{n}, {n}};
      }
    }
  }

  Fragment build_compound(const CompoundStmt& block) {
    Fragment out;
    std::vector<const Node*> pending;
    bool started = false;
    for (const auto& child : block.body) {
      Fragment frag = build(*child);
      if (frag.transparent()) continue;
      if (!started) {
        out.entries = frag.entries;
        started = true;
      } else {
        connect(pending, frag.entries);
      }
      pending = frag.exits;
    }
    out.exits = pending;
    return out;
  }

  Fragment build_if(const IfStmt& stmt) {
    const Node* cond = register_node(*stmt.cond);
    Fragment then_frag = build(*static_cast<const Stmt*>(stmt.then_branch));
    connect({cond}, then_frag.entries);
    Fragment out;
    out.entries = {cond};
    out.exits = then_frag.exits;
    if (stmt.else_branch) {
      Fragment else_frag = build(*static_cast<const Stmt*>(stmt.else_branch));
      connect({cond}, else_frag.entries);
      out.exits.insert(out.exits.end(), else_frag.exits.begin(), else_frag.exits.end());
      if (else_frag.transparent()) out.exits.push_back(cond);
    } else {
      out.exits.push_back(cond);  // false branch falls through
    }
    return out;
  }

  Fragment build_for(const ForStmt& stmt) {
    std::vector<const Node*> breaks;
    std::vector<const Node*> continues;

    Fragment init = build(*stmt.init);
    const Node* cond = stmt.cond ? register_node(*stmt.cond) : nullptr;
    const Node* inc = stmt.inc ? register_node(*stmt.inc) : nullptr;

    break_targets_.push_back(&breaks);
    continue_targets_.push_back(&continues);
    Fragment body = build(*static_cast<const Stmt*>(stmt.body));
    break_targets_.pop_back();
    continue_targets_.pop_back();

    // Loop head = cond if present, else body entry.
    std::vector<const Node*> head = cond ? std::vector<const Node*>{cond} : body.entries;

    if (!init.transparent()) connect(init.exits, head);
    if (cond) connect({cond}, body.entries);
    // Body exits go to inc, then back to the head.
    std::vector<const Node*> latch = inc ? std::vector<const Node*>{inc} : head;
    connect(body.exits, latch);
    connect(continues, latch);
    if (inc) connect({inc}, head);

    Fragment out;
    out.entries = !init.transparent() ? init.entries : head;
    out.exits = breaks;
    if (cond) out.exits.push_back(cond);  // loop exit through the predicate
    return out;
  }

  Fragment build_while(const WhileStmt& stmt) {
    std::vector<const Node*> breaks;
    std::vector<const Node*> continues;
    const Node* cond = register_node(*stmt.cond);

    break_targets_.push_back(&breaks);
    continue_targets_.push_back(&continues);
    Fragment body = build(*static_cast<const Stmt*>(stmt.body));
    break_targets_.pop_back();
    continue_targets_.pop_back();

    connect({cond}, body.entries);
    connect(body.exits, {cond});
    connect(continues, {cond});

    Fragment out;
    out.entries = {cond};
    out.exits = breaks;
    out.exits.push_back(cond);
    return out;
  }

  Fragment build_do(const DoStmt& stmt) {
    std::vector<const Node*> breaks;
    std::vector<const Node*> continues;
    const Node* cond = register_node(*stmt.cond);

    break_targets_.push_back(&breaks);
    continue_targets_.push_back(&continues);
    Fragment body = build(*static_cast<const Stmt*>(stmt.body));
    break_targets_.pop_back();
    continue_targets_.pop_back();

    connect(body.exits, {cond});
    connect(continues, {cond});
    if (!body.transparent()) {
      connect({cond}, body.entries);  // back edge
    }

    Fragment out;
    out.entries = body.transparent() ? std::vector<const Node*>{cond} : body.entries;
    out.exits = breaks;
    out.exits.push_back(cond);
    return out;
  }

  Cfg cfg_;
  std::vector<std::vector<const Node*>*> break_targets_;
  std::vector<std::vector<const Node*>*> continue_targets_;
};

}  // namespace

Cfg build_cfg(const Stmt& root) {
  CfgBuilder builder;
  return builder.run(root);
}

}  // namespace g2p
