// Control flow graph construction (§5.1.2).
//
// CFG nodes are statements and predicates of the analyzed subtree (loop or
// function body); directed edges give the execution-order successor
// relation, including loop back edges and break/continue routing. The CFG is
// merged into the aug-AST by identifying each CFG node with its AST node.
#pragma once

#include <utility>
#include <vector>

#include "frontend/ast.h"

namespace g2p {

struct Cfg {
  /// Statements and predicate expressions, in discovery order.
  std::vector<const Node*> nodes;
  /// Flow edges (src executes, then dst may execute next).
  std::vector<std::pair<const Node*, const Node*>> edges;

  bool has_edge(const Node* src, const Node* dst) const;
};

/// Build the CFG of a statement subtree (typically a loop or function body).
Cfg build_cfg(const Stmt& root);

}  // namespace g2p
