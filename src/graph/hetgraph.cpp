#include "graph/hetgraph.h"

namespace g2p {

std::string_view het_node_type_name(HetNodeType type) {
  switch (type) {
    case HetNodeType::kLoop: return "Loop";
    case HetNodeType::kBranch: return "Branch";
    case HetNodeType::kBinaryOp: return "BinaryOp";
    case HetNodeType::kUnaryOp: return "UnaryOp";
    case HetNodeType::kAssign: return "Assign";
    case HetNodeType::kCall: return "Call";
    case HetNodeType::kArrayAccess: return "ArrayAccess";
    case HetNodeType::kMemberAccess: return "MemberAccess";
    case HetNodeType::kVarRef: return "VarRef";
    case HetNodeType::kLiteral: return "Literal";
    case HetNodeType::kDecl: return "Decl";
    case HetNodeType::kBlock: return "Block";
    case HetNodeType::kStmtOther: return "StmtOther";
    case HetNodeType::kCount: break;
  }
  return "?";
}

std::string_view het_edge_type_name(HetEdgeType type) {
  switch (type) {
    case HetEdgeType::kAstChild: return "ast-child";
    case HetEdgeType::kAstParent: return "ast-parent";
    case HetEdgeType::kCfgNext: return "cfg-next";
    case HetEdgeType::kCfgPrev: return "cfg-prev";
    case HetEdgeType::kLexNext: return "lex-next";
    case HetEdgeType::kLexPrev: return "lex-prev";
    case HetEdgeType::kCount: break;
  }
  return "?";
}

int HetGraph::count_edges(HetEdgeType type) const {
  int n = 0;
  for (const auto& e : edges) n += (e.type == type);
  return n;
}

bool HetGraph::valid() const {
  const int n = num_nodes();
  for (const auto& e : edges) {
    if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n) return false;
  }
  return true;
}

}  // namespace g2p
