// Heterogeneous graph data structure: G = (V, E, A, R) of §5.2.
//
// A is the set of node types (AST category of each node), R the set of edge
// types (AST / CFG / lexical, each with a reverse direction so messages flow
// both ways). Meta-relations (src-type, edge-type, dst-type) parameterize the
// HGT attention exactly as in Hu et al. 2020.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace g2p {

/// Node types A: the heterogeneous AST categories (mirrors Clang kinds,
/// collapsed to the granularity the paper's Figure 3 shows).
enum class HetNodeType : std::uint8_t {
  kLoop,          // ForStmt / WhileStmt / DoStmt
  kBranch,        // IfStmt / ConditionalOperator
  kBinaryOp,      // BinaryOperator
  kUnaryOp,       // UnaryOperator
  kAssign,        // Assignment (incl. compound)
  kCall,          // CallExpr
  kArrayAccess,   // ArraySubscriptExpr
  kMemberAccess,  // MemberExpr
  kVarRef,        // DeclRefExpr
  kLiteral,       // Int/Float/Char/String literals
  kDecl,          // VarDecl / ParamDecl / FunctionDecl
  kBlock,         // CompoundStmt
  kStmtOther,     // remaining statements (decl-stmt, expr-stmt, return, ...)
  kCount
};
inline constexpr int kNumHetNodeTypes = static_cast<int>(HetNodeType::kCount);

std::string_view het_node_type_name(HetNodeType type);

/// Edge types R. Forward/reverse pairs let information flow against edge
/// direction (standard practice for directed program graphs).
enum class HetEdgeType : std::uint8_t {
  kAstChild,   // parent -> child (original tree edge, λ_A)
  kAstParent,  // child -> parent
  kCfgNext,    // control-flow successor (merged CFG, §5.1.2)
  kCfgPrev,
  kLexNext,    // consecutive leaves in token order (§5.1.3)
  kLexPrev,
  kCount
};
inline constexpr int kNumHetEdgeTypes = static_cast<int>(HetEdgeType::kCount);

std::string_view het_edge_type_name(HetEdgeType type);

struct HetNode {
  HetNodeType type = HetNodeType::kStmtOther;
  int token_id = 0;   // vocabulary id of the node's text attribute (µ_A)
  int position = 0;   // child index within parent, clamped — tree order attr
};

struct HetEdge {
  int src = 0;
  int dst = 0;
  HetEdgeType type = HetEdgeType::kAstChild;
};

/// An attributed heterogeneous graph (one loop, or a disjoint batch union).
struct HetGraph {
  std::vector<HetNode> nodes;
  std::vector<HetEdge> edges;

  int add_node(HetNodeType type, int token_id, int position) {
    nodes.push_back(HetNode{type, token_id, position});
    return static_cast<int>(nodes.size()) - 1;
  }
  void add_edge(int src, int dst, HetEdgeType type) {
    edges.push_back(HetEdge{src, dst, type});
  }
  /// Add src->dst of `fwd` and dst->src of `rev`.
  void add_edge_pair(int src, int dst, HetEdgeType fwd, HetEdgeType rev) {
    add_edge(src, dst, fwd);
    add_edge(dst, src, rev);
  }

  int num_nodes() const { return static_cast<int>(nodes.size()); }
  int num_edges() const { return static_cast<int>(edges.size()); }

  /// Count edges of one type (tests, stats).
  int count_edges(HetEdgeType type) const;
  /// Validate all edge endpoints are in range.
  bool valid() const;
};

// BatchedGraph / batch_graphs (the mini-batching disjoint union) live in
// graph/hetgraph_index.h: batching now always carries the precomputed CSR
// adjacency the HGT layers consume.

}  // namespace g2p
