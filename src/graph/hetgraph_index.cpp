#include "graph/hetgraph_index.h"

#include <stdexcept>

namespace g2p {

HetGraphIndex::HetGraphIndex(const HetGraph& graph) {
  num_nodes = graph.num_nodes();
  num_edges = graph.num_edges();
  per_edge_type.resize(static_cast<std::size_t>(kNumHetEdgeTypes));
  rows_of_type.resize(static_cast<std::size_t>(kNumHetNodeTypes));

  for (int i = 0; i < num_nodes; ++i) {
    rows_of_type[static_cast<std::size_t>(graph.nodes[static_cast<std::size_t>(i)].type)]
        .push_back(i);
  }
  nodes_by_type.reserve(static_cast<std::size_t>(num_nodes));
  for (const auto& rows : rows_of_type) {
    for (int v : rows) nodes_by_type.push_back(v);
  }

  // Pass 1: count incoming edges per (edge type, destination).
  for (auto& slice : per_edge_type) {
    slice.row_offsets.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  }
  for (const auto& e : graph.edges) {
    if (e.src < 0 || e.src >= num_nodes || e.dst < 0 || e.dst >= num_nodes) {
      throw std::invalid_argument("HetGraphIndex: edge endpoint out of range");
    }
    ++per_edge_type[static_cast<std::size_t>(e.type)]
          .row_offsets[static_cast<std::size_t>(e.dst) + 1];
  }
  int concat_offset = 0;
  for (auto& slice : per_edge_type) {
    for (int v = 0; v < num_nodes; ++v) {
      slice.row_offsets[static_cast<std::size_t>(v) + 1] +=
          slice.row_offsets[static_cast<std::size_t>(v)];
    }
    const int count = slice.row_offsets[static_cast<std::size_t>(num_nodes)];
    slice.src.resize(static_cast<std::size_t>(count));
    slice.dst.resize(static_cast<std::size_t>(count));
    slice.concat_offset = concat_offset;
    concat_offset += count;
  }

  // Pass 2: stable scatter into CSR order (insertion order kept per node).
  std::vector<std::vector<int>> cursor(per_edge_type.size());
  for (std::size_t t = 0; t < per_edge_type.size(); ++t) {
    cursor[t].assign(per_edge_type[t].row_offsets.begin(),
                     per_edge_type[t].row_offsets.end() - 1);
  }
  for (const auto& e : graph.edges) {
    const auto t = static_cast<std::size_t>(e.type);
    const int pos = cursor[t][static_cast<std::size_t>(e.dst)]++;
    per_edge_type[t].src[static_cast<std::size_t>(pos)] = e.src;
    per_edge_type[t].dst[static_cast<std::size_t>(pos)] = e.dst;
  }

  dst_concat.reserve(static_cast<std::size_t>(num_edges));
  meta_concat.reserve(static_cast<std::size_t>(num_edges));
  for (int et = 0; et < kNumHetEdgeTypes; ++et) {
    const auto& slice = per_edge_type[static_cast<std::size_t>(et)];
    for (int i = 0; i < slice.size(); ++i) {
      const int src = slice.src[static_cast<std::size_t>(i)];
      const int dst = slice.dst[static_cast<std::size_t>(i)];
      dst_concat.push_back(dst);
      const int src_type = static_cast<int>(graph.nodes[static_cast<std::size_t>(src)].type);
      const int dst_type = static_cast<int>(graph.nodes[static_cast<std::size_t>(dst)].type);
      meta_concat.push_back((src_type * kNumHetEdgeTypes + et) * kNumHetNodeTypes + dst_type);
    }
  }
}

BatchedGraph batch_graphs(const std::vector<const HetGraph*>& graphs) {
  BatchedGraph out;
  out.num_graphs = static_cast<int>(graphs.size());
  std::size_t total_nodes = 0, total_edges = 0;
  for (const HetGraph* graph : graphs) {
    if (graph == nullptr) throw std::invalid_argument("batch_graphs: null graph");
    total_nodes += graph->nodes.size();
    total_edges += graph->edges.size();
  }
  out.merged.nodes.reserve(total_nodes);
  out.merged.edges.reserve(total_edges);
  out.segment_of_node.reserve(total_nodes);

  int offset = 0;
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    const HetGraph& graph = *graphs[g];
    const int n = graph.num_nodes();
    for (const auto& node : graph.nodes) {
      out.merged.nodes.push_back(node);
      out.segment_of_node.push_back(static_cast<int>(g));
    }
    for (const auto& e : graph.edges) {
      if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n) {
        throw std::invalid_argument("batch_graphs: edge endpoint out of range");
      }
      out.merged.edges.push_back(HetEdge{e.src + offset, e.dst + offset, e.type});
    }
    offset += n;  // empty graphs contribute no nodes but keep their segment id
  }
  out.index = HetGraphIndex(out.merged);
  return out;
}

}  // namespace g2p
