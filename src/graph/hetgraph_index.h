// Precomputed adjacency for heterogeneous message passing.
//
// The HGT layer (formulas 1-5 of §5.2) needs, for every edge type φ(e), the
// list of edges grouped by destination node: attention is softmax-normalized
// over the incoming edges of each target, and W_ATT / W_MSG are φ-indexed.
// Rebuilding those groupings from the flat edge list costs O(E) per layer per
// forward; a HetGraphIndex computes them once per graph (or per batch) as
// per-edge-type CSR adjacency and is shared by every layer of the encoder.
//
// Layout. Edges are ordered type-major: all edges of edge type 0 first, then
// type 1, ... Within one type they are in CSR order — sorted by destination
// node, ties kept in insertion order (the counting sort is stable), so the
// incoming-edge list of each node preserves the original edge order. This
// makes a batched forward accumulate per-node sums in exactly the same order
// as a single-graph forward, which is what the batched-vs-sequential parity
// tests rely on.
#pragma once

#include <vector>

#include "graph/hetgraph.h"

namespace g2p {

struct HetGraphIndex {
  /// CSR block of one edge type φ. Incoming edges of node v occupy positions
  /// [row_offsets[v], row_offsets[v+1]) of `src` / `dst`.
  struct EdgeTypeSlice {
    std::vector<int> row_offsets;  // size num_nodes + 1
    std::vector<int> src;          // source node of each edge, CSR order
    std::vector<int> dst;          // destination node of each edge, CSR order
    int concat_offset = 0;         // block start in the type-major edge order
    bool empty() const { return src.empty(); }
    int size() const { return static_cast<int>(src.size()); }

    // Per-destination walk: incoming edges of node v occupy CSR positions
    // [in_begin(v), in_end(v)) of `src`; position p is edge
    // `concat_offset + p` of the type-major order (the dst_concat /
    // meta_concat index). Valid on every slice of a built index — the
    // constructor sizes row_offsets to num_nodes + 1 even for edge types
    // with no edges — but not on a default-constructed slice.
    int in_begin(int v) const { return row_offsets[static_cast<std::size_t>(v)]; }
    int in_end(int v) const { return row_offsets[static_cast<std::size_t>(v) + 1]; }
    int in_degree(int v) const { return in_end(v) - in_begin(v); }
  };

  int num_nodes = 0;
  int num_edges = 0;

  /// One CSR block per edge type, φ-indexed (size kNumHetEdgeTypes).
  std::vector<EdgeTypeSlice> per_edge_type;
  /// Node ids grouped by node type τ (size kNumHetNodeTypes) — the per-type
  /// K/Q/V/A-Linear projections gather rows through these.
  std::vector<std::vector<int>> rows_of_type;
  /// rows_of_type concatenated (node id at each type-major position).
  /// concat_rows_to scatters through this to place per-type projection
  /// blocks directly back into node order in one pass.
  std::vector<int> nodes_by_type;
  /// Destination node of every edge in the type-major order (size num_edges);
  /// the segment key for attention softmax and message aggregation.
  std::vector<int> dst_concat;
  /// Meta-relation id (τ(s), φ(e), τ(t)) of every edge, same order; gathers
  /// the µ prior of formula 2.
  std::vector<int> meta_concat;

  /// Total incoming edges of node v across every edge type.
  int total_in_degree(int v) const {
    int deg = 0;
    for (const auto& slice : per_edge_type) {
      if (!slice.empty()) deg += slice.in_degree(v);
    }
    return deg;
  }

  HetGraphIndex() = default;
  /// Build in O(V + E) with a stable counting sort. Throws
  /// std::invalid_argument if an edge endpoint is out of range.
  explicit HetGraphIndex(const HetGraph& graph);
};

/// Disjoint union of graphs for mini-batching. `segment_of_node[i]` gives the
/// index of the source graph of node i (graph readout pooling key); graphs
/// with no nodes contribute an empty segment, so readouts stay aligned with
/// the input list. `index` is the precomputed adjacency of `merged`.
struct BatchedGraph {
  HetGraph merged;
  std::vector<int> segment_of_node;
  int num_graphs = 0;
  HetGraphIndex index;
};

/// Merge graphs into one disjoint union and index it. Null entries and
/// out-of-range edges throw; empty graphs are legal and keep their segment.
BatchedGraph batch_graphs(const std::vector<const HetGraph*>& graphs);

}  // namespace g2p
