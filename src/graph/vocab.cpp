#include "graph/vocab.h"

#include <algorithm>
#include <stdexcept>

#include "support/strings.h"

namespace g2p {

Vocab::Vocab() {
  add("<unk>");
  add("<pad>");
  add("<cls>");
}

int Vocab::add(std::string_view token) {
  auto it = index_.find(token);
  if (it != index_.end()) return it->second;
  const int id = static_cast<int>(tokens_.size());
  tokens_.emplace_back(token);
  index_.emplace(tokens_.back(), id);
  return id;
}

int Vocab::id(std::string_view token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kUnk : it->second;
}

const std::string& Vocab::token(int id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("Vocab::token: bad id");
  return tokens_[static_cast<std::size_t>(id)];
}

Vocab Vocab::build(const std::unordered_map<std::string, int>& counts, int min_freq,
                   int max_size) {
  std::vector<std::pair<std::string, int>> sorted(counts.begin(), counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  Vocab vocab;
  for (const auto& [token, count] : sorted) {
    if (count < min_freq) break;
    if (vocab.size() >= max_size) break;
    vocab.add(token);
  }
  return vocab;
}

std::string Vocab::serialize() const {
  std::string out;
  for (const auto& t : tokens_) {
    out += t;
    out += '\n';
  }
  return out;
}

Vocab Vocab::deserialize(std::string_view text) {
  Vocab vocab;
  vocab.tokens_.clear();
  vocab.index_.clear();
  for (const auto& line : split(text, '\n')) {
    if (line.empty()) continue;
    const int id = static_cast<int>(vocab.tokens_.size());
    vocab.tokens_.push_back(line);
    vocab.index_.emplace(line, id);
  }
  return vocab;
}

}  // namespace g2p
