// Token vocabulary shared by the aug-AST node attributes and the
// token-representation (PragFormer) baseline.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/strings.h"

namespace g2p {

/// Frequency-built string -> id mapping with reserved specials.
class Vocab {
 public:
  static constexpr int kUnk = 0;  // out-of-vocabulary
  static constexpr int kPad = 1;  // sequence padding (token models)
  static constexpr int kCls = 2;  // sequence-start classification token

  Vocab();

  /// Add (or look up) a token while building. Returns its id.
  int add(std::string_view token);

  /// Lookup without insertion; unknown tokens map to kUnk.
  int id(std::string_view token) const;

  /// Reverse lookup (diagnostics).
  const std::string& token(int id) const;

  int size() const { return static_cast<int>(tokens_.size()); }

  /// Build from a token-frequency table keeping tokens with
  /// count >= min_freq, most frequent first, capped at max_size.
  static Vocab build(const std::unordered_map<std::string, int>& counts, int min_freq = 1,
                     int max_size = 20000);

  /// Plain-text round-trip (one token per line, id = line index).
  std::string serialize() const;
  static Vocab deserialize(std::string_view text);

 private:
  std::unordered_map<std::string, int, StringHash, std::equal_to<>> index_;
  std::vector<std::string> tokens_;
};

}  // namespace g2p
