#include "nn/hgt.h"

#include <cmath>
#include <stdexcept>

namespace g2p {

HgtLayer::HgtLayer(int dim, int heads, Rng& rng)
    : dim_(dim), heads_(heads), head_dim_(dim / heads) {
  if (dim % heads != 0) throw std::invalid_argument("HgtLayer: dim must divide by heads");

  for (int t = 0; t < kNumHetNodeTypes; ++t) {
    k_lin_.push_back(std::make_unique<Linear>(dim, dim, rng));
    q_lin_.push_back(std::make_unique<Linear>(dim, dim, rng));
    v_lin_.push_back(std::make_unique<Linear>(dim, dim, rng));
    a_lin_.push_back(std::make_unique<Linear>(dim, dim, rng));
    register_child(*k_lin_.back());
    register_child(*q_lin_.back());
    register_child(*v_lin_.back());
    register_child(*a_lin_.back());
  }
  const float bound = std::sqrt(6.0f / static_cast<float>(2 * head_dim_));
  w_att_.resize(static_cast<std::size_t>(kNumHetEdgeTypes));
  w_msg_.resize(static_cast<std::size_t>(kNumHetEdgeTypes));
  for (int e = 0; e < kNumHetEdgeTypes; ++e) {
    for (int h = 0; h < heads_; ++h) {
      w_att_[static_cast<std::size_t>(e)].push_back(
          register_param(Tensor::rand_uniform({head_dim_, head_dim_}, rng, bound)));
      w_msg_[static_cast<std::size_t>(e)].push_back(
          register_param(Tensor::rand_uniform({head_dim_, head_dim_}, rng, bound)));
    }
  }
  const int num_meta = kNumHetNodeTypes * kNumHetEdgeTypes * kNumHetNodeTypes;
  mu_ = register_param(Tensor::full({num_meta, 1}, 1.0f));
}

Tensor HgtLayer::per_type_projection(const Tensor& x, const HetGraphIndex& index,
                                     const std::vector<std::unique_ptr<Linear>>& lins) const {
  const int n = index.num_nodes;
  std::vector<Tensor> parts;  // projected rows, type-major order
  for (int t = 0; t < kNumHetNodeTypes; ++t) {
    const auto& rows = index.rows_of_type[static_cast<std::size_t>(t)];
    if (rows.empty()) continue;
    parts.push_back(lins[static_cast<std::size_t>(t)]->forward(index_select_rows(x, rows)));
  }
  if (parts.empty()) return Tensor::zeros({n, dim_});
  // One fused scatter-on-write pass places the per-type blocks back into
  // node order — cheaper than per-type scatter-add chains over full
  // [N, dim] buffers or a concat followed by a gather.
  return concat_rows_to(parts, index.nodes_by_type);
}

Tensor HgtLayer::forward(const Tensor& x, const HetGraphIndex& index) const {
  const int n = index.num_nodes;
  const int total_edges = index.num_edges;
  if (x.dim(0) != n || x.dim(1) != dim_) {
    throw std::invalid_argument("HgtLayer::forward: state shape mismatch");
  }
  if (total_edges == 0) {
    // Formula 5 degenerates to the residual path.
    return x;
  }

  const Tensor k_all = per_type_projection(x, index, k_lin_);
  const Tensor q_all = per_type_projection(x, index, q_lin_);
  const Tensor v_all = per_type_projection(x, index, v_lin_);

  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  // µ prior per edge, shared across heads (formula 2). Edge order is the
  // index's type-major CSR order throughout.
  const Tensor mu_per_edge =
      reshape(index_select_rows(mu_, index.meta_concat), {total_edges});

  // Apply the φ-indexed head maps per NODE, then gather per edge: K W_ATT
  // and V W_MSG are transforms of the source node state, so computing them
  // over the N node rows and gathering E edge rows afterwards does the same
  // math with N-row instead of E-row matmuls (N < E for every aug-AST, which
  // has at least the forward/reverse AST edge pair per non-root node).
  std::vector<std::vector<Tensor>> logits_parts(static_cast<std::size_t>(heads_));
  std::vector<std::vector<Tensor>> msg_parts(static_cast<std::size_t>(heads_));
  for (int h = 0; h < heads_; ++h) {
    const int off = h * head_dim_;
    const Tensor k_h = col_slice(k_all, off, head_dim_);
    const Tensor q_h = col_slice(q_all, off, head_dim_);
    const Tensor v_h = col_slice(v_all, off, head_dim_);
    for (int et = 0; et < kNumHetEdgeTypes; ++et) {
      const auto& slice = index.per_edge_type[static_cast<std::size_t>(et)];
      if (slice.empty()) continue;
      // ATT-head: (K W_ATT) · Q / sqrt(d); MSG-head: V W_MSG.
      const Tensor k_mapped = matmul(
          k_h, w_att_[static_cast<std::size_t>(et)][static_cast<std::size_t>(h)]);
      const Tensor att = row_dot(index_select_rows(k_mapped, slice.src),
                                 index_select_rows(q_h, slice.dst));
      logits_parts[static_cast<std::size_t>(h)].push_back(reshape(att, {slice.size(), 1}));
      const Tensor v_mapped = matmul(
          v_h, w_msg_[static_cast<std::size_t>(et)][static_cast<std::size_t>(h)]);
      msg_parts[static_cast<std::size_t>(h)].push_back(
          index_select_rows(v_mapped, slice.src));
    }
  }

  std::vector<Tensor> head_aggregates;
  head_aggregates.reserve(static_cast<std::size_t>(heads_));
  for (int h = 0; h < heads_; ++h) {
    const Tensor logits_raw = reshape(concat_rows(logits_parts[static_cast<std::size_t>(h)]),
                                      {total_edges});  // concat = dst_concat order
    const Tensor logits = mul(scale(logits_raw, inv_sqrt_d), mu_per_edge);
    // Softmax over all incoming edges of each target (formula 2's Softmax
    // over s ∈ N(t)).
    const Tensor attention = segment_softmax(logits, index.dst_concat, n);
    const Tensor messages =
        concat_rows(msg_parts[static_cast<std::size_t>(h)]);        // [E, head_dim]
    // Formula 4: attention-weighted aggregation, fused so the weighted
    // messages are never materialized.
    head_aggregates.push_back(
        segment_weighted_sum_rows(messages, attention, index.dst_concat, n));
  }

  const Tensor h_tilde = concat_cols(head_aggregates);  // [N, dim]
  // Formula 5: per-target-type output projection of σ(H~) plus residual.
  const Tensor activated = gelu(h_tilde);
  const Tensor projected = per_type_projection(activated, index, a_lin_);
  return add(projected, x);
}

Tensor HgtLayer::forward(const Tensor& x, const HetGraph& graph) const {
  return forward(x, HetGraphIndex(graph));
}

HgtEncoder::HgtEncoder(int dim, int heads, int layers, Rng& rng) {
  for (int i = 0; i < layers; ++i) {
    layers_.push_back(std::make_unique<HgtLayer>(dim, heads, rng));
    norms_.push_back(std::make_unique<LayerNorm>(dim));
    register_child(*layers_.back());
    register_child(*norms_.back());
  }
}

Tensor HgtEncoder::forward(const Tensor& x, const HetGraphIndex& index) const {
  Tensor state = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    state = norms_[i]->forward(layers_[i]->forward(state, index));
  }
  return state;
}

Tensor HgtEncoder::forward(const Tensor& x, const HetGraph& graph) const {
  return forward(x, HetGraphIndex(graph));
}

}  // namespace g2p
