#include "nn/hgt.h"

#include <cmath>
#include <stdexcept>

namespace g2p {

HgtLayer::HgtLayer(int dim, int heads, Rng& rng)
    : dim_(dim), heads_(heads), head_dim_(dim / heads) {
  if (dim % heads != 0) throw std::invalid_argument("HgtLayer: dim must divide by heads");

  for (int t = 0; t < kNumHetNodeTypes; ++t) {
    k_lin_.push_back(std::make_unique<Linear>(dim, dim, rng));
    q_lin_.push_back(std::make_unique<Linear>(dim, dim, rng));
    v_lin_.push_back(std::make_unique<Linear>(dim, dim, rng));
    a_lin_.push_back(std::make_unique<Linear>(dim, dim, rng));
    register_child(*k_lin_.back());
    register_child(*q_lin_.back());
    register_child(*v_lin_.back());
    register_child(*a_lin_.back());
  }
  const float bound = std::sqrt(6.0f / static_cast<float>(2 * head_dim_));
  w_att_.resize(static_cast<std::size_t>(kNumHetEdgeTypes));
  w_msg_.resize(static_cast<std::size_t>(kNumHetEdgeTypes));
  for (int e = 0; e < kNumHetEdgeTypes; ++e) {
    for (int h = 0; h < heads_; ++h) {
      w_att_[static_cast<std::size_t>(e)].push_back(
          register_param(Tensor::rand_uniform({head_dim_, head_dim_}, rng, bound)));
      w_msg_[static_cast<std::size_t>(e)].push_back(
          register_param(Tensor::rand_uniform({head_dim_, head_dim_}, rng, bound)));
    }
  }
  const int num_meta = kNumHetNodeTypes * kNumHetEdgeTypes * kNumHetNodeTypes;
  mu_ = register_param(Tensor::full({num_meta, 1}, 1.0f));
}

Tensor HgtLayer::per_type_projection(const Tensor& x, const HetGraph& graph,
                                     const std::vector<std::unique_ptr<Linear>>& lins) const {
  const int n = graph.num_nodes();
  std::vector<std::vector<int>> rows_of_type(static_cast<std::size_t>(kNumHetNodeTypes));
  for (int i = 0; i < n; ++i) {
    rows_of_type[static_cast<std::size_t>(graph.nodes[static_cast<std::size_t>(i)].type)]
        .push_back(i);
  }
  Tensor result;  // accumulated via scatter-add; each row written exactly once
  for (int t = 0; t < kNumHetNodeTypes; ++t) {
    const auto& rows = rows_of_type[static_cast<std::size_t>(t)];
    if (rows.empty()) continue;
    const Tensor projected =
        lins[static_cast<std::size_t>(t)]->forward(index_select_rows(x, rows));
    const Tensor scattered = scatter_add_rows(projected, rows, n);
    result = result.defined() ? add(result, scattered) : scattered;
  }
  if (!result.defined()) result = Tensor::zeros({n, dim_});
  return result;
}

Tensor HgtLayer::forward(const Tensor& x, const HetGraph& graph) const {
  const int n = graph.num_nodes();
  const int num_edges = graph.num_edges();
  if (x.dim(0) != n || x.dim(1) != dim_) {
    throw std::invalid_argument("HgtLayer::forward: state shape mismatch");
  }
  if (num_edges == 0) {
    // Formula 5 degenerates to the residual path.
    return x;
  }

  const Tensor k_all = per_type_projection(x, graph, k_lin_);
  const Tensor q_all = per_type_projection(x, graph, q_lin_);
  const Tensor v_all = per_type_projection(x, graph, v_lin_);

  // Group edges by edge type (W_ATT / W_MSG are φ-indexed); remember the
  // global concatenation order so per-head tensors align with dst ids.
  std::vector<std::vector<int>> edges_of_type(static_cast<std::size_t>(kNumHetEdgeTypes));
  for (int e = 0; e < num_edges; ++e) {
    edges_of_type[static_cast<std::size_t>(graph.edges[static_cast<std::size_t>(e)].type)]
        .push_back(e);
  }

  std::vector<int> dst_concat;      // target node of each edge, concat order
  std::vector<int> meta_concat;     // meta-relation id of each edge
  std::vector<std::vector<int>> src_by_type(static_cast<std::size_t>(kNumHetEdgeTypes));
  std::vector<std::vector<int>> dst_by_type(static_cast<std::size_t>(kNumHetEdgeTypes));
  for (int et = 0; et < kNumHetEdgeTypes; ++et) {
    for (int e : edges_of_type[static_cast<std::size_t>(et)]) {
      const auto& edge = graph.edges[static_cast<std::size_t>(e)];
      src_by_type[static_cast<std::size_t>(et)].push_back(edge.src);
      dst_by_type[static_cast<std::size_t>(et)].push_back(edge.dst);
      dst_concat.push_back(edge.dst);
      const int src_type = static_cast<int>(graph.nodes[static_cast<std::size_t>(edge.src)].type);
      const int dst_type = static_cast<int>(graph.nodes[static_cast<std::size_t>(edge.dst)].type);
      meta_concat.push_back((src_type * kNumHetEdgeTypes + et) * kNumHetNodeTypes + dst_type);
    }
  }
  const int total_edges = static_cast<int>(dst_concat.size());
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  // µ prior per edge, shared across heads (formula 2).
  const Tensor mu_per_edge = reshape(index_select_rows(mu_, meta_concat), {total_edges});

  std::vector<Tensor> head_aggregates;
  head_aggregates.reserve(static_cast<std::size_t>(heads_));
  for (int h = 0; h < heads_; ++h) {
    const int off = h * head_dim_;
    std::vector<Tensor> logits_parts;  // [E_et, 1] per edge type
    std::vector<Tensor> msg_parts;     // [E_et, head_dim] per edge type
    for (int et = 0; et < kNumHetEdgeTypes; ++et) {
      const auto& srcs = src_by_type[static_cast<std::size_t>(et)];
      const auto& dsts = dst_by_type[static_cast<std::size_t>(et)];
      if (srcs.empty()) continue;
      const Tensor k_src = col_slice(index_select_rows(k_all, srcs), off, head_dim_);
      const Tensor q_dst = col_slice(index_select_rows(q_all, dsts), off, head_dim_);
      const Tensor v_src = col_slice(index_select_rows(v_all, srcs), off, head_dim_);
      // ATT-head: (K W_ATT) · Q / sqrt(d); MSG-head: V W_MSG.
      const Tensor att =
          row_dot(matmul(k_src, w_att_[static_cast<std::size_t>(et)][static_cast<std::size_t>(h)]),
                  q_dst);
      logits_parts.push_back(reshape(att, {static_cast<int>(srcs.size()), 1}));
      msg_parts.push_back(matmul(
          v_src, w_msg_[static_cast<std::size_t>(et)][static_cast<std::size_t>(h)]));
    }
    const Tensor logits_raw =
        reshape(concat_rows(logits_parts), {total_edges});  // concat order = dst_concat order
    const Tensor logits = mul(scale(logits_raw, inv_sqrt_d), mu_per_edge);
    // Softmax over all incoming edges of each target (formula 2's Softmax
    // over s ∈ N(t)).
    const Tensor attention = segment_softmax(logits, dst_concat, n);
    const Tensor messages = concat_rows(msg_parts);                 // [E, head_dim]
    const Tensor weighted = scale_rows(messages, attention);        // formula 4
    head_aggregates.push_back(scatter_add_rows(weighted, dst_concat, n));
  }

  const Tensor h_tilde = concat_cols(head_aggregates);  // [N, dim]
  // Formula 5: per-target-type output projection of σ(H~) plus residual.
  const Tensor activated = gelu(h_tilde);
  const Tensor projected = per_type_projection(activated, graph, a_lin_);
  return add(projected, x);
}

HgtEncoder::HgtEncoder(int dim, int heads, int layers, Rng& rng) {
  for (int i = 0; i < layers; ++i) {
    layers_.push_back(std::make_unique<HgtLayer>(dim, heads, rng));
    norms_.push_back(std::make_unique<LayerNorm>(dim));
    register_child(*layers_.back());
    register_child(*norms_.back());
  }
}

Tensor HgtEncoder::forward(const Tensor& x, const HetGraph& graph) const {
  Tensor state = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    state = norms_[i]->forward(layers_[i]->forward(state, graph));
  }
  return state;
}

}  // namespace g2p
