#include "nn/hgt.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string_view>

#include "support/failpoint.h"
#include "tensor/backend.h"
#include "tensor/fastmath.h"

namespace g2p {

Precision resolve_precision(Precision configured) {
  // -1: no override, 0: force fp32, 1: force int8. Read once, like the
  // other G2P_* knobs (docs/tuning.md).
  static const int forced = [] {
    const char* e = std::getenv("G2P_PRECISION");
    if (e == nullptr) return -1;
    const std::string_view v(e);
    if (v == "int8") return 1;
    if (v == "fp32") return 0;
    if (!v.empty()) {
      std::fprintf(stderr, "g2p: unknown G2P_PRECISION '%s' (want fp32|int8), ignoring\n", e);
    }
    return -1;
  }();
  if (forced == 0) return Precision::kFp32;
  if (forced == 1) return Precision::kInt8;
  return configured;
}

const char* precision_name(Precision p) {
  return p == Precision::kInt8 ? "int8" : "fp32";
}

namespace {

/// Process-wide escape hatch: G2P_FUSED=0 (or "off") pins every layer to the
/// taped reference path even in inference mode. Read once.
bool fused_env_enabled() {
  static const bool enabled = [] {
    const char* e = std::getenv("G2P_FUSED");
    if (e == nullptr) return true;
    const std::string_view v(e);
    return v != "0" && v != "off" && v != "false";
  }();
  return enabled;
}

/// One node type's projection stage: gather the type's rows of the [*, dim]
/// source buffer into contiguous scratch, multiply by the cached [dim,
/// out_cols] operand (pool-parallel row panels). Callers scatter `projected`
/// back to node order with their own epilogue (bias / residual folds).
void project_type_rows(const float* src, int dim, const std::vector<int>& rows,
                       const float* weights, int out_cols, ThreadPool* pool,
                       FloatVec& gathered, FloatVec& projected) {
  const auto dim_sz = static_cast<std::size_t>(dim);
  const int rt = static_cast<int>(rows.size());
  gathered.resize(static_cast<std::size_t>(rt) * dim_sz);
  for (int r = 0; r < rt; ++r) {
    std::copy_n(src + static_cast<std::size_t>(rows[static_cast<std::size_t>(r)]) * dim_sz,
                dim_sz, gathered.data() + static_cast<std::size_t>(r) * dim_sz);
  }
  projected.resize(static_cast<std::size_t>(rt) * out_cols);
  backend::matmul_mt(gathered.data(), weights, projected.data(), rt, dim, out_cols, pool);
}

/// Int8 image of one edge type's fused head blocks: `heads` [hd, hd]
/// matrices back to back, each quantized per output column, with the
/// scale/zcomp arrays concatenated to length heads*hd so dequant indexes
/// them by the same [h*hd + j] column the per-head sub-GEMMs write.
void quantize_head_blocks(const FloatVec& blocks, int heads, int hd,
                          backend::detail::QuantOperand& out) {
  const std::size_t block = static_cast<std::size_t>(hd) * hd;
  out.k = hd;
  out.m = heads * hd;
  out.q.resize(static_cast<std::size_t>(heads) * block);
  out.scale.assign(static_cast<std::size_t>(heads) * hd, 0.0f);
  out.zcomp.assign(static_cast<std::size_t>(heads) * hd, 0.0f);
  backend::detail::QuantOperand tmp;
  for (int h = 0; h < heads; ++h) {
    backend::detail::quantize_weights(blocks.data() + static_cast<std::size_t>(h) * block,
                                      hd, hd, tmp);
    std::copy(tmp.q.begin(), tmp.q.end(),
              out.q.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(h) * block));
    std::copy(tmp.scale.begin(), tmp.scale.end(),
              out.scale.begin() + static_cast<std::ptrdiff_t>(h * hd));
    std::copy(tmp.zcomp.begin(), tmp.zcomp.end(),
              out.zcomp.begin() + static_cast<std::ptrdiff_t>(h * hd));
  }
}

/// Quantize a set of [*, dim] rows (selected by `rows`, or all n rows when
/// `rows` is null) straight out of the source buffer — the int8 path's
/// gather and quantize are one pass, no float scratch. Sizes the outputs,
/// then dispatches the scan/round work to Kernels::quantize_rows.
void quantize_rows(const float* src, int dim, const std::vector<int>* rows, int n,
                   backend::detail::U8Vec& qa, FloatVec& scales, FloatVec& zeros) {
  const auto dim_sz = static_cast<std::size_t>(dim);
  const int count = rows != nullptr ? static_cast<int>(rows->size()) : n;
  qa.resize(static_cast<std::size_t>(count) * dim_sz);
  scales.resize(static_cast<std::size_t>(count));
  zeros.resize(static_cast<std::size_t>(count));
  backend::active().quantize_rows(src, rows != nullptr ? rows->data() : nullptr, count, dim,
                                  qa.data(), scales.data(), zeros.data());
}

/// Dequantize one GEMM accumulator row segment into fp32, optionally folding
/// the bias and the residual in the same pass:
///   out[j] = sa * (wsc[j] * acc[j]) + za * wzc[j] [+ bias[j]] [+ res[j]]
/// The __restrict contracts (all streams distinct) are what let the
/// contiguous loops vectorize — the int8 epilogue's cost lives here.
inline void dequant_row(const std::int32_t* __restrict acc, const float* __restrict wsc,
                        const float* __restrict wzc, float sa, float za, int m,
                        float* __restrict out, const float* __restrict bias = nullptr,
                        const float* __restrict res = nullptr) {
  if (bias != nullptr && res != nullptr) {
    for (int j = 0; j < m; ++j) {
      out[j] = sa * (wsc[j] * static_cast<float>(acc[j])) + za * wzc[j] + bias[j] + res[j];
    }
  } else if (bias != nullptr) {
    for (int j = 0; j < m; ++j) {
      out[j] = sa * (wsc[j] * static_cast<float>(acc[j])) + za * wzc[j] + bias[j];
    }
  } else {
    for (int j = 0; j < m; ++j) {
      out[j] = sa * (wsc[j] * static_cast<float>(acc[j])) + za * wzc[j];
    }
  }
}

}  // namespace

HgtLayer::HgtLayer(int dim, int heads, Rng& rng)
    : dim_(dim), heads_(heads), head_dim_(dim / heads) {
  if (dim % heads != 0) throw std::invalid_argument("HgtLayer: dim must divide by heads");

  for (int t = 0; t < kNumHetNodeTypes; ++t) {
    k_lin_.push_back(std::make_unique<Linear>(dim, dim, rng));
    q_lin_.push_back(std::make_unique<Linear>(dim, dim, rng));
    v_lin_.push_back(std::make_unique<Linear>(dim, dim, rng));
    a_lin_.push_back(std::make_unique<Linear>(dim, dim, rng));
    register_child(*k_lin_.back());
    register_child(*q_lin_.back());
    register_child(*v_lin_.back());
    register_child(*a_lin_.back());
  }
  const float bound = std::sqrt(6.0f / static_cast<float>(2 * head_dim_));
  w_att_.resize(static_cast<std::size_t>(kNumHetEdgeTypes));
  w_msg_.resize(static_cast<std::size_t>(kNumHetEdgeTypes));
  for (int e = 0; e < kNumHetEdgeTypes; ++e) {
    for (int h = 0; h < heads_; ++h) {
      w_att_[static_cast<std::size_t>(e)].push_back(
          register_param(Tensor::rand_uniform({head_dim_, head_dim_}, rng, bound)));
      w_msg_[static_cast<std::size_t>(e)].push_back(
          register_param(Tensor::rand_uniform({head_dim_, head_dim_}, rng, bound)));
    }
  }
  const int num_meta = kNumHetNodeTypes * kNumHetEdgeTypes * kNumHetNodeTypes;
  mu_ = register_param(Tensor::full({num_meta, 1}, 1.0f));
}

Tensor HgtLayer::per_type_projection(const Tensor& x, const HetGraphIndex& index,
                                     const std::vector<std::unique_ptr<Linear>>& lins) const {
  const int n = index.num_nodes;
  std::vector<Tensor> parts;  // projected rows, type-major order
  for (int t = 0; t < kNumHetNodeTypes; ++t) {
    const auto& rows = index.rows_of_type[static_cast<std::size_t>(t)];
    if (rows.empty()) continue;
    parts.push_back(lins[static_cast<std::size_t>(t)]->forward(index_select_rows(x, rows)));
  }
  if (parts.empty()) return Tensor::zeros({n, dim_});
  // One fused scatter-on-write pass places the per-type blocks back into
  // node order — cheaper than per-type scatter-add chains over full
  // [N, dim] buffers or a concat followed by a gather.
  return concat_rows_to(parts, index.nodes_by_type);
}

Tensor HgtLayer::forward(const Tensor& x, const HetGraphIndex& index) const {
  if (!grad_enabled() && fused_enabled_ && fused_env_enabled()) {
    return forward_fused(x, index);
  }
  return forward_reference(x, index);
}

Tensor HgtLayer::forward_reference(const Tensor& x, const HetGraphIndex& index) const {
  const int n = index.num_nodes;
  const int total_edges = index.num_edges;
  if (x.dim(0) != n || x.dim(1) != dim_) {
    throw std::invalid_argument("HgtLayer::forward: state shape mismatch");
  }
  if (total_edges == 0) {
    // Formula 5 degenerates to the residual path.
    return x;
  }

  const Tensor k_all = per_type_projection(x, index, k_lin_);
  const Tensor q_all = per_type_projection(x, index, q_lin_);
  const Tensor v_all = per_type_projection(x, index, v_lin_);

  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  // µ prior per edge, shared across heads (formula 2). Edge order is the
  // index's type-major CSR order throughout.
  const Tensor mu_per_edge =
      reshape(index_select_rows(mu_, index.meta_concat), {total_edges});

  // Apply the φ-indexed head maps per NODE, then gather per edge: K W_ATT
  // and V W_MSG are transforms of the source node state, so computing them
  // over the N node rows and gathering E edge rows afterwards does the same
  // math with N-row instead of E-row matmuls (N < E for every aug-AST, which
  // has at least the forward/reverse AST edge pair per non-root node).
  std::vector<std::vector<Tensor>> logits_parts(static_cast<std::size_t>(heads_));
  std::vector<std::vector<Tensor>> msg_parts(static_cast<std::size_t>(heads_));
  for (int h = 0; h < heads_; ++h) {
    const int off = h * head_dim_;
    const Tensor k_h = col_slice(k_all, off, head_dim_);
    const Tensor q_h = col_slice(q_all, off, head_dim_);
    const Tensor v_h = col_slice(v_all, off, head_dim_);
    for (int et = 0; et < kNumHetEdgeTypes; ++et) {
      const auto& slice = index.per_edge_type[static_cast<std::size_t>(et)];
      if (slice.empty()) continue;
      // ATT-head: (K W_ATT) · Q / sqrt(d); MSG-head: V W_MSG.
      const Tensor k_mapped = matmul(
          k_h, w_att_[static_cast<std::size_t>(et)][static_cast<std::size_t>(h)]);
      const Tensor att = row_dot(index_select_rows(k_mapped, slice.src),
                                 index_select_rows(q_h, slice.dst));
      logits_parts[static_cast<std::size_t>(h)].push_back(reshape(att, {slice.size(), 1}));
      const Tensor v_mapped = matmul(
          v_h, w_msg_[static_cast<std::size_t>(et)][static_cast<std::size_t>(h)]);
      msg_parts[static_cast<std::size_t>(h)].push_back(
          index_select_rows(v_mapped, slice.src));
    }
  }

  std::vector<Tensor> head_aggregates;
  head_aggregates.reserve(static_cast<std::size_t>(heads_));
  for (int h = 0; h < heads_; ++h) {
    const Tensor logits_raw = reshape(concat_rows(logits_parts[static_cast<std::size_t>(h)]),
                                      {total_edges});  // concat = dst_concat order
    const Tensor logits = mul(scale(logits_raw, inv_sqrt_d), mu_per_edge);
    // Softmax over all incoming edges of each target (formula 2's Softmax
    // over s ∈ N(t)).
    const Tensor attention = segment_softmax(logits, index.dst_concat, n);
    const Tensor messages =
        concat_rows(msg_parts[static_cast<std::size_t>(h)]);        // [E, head_dim]
    // Formula 4: attention-weighted aggregation, fused so the weighted
    // messages are never materialized.
    head_aggregates.push_back(
        segment_weighted_sum_rows(messages, attention, index.dst_concat, n));
  }

  const Tensor h_tilde = concat_cols(head_aggregates);  // [N, dim]
  // Formula 5: per-target-type output projection of σ(H~) plus residual.
  const Tensor activated = gelu(h_tilde);
  const Tensor projected = per_type_projection(activated, index, a_lin_);
  return add(projected, x);
}

Tensor HgtLayer::forward(const Tensor& x, const HetGraph& graph) const {
  return forward(x, HetGraphIndex(graph));
}

std::uint64_t HgtLayer::weight_stamp() const {
  std::uint64_t stamp = 0;
  for (const auto& heads : w_att_) {
    for (const auto& w : heads) stamp += w.version();
  }
  for (const auto& heads : w_msg_) {
    for (const auto& w : heads) stamp += w.version();
  }
  // The projection repacks key on the same stamp: any K/Q/V/A parameter
  // mutation must rebuild the cache too.
  for (const auto* lins : {&k_lin_, &q_lin_, &v_lin_, &a_lin_}) {
    for (const auto& lin : *lins) {
      stamp += lin->weight().version();
      if (lin->bias().defined()) stamp += lin->bias().version();
    }
  }
  return stamp;
}

const HgtLayer::FusedWeights* HgtLayer::fused_weights() const {
  // Versions only ever increase, so the summed stamp is monotone: any
  // parameter mutation since the cache was built changes it. The warm path
  // is one acquire load — no lock contention between serving workers.
  const std::uint64_t stamp = weight_stamp();
  const FusedWeights* current = fused_current_.load(std::memory_order_acquire);
  if (current != nullptr && current->stamp == stamp) return current;

  std::lock_guard<std::mutex> lock(fused_mutex_);
  current = fused_current_.load(std::memory_order_acquire);
  if (current != nullptr && current->stamp == stamp) return current;
  auto fresh = std::make_unique<FusedWeights>();
  fresh->stamp = stamp;
  fresh->att.resize(static_cast<std::size_t>(kNumHetEdgeTypes));
  fresh->msg.resize(static_cast<std::size_t>(kNumHetEdgeTypes));
  const std::size_t block = static_cast<std::size_t>(head_dim_) * head_dim_;
  for (int et = 0; et < kNumHetEdgeTypes; ++et) {
    const auto e = static_cast<std::size_t>(et);
    fresh->att[e].resize(static_cast<std::size_t>(heads_) * block);
    fresh->msg[e].resize(static_cast<std::size_t>(heads_) * block);
    for (int h = 0; h < heads_; ++h) {
      const auto& att = w_att_[e][static_cast<std::size_t>(h)].data();
      const auto& msg = w_msg_[e][static_cast<std::size_t>(h)].data();
      std::copy(att.begin(), att.end(),
                fresh->att[e].begin() + static_cast<std::ptrdiff_t>(h * block));
      std::copy(msg.begin(), msg.end(),
                fresh->msg[e].begin() + static_cast<std::ptrdiff_t>(h * block));
    }
  }
  // Projection repack, per node type: K/Q/V weights interleaved row-wise
  // into one [dim, 3*dim] operand (row r = [W_K row r | W_Q row r |
  // W_V row r]), biases concatenated; the A block stays square.
  const auto dim_sz = static_cast<std::size_t>(dim_);
  fresh->kqv_w.resize(static_cast<std::size_t>(kNumHetNodeTypes));
  fresh->kqv_b.resize(static_cast<std::size_t>(kNumHetNodeTypes));
  fresh->a_w.resize(static_cast<std::size_t>(kNumHetNodeTypes));
  fresh->a_b.resize(static_cast<std::size_t>(kNumHetNodeTypes));
  for (int t = 0; t < kNumHetNodeTypes; ++t) {
    const auto ts = static_cast<std::size_t>(t);
    const Linear* kqv[3] = {k_lin_[ts].get(), q_lin_[ts].get(), v_lin_[ts].get()};
    auto& w = fresh->kqv_w[ts];
    auto& b = fresh->kqv_b[ts];
    w.resize(dim_sz * 3 * dim_sz);
    b.assign(3 * dim_sz, 0.0f);
    for (int p = 0; p < 3; ++p) {
      const float* src = kqv[p]->weight().data().data();
      for (int r = 0; r < dim_; ++r) {
        std::copy(src + static_cast<std::size_t>(r) * dim_sz,
                  src + static_cast<std::size_t>(r + 1) * dim_sz,
                  w.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(r) * 3 * dim_sz + p * dim_sz));
      }
      if (kqv[p]->bias().defined()) {
        const auto& bias = kqv[p]->bias().data();
        std::copy(bias.begin(), bias.end(),
                  b.begin() + static_cast<std::ptrdiff_t>(p * dim_sz));
      }
    }
    const auto& aw = a_lin_[ts]->weight().data();
    fresh->a_w[ts].assign(aw.begin(), aw.end());
    if (a_lin_[ts]->bias().defined()) {
      const auto& ab = a_lin_[ts]->bias().data();
      fresh->a_b[ts].assign(ab.begin(), ab.end());
    } else {
      fresh->a_b[ts].assign(dim_sz, 0.0f);
    }
  }
  // Int8 images of every fused operand (see FusedWeights). Built even when
  // serving fp32: they cost a few KB and one pass per rebuild, and keying
  // them on the same stamp makes precision flips race-free by construction —
  // the invalidation tests poke parameters and expect BOTH repacks fresh.
  fresh->kqv_q.resize(static_cast<std::size_t>(kNumHetNodeTypes));
  fresh->a_q.resize(static_cast<std::size_t>(kNumHetNodeTypes));
  for (int t = 0; t < kNumHetNodeTypes; ++t) {
    const auto ts = static_cast<std::size_t>(t);
    backend::detail::quantize_weights(fresh->kqv_w[ts].data(), dim_, 3 * dim_,
                                      fresh->kqv_q[ts]);
    backend::detail::quantize_weights(fresh->a_w[ts].data(), dim_, dim_, fresh->a_q[ts]);
  }
  fresh->att_q.resize(static_cast<std::size_t>(kNumHetEdgeTypes));
  fresh->msg_q.resize(static_cast<std::size_t>(kNumHetEdgeTypes));
  for (int et = 0; et < kNumHetEdgeTypes; ++et) {
    const auto e = static_cast<std::size_t>(et);
    quantize_head_blocks(fresh->att[e], heads_, head_dim_, fresh->att_q[e]);
    quantize_head_blocks(fresh->msg[e], heads_, head_dim_, fresh->msg_q[e]);
  }
  const FusedWeights* published = fresh.get();
  fused_retired_.push_back(std::move(fresh));  // freed with the layer, never earlier
  fused_current_.store(published, std::memory_order_release);
  return published;
}

Tensor HgtLayer::forward_fused(const Tensor& x, const HetGraphIndex& index) const {
  const int n = index.num_nodes;
  if (x.dim(0) != n || x.dim(1) != dim_) {
    throw std::invalid_argument("HgtLayer::forward: state shape mismatch");
  }
  if (index.num_edges == 0) return x;  // residual path, as in the reference
  const NoGradGuard no_grad;  // the fused path never tapes, even if entered directly
  const auto& kern = backend::active();
  const auto fused = fused_weights();
  // Int8 serving: every projection GEMM goes through Kernels::gemm_s8 on
  // the cached weight repacks — activations quantized per row during the
  // gather, fp32 dequant folded into the same bias/residual scatters the
  // fp32 path uses. The edge phases (logits, softmax, accumulate,
  // normalize) are precision-invariant and shared.
  const bool int8 = resolve_precision(precision_) == Precision::kInt8;
  // G2P_HGT_PROFILE (docs/tuning.md): per-stage wall times to stderr, one
  // line per stage per layer forward. Dev-only instrumentation for placing
  // regressions (and the fp32/int8 A-B) without a profiler; costs one
  // getenv and a handful of predictable branches when unset.
  const bool prof = std::getenv("G2P_HGT_PROFILE") != nullptr;
  auto tp = std::chrono::steady_clock::now();
  const auto mark = [&](const char* what) {
    if (!prof) return;
    const auto now = std::chrono::steady_clock::now();
    std::fprintf(stderr, "  %-10s %7.1f us\n", what,
                 std::chrono::duration<double>(now - tp).count() * 1e6);
    tp = now;
  };

  // Fused projection stage: per node type, one wide [rows, dim] x
  // [dim, 3*dim] GEMM against the cached K|Q|V repack computes all three
  // projections of the type's rows at once — one packed-operand GEMM (with
  // matmul_mt row panels on the configured pool) instead of three taped
  // square matmuls and their gather/concat tensors. The bias folds into the
  // scatter pass that places rows back into node order.
  const std::size_t dim_sz = static_cast<std::size_t>(dim_);
  const std::size_t row_elems = static_cast<std::size_t>(index.num_nodes) * dim_sz;
  FloatVec k_all(row_elems), q_all(row_elems), v_all(row_elems);
  {
    FloatVec gathered, projected;
    backend::detail::U8Vec qa;
    FloatVec a_scale, a_zero;
    backend::detail::I32Vec acc;
    ThreadPool* pool = pool_.get();
    const float* xdata = x.data().data();
    for (int t = 0; t < kNumHetNodeTypes; ++t) {
      const auto ts = static_cast<std::size_t>(t);
      const auto& rows = index.rows_of_type[ts];
      if (rows.empty()) continue;
      const int rt = static_cast<int>(rows.size());
      const float* bias = fused->kqv_b[ts].data();
      if (int8) {
        // Quantize straight out of x (the gather and the row quantizer are
        // one pass), integer GEMM, dequantize in the scatter.
        quantize_rows(xdata, dim_, &rows, n, qa, a_scale, a_zero);
        acc.resize(static_cast<std::size_t>(rt) * 3 * dim_sz);
        backend::gemm_s8_mt(qa.data(), dim_, fused->kqv_q[ts].q.data(), acc.data(),
                            3 * dim_, rt, dim_, 3 * dim_, pool);
        const float* wsc = fused->kqv_q[ts].scale.data();
        const float* wzc = fused->kqv_q[ts].zcomp.data();
        for (int r = 0; r < rt; ++r) {
          const std::int32_t* prow = acc.data() + static_cast<std::size_t>(r) * 3 * dim_sz;
          const float sa = a_scale[static_cast<std::size_t>(r)];
          const float za = a_zero[static_cast<std::size_t>(r)];
          const std::size_t node =
              static_cast<std::size_t>(rows[static_cast<std::size_t>(r)]) * dim_sz;
          dequant_row(prow, wsc, wzc, sa, za, dim_, k_all.data() + node, bias);
          dequant_row(prow + dim_, wsc + dim_, wzc + dim_, sa, za, dim_,
                      q_all.data() + node, bias + dim_);
          dequant_row(prow + 2 * dim_, wsc + 2 * dim_, wzc + 2 * dim_, sa, za, dim_,
                      v_all.data() + node, bias + 2 * dim_);
        }
        continue;
      }
      project_type_rows(xdata, dim_, rows, fused->kqv_w[ts].data(), 3 * dim_, pool, gathered,
                        projected);
      for (int r = 0; r < rt; ++r) {
        const float* prow = projected.data() + static_cast<std::size_t>(r) * 3 * dim_sz;
        const std::size_t node =
            static_cast<std::size_t>(rows[static_cast<std::size_t>(r)]) * dim_sz;
        float* krow = k_all.data() + node;
        float* qrow = q_all.data() + node;
        float* vrow = v_all.data() + node;
        for (int j = 0; j < dim_; ++j) {
          krow[j] = prow[j] + bias[j];
          qrow[j] = prow[dim_ + j] + bias[dim_ + j];
          vrow[j] = prow[2 * dim_ + j] + bias[2 * dim_ + j];
        }
      }
    }
  }

  mark("kqv");
  // Density-adaptive weight application per edge type. Dense types (at
  // least as many edges as nodes) pre-map every node's K and V rows with
  // one block-diagonal head_map pass each — per-node work amortizes over
  // repeated sources. Sparse types skip the [N, dim] pre-pass entirely:
  // the edge kernels apply the cached weight blocks per edge in registers,
  // which is both less arithmetic (count < n rows mapped) and less cache
  // pressure (no per-type map buffers to evict the shared K/Q/V rows).
  std::vector<FloatVec> k_map(static_cast<std::size_t>(kNumHetEdgeTypes));
  std::vector<FloatVec> v_map(static_cast<std::size_t>(kNumHetEdgeTypes));
  {
    // Int8 dense maps: K and V rows are quantized once — the cost amortizes
    // over every dense edge type — then each head's [hd, hd] block runs as a
    // column-strided sub-GEMM on the shared quantized buffer (the lda/ldc
    // strides of the gemm_s8 contract), dequantized per map into k_map/v_map
    // exactly where the fp32 head_map would have written.
    backend::detail::U8Vec qk, qv;
    FloatVec k_sc, k_z, v_sc, v_z;
    backend::detail::I32Vec map_acc;
    bool quantized_kv = false;
    ThreadPool* const pool = pool_.get();
    const std::size_t block = static_cast<std::size_t>(head_dim_) * head_dim_;
    const auto int8_head_map = [&](const backend::detail::U8Vec& qrows, const FloatVec& rsc,
                                   const FloatVec& rz,
                                   const backend::detail::QuantOperand& wq, FloatVec& out) {
      for (int h = 0; h < heads_; ++h) {
        backend::gemm_s8_mt(qrows.data() + static_cast<std::size_t>(h) * head_dim_, dim_,
                            wq.q.data() + static_cast<std::size_t>(h) * block,
                            map_acc.data() + static_cast<std::size_t>(h) * head_dim_, dim_,
                            n, head_dim_, head_dim_, pool);
      }
      const float* wsc = wq.scale.data();
      const float* wzc = wq.zcomp.data();
      for (int i = 0; i < n; ++i) {
        dequant_row(map_acc.data() + static_cast<std::size_t>(i) * dim_sz, wsc, wzc,
                    rsc[static_cast<std::size_t>(i)], rz[static_cast<std::size_t>(i)], dim_,
                    out.data() + static_cast<std::size_t>(i) * dim_sz);
      }
    };
    for (int et = 0; et < kNumHetEdgeTypes; ++et) {
      const auto e = static_cast<std::size_t>(et);
      const auto& slice = index.per_edge_type[e];
      if (slice.empty() || slice.size() < n) continue;  // sparse: map per edge
      k_map[e].resize(row_elems);
      v_map[e].resize(row_elems);
      if (int8) {
        if (!quantized_kv) {
          quantize_rows(k_all.data(), dim_, nullptr, n, qk, k_sc, k_z);
          quantize_rows(v_all.data(), dim_, nullptr, n, qv, v_sc, v_z);
          map_acc.resize(row_elems);
          quantized_kv = true;
        }
        int8_head_map(qk, k_sc, k_z, fused->att_q[e], k_map[e]);
        int8_head_map(qv, v_sc, v_z, fused->msg_q[e], v_map[e]);
        continue;
      }
      kern.head_map(k_all.data(), fused->att[e].data(), k_map[e].data(), n, heads_,
                    head_dim_);
      kern.head_map(v_all.data(), fused->msg[e].data(), v_map[e].data(), n, heads_,
                    head_dim_);
    }
  }

  mark("maps");
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  const float* mu = mu_.data().data();
  const float* q = q_all.data();
  const int* meta = index.meta_concat.data();

  // Edge-blocked pass, one backend call per edge type per phase (the CSR
  // blocks are dst-sorted, so per-node accumulation order stays type-major
  // and matches the reference segment ops):
  //   phase 1 (hgt_logits)     — all-head logits with the µ prior applied,
  //                              streaming the per-(destination, head) max
  //                              (the online-softmax max, shared across
  //                              edge types);
  //   phase 2 (hgt_accumulate) — exponentiate against that max, accumulate
  //                              per-(destination, head) denominators, and
  //                              scatter weighted messages straight into
  //                              the [N, dim] output;
  //   phase 3 (below)          — normalize each head block by its
  //                              denominator.
  // The only edge-shaped scratch is the [E, heads] logit buffer — no
  // [E, head_dim] message/gather tensors, no per-head concats.
  FloatVec h_tilde(row_elems, 0.0f);
  FloatVec logits(static_cast<std::size_t>(index.num_edges) * heads_);
  std::vector<float> node_max(static_cast<std::size_t>(n) * heads_,
                              -std::numeric_limits<float>::infinity());
  std::vector<float> denom(static_cast<std::size_t>(n) * heads_, 0.0f);
  for (int et = 0; et < kNumHetEdgeTypes; ++et) {
    const auto e = static_cast<std::size_t>(et);
    const auto& slice = index.per_edge_type[e];
    if (slice.empty()) continue;
    float* block = logits.data() + static_cast<std::size_t>(slice.concat_offset) * heads_;
    if (k_map[e].empty()) {
      kern.hgt_logits_direct(k_all.data(), q, fused->att[e].data(), slice.src.data(),
                             slice.dst.data(), meta + slice.concat_offset, mu, slice.size(),
                             heads_, head_dim_, inv_sqrt_d, block, node_max.data());
    } else {
      kern.hgt_logits(k_map[e].data(), q, slice.src.data(), slice.dst.data(),
                      meta + slice.concat_offset, mu, slice.size(), heads_, head_dim_,
                      inv_sqrt_d, block, node_max.data());
    }
  }
  mark("logits");
  for (int et = 0; et < kNumHetEdgeTypes; ++et) {
    const auto e = static_cast<std::size_t>(et);
    const auto& slice = index.per_edge_type[e];
    if (slice.empty()) continue;
    const float* block =
        logits.data() + static_cast<std::size_t>(slice.concat_offset) * heads_;
    if (v_map[e].empty()) {
      kern.hgt_accumulate_direct(v_all.data(), fused->msg[e].data(), slice.src.data(),
                                 slice.dst.data(), slice.size(), block, node_max.data(),
                                 heads_, head_dim_, h_tilde.data(), denom.data());
    } else {
      kern.hgt_accumulate(v_map[e].data(), slice.src.data(), slice.dst.data(), slice.size(),
                          block, node_max.data(), heads_, head_dim_, h_tilde.data(),
                          denom.data());
    }
  }
  mark("accum");
  for (int v = 0; v < n; ++v) {
    float* out_row = h_tilde.data() + static_cast<std::size_t>(v) * dim_;
    const float* drow = denom.data() + static_cast<std::size_t>(v) * heads_;
    for (int h = 0; h < heads_; ++h) {
      // Isolated targets have denom 0 and an all-zero row; the clamped
      // divisor keeps them exactly zero (matching the reference's empty
      // segments) without a branch.
      const float inv = 1.0f / std::max(drow[h], 1e-12f);
      float* oh = out_row + h * head_dim_;
      for (int j = 0; j < head_dim_; ++j) oh[j] *= inv;
    }
  }

  // Formula 5 on raw buffers: σ(H~) through the backend GELU (in place),
  // then the per-target-type A-Linear as one cached-operand GEMM per node
  // type — the A block lives in the same repack as K|Q|V but applies here,
  // to the activated aggregate — with bias and residual folded into the
  // scatter back to node order.
  mark("norm");
  kern.gelu(h_tilde.data(), h_tilde.data(), static_cast<int>(row_elems));
  mark("gelu");
  FloatVec y(row_elems);
  {
    FloatVec gathered, projected;
    backend::detail::U8Vec qa;
    FloatVec a_scale, a_zero;
    backend::detail::I32Vec acc;
    ThreadPool* pool = pool_.get();
    const float* xdata = x.data().data();
    for (int t = 0; t < kNumHetNodeTypes; ++t) {
      const auto ts = static_cast<std::size_t>(t);
      const auto& rows = index.rows_of_type[ts];
      if (rows.empty()) continue;
      const int rt = static_cast<int>(rows.size());
      const float* bias = fused->a_b[ts].data();
      if (int8) {
        quantize_rows(h_tilde.data(), dim_, &rows, n, qa, a_scale, a_zero);
        acc.resize(static_cast<std::size_t>(rt) * dim_sz);
        backend::gemm_s8_mt(qa.data(), dim_, fused->a_q[ts].q.data(), acc.data(), dim_, rt,
                            dim_, dim_, pool);
        const float* wsc = fused->a_q[ts].scale.data();
        const float* wzc = fused->a_q[ts].zcomp.data();
        for (int r = 0; r < rt; ++r) {
          const std::size_t node =
              static_cast<std::size_t>(rows[static_cast<std::size_t>(r)]) * dim_sz;
          dequant_row(acc.data() + static_cast<std::size_t>(r) * dim_sz, wsc, wzc,
                      a_scale[static_cast<std::size_t>(r)], a_zero[static_cast<std::size_t>(r)],
                      dim_, y.data() + node, bias, xdata + node);
        }
        continue;
      }
      project_type_rows(h_tilde.data(), dim_, rows, fused->a_w[ts].data(), dim_, pool,
                        gathered, projected);
      for (int r = 0; r < rt; ++r) {
        const float* prow = projected.data() + static_cast<std::size_t>(r) * dim_sz;
        const std::size_t node =
            static_cast<std::size_t>(rows[static_cast<std::size_t>(r)]) * dim_sz;
        const float* xrow = xdata + node;
        float* yrow = y.data() + node;
        for (int j = 0; j < dim_; ++j) yrow[j] = prow[j] + bias[j] + xrow[j];
      }
    }
  }
  mark("a_stage");
  return make_result({n, dim_}, std::move(y), {}, nullptr);
}

HgtEncoder::HgtEncoder(int dim, int heads, int layers, Rng& rng) {
  for (int i = 0; i < layers; ++i) {
    layers_.push_back(std::make_unique<HgtLayer>(dim, heads, rng));
    norms_.push_back(std::make_unique<LayerNorm>(dim));
    register_child(*layers_.back());
    register_child(*norms_.back());
  }
}

Tensor HgtEncoder::forward(const Tensor& x, const HetGraphIndex& index) const {
  // Failpoint: a forward-stage fault fails the whole encode call — in the
  // batched serving path that is a batch-level error the scheduler's retry
  // ladder classifies as transient. delay() here models a slow forward.
  if (failpoint::triggered("encode.forward")) {
    throw failpoint::FailpointError("encode.forward");
  }
  Tensor state = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    state = norms_[i]->forward(layers_[i]->forward(state, index));
  }
  return state;
}

Tensor HgtEncoder::forward(const Tensor& x, const HetGraph& graph) const {
  return forward(x, HetGraphIndex(graph));
}

void HgtEncoder::set_fused_inference(bool enabled) {
  for (auto& layer : layers_) layer->set_fused_inference(enabled);
}

void HgtEncoder::set_precision(Precision p) {
  for (auto& layer : layers_) layer->set_precision(p);
}

void HgtEncoder::set_thread_pool(std::shared_ptr<ThreadPool> pool) {
  for (auto& layer : layers_) layer->set_thread_pool(pool);
}

}  // namespace g2p
