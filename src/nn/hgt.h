// Heterogeneous Graph Transformer layer (Hu et al. 2020), as restated by the
// paper's formulas (1)-(5).
//
// Per layer, for a target node t with incoming edges e = (s, t):
//   * Heterogeneous Mutual Attention (formula 2): per head i,
//       ATT-head_i(s,e,t) = (K_i(s) W_ATT^{φ(e)} · Q_i(t)) µ(τ(s),φ(e),τ(t)) / sqrt(d/h)
//     where K_i / Q_i are per-node-type linear projections, W_ATT is a
//     per-edge-type head matrix, and µ is a learnable meta-relation prior.
//     Attention is softmax-normalized over all incoming edges of t.
//   * Heterogeneous Message Passing (formula 3): MSG-head_i = V_i(s) W_MSG^{φ(e)}.
//   * Target-Specific Aggregation (formulas 4-5):
//       H~[t] = Σ_s Attention · Message        (per head, heads concatenated)
//       H[t]  = A-Linear_{τ(t)}(σ(H~[t])) + H^{l-1}[t]
//
// Temporal encoding / inductive timestamp assignment are disabled (§5.2: the
// aug-AST is static).
#pragma once

#include <memory>
#include <vector>

#include "graph/hetgraph.h"
#include "graph/hetgraph_index.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace g2p {

class HgtLayer : public Module {
 public:
  HgtLayer(int dim, int heads, Rng& rng);

  /// One round of heterogeneous message passing over a precomputed CSR
  /// index (single graph or disjoint batch union — the math is identical).
  /// `x`: [N, dim] node states. Nodes with no incoming edges keep their
  /// residual state.
  Tensor forward(const Tensor& x, const HetGraphIndex& index) const;

  /// Single-graph convenience wrapper: indexes `graph` and forwards.
  /// Callers running several layers should index once and use the overload
  /// above (HgtEncoder does).
  Tensor forward(const Tensor& x, const HetGraph& graph) const;

  int dim() const { return dim_; }
  int heads() const { return heads_; }

 private:
  int dim_, heads_, head_dim_;

  // Per-node-type projections K/Q/V and output A-Linear (τ-indexed).
  std::vector<std::unique_ptr<Linear>> k_lin_, q_lin_, v_lin_, a_lin_;
  // Per-edge-type, per-head W_ATT and W_MSG [head_dim, head_dim] (φ-indexed).
  std::vector<std::vector<Tensor>> w_att_, w_msg_;
  // Meta-relation prior µ, one scalar per (src-type, edge-type, dst-type),
  // stored as [T*R*T, 1] for differentiable gathering.
  Tensor mu_;

  /// Apply the per-type linear `lins[type]` to the rows of each type and
  /// reassemble a full [N, dim] tensor.
  Tensor per_type_projection(const Tensor& x, const HetGraphIndex& index,
                             const std::vector<std::unique_ptr<Linear>>& lins) const;
};

/// Stacked HGT encoder over an initial node embedding.
class HgtEncoder : public Module {
 public:
  HgtEncoder(int dim, int heads, int layers, Rng& rng);

  /// Run all layers over one precomputed index (built once per batch).
  Tensor forward(const Tensor& x, const HetGraphIndex& index) const;

  /// Single-graph convenience wrapper: indexes `graph` once, then forwards.
  Tensor forward(const Tensor& x, const HetGraph& graph) const;

 private:
  std::vector<std::unique_ptr<HgtLayer>> layers_;
  std::vector<std::unique_ptr<LayerNorm>> norms_;
};

}  // namespace g2p
