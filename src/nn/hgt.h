// Heterogeneous Graph Transformer layer (Hu et al. 2020), as restated by the
// paper's formulas (1)-(5).
//
// Per layer, for a target node t with incoming edges e = (s, t):
//   * Heterogeneous Mutual Attention (formula 2): per head i,
//       ATT-head_i(s,e,t) = (K_i(s) W_ATT^{φ(e)} · Q_i(t)) µ(τ(s),φ(e),τ(t)) / sqrt(d/h)
//     where K_i / Q_i are per-node-type linear projections, W_ATT is a
//     per-edge-type head matrix, and µ is a learnable meta-relation prior.
//     Attention is softmax-normalized over all incoming edges of t.
//   * Heterogeneous Message Passing (formula 3): MSG-head_i = V_i(s) W_MSG^{φ(e)}.
//   * Target-Specific Aggregation (formulas 4-5):
//       H~[t] = Σ_s Attention · Message        (per head, heads concatenated)
//       H[t]  = A-Linear_{τ(t)}(σ(H~[t])) + H^{l-1}[t]
//
// Temporal encoding / inductive timestamp assignment are disabled (§5.2: the
// aug-AST is static).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/hetgraph.h"
#include "graph/hetgraph_index.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/gemm_s8.h"

namespace g2p {

class ThreadPool;

/// Serving precision of the fused inference path. kFp32 is the default and
/// is numerically identical to the pre-quantization fused kernel; kInt8
/// routes every projection GEMM through the quantized Kernels::gemm_s8
/// contract (gemm_s8.h): dynamic asymmetric per-row activation quantization
/// fused into the gather, cached symmetric per-output-channel int8 weight
/// repacks, fp32 dequantization folded into the bias/residual scatters.
/// Training and the taped reference path always run fp32 regardless.
enum class Precision { kFp32, kInt8 };

/// The precision actually served: the G2P_PRECISION environment override
/// ("fp32" | "int8", read once) when set and valid, else `configured`.
Precision resolve_precision(Precision configured);

/// "fp32" / "int8" — stable strings for stats and --json reporting.
const char* precision_name(Precision p);

class HgtLayer : public Module {
 public:
  HgtLayer(int dim, int heads, Rng& rng);

  /// One round of heterogeneous message passing over a precomputed CSR
  /// index (single graph or disjoint batch union — the math is identical).
  /// `x`: [N, dim] node states. Nodes with no incoming edges keep their
  /// residual state.
  ///
  /// Routing: under grad (training) this is always the taped reference
  /// implementation; in inference mode (NoGradGuard active) it dispatches to
  /// the fused kernel unless disabled via set_fused_inference(false) or
  /// G2P_FUSED=0. The two paths agree within float rounding (~1e-7
  /// relative), not bitwise.
  Tensor forward(const Tensor& x, const HetGraphIndex& index) const;

  /// Single-graph convenience wrapper: indexes `graph` and forwards.
  /// Callers running several layers should index once and use the overload
  /// above (HgtEncoder does).
  Tensor forward(const Tensor& x, const HetGraph& graph) const;

  /// The taped per-head implementation (formulas 2-5 op by op). Doubles as
  /// the equivalence oracle for the fused kernel.
  Tensor forward_reference(const Tensor& x, const HetGraphIndex& index) const;

  /// Fused inference kernel: cached block-diagonal W_ATT/W_MSG fusions per
  /// edge type (applied as one N-row head_map pass for dense types, or per
  /// edge in registers for sparse ones), then an edge-blocked pass over the
  /// per-edge-type CSR that computes all-head logits, applies the µ prior,
  /// runs a streaming-max online segment softmax per destination, and
  /// scatters weighted messages straight into the [N, dim] output — no
  /// [E, head_dim] intermediates, no per-head gather/concat tensors. Always
  /// runs under NoGradGuard (the result carries no tape). The fused weight
  /// cache rebuilds automatically when parameters mutate (optimizer step,
  /// checkpoint load — keyed on tensor mutation versions).
  Tensor forward_fused(const Tensor& x, const HetGraphIndex& index) const;

  /// Enable/disable fused-kernel routing for this layer (default on).
  void set_fused_inference(bool enabled) { fused_enabled_ = enabled; }
  bool fused_inference() const { return fused_enabled_; }

  /// Configure the fused forward's serving precision (default fp32; the
  /// G2P_PRECISION env var overrides it — see resolve_precision). Like
  /// set_fused_inference, configure at setup: not thread-safe against
  /// concurrent forwards. The int8 weight repacks live in the same fused
  /// cache and share its stamp, so flipping precision never serves stale
  /// weights and costs no rebuild.
  void set_precision(Precision p) { precision_ = p; }
  Precision precision() const { return precision_; }

  /// Worker pool for the fused forward's projection GEMMs (matmul_mt row
  /// panels) — batch-shaped forwards scale across cores with it, null runs
  /// them single-threaded. Nested use is safe: on a pool worker the panels
  /// run inline. Not thread-safe against concurrent forwards (configure at
  /// setup, like set_fused_inference).
  void set_thread_pool(std::shared_ptr<ThreadPool> pool) { pool_ = std::move(pool); }

  int dim() const { return dim_; }
  int heads() const { return heads_; }

 private:
  int dim_, heads_, head_dim_;

  // Per-node-type projections K/Q/V and output A-Linear (τ-indexed).
  std::vector<std::unique_ptr<Linear>> k_lin_, q_lin_, v_lin_, a_lin_;
  // Per-edge-type, per-head W_ATT and W_MSG [head_dim, head_dim] (φ-indexed).
  std::vector<std::vector<Tensor>> w_att_, w_msg_;
  // Meta-relation prior µ, one scalar per (src-type, edge-type, dst-type),
  // stored as [T*R*T, 1] for differentiable gathering.
  Tensor mu_;

  /// Cached repack of every weight the fused forward consumes. `stamp` is
  /// the sum of the source parameters' mutation versions; a mismatch
  /// (optimizer step, checkpoint load, direct data poke) triggers a rebuild
  /// on the next fused forward.
  ///
  /// Per edge type φ: the `heads` [head_dim, head_dim] W_ATT / W_MSG
  /// matrices laid out back to back — the dense blocks of a block-diagonal
  /// [dim, dim] operator the backend's head_map applies in one N-row pass.
  ///
  /// Per node type τ: the K/Q/V projection weights packed side by side as
  /// one [dim, 3*dim] GEMM operand (columns [K | Q | V]) with the biases
  /// concatenated to [3*dim] — all three projections of a type's rows cost
  /// one wide GEMM instead of three square ones. The A-Linear block rides in
  /// the same cache but stays a separate [dim, dim] operand: it applies to
  /// the *activated aggregate*, not to x, so it cannot join the x-side GEMM.
  struct FusedWeights {
    std::uint64_t stamp = 0;
    std::vector<FloatVec> att, msg;      // φ-indexed; block layout is [h][k][j]
    std::vector<FloatVec> kqv_w, kqv_b;  // τ-indexed: [dim, 3*dim] / [3*dim]
    std::vector<FloatVec> a_w, a_b;      // τ-indexed: [dim, dim] / [dim]
    // Int8 images of the operands above for the quantized serving path
    // (gemm_s8.h), built unconditionally at rebuild — they are a few KB per
    // layer, and sharing the stamp means a precision flip (option or env)
    // never races a rebuild. kqv_q / a_q quantize the τ-indexed GEMM
    // operands per output column; att_q / msg_q hold each φ's `heads`
    // [head_dim, head_dim] blocks back to back, with scale/zcomp indexed
    // [h*head_dim + j] to match the [N, dim] column layout the per-head
    // sub-GEMMs write.
    std::vector<backend::detail::QuantOperand> kqv_q, a_q;  // τ-indexed
    std::vector<backend::detail::QuantOperand> att_q, msg_q;  // φ-indexed
  };
  const FusedWeights* fused_weights() const;
  std::uint64_t weight_stamp() const;

  // Concurrent serving reads the warm cache lock-free: the current repack
  // is published through an atomic raw pointer (one acquire load per layer
  // per forward); the mutex is taken only to rebuild on a stamp mismatch.
  // Superseded repacks are retired into fused_retired_ rather than freed,
  // so a reader that loaded the old pointer mid-rebuild stays valid; the
  // retire list is bounded by the number of rebuilds (one per parameter
  // mutation followed by a fused forward, ~KBs each).
  mutable std::mutex fused_mutex_;
  mutable std::vector<std::unique_ptr<const FusedWeights>> fused_retired_;
  mutable std::atomic<const FusedWeights*> fused_current_{nullptr};
  bool fused_enabled_ = true;
  Precision precision_ = Precision::kFp32;
  std::shared_ptr<ThreadPool> pool_;  // null: single-threaded projections

  /// Apply the per-type linear `lins[type]` to the rows of each type and
  /// reassemble a full [N, dim] tensor.
  Tensor per_type_projection(const Tensor& x, const HetGraphIndex& index,
                             const std::vector<std::unique_ptr<Linear>>& lins) const;
};

/// Stacked HGT encoder over an initial node embedding.
class HgtEncoder : public Module {
 public:
  HgtEncoder(int dim, int heads, int layers, Rng& rng);

  /// Run all layers over one precomputed index (built once per batch).
  Tensor forward(const Tensor& x, const HetGraphIndex& index) const;

  /// Single-graph convenience wrapper: indexes `graph` once, then forwards.
  Tensor forward(const Tensor& x, const HetGraph& graph) const;

  /// Propagate fused-inference routing to every layer (see HgtLayer).
  void set_fused_inference(bool enabled);

  /// Propagate the serving precision to every layer (see HgtLayer).
  void set_precision(Precision p);

  /// Propagate the projection-GEMM worker pool to every layer (see HgtLayer).
  void set_thread_pool(std::shared_ptr<ThreadPool> pool);

 private:
  std::vector<std::unique_ptr<HgtLayer>> layers_;
  std::vector<std::unique_ptr<LayerNorm>> norms_;
};

}  // namespace g2p
