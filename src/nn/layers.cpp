#include "nn/layers.h"

#include <cmath>

namespace g2p {

Linear::Linear(int in_features, int out_features, Rng& rng, bool bias)
    : in_(in_features), out_(out_features) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = register_param(Tensor::rand_uniform({in_, out_}, rng, bound));
  if (bias) bias_ = register_param(Tensor::zeros({out_}));
}

Tensor Linear::forward(const Tensor& x) const {
  if (bias_.defined()) return matmul_bias(x, weight_, bias_);
  return matmul(x, weight_);
}

Embedding::Embedding(int vocab_size, int dim, Rng& rng) : vocab_(vocab_size), dim_(dim) {
  table_ = register_param(Tensor::randn({vocab_, dim_}, rng, 0.02f));
}

Tensor Embedding::forward(std::span<const int> ids) const {
  return index_select_rows(table_, ids);
}

LayerNorm::LayerNorm(int dim) {
  gamma_ = register_param(Tensor::full({dim}, 1.0f));
  beta_ = register_param(Tensor::zeros({dim}));
}

FeedForward::FeedForward(int dim, int hidden, Rng& rng)
    : fc1_(dim, hidden, rng), fc2_(hidden, dim, rng) {
  register_child(fc1_);
  register_child(fc2_);
}

}  // namespace g2p
