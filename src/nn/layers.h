// Basic layers: Linear, Embedding, LayerNorm, position-wise FFN.
#pragma once

#include "nn/module.h"
#include "support/rng.h"
#include "tensor/ops.h"

namespace g2p {

/// y = x W + b, Xavier-uniform initialized.
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x) const;

  int in_features() const { return in_; }
  int out_features() const { return out_; }

  /// Parameter handles (the HGT layer's fused-projection cache packs several
  /// Linears' weights into one wide GEMM operand and keys the repack on
  /// their mutation versions).
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }  // undefined when bias-less

 private:
  int in_, out_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined
};

/// Lookup table [vocab, dim], N(0, 0.02) initialized.
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, Rng& rng);

  Tensor forward(std::span<const int> ids) const;

  int vocab_size() const { return vocab_; }
  int dim() const { return dim_; }

 private:
  int vocab_, dim_;
  Tensor table_;
};

/// Learnable per-feature scale/shift layer normalization.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim);

  Tensor forward(const Tensor& x) const { return layer_norm(x, gamma_, beta_); }

 private:
  Tensor gamma_, beta_;
};

/// Two-layer position-wise feed-forward block with GELU.
class FeedForward : public Module {
 public:
  FeedForward(int dim, int hidden, Rng& rng);

  Tensor forward(const Tensor& x) const { return fc2_.forward(gelu(fc1_.forward(x))); }

 private:
  Linear fc1_, fc2_;
};

}  // namespace g2p
