#include "nn/module.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "support/failpoint.h"

namespace g2p {

void Module::save(std::ostream& out) const {
  const std::uint64_t count = params_.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params_) {
    const std::uint64_t n = p.numel();
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(p.data().data()),
              static_cast<std::streamsize>(n * sizeof(float)));
  }
}

void Module::load(std::istream& in) {
  // Two phases: stage the whole stream into scratch, then commit. A
  // truncated or corrupt checkpoint must throw *before* any parameter is
  // touched — a mid-serving reload that fails leaves the previous
  // generation's weights fully intact, never a half-loaded model.
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != params_.size()) {
    throw std::runtime_error("Module::load: parameter count mismatch (" +
                             std::to_string(count) + " vs " + std::to_string(params_.size()) +
                             ")");
  }
  std::vector<std::vector<float>> staged(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in || n != params_[i].numel()) {
      throw std::runtime_error("Module::load: parameter size mismatch");
    }
    staged[i].resize(n);
    in.read(reinterpret_cast<char*>(staged[i].data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!in) throw std::runtime_error("Module::load: truncated stream");
  }
  // Commit: every read succeeded. data() bumps each TensorImpl::version, so
  // fused-weight caches keyed on parameter stamps rebuild as usual.
  for (std::size_t i = 0; i < params_.size(); ++i) {
    std::copy(staged[i].begin(), staged[i].end(), params_[i].data().begin());
  }
}

bool Module::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save(out);
  out.flush();
  return out.good();
}

bool Module::load_file(const std::string& path) {
  // Failpoint: a checkpoint-IO fault fails the load exactly like a missing
  // file — the caller keeps the weights it already had (load() is staged).
  if (failpoint::triggered("checkpoint.load")) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  try {
    load(in);
  } catch (const std::exception&) {
    return false;  // truncated/corrupt file; previous parameters are intact
  }
  return true;
}

}  // namespace g2p
