#include "nn/module.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "support/failpoint.h"

namespace g2p {

namespace {

// Trailing integrity record appended after the parameter payload:
// 8 magic bytes + FNV-1a 64 of every payload byte that precedes it. A
// bit-flipped checkpoint passes the structural checks (counts and sizes
// still parse) but not this one. Streams without the trailer (pre-trailer
// checkpoints end exactly at the last float) still load, so old files stay
// readable; any *partial* or mismatched trailer is corruption and rejects.
constexpr char kChecksumMagic[8] = {'G', '2', 'P', 'C', 'K', 'S', 'M', '1'};

std::uint64_t fnv1a64_update(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;

}  // namespace

void Module::save(std::ostream& out) const {
  std::uint64_t sum = kFnvOffset;
  const std::uint64_t count = params_.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  sum = fnv1a64_update(sum, &count, sizeof(count));
  for (const auto& p : params_) {
    const std::uint64_t n = p.numel();
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(p.data().data()),
              static_cast<std::streamsize>(n * sizeof(float)));
    sum = fnv1a64_update(sum, &n, sizeof(n));
    sum = fnv1a64_update(sum, p.data().data(), n * sizeof(float));
  }
  out.write(kChecksumMagic, sizeof(kChecksumMagic));
  out.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
}

void Module::load(std::istream& in) {
  // Two phases: stage the whole stream into scratch, then commit. A
  // truncated or corrupt checkpoint must throw *before* any parameter is
  // touched — a mid-serving reload that fails leaves the previous
  // generation's weights fully intact, never a half-loaded model.
  std::uint64_t sum = kFnvOffset;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != params_.size()) {
    throw std::runtime_error("Module::load: parameter count mismatch (" +
                             std::to_string(count) + " vs " + std::to_string(params_.size()) +
                             ")");
  }
  sum = fnv1a64_update(sum, &count, sizeof(count));
  std::vector<std::vector<float>> staged(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in || n != params_[i].numel()) {
      throw std::runtime_error("Module::load: parameter size mismatch");
    }
    staged[i].resize(n);
    in.read(reinterpret_cast<char*>(staged[i].data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!in) throw std::runtime_error("Module::load: truncated stream");
    sum = fnv1a64_update(sum, &n, sizeof(n));
    sum = fnv1a64_update(sum, staged[i].data(), n * sizeof(float));
  }
  // Integrity trailer. Zero trailing bytes is the legacy format; anything
  // else must be exactly magic + matching checksum of the payload above.
  char trailer[sizeof(kChecksumMagic) + sizeof(std::uint64_t)];
  in.read(trailer, sizeof(trailer));
  const std::streamsize got = in.gcount();
  if (got != 0) {
    if (got != sizeof(trailer) ||
        std::memcmp(trailer, kChecksumMagic, sizeof(kChecksumMagic)) != 0) {
      throw std::runtime_error("Module::load: malformed checksum trailer");
    }
    std::uint64_t recorded = 0;
    std::memcpy(&recorded, trailer + sizeof(kChecksumMagic), sizeof(recorded));
    if (recorded != sum) {
      throw std::runtime_error("Module::load: checksum mismatch (corrupt checkpoint)");
    }
    // Nothing may follow the trailer.
    char extra = 0;
    in.read(&extra, 1);
    if (in.gcount() != 0) throw std::runtime_error("Module::load: trailing garbage");
  }
  // Commit: every read succeeded. data() bumps each TensorImpl::version, so
  // fused-weight caches keyed on parameter stamps rebuild as usual.
  for (std::size_t i = 0; i < params_.size(); ++i) {
    std::copy(staged[i].begin(), staged[i].end(), params_[i].data().begin());
  }
}

bool Module::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save(out);
  out.flush();
  return out.good();
}

bool Module::load_file(const std::string& path) {
  // Failpoint: a checkpoint-IO fault fails the load exactly like a missing
  // file — the caller keeps the weights it already had (load() is staged).
  if (failpoint::triggered("checkpoint.load")) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  try {
    load(in);
  } catch (const std::exception&) {
    return false;  // truncated/corrupt file; previous parameters are intact
  }
  return true;
}

}  // namespace g2p
