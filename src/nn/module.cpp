#include "nn/module.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace g2p {

void Module::save(std::ostream& out) const {
  const std::uint64_t count = params_.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params_) {
    const std::uint64_t n = p.numel();
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(p.data().data()),
              static_cast<std::streamsize>(n * sizeof(float)));
  }
}

void Module::load(std::istream& in) {
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (count != params_.size()) {
    throw std::runtime_error("Module::load: parameter count mismatch (" +
                             std::to_string(count) + " vs " + std::to_string(params_.size()) +
                             ")");
  }
  for (auto& p : params_) {
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (n != p.numel()) throw std::runtime_error("Module::load: parameter size mismatch");
    in.read(reinterpret_cast<char*>(p.data().data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!in) throw std::runtime_error("Module::load: truncated stream");
  }
}

bool Module::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save(out);
  out.flush();
  return out.good();
}

bool Module::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  try {
    load(in);
  } catch (const std::exception&) {
    return false;  // truncated/corrupt file; parameters are unspecified
  }
  return true;
}

}  // namespace g2p
