// Module base: parameter registration and binary (de)serialization.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace g2p {

/// Base class for layers and models. Parameters are Tensor handles
/// registered at construction; optimizers and checkpointing iterate them in
/// registration order (which is therefore part of a model's ABI).
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters, registration order.
  const std::vector<Tensor>& parameters() const { return params_; }

  std::size_t num_parameters() const {
    std::size_t n = 0;
    for (const auto& p : params_) n += p.numel();
    return n;
  }

  /// Write / read all parameter values. Layout: per parameter, numel floats,
  /// followed by an integrity trailer (8 magic bytes + FNV-1a 64 checksum of
  /// the payload) so bit-flipped — not just truncated — checkpoints are
  /// rejected. Trailer-less legacy files still load; a present-but-wrong
  /// trailer throws. Shapes must already match (load into an
  /// identically-configured model). `load` throws on mismatch, truncation,
  /// or checksum failure; load_file returns false instead. Loads are
  /// staged-then-committed: on any failure the previous parameter values are
  /// fully intact (a mid-serving reload that hits a corrupt checkpoint keeps
  /// serving the old generation). save_file returns false when the file
  /// cannot be opened or fully flushed.
  void save(std::ostream& out) const;
  void load(std::istream& in);
  [[nodiscard]] bool save_file(const std::string& path) const;
  [[nodiscard]] bool load_file(const std::string& path);

 protected:
  /// Register a parameter tensor (sets requires_grad) and return the handle.
  Tensor register_param(Tensor t) {
    t.impl()->requires_grad = true;
    params_.push_back(t);
    return t;
  }
  /// Absorb a child module's parameters (composite modules).
  void register_child(const Module& child) {
    for (const auto& p : child.parameters()) params_.push_back(p);
  }

 private:
  std::vector<Tensor> params_;
};

}  // namespace g2p
