#include "nn/transformer.h"

#include <cmath>

namespace g2p {

MultiHeadAttention::MultiHeadAttention(int dim, int heads, Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {
  if (dim % heads != 0) throw std::invalid_argument("MHA: dim must divide by heads");
  register_child(wq_);
  register_child(wk_);
  register_child(wv_);
  register_child(wo_);
}

Tensor MultiHeadAttention::forward(const Tensor& x) const {
  const Tensor q = wq_.forward(x);
  const Tensor k = wk_.forward(x);
  const Tensor v = wv_.forward(x);
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  std::vector<Tensor> head_outputs;
  head_outputs.reserve(static_cast<std::size_t>(heads_));
  for (int h = 0; h < heads_; ++h) {
    const int off = h * head_dim_;
    const Tensor qh = col_slice(q, off, head_dim_);
    const Tensor kh = col_slice(k, off, head_dim_);
    const Tensor vh = col_slice(v, off, head_dim_);
    const Tensor scores = scale(matmul(qh, transpose(kh)), inv_sqrt);  // [T,T]
    const Tensor attn = softmax_rows(scores);
    head_outputs.push_back(matmul(attn, vh));  // [T, head_dim]
  }
  return wo_.forward(concat_cols(head_outputs));
}

TransformerBlock::TransformerBlock(int dim, int heads, int ffn_hidden, Rng& rng)
    : ln1_(dim), ln2_(dim), attn_(dim, heads, rng), ffn_(dim, ffn_hidden, rng) {
  register_child(ln1_);
  register_child(ln2_);
  register_child(attn_);
  register_child(ffn_);
}

Tensor TransformerBlock::forward(const Tensor& x) const {
  const Tensor after_attention = add(x, attn_.forward(ln1_.forward(x)));
  return add(after_attention, ffn_.forward(ln2_.forward(after_attention)));
}

namespace {

Tensor sinusoidal_table(int max_len, int dim) {
  std::vector<float> values(static_cast<std::size_t>(max_len) * dim);
  for (int pos = 0; pos < max_len; ++pos) {
    for (int i = 0; i < dim; ++i) {
      const float angle =
          static_cast<float>(pos) /
          std::pow(10000.0f, 2.0f * static_cast<float>(i / 2) / static_cast<float>(dim));
      values[static_cast<std::size_t>(pos) * dim + i] =
          (i % 2 == 0) ? std::sin(angle) : std::cos(angle);
    }
  }
  return Tensor::from_vector({max_len, dim}, std::move(values));
}

}  // namespace

TransformerEncoder::TransformerEncoder(const Config& config, Rng& rng)
    : config_(config),
      token_embed_(config.vocab_size, config.dim, rng),
      positional_(sinusoidal_table(config.max_len, config.dim)),
      final_ln_(config.dim) {
  register_child(token_embed_);
  for (int i = 0; i < config.layers; ++i) {
    blocks_.push_back(
        std::make_unique<TransformerBlock>(config.dim, config.heads, config.ffn_hidden, rng));
    register_child(*blocks_.back());
  }
  register_child(final_ln_);
}

Tensor TransformerEncoder::encode(std::span<const int> token_ids) const {
  std::vector<int> ids(token_ids.begin(), token_ids.end());
  if (static_cast<int>(ids.size()) > config_.max_len) {
    ids.resize(static_cast<std::size_t>(config_.max_len));
  }
  constexpr int kPadId = 1;  // Vocab::kPad by convention
  if (ids.empty()) ids.push_back(kPadId);
  const int t = static_cast<int>(ids.size());

  std::vector<int> positions(static_cast<std::size_t>(t));
  for (int i = 0; i < t; ++i) positions[static_cast<std::size_t>(i)] = i;

  Tensor x = add(token_embed_.forward(ids), index_select_rows(positional_, positions));
  for (const auto& block : blocks_) x = block->forward(x);
  x = final_ln_.forward(x);
  const std::vector<int> all_zero(static_cast<std::size_t>(t), 0);
  return segment_mean_rows(x, all_zero, 1);  // [1, dim]
}

}  // namespace g2p
