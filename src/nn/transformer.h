// Transformer encoder (the token-representation baseline's backbone).
//
// PragFormer (Harel et al. 2022) feeds source-code tokens to a transformer
// for pragma classification; this is the same architecture class built on
// our tensor stack: learned token embeddings + sinusoidal positions,
// pre-LayerNorm encoder blocks with multi-head self-attention and GELU FFN,
// mean pooling over positions.
#pragma once

#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace g2p {

/// Multi-head self-attention over a single sequence [T, D].
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int dim, int heads, Rng& rng);

  Tensor forward(const Tensor& x) const;  // [T,D] -> [T,D]

  int heads() const { return heads_; }

 private:
  int dim_, heads_, head_dim_;
  Linear wq_, wk_, wv_, wo_;
};

/// Pre-LN encoder block: x + MHA(LN(x)); x + FFN(LN(x)).
class TransformerBlock : public Module {
 public:
  TransformerBlock(int dim, int heads, int ffn_hidden, Rng& rng);

  Tensor forward(const Tensor& x) const;

 private:
  LayerNorm ln1_, ln2_;
  MultiHeadAttention attn_;
  FeedForward ffn_;
};

/// Token ids -> pooled sequence representation [1, D].
class TransformerEncoder : public Module {
 public:
  struct Config {
    int vocab_size = 0;
    int dim = 64;
    int heads = 4;
    int layers = 2;
    int ffn_hidden = 128;
    int max_len = 256;  // sequences are truncated to this many tokens
  };

  TransformerEncoder(const Config& config, Rng& rng);

  /// Encode one token sequence; returns mean-pooled [1, dim].
  Tensor encode(std::span<const int> token_ids) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  Embedding token_embed_;
  Tensor positional_;  // fixed sinusoidal table [max_len, dim] (not trained)
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  LayerNorm final_ln_;
};

}  // namespace g2p
