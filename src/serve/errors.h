// Typed errors of the fault-tolerant serving layer.
//
// The contract this taxonomy exists for: a slow or dropped answer must
// become a *typed* error on one future, never a hung client or a poisoned
// batch. Every way SuggestServer can decline or abandon a request has its
// own exception type, all rooted at ServeError, so clients can branch on
// catch clauses (retry Overloaded, surface DeadlineExceeded, re-resolve on
// ServerStopped) instead of parsing what() strings. Per-source *content*
// errors (a file that does not parse) keep surfacing as whatever the
// frontend threw — they are properties of the request, not of the server.
#pragma once

#include <stdexcept>
#include <string>

namespace g2p {

/// Root of the serving-layer error taxonomy.
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The request's deadline expired before a result was produced. Raised by
/// the scheduler when it expels expired requests ahead of the batched
/// forward, and by the retry ladder when the remaining budget cannot cover
/// another attempt.
class DeadlineExceeded final : public ServeError {
 public:
  DeadlineExceeded() : ServeError("deadline exceeded before the request was served") {}
  explicit DeadlineExceeded(const std::string& what) : ServeError(what) {}
};

/// The server shed this request to protect itself: the degradation ladder
/// reached shed mode, or a cache-only-mode request missed the cache. The
/// request was never partially executed — safe to retry elsewhere/later.
class Overloaded final : public ServeError {
 public:
  Overloaded() : ServeError("server overloaded: request shed") {}
  explicit Overloaded(const std::string& what) : ServeError(what) {}
};

/// The server stopped while this request was waiting: a submitter blocked
/// on backpressure when shutdown() arrived, or a request still queued when
/// the drain was abandoned.
class ServerStopped final : public ServeError {
 public:
  ServerStopped() : ServeError("server stopped before the request was served") {}
  explicit ServerStopped(const std::string& what) : ServeError(what) {}
};

/// The request was cooperatively cancelled before a result was produced:
/// its submitter set the cancel token it was submitted with (typically a
/// hedged duplicate whose twin on another replica already won). Swept at
/// batch boundaries — a cancelled request already inside a running forward
/// completes normally and the caller discards the value.
class RequestCancelled final : public ServeError {
 public:
  RequestCancelled() : ServeError("request cancelled by its submitter") {}
  explicit RequestCancelled(const std::string& what) : ServeError(what) {}
};

/// The scheduler's per-batch watchdog budget elapsed with the batch still
/// running; its futures were failed and the batch abandoned so the queue
/// keeps moving. The forward may still complete in the background — its
/// result is discarded, never served.
class BatchAbandoned final : public ServeError {
 public:
  BatchAbandoned() : ServeError("batch abandoned: watchdog budget elapsed") {}
  explicit BatchAbandoned(const std::string& what) : ServeError(what) {}
};

}  // namespace g2p
