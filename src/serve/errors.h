// Typed errors of the fault-tolerant serving layer.
//
// The contract this taxonomy exists for: a slow or dropped answer must
// become a *typed* error on one future, never a hung client or a poisoned
// batch. Every way SuggestServer can decline or abandon a request has its
// own exception type, all rooted at ServeError, so clients can branch on
// catch clauses (retry Overloaded, surface DeadlineExceeded, re-resolve on
// ServerStopped) instead of parsing what() strings. Per-source *content*
// errors (a file that does not parse) keep surfacing as whatever the
// frontend threw — they are properties of the request, not of the server.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace g2p {

/// Root of the serving-layer error taxonomy.
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The request's deadline expired before a result was produced. Raised by
/// the scheduler when it expels expired requests ahead of the batched
/// forward, and by the retry ladder when the remaining budget cannot cover
/// another attempt.
class DeadlineExceeded final : public ServeError {
 public:
  DeadlineExceeded() : ServeError("deadline exceeded before the request was served") {}
  explicit DeadlineExceeded(const std::string& what) : ServeError(what) {}
};

/// The server shed this request to protect itself: the degradation ladder
/// reached shed mode, or a cache-only-mode request missed the cache. The
/// request was never partially executed — safe to retry elsewhere/later.
class Overloaded final : public ServeError {
 public:
  Overloaded() : ServeError("server overloaded: request shed") {}
  explicit Overloaded(const std::string& what) : ServeError(what) {}
};

/// The server stopped while this request was waiting: a submitter blocked
/// on backpressure when shutdown() arrived, or a request still queued when
/// the drain was abandoned.
class ServerStopped final : public ServeError {
 public:
  ServerStopped() : ServeError("server stopped before the request was served") {}
  explicit ServerStopped(const std::string& what) : ServeError(what) {}
};

/// The request was cooperatively cancelled before a result was produced:
/// its submitter set the cancel token it was submitted with (typically a
/// hedged duplicate whose twin on another replica already won). Swept at
/// batch boundaries — a cancelled request already inside a running forward
/// completes normally and the caller discards the value.
class RequestCancelled final : public ServeError {
 public:
  RequestCancelled() : ServeError("request cancelled by its submitter") {}
  explicit RequestCancelled(const std::string& what) : ServeError(what) {}
};

/// The scheduler's per-batch watchdog budget elapsed with the batch still
/// running; its futures were failed and the batch abandoned so the queue
/// keeps moving. The forward may still complete in the background — its
/// result is discarded, never served.
class BatchAbandoned final : public ServeError {
 public:
  BatchAbandoned() : ServeError("batch abandoned: watchdog budget elapsed") {}
  explicit BatchAbandoned(const std::string& what) : ServeError(what) {}
};

/// Which per-request budget dimension a request exceeded. Order matches the
/// `ResourceBudget` fields (support/resource_governor.h) and the per-limit
/// counters in ServerStats.
enum class ResourceLimit : int {
  kSourceBytes = 0,  // raw source length (statically checkable at admission)
  kTokens,           // tokens produced by the lexer
  kAstNodes,         // parser AST nodes + aug-AST graph nodes
  kArenaBytes,       // bytes bump-allocated into the request's Arena
  kParseDepth,       // recursive-descent nesting depth
  kLoops,            // loops extracted from one translation unit
  kWallClock,        // soft frontend wall-clock budget
};

inline constexpr int kNumResourceLimits = 7;

/// Stable lowercase name for a limit (stats fields, bench JSON, messages).
const char* resource_limit_name(ResourceLimit limit);

/// The request exceeded one dimension of its ResourceBudget. A property of
/// the request, not of the server: fails only the offending slot (batch-mates
/// are unaffected), is never retried by the SuggestServer ladder, and causes
/// no replica failover or health penalty. Carries which limit tripped plus
/// the observed value and the cap so callers and stats can attribute it.
class ResourceExhausted final : public ServeError {
 public:
  ResourceExhausted(ResourceLimit limit, std::uint64_t observed, std::uint64_t cap)
      : ServeError(std::string("resource budget exceeded: ") + resource_limit_name(limit) +
                   " (observed " + std::to_string(observed) + ", cap " +
                   std::to_string(cap) + ")"),
        limit_(limit),
        observed_(observed),
        cap_(cap) {}

  ResourceLimit limit() const { return limit_; }
  std::uint64_t observed() const { return observed_; }
  std::uint64_t cap() const { return cap_; }

 private:
  ResourceLimit limit_;
  std::uint64_t observed_;
  std::uint64_t cap_;
};

}  // namespace g2p
