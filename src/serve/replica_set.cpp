#include "serve/replica_set.h"

#include <cstdlib>
#include <exception>
#include <limits>
#include <stdexcept>

#include "serve/errors.h"
#include "support/failpoint.h"
#include "support/hash.h"

namespace g2p {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
constexpr std::size_t kLatencyWindow = 128;

std::size_t resolve_replica_count(std::size_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("G2P_REPLICAS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 2;
}

/// How a leg's failure reflects on the replica that served it.
enum class Fault {
  kReplica,   // replica-attributable: health penalty + failover
  kOverload,  // load signal: reroute without penalty
  kRequest,   // property of the request (content error, deadline): no reroute
};

Fault classify(const std::exception_ptr& error, bool* server_stopped) {
  *server_stopped = false;
  try {
    std::rethrow_exception(error);
  } catch (const failpoint::FailpointError&) {
    return Fault::kReplica;
  } catch (const BatchAbandoned&) {
    return Fault::kReplica;
  } catch (const ServerStopped&) {
    *server_stopped = true;
    return Fault::kReplica;
  } catch (const Overloaded&) {
    return Fault::kOverload;
  } catch (...) {
    // Content errors (parse failures), DeadlineExceeded: deterministic
    // properties of the request — another replica would answer the same.
    return Fault::kRequest;
  }
}

bool is_cancelled(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const RequestCancelled&) {
    return true;
  } catch (...) {
    return false;
  }
}

/// Canary diff predicate: do two generations make the same *decisions* for
/// a source? Confidence is a float the new weights legitimately move, so the
/// comparison is over the served outcome — loop count, parallel verdicts,
/// pragma categories, rendered pragma text.
bool same_decisions(const std::vector<LoopSuggestion>& a,
                    const std::vector<LoopSuggestion>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].parallel != b[i].parallel || a[i].category != b[i].category ||
        a[i].suggested_pragma != b[i].suggested_pragma) {
      return false;
    }
  }
  return true;
}

}  // namespace

/// One replica: a weight-identical Pipeline clone behind its own
/// SuggestServer, plus the breaker state routing consults. All mutable
/// fields are guarded by ReplicaSet::mutex_.
struct ReplicaSet::Replica {
  std::size_t id = 0;
  std::shared_ptr<Pipeline> pipeline;
  std::unique_ptr<SuggestServer> server;

  ReplicaState state = ReplicaState::kHealthy;
  double error_ewma = 0.0;       // 1.0 = every recent dispatch faulted
  double latency_ewma_ms = 0.0;  // success latencies only
  std::uint32_t samples = 0;
  Clock::time_point quarantined_until{};
  std::chrono::milliseconds backoff{0};  // doubles per re-trip
  int probe_successes = 0;
  int probes_outstanding = 0;

  std::uint64_t in_flight = 0;  // legs dispatched, not yet resolved
  std::uint64_t routed = 0;
  std::uint64_t faults = 0;
  std::uint64_t quarantines = 0;
};

/// One dispatch of a flight onto one replica.
struct ReplicaSet::FlightLeg {
  bool live = false;
  std::size_t replica = 0;
  std::future<std::vector<LoopSuggestion>> inner;
  SuggestServer::CancelToken cancel;
  bool probe = false;
  Clock::time_point dispatched{};
};

/// One outer request. `primary` is the routed leg (re-dispatched in place on
/// failover); `hedge` is the optional duplicate. The outer promise completes
/// exactly once; the flight stays listed until every live leg has resolved
/// so per-replica in-flight accounting (which rollout drains against) stays
/// exact.
struct ReplicaSet::Flight {
  std::string source;
  std::uint64_t route_key = 0;
  std::size_t home = 0;
  std::promise<std::vector<LoopSuggestion>> outer;
  bool outer_done = false;
  Clock::time_point enqueued{};
  Clock::time_point deadline{};  // Clock::time_point::max() = none
  int failovers = 0;
  bool hedge_attempted = false;
  FlightLeg primary;
  FlightLeg hedge;
  std::exception_ptr first_error;  // earliest leg failure, kept for reporting
};

ReplicaSet::ReplicaSet(const Pipeline& prototype, Options options)
    : options_(std::move(options)) {
  const std::size_t n = resolve_replica_count(options_.replicas);
  options_.replicas = n;
  if (options_.vnodes == 0) options_.vnodes = 1;
  if (options_.health_alpha <= 0.0 || options_.health_alpha > 1.0) {
    options_.health_alpha = 0.2;
  }
  if (options_.max_failover < 0) options_.max_failover = 0;
  if (options_.probation_probes < 1) options_.probation_probes = 1;
  if (options_.quarantine_backoff.count() <= 0) {
    options_.quarantine_backoff = std::chrono::milliseconds(250);
  }
  // The router dispatches inner submits under its own lock, so they must
  // refuse (typed Overloaded, which the router reroutes) rather than block
  // on backpressure.
  if (options_.server.shed_at > 1.0) options_.server.shed_at = 0.9;

  ring_ = ConsistentRing(n, options_.vnodes);
  replicas_.reserve(n);
  replica_ids_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto replica = std::make_unique<Replica>();
    replica->id = i;
    replica->pipeline = std::make_shared<Pipeline>(prototype.clone());
    replica->pipeline->set_replica_id(static_cast<int>(i));
    replica->server = std::make_unique<SuggestServer>(replica->pipeline, options_.server);
    replicas_.push_back(std::move(replica));
    replica_ids_.push_back(i);
  }
  latency_window_.reserve(kLatencyWindow);
  router_ = std::thread([this] { router_loop(); });
}

ReplicaSet::~ReplicaSet() { shutdown(); }

void ReplicaSet::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  std::call_once(joined_, [this] {
    if (router_.joinable()) router_.join();  // drains every in-flight leg
    for (auto& replica : replicas_) replica->server->shutdown();
  });
}

std::future<std::vector<LoopSuggestion>> ReplicaSet::submit(std::string source) {
  return submit_impl(std::move(source), options_.server.default_deadline);
}

std::future<std::vector<LoopSuggestion>> ReplicaSet::submit(
    std::string source, std::chrono::milliseconds deadline) {
  return submit_impl(std::move(source), deadline);
}

std::size_t ReplicaSet::owner_of(std::string_view source) const {
  const Hash128 key = hash_source(source);
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.owner(key.lo);
}

const Pipeline& ReplicaSet::replica_pipeline(std::size_t replica) const {
  if (replica >= replicas_.size()) {
    throw std::out_of_range("ReplicaSet::replica_pipeline: bad replica id");
  }
  return *replicas_[replica]->pipeline;  // pointer is immutable post-ctor
}

ReplicaState ReplicaSet::replica_state(std::size_t replica) const {
  if (replica >= replicas_.size()) {
    throw std::out_of_range("ReplicaSet::replica_state: bad replica id");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return replicas_[replica]->state;
}

void ReplicaSet::quarantine(std::size_t replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (replica >= replicas_.size()) return;
  Replica& r = *replicas_[replica];
  if (r.state == ReplicaState::kDead || r.state == ReplicaState::kUpdating) return;
  r.state = ReplicaState::kQuarantined;
  r.backoff = r.backoff.count() == 0
                  ? options_.quarantine_backoff
                  : std::min(r.backoff * 2, options_.quarantine_backoff_cap);
  r.quarantined_until = Clock::now() + r.backoff;
  r.probe_successes = 0;
  ++r.quarantines;
  ++counters_.quarantines;
}

void ReplicaSet::kill(std::size_t replica) {
  SuggestServer* server = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (replica >= replicas_.size()) return;
    Replica& r = *replicas_[replica];
    if (r.state == ReplicaState::kDead) return;
    r.state = ReplicaState::kDead;
    ring_.remove(r.id);  // consistent ring: only this replica's keys move
    server = r.server.get();
  }
  // Drain outside the lock: shutdown completes everything the replica had
  // queued (values or typed errors), and the router has already stopped
  // routing to it.
  server->shutdown();
}

ReplicaSetStatsSnapshot ReplicaSet::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicaSetStatsSnapshot snapshot = counters_;
  snapshot.replicas.clear();
  snapshot.replicas.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    ReplicaSnapshot r;
    r.id = replica->id;
    r.state = replica->state;
    r.routed = replica->routed;
    r.in_flight = replica->in_flight;
    r.faults = replica->faults;
    r.quarantines = replica->quarantines;
    r.error_ewma = replica->error_ewma;
    r.latency_ewma_ms = replica->latency_ewma_ms;
    r.server = replica->server->stats();
    snapshot.replicas.push_back(std::move(r));
  }
  return snapshot;
}

// ---------------------------------------------------------------------------
// Routing internals. Every helper below runs with mutex_ held.

/// Quarantine backoff elapsed -> probation (lazy transition at routing time).
void ReplicaSet::refresh_state(Replica& r, Clock::time_point now) {
  if (r.state == ReplicaState::kQuarantined && now >= r.quarantined_until) {
    r.state = ReplicaState::kProbation;
    r.probe_successes = 0;
    r.probes_outstanding = 0;
  }
}

struct ReplicaSet::RouteDecision {
  Replica* replica = nullptr;
  bool stolen = false;
};

void ReplicaSet::requarantine(Replica& r, Clock::time_point now) {
  r.state = ReplicaState::kQuarantined;
  r.backoff = r.backoff.count() == 0
                  ? options_.quarantine_backoff
                  : std::min(r.backoff * 2, options_.quarantine_backoff_cap);
  r.quarantined_until = now + r.backoff;
  r.probe_successes = 0;
  ++r.quarantines;
  ++counters_.quarantines;
}

void ReplicaSet::record_failure(Replica& r, Clock::time_point now) {
  ++r.samples;
  ++r.faults;
  const double a = options_.health_alpha;
  r.error_ewma = (1.0 - a) * r.error_ewma + a;
  if (r.state == ReplicaState::kProbation) {
    requarantine(r, now);  // a probe failed: straight back, longer backoff
  } else if (r.state == ReplicaState::kHealthy &&
             r.samples >= options_.breaker_min_samples &&
             r.error_ewma > options_.breaker_error_rate) {
    requarantine(r, now);
  }
}

void ReplicaSet::record_success(Replica& r, double service_ms, bool probe,
                                Clock::time_point now) {
  ++r.samples;
  const double a = options_.health_alpha;
  r.error_ewma *= (1.0 - a);
  r.latency_ewma_ms =
      r.latency_ewma_ms == 0.0 ? service_ms : (1.0 - a) * r.latency_ewma_ms + a * service_ms;
  if (probe && r.state == ReplicaState::kProbation) {
    if (++r.probe_successes >= options_.probation_probes) {
      r.state = ReplicaState::kHealthy;
      r.error_ewma = 0.0;
      r.samples = 0;
      r.backoff = std::chrono::milliseconds(0);
      ++counters_.reinstated;
    }
  } else if (r.state == ReplicaState::kHealthy && options_.breaker_latency.count() > 0 &&
             r.samples >= options_.breaker_min_samples &&
             r.latency_ewma_ms > static_cast<double>(options_.breaker_latency.count())) {
    requarantine(r, now);  // latency trip: serving, but too slowly to trust
  }
}

void ReplicaSet::push_latency(double total_ms) {
  if (latency_window_.size() < kLatencyWindow) {
    latency_window_.push_back(static_cast<float>(total_ms));
  } else {
    latency_window_[latency_next_ % kLatencyWindow] = static_cast<float>(total_ms);
  }
  ++latency_next_;
}

double ReplicaSet::hedge_threshold_ms() const {
  const double floor_ms = static_cast<double>(options_.hedge_floor.count());
  if (latency_window_.empty()) return floor_ms;
  std::vector<float> sorted(latency_window_);
  const double p = std::min(std::max(options_.hedge_percentile, 0.0), 1.0);
  const std::size_t idx =
      static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(idx),
                   sorted.end());
  return std::max(floor_ms, static_cast<double>(sorted[idx]));
}

/// Dispatch one leg for `flight` onto the best available replica, in ring
/// preference order: healthy first (with an optional steal swap at the
/// front), probation replicas as probes, quarantined replicas as a last
/// resort (a shaky answer beats none — the breaker is advisory, not a
/// wall). Fires the `replica.route` failpoint once per attempt; an injected
/// fault makes that replica unreachable for this dispatch (health penalty,
/// move on). Returns the decision; .replica == nullptr when nobody accepted.
ReplicaSet::RouteDecision ReplicaSet::dispatch(Flight& flight, FlightLeg& leg,
                                               std::size_t exclude, bool allow_steal) {
  RouteDecision decision;
  const auto now = Clock::now();
  const auto pref = ring_.preference(flight.route_key);

  std::vector<std::size_t> order;
  std::vector<std::size_t> last_resort;
  order.reserve(pref.size());
  for (const std::size_t id : pref) {
    if (id == exclude) continue;
    Replica& r = *replicas_[id];
    refresh_state(r, now);
    switch (r.state) {
      case ReplicaState::kHealthy:
        order.push_back(id);
        break;
      case ReplicaState::kProbation:
        if (r.probes_outstanding < options_.probation_probes) order.push_back(id);
        break;
      case ReplicaState::kQuarantined:
        last_resort.push_back(id);
        break;
      case ReplicaState::kUpdating:  // rollout owns it; zero-downtime invariant
      case ReplicaState::kDead:
        break;
    }
  }

  bool stole = false;
  if (allow_steal && options_.steal_depth > 0 && order.size() > 1 &&
      replicas_[order.front()]->state == ReplicaState::kHealthy) {
    const std::uint64_t front_depth = replicas_[order.front()]->server->queue_depth();
    if (front_depth >= options_.steal_depth) {
      std::size_t best = order.front();
      std::uint64_t best_depth = front_depth;
      for (const std::size_t id : order) {
        Replica& r = *replicas_[id];
        if (r.state != ReplicaState::kHealthy) continue;
        const std::uint64_t d = r.server->queue_depth();
        if (d < best_depth) {
          best = id;
          best_depth = d;
        }
      }
      if (best != order.front() && best_depth + options_.steal_depth <= front_depth) {
        order.erase(std::find(order.begin(), order.end(), best));
        order.insert(order.begin(), best);
        stole = true;
      }
    }
  }
  order.insert(order.end(), last_resort.begin(), last_resort.end());

  for (const std::size_t id : order) {
    Replica& r = *replicas_[id];
    bool unreachable = false;
    try {
      unreachable = failpoint::triggered("replica.route");
    } catch (const failpoint::FailpointError&) {
      unreachable = true;
    }
    if (unreachable) {
      ++counters_.route_faults;
      record_failure(r, now);
      continue;
    }
    std::chrono::milliseconds remaining{0};  // 0 = no deadline
    if (flight.deadline != Clock::time_point::max()) {
      remaining = std::max(
          std::chrono::milliseconds(1),
          std::chrono::duration_cast<std::chrono::milliseconds>(flight.deadline - now));
    }
    try {
      auto token = std::make_shared<std::atomic<bool>>(false);
      auto inner = r.server->submit(flight.source, remaining, token);
      leg.live = true;
      leg.replica = id;
      leg.inner = std::move(inner);
      leg.cancel = std::move(token);
      leg.probe = r.state == ReplicaState::kProbation;
      leg.dispatched = Clock::now();
      ++r.in_flight;
      ++r.routed;
      if (leg.probe) {
        ++r.probes_outstanding;
        ++counters_.probes;
      }
      decision.replica = &r;
      decision.stolen = stole && id == order.front();
      return decision;
    } catch (const Overloaded&) {
      ++counters_.route_faults;  // queue refused; not a health fault
    } catch (const ServerStopped&) {
      ++counters_.route_faults;
      r.state = ReplicaState::kDead;
      ring_.remove(r.id);
    }
  }
  return decision;
}

std::future<std::vector<LoopSuggestion>> ReplicaSet::submit_impl(
    std::string source, std::chrono::milliseconds deadline) {
  const Hash128 key = hash_source(source);
  const auto now = Clock::now();

  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) throw ServerStopped("ReplicaSet: submit after shutdown");

  // Resource-governor admission: a statically-oversized source is a
  // property of the request — reject it here, before a flight exists, so it
  // can never be counted as a replica fault, failed over, or hedged.
  if (!replicas_.empty()) {
    const std::uint64_t max_src =
        replicas_.front()->server->pipeline().active_budget().max_source_bytes;
    if (max_src != 0 && source.size() > max_src) {
      ++counters_.submitted;
      ++counters_.failed;
      throw ResourceExhausted(ResourceLimit::kSourceBytes, source.size(), max_src);
    }
  }

  // Shadow-traffic ring for canary diffs: distinct recent sources, bounded.
  if (options_.shadow_capacity > 0 &&
      std::find(recent_keys_.begin(), recent_keys_.end(), key.lo) == recent_keys_.end()) {
    recent_keys_.push_back(key.lo);
    recent_sources_.push_back(source);
    if (recent_sources_.size() > options_.shadow_capacity) {
      recent_sources_.pop_front();
      recent_keys_.erase(recent_keys_.begin());
    }
  }

  flights_.emplace_back();
  Flight& flight = flights_.back();
  flight.source = std::move(source);
  flight.route_key = key.lo;
  flight.home = ring_.owner(key.lo);
  flight.enqueued = now;
  flight.deadline =
      deadline.count() > 0 ? now + deadline : Clock::time_point::max();
  auto future = flight.outer.get_future();
  ++counters_.submitted;

  RouteDecision decision;
  try {
    decision = dispatch(flight, flight.primary, kNone, true);
  } catch (...) {
    // An inner submit threw a request-scoped error (e.g. a replica whose
    // budget is tighter than the admission check above): clean up the
    // flight and surface it — never a failover.
    flights_.pop_back();
    ++counters_.failed;
    throw;
  }
  if (decision.replica == nullptr) {
    flights_.pop_back();
    ++counters_.failed;
    throw Overloaded("ReplicaSet: no replica could accept the request");
  }
  if (decision.replica->id == flight.home) {
    ++counters_.affinity_routed;
  } else if (decision.stolen) {
    ++counters_.stolen;
  } else {
    ++counters_.rerouted;
  }
  lock.unlock();
  cv_.notify_one();
  return future;
}

void ReplicaSet::fail_outer(Flight& flight, const std::exception_ptr& error) {
  flight.outer.set_exception(error);
  flight.outer_done = true;
  ++counters_.failed;
  for (FlightLeg* leg : {&flight.primary, &flight.hedge}) {
    if (leg->live && leg->cancel) leg->cancel->store(true, std::memory_order_release);
  }
}

/// Poll one leg; returns true when it resolved this sweep. Runs the full
/// completion protocol: health bookkeeping, hedge win/cancel, bounded
/// failover, outer completion.
bool ReplicaSet::poll_leg(Flight& flight, FlightLeg& leg, bool is_primary,
                          Clock::time_point now) {
  if (!leg.live) return false;
  if (leg.inner.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    return false;
  }
  std::vector<LoopSuggestion> value;
  std::exception_ptr error;
  try {
    value = leg.inner.get();
  } catch (...) {
    error = std::current_exception();
  }
  leg.live = false;
  leg.inner = {};
  Replica& r = *replicas_[leg.replica];
  if (r.in_flight > 0) --r.in_flight;
  if (leg.probe && r.probes_outstanding > 0) --r.probes_outstanding;
  const double service_ms =
      std::chrono::duration<double, std::milli>(now - leg.dispatched).count();

  if (!error) {
    record_success(r, service_ms, leg.probe, now);
    if (!flight.outer_done) {
      push_latency(
          std::chrono::duration<double, std::milli>(now - flight.enqueued).count());
      flight.outer.set_value(std::move(value));
      flight.outer_done = true;
      ++counters_.completed;
      if (!is_primary) ++counters_.hedge_wins;
      FlightLeg& other = is_primary ? flight.hedge : flight.primary;
      if (other.live && other.cancel) {
        other.cancel->store(true, std::memory_order_release);
      }
    }
    return true;
  }

  if (is_cancelled(error)) {
    ++counters_.hedge_cancelled;  // the expected loser outcome; no penalty
    return true;
  }
  if (!flight.first_error) flight.first_error = error;
  bool server_stopped = false;
  const Fault fault = classify(error, &server_stopped);
  if (fault == Fault::kReplica) record_failure(r, now);
  if (server_stopped && r.state != ReplicaState::kDead) {
    r.state = ReplicaState::kDead;
    ring_.remove(r.id);
  }
  if (flight.outer_done) return true;  // a loser leg failing is already moot

  FlightLeg& other = is_primary ? flight.hedge : flight.primary;
  if (other.live) return true;  // the twin may still win; judge when it lands

  if (fault == Fault::kRequest) {
    fail_outer(flight, error);
    return true;
  }
  // Replica fault or overload: bounded same-request failover.
  if (flight.failovers < options_.max_failover) {
    if (flight.deadline != Clock::time_point::max() && flight.deadline <= now) {
      fail_outer(flight, std::make_exception_ptr(DeadlineExceeded()));
      return true;
    }
    const RouteDecision next = dispatch(flight, leg, leg.replica, false);
    if (next.replica != nullptr) {
      ++flight.failovers;
      ++counters_.failovers;
      return true;
    }
  }
  fail_outer(flight, flight.first_error ? flight.first_error : error);
  return true;
}

void ReplicaSet::maybe_hedge(Flight& flight, Clock::time_point now) {
  if (options_.hedge_percentile <= 0.0) return;
  if (flight.hedge_attempted || flight.outer_done) return;
  if (!flight.primary.live || flight.hedge.live) return;
  const double waited_ms =
      std::chrono::duration<double, std::milli>(now - flight.primary.dispatched).count();
  if (waited_ms < hedge_threshold_ms()) return;
  flight.hedge_attempted = true;  // one hedge per request, win or lose
  const RouteDecision decision =
      dispatch(flight, flight.hedge, flight.primary.replica, false);
  if (decision.replica != nullptr) ++counters_.hedges;
}

void ReplicaSet::router_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (flights_.empty()) {
      if (stopping_) return;
      cv_.wait(lock, [this] { return stopping_ || !flights_.empty(); });
      continue;
    }
    cv_.wait_for(lock, options_.poll_interval);
    const auto now = Clock::now();
    bool resolved = false;
    for (auto it = flights_.begin(); it != flights_.end();) {
      Flight& flight = *it;
      resolved |= poll_leg(flight, flight.primary, true, now);
      resolved |= poll_leg(flight, flight.hedge, false, now);
      maybe_hedge(flight, now);
      if (flight.outer_done && !flight.primary.live && !flight.hedge.live) {
        it = flights_.erase(it);
      } else {
        ++it;
      }
    }
    if (resolved) drained_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Rollout.

RolloutReport ReplicaSet::rollout(const std::string& model_path) {
  return rollout(model_path, {});
}

RolloutReport ReplicaSet::rollout(const std::string& model_path,
                                  std::span<const std::string> shadow_sources) {
  RolloutReport report;
  std::vector<std::string> shadow(shadow_sources.begin(), shadow_sources.end());

  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    report.reason = "replica set is shutting down";
    return report;
  }
  ++counters_.rollouts;
  if (shadow.empty()) {
    shadow.assign(recent_sources_.begin(), recent_sources_.end());
  }

  // Canary: first healthy replica. Reference: the next healthy one, which
  // keeps serving the old generation while the canary is diffed against it.
  std::size_t canary_id = kNone;
  std::size_t reference_id = kNone;
  for (const auto& replica : replicas_) {
    if (replica->state != ReplicaState::kHealthy) continue;
    if (canary_id == kNone) {
      canary_id = replica->id;
    } else {
      reference_id = replica->id;
      break;
    }
  }
  if (canary_id == kNone) {
    report.reason = "no healthy replica to canary";
    return report;
  }
  report.canary = canary_id;

  // Undo log: (replica, pre-load snapshot) for every replica we load, so a
  // mid-rollout failure restores the old generation everywhere.
  std::vector<std::pair<std::size_t, std::string>> undo;

  // Take a replica out of rotation and wait for its in-flight legs to
  // resolve; new traffic already routes elsewhere. Lock held throughout
  // (the router resolves legs under the same lock and signals drained_).
  const auto drain = [&](std::size_t id) -> bool {
    Replica& r = *replicas_[id];
    r.state = ReplicaState::kUpdating;
    const auto deadline = Clock::now() + options_.rollout_drain;
    while (r.in_flight > 0) {
      if (drained_.wait_until(lock, deadline) == std::cv_status::timeout &&
          r.in_flight > 0 && Clock::now() >= deadline) {
        return false;
      }
    }
    return true;
  };

  // Load the new generation into one (drained, out-of-rotation) replica.
  // IO runs unlocked; serving elsewhere never stalls on it.
  const auto load_one = [&](std::size_t id) -> bool {
    Replica& r = *replicas_[id];
    lock.unlock();
    std::string snapshot = r.pipeline->snapshot_weights();
    bool injected = false;
    try {
      injected = failpoint::triggered("replica.rollout");
    } catch (const failpoint::FailpointError&) {
      injected = true;
    }
    const bool ok = !injected && r.pipeline->load_weights(model_path);
    lock.lock();
    if (ok) undo.emplace_back(id, std::move(snapshot));
    return ok;
  };

  // Restore every loaded replica from its snapshot, one at a time, each
  // drained out of rotation first (the restore must not race its forwards).
  const auto rollback_all = [&](std::string why) {
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      Replica& r = *replicas_[it->first];
      r.state = ReplicaState::kUpdating;
      const auto deadline = Clock::now() + options_.rollout_drain;
      while (r.in_flight > 0 && Clock::now() < deadline) {
        drained_.wait_until(lock, deadline);
      }
      lock.unlock();
      (void)r.pipeline->restore_weights(it->second);
      lock.lock();
      r.state = ReplicaState::kHealthy;
    }
    ++counters_.rollouts_rolled_back;
    report.rolled_back = true;
    report.reason = std::move(why);
    report.promoted = 0;
  };

  if (!drain(canary_id)) {
    replicas_[canary_id]->state = ReplicaState::kHealthy;
    report.reason = "canary drain timed out; nothing was loaded";
    return report;
  }
  if (!load_one(canary_id)) {
    // Staged load: the canary still holds (and resumes serving) the old
    // generation; its stamp bump only invalidated cached results.
    replicas_[canary_id]->state = ReplicaState::kHealthy;
    ++counters_.rollouts_rolled_back;
    report.rolled_back = true;
    report.reason = "canary checkpoint load failed";
    return report;
  }

  // Canary diff: new generation (canary, out of rotation) vs old generation
  // (reference, still serving) on shadow traffic. Any exception from the
  // new weights is a health regression and counts as a mismatch.
  bool regression = false;
  if (reference_id != kNone && !shadow.empty()) {
    Pipeline& fresh = *replicas_[canary_id]->pipeline;
    Pipeline& old = *replicas_[reference_id]->pipeline;
    lock.unlock();
    std::size_t diffed = 0;
    std::size_t mismatched = 0;
    for (const std::string& src : shadow) {
      ++diffed;
      try {
        if (!same_decisions(old.suggest(src), fresh.suggest(src))) ++mismatched;
      } catch (...) {
        ++mismatched;
        regression = true;
      }
    }
    lock.lock();
    report.diffed = diffed;
    report.mismatched = mismatched;
  }
  if (regression ||
      (report.diffed > 0 &&
       static_cast<double>(report.mismatched) >
           options_.canary_max_mismatch * static_cast<double>(report.diffed))) {
    rollback_all(regression ? "canary health regression on shadow traffic"
                            : "canary suggestion mismatch above threshold");
    return report;
  }

  // Canary accepted: it rejoins rotation on the new generation, and the
  // rest of the fleet follows one replica at a time.
  replicas_[canary_id]->state = ReplicaState::kHealthy;
  report.promoted = 1;
  for (const auto& replica : replicas_) {
    const std::size_t id = replica->id;
    if (id == canary_id) continue;
    Replica& r = *replicas_[id];
    if (r.state == ReplicaState::kDead || r.state == ReplicaState::kUpdating) continue;
    if (!drain(id)) {
      r.state = ReplicaState::kHealthy;
      rollback_all("promotion drain timed out at replica " + std::to_string(id));
      return report;
    }
    if (!load_one(id)) {
      r.state = ReplicaState::kHealthy;
      rollback_all("promotion checkpoint load failed at replica " + std::to_string(id));
      return report;
    }
    // Promotion wipes the breaker slate: the new generation earns its own
    // health record.
    r.state = ReplicaState::kHealthy;
    r.error_ewma = 0.0;
    r.latency_ewma_ms = 0.0;
    r.samples = 0;
    r.backoff = std::chrono::milliseconds(0);
    ++report.promoted;
  }
  ++counters_.rollouts_promoted;
  ++counters_.generation;
  report.ok = true;
  return report;
}

}  // namespace g2p
