// Replicated serving: N pipelines behind one submit surface.
//
// One SuggestServer (serve/server.h) is one replica — one cache, one pool,
// one crash domain. A ReplicaSet clones a prototype Pipeline N times (each
// clone is bitwise weight-identical but owns a fresh cache and pool, so
// replicas answer identically and fail independently) and routes submitted
// sources across them:
//
//  - Affinity routing: the route key is the normalized source hash
//    (support/hash.h — the serving cache's own key), placed on a consistent
//    hash ring with virtual nodes. Repeat traffic for a source lands on the
//    replica whose SuggestCache is already warm; adding or removing a
//    replica moves only the keys that ring segment owned.
//  - Health gating: each replica carries an error-rate EWMA and a latency
//    EWMA. Tripping the breaker quarantines the replica (routing skips it)
//    for a doubling backoff; after the backoff it stands in probation,
//    where a bounded number of live probe requests decide — K consecutive
//    successes reinstate it, any failure re-quarantines with a longer
//    backoff.
//  - Failover: a request whose replica fails it with a *replica-attributable*
//    fault (injected fault, abandoned batch, stopped server) is re-dispatched
//    to the next replica in ring order, at most `max_failover` times. Content
//    errors (a source that does not parse) and expired deadlines are
//    properties of the request and never fail over.
//  - Hedging (optional): a request still unanswered after the observed
//    latency percentile is duplicated onto a second replica; the first
//    result wins and the loser is cancelled at its server's next batch
//    boundary (SuggestServer::CancelToken).
//  - Work stealing: when the affinity replica's queue is `steal_depth`
//    deeper than the shallowest healthy replica's, admission routes there
//    instead — trading cache warmth for queue balance under skew.
//
// Zero-downtime rollout: `rollout(path)` loads a new checkpoint generation
// replica by replica. The first healthy replica becomes the canary: it is
// taken out of rotation, drained, snapshotted in memory, and loaded; its
// new-generation suggestions are then diffed against an old-generation
// replica on recent live traffic (or caller-provided shadow sources). A
// mismatch fraction above `canary_max_mismatch`, a load failure, or a
// health regression rolls the canary back from its snapshot — clients never
// see the bad generation, and no in-flight future fails, because routing
// always avoids the replica being updated. A clean canary promotes the
// remaining replicas one at a time the same way (any failure unwinds every
// replica already promoted). Pipeline::load_weights' stamp machinery keeps
// stale cached results unservable throughout.
//
// Failpoints (support/failpoint.h): `replica.route` makes a dispatch
// attempt behave as if the chosen replica were unreachable (health penalty
// + reroute); `replica.rollout` fails a per-replica rollout load (canary
// rollback / promotion unwind). docs/serving.md tells the full story.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "serve/server.h"

namespace g2p {

/// Consistent hash ring with virtual nodes. Each replica contributes
/// `vnodes` pseudo-random points; a key is owned by the first point at or
/// after it (wrapping). The property the replica layer leans on: adding a
/// replica moves keys only *to* it, removing one moves only the keys it
/// owned — every other key keeps its owner, so caches stay warm across
/// membership changes.
class ConsistentRing {
 public:
  ConsistentRing() = default;
  ConsistentRing(std::size_t replicas, std::size_t vnodes) : vnodes_(vnodes ? vnodes : 1) {
    for (std::size_t r = 0; r < replicas; ++r) add(r);
  }

  void add(std::size_t replica) {
    points_.reserve(points_.size() + vnodes_);
    for (std::size_t v = 0; v < vnodes_; ++v) {
      points_.emplace_back(point(replica, v), replica);
    }
    std::sort(points_.begin(), points_.end());
  }

  void remove(std::size_t replica) {
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [replica](const auto& p) { return p.second == replica; }),
                  points_.end());
  }

  bool empty() const { return points_.empty(); }

  std::size_t owner(std::uint64_t key) const {
    if (points_.empty()) return 0;
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               std::make_pair(key, std::size_t{0}));
    if (it == points_.end()) it = points_.begin();
    return it->second;
  }

  /// Distinct replicas in ring order starting at the key's owner — the
  /// failover/reroute order for that key.
  std::vector<std::size_t> preference(std::uint64_t key) const {
    std::vector<std::size_t> out;
    if (points_.empty()) return out;
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               std::make_pair(key, std::size_t{0}));
    if (it == points_.end()) it = points_.begin();
    const std::size_t start = static_cast<std::size_t>(it - points_.begin());
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const std::size_t r = points_[(start + i) % points_.size()].second;
      if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
    }
    return out;
  }

 private:
  /// splitmix64 finalizer — the same decision-stream mixer the failpoint
  /// layer uses; replica/vnode points spread uniformly over u64 space.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
  static std::uint64_t point(std::size_t replica, std::size_t vnode) {
    return mix(mix(static_cast<std::uint64_t>(replica) + 1) +
               static_cast<std::uint64_t>(vnode));
  }

  std::size_t vnodes_ = 64;
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;  // sorted
};

/// Health state of one replica, as routing sees it.
enum class ReplicaState : int {
  kHealthy = 0,      // in rotation
  kProbation = 1,    // quarantine backoff elapsed; limited live probes decide
  kQuarantined = 2,  // breaker tripped; routing skips until backoff elapses
  kUpdating = 3,     // out of rotation for a rollout load
  kDead = 4,         // killed/stopped; never routed again
};

inline const char* replica_state_name(ReplicaState s) {
  switch (s) {
    case ReplicaState::kHealthy: return "healthy";
    case ReplicaState::kProbation: return "probation";
    case ReplicaState::kQuarantined: return "quarantined";
    case ReplicaState::kUpdating: return "updating";
    case ReplicaState::kDead: return "dead";
  }
  return "unknown";
}

/// Point-in-time view of one replica.
struct ReplicaSnapshot {
  std::size_t id = 0;
  ReplicaState state = ReplicaState::kHealthy;
  std::uint64_t routed = 0;      // dispatches admitted to this replica
  std::uint64_t in_flight = 0;   // legs currently outstanding
  std::uint64_t faults = 0;      // replica-attributable failures observed
  std::uint64_t quarantines = 0;
  double error_ewma = 0.0;
  double latency_ewma_ms = 0.0;
  ServerStatsSnapshot server;    // the replica's own server counters
};

/// Point-in-time view of the set. Leg-level counters (hedges, failovers)
/// count dispatches, not requests; `submitted`/`completed`/`failed` count
/// client-visible outer futures.
struct ReplicaSetStatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t affinity_routed = 0;  // dispatched to the ring owner
  std::uint64_t stolen = 0;           // admission steals (queue imbalance)
  std::uint64_t rerouted = 0;         // owner skipped (unhealthy/unreachable)
  std::uint64_t failovers = 0;        // same-request re-dispatches after faults
  std::uint64_t route_faults = 0;     // replica.route injections + dispatch refusals
  std::uint64_t hedges = 0;           // duplicate legs dispatched
  std::uint64_t hedge_wins = 0;       // hedge leg answered first
  std::uint64_t hedge_cancelled = 0;  // loser legs that came back cancelled
  std::uint64_t quarantines = 0;
  std::uint64_t reinstated = 0;
  std::uint64_t probes = 0;
  std::uint64_t rollouts = 0;
  std::uint64_t rollouts_promoted = 0;
  std::uint64_t rollouts_rolled_back = 0;
  std::uint64_t generation = 1;  // checkpoint generation the fleet serves
  std::vector<ReplicaSnapshot> replicas;
};

/// Outcome of one `ReplicaSet::rollout` call.
struct RolloutReport {
  bool ok = false;           // every replica serves the new generation
  bool rolled_back = false;  // the old generation was restored everywhere
  std::string reason;        // human-readable cause when !ok
  std::size_t canary = 0;    // replica id that took the canary load
  std::size_t promoted = 0;  // replicas serving the new generation on return
  std::size_t diffed = 0;    // shadow sources compared old-vs-new
  std::size_t mismatched = 0;
  double mismatch_rate() const {
    return diffed == 0 ? 0.0
                       : static_cast<double>(mismatched) / static_cast<double>(diffed);
  }
};

class ReplicaSet {
 public:
  struct Options {
    /// Replica count. 0 resolves the G2P_REPLICAS env var (read once, at
    /// construction), falling back to 2. Clamped to at least 1.
    std::size_t replicas = 0;
    /// Per-replica server options. shed_at is clamped to <= 1.0 so inner
    /// submits refuse (typed, reroutable) instead of blocking the router.
    SuggestServer::Options server;
    /// Virtual nodes per replica on the consistent ring.
    std::size_t vnodes = 64;
    /// Work stealing: when the affinity replica's queue is this much deeper
    /// than the shallowest healthy replica's (and at least this deep),
    /// admission routes to the shallow one. 0 disables stealing.
    std::size_t steal_depth = 8;

    /// Circuit breaker. A replica whose failure-rate EWMA exceeds
    /// `breaker_error_rate` (after `breaker_min_samples` observations), or
    /// whose success-latency EWMA exceeds `breaker_latency` (> 0 enables
    /// the latency trip), is quarantined for `quarantine_backoff`, doubled
    /// on each re-trip up to `quarantine_backoff_cap`. After the backoff it
    /// enters probation: `probation_probes` consecutive live-probe
    /// successes reinstate it, any probe failure re-quarantines.
    double breaker_error_rate = 0.5;
    std::chrono::milliseconds breaker_latency{0};
    double health_alpha = 0.2;  // EWMA smoothing for both signals
    std::uint32_t breaker_min_samples = 8;
    std::chrono::milliseconds quarantine_backoff{250};
    std::chrono::milliseconds quarantine_backoff_cap{5000};
    int probation_probes = 3;

    /// Bounded same-request failover: how many times one request may be
    /// re-dispatched after replica-attributable faults.
    int max_failover = 2;
    /// Hedged requests: > 0 enables. A request still unanswered after this
    /// percentile of recently observed end-to-end latencies (never below
    /// `hedge_floor`) is duplicated onto a second replica; first result
    /// wins, the loser is cancelled at a batch boundary.
    double hedge_percentile = 0.0;
    std::chrono::milliseconds hedge_floor{10};

    /// Completion-poll cadence of the router thread.
    std::chrono::microseconds poll_interval{200};
    /// Rollout: max wait for a replica's in-flight legs to drain before the
    /// rollout aborts (nothing is loaded into a busy replica).
    std::chrono::milliseconds rollout_drain{5000};
    /// Canary gate: mismatch fraction (old-vs-new suggestion diff on shadow
    /// traffic) above which the canary rolls back.
    double canary_max_mismatch = 0.25;
    /// How many recent distinct live sources to retain as shadow traffic
    /// for canary diffs when the caller provides none.
    std::size_t shadow_capacity = 64;
  };

  /// Clones `prototype` into `Options::replicas` weight-identical replicas,
  /// each behind its own SuggestServer. The prototype itself is not
  /// enrolled and stays caller-owned (handy as a clean reference).
  ReplicaSet(const Pipeline& prototype, Options options);
  explicit ReplicaSet(const Pipeline& prototype) : ReplicaSet(prototype, Options{}) {}

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  /// Drains in-flight requests, shuts every replica down, joins.
  ~ReplicaSet();

  /// Submit one translation unit. Routing, health gating, failover, and
  /// hedging are transparent: the returned future completes with the
  /// suggestions or one typed error (serve/errors.h), never hangs. Throws
  /// ServerStopped after shutdown and Overloaded when no replica can accept
  /// the request at all.
  std::future<std::vector<LoopSuggestion>> submit(std::string source);
  std::future<std::vector<LoopSuggestion>> submit(std::string source,
                                                  std::chrono::milliseconds deadline);

  /// Stop accepting requests, drain in-flight work, shut replicas down.
  /// Idempotent.
  void shutdown();

  /// Zero-downtime checkpoint rollout (header comment has the protocol).
  /// With no shadow sources, recent live traffic recorded at admission is
  /// used for the canary diff; a cold set diffs nothing and promotes on
  /// load success alone.
  RolloutReport rollout(const std::string& model_path);
  RolloutReport rollout(const std::string& model_path,
                        std::span<const std::string> shadow_sources);

  /// Administrative overrides (chaos tooling, ops):
  /// Trip the breaker now — quarantine with the standard backoff/probation
  /// cycle.
  void quarantine(std::size_t replica);
  /// Remove the replica permanently and shut its server down (drains; its
  /// queued work completes). Routing never returns to it.
  void kill(std::size_t replica);

  ReplicaSetStatsSnapshot stats() const;
  std::size_t replica_count() const { return replica_ids_.size(); }
  /// Ring owner for a source — what affinity routing would pick when every
  /// replica is healthy (tests, bench).
  std::size_t owner_of(std::string_view source) const;
  const Pipeline& replica_pipeline(std::size_t replica) const;
  ReplicaState replica_state(std::size_t replica) const;

 private:
  using Clock = std::chrono::steady_clock;
  struct Replica;    // defined in replica_set.cpp
  struct FlightLeg;  // one dispatch of a flight onto one replica
  struct Flight;     // one outer request; up to two legs (primary + hedge)
  struct RouteDecision;

  std::future<std::vector<LoopSuggestion>> submit_impl(std::string source,
                                                       std::chrono::milliseconds deadline);
  void router_loop();
  /// All helpers below run with mutex_ held.
  static void refresh_state(Replica& r, Clock::time_point now);
  void requarantine(Replica& r, Clock::time_point now);
  void record_failure(Replica& r, Clock::time_point now);
  void record_success(Replica& r, double service_ms, bool probe, Clock::time_point now);
  void push_latency(double total_ms);
  double hedge_threshold_ms() const;
  RouteDecision dispatch(Flight& flight, FlightLeg& leg, std::size_t exclude,
                         bool allow_steal);
  void fail_outer(Flight& flight, const std::exception_ptr& error);
  bool poll_leg(Flight& flight, FlightLeg& leg, bool is_primary, Clock::time_point now);
  void maybe_hedge(Flight& flight, Clock::time_point now);

  Options options_;
  ConsistentRing ring_;
  std::vector<std::size_t> replica_ids_;  // stable 0..N-1 (kept for count)

  mutable std::mutex mutex_;
  std::condition_variable cv_;       // router wake: new flight / stop
  std::condition_variable drained_;  // rollout waits: legs resolved
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::list<Flight> flights_;
  bool stopping_ = false;
  std::once_flag joined_;

  // Shadow-traffic ring for canary diffs (guarded by mutex_).
  std::deque<std::string> recent_sources_;
  std::vector<std::uint64_t> recent_keys_;

  // Recent end-to-end success latencies (ms) for the hedge percentile.
  std::vector<float> latency_window_;
  std::size_t latency_next_ = 0;

  // Set-level counters (guarded by mutex_; snapshot() copies under lock).
  ReplicaSetStatsSnapshot counters_;

  std::thread router_;  // last member: joined before the rest tears down
};

}  // namespace g2p
