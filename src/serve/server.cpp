#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "support/failpoint.h"
#include "support/hash.h"

namespace g2p {

namespace {

std::uint64_t latency_us(std::chrono::steady_clock::time_point enqueued,
                         std::chrono::steady_clock::time_point now) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - enqueued).count());
}

/// The retry ladder only re-runs faults the fault came from the injection
/// layer (or anything else that models a passing condition rather than a
/// property of the request): a parse error is deterministic and retrying it
/// would just burn the batch budget.
bool is_transient(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const failpoint::FailpointError&) {
    return true;
  } catch (...) {
    return false;
  }
}

/// Attribute a slot failure to the resource governor's per-limit counters
/// when it is a ResourceExhausted (non-governor errors tally nothing).
void note_resource_exhausted(const std::exception_ptr& error, ServerStats& stats) {
  try {
    std::rethrow_exception(error);
  } catch (const ResourceExhausted& e) {
    stats.on_resource_exhausted(e.limit());
  } catch (...) {
  }
}

}  // namespace

/// One popped batch. Items are pointer-stable (unique_ptr) because each
/// carries an atomic completion flag raced by two threads: the serve worker
/// completing results and the scheduler-side watchdog/expiry paths failing
/// futures. Whoever wins the exchange owns the promise and the stats tally;
/// the loser's completion is a no-op.
struct SuggestServer::Batch {
  struct Item {
    Request req;
    std::atomic<bool> completed{false};
  };

  std::vector<std::unique_ptr<Item>> items;
  DegradeMode mode = DegradeMode::kNormal;
  /// Popped while the server was draining for shutdown: degraded-mode
  /// misses in this batch fail with ServerStopped, not Overloaded — the
  /// request is being dropped because the server is going away, not to
  /// protect it from load.
  bool stopping = false;

  static bool complete_value(Item& item, std::vector<LoopSuggestion> value,
                             ServerStats& stats,
                             void (ServerStats::*extra)() = nullptr) {
    if (item.completed.exchange(true, std::memory_order_acq_rel)) return false;
    // Count first, complete second: a client that sees its future ready
    // must also see the stats already include it. That covers `extra` too —
    // outcome-specific counters (shed, expired, retry_recovered, ...) land
    // before the promise, or a test reading stats right after .get()
    // observes the future resolved but the tally still in flight.
    stats.on_done(true, latency_us(item.req.enqueued, Clock::now()));
    if (extra) (stats.*extra)();
    item.req.promise.set_value(std::move(value));
    return true;
  }

  static bool complete_error(Item& item, const std::exception_ptr& error,
                             ServerStats& stats,
                             void (ServerStats::*extra)() = nullptr) {
    if (item.completed.exchange(true, std::memory_order_acq_rel)) return false;
    stats.on_done(false, latency_us(item.req.enqueued, Clock::now()));
    if (extra) (stats.*extra)();
    item.req.promise.set_exception(error);
    return true;
  }
};

/// Handoff channel between the scheduler and the serve worker. The worker
/// thread captures only shared_ptr state (this ctrl + the RunCtx), never
/// the server itself, so an abandoned worker that is still stuck inside a
/// batch stays memory-safe even after the server is destroyed.
struct SuggestServer::WorkerCtrl {
  struct Job {
    std::shared_ptr<Batch> batch;
    std::promise<void> done;
  };

  std::mutex m;
  std::condition_variable cv;
  std::shared_ptr<Job> job;
  bool stop = false;       // shutdown: exit once no job is pending
  bool abandoned = false;  // watchdog fired: exit as soon as possible
};

/// Everything batch execution needs, bundled so it can outlive the server
/// inside a detached worker: the pipeline (which keeps the thread pool
/// alive), the stats sink, and the retry policy.
struct SuggestServer::RunCtx {
  std::shared_ptr<Pipeline> pipeline;
  std::shared_ptr<ServerStats> stats;
  int max_retries = 0;
  std::chrono::milliseconds retry_backoff{1};

  void run(Batch& batch) const;
};

/// Serve one batch: dedup identical sources, run the batched pipeline call,
/// fan results out, and retry transient faults (whole-batch or per-slot)
/// with doubled backoff — never past a request's deadline, never more than
/// max_retries times. Every item's promise is completed exactly once by the
/// time this returns (unless the watchdog got there first, in which case
/// the guarded completes are no-ops).
void SuggestServer::RunCtx::run(Batch& batch) const {
  std::vector<Batch::Item*> active;
  active.reserve(batch.items.size());
  for (auto& item : batch.items) {
    if (!item->completed.load(std::memory_order_acquire)) active.push_back(item.get());
  }
  if (active.empty()) return;
  stats->on_batch(active.size());

  auto backoff = retry_backoff.count() > 0 ? retry_backoff : std::chrono::milliseconds(1);
  int attempt = 0;
  bool retried = false;

  // Sleep out one backoff, dropping items that cannot make it: an item
  // whose deadline passes mid-backoff is completed with its fault now
  // (retrying it would serve a corpse). Returns the items still worth
  // retrying.
  const auto backoff_survivors = [&](std::vector<std::pair<Batch::Item*, std::exception_ptr>>&
                                         faulted) {
    const auto wake = Clock::now() + backoff;
    std::vector<Batch::Item*> next;
    next.reserve(faulted.size());
    for (auto& [item, error] : faulted) {
      if (item->req.deadline <= wake) {
        Batch::complete_error(*item, error, *stats);
      } else {
        next.push_back(item);
      }
    }
    if (!next.empty()) {
      stats->on_retry();
      retried = true;
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    return next;
  };

  while (!active.empty()) {
    // Per-attempt deadline/cancellation sweep: the batch may have waited in
    // the handoff, the previous attempt's backoff may have consumed a
    // budget, or a hedging submitter may have cancelled its duplicate. This
    // is the "batch boundary" where cancellation takes effect — a cancelled
    // request never occupies a slot of the batched forward below.
    {
      const auto now = Clock::now();
      std::exception_ptr expired_error;
      std::exception_ptr cancelled_error;
      std::vector<Batch::Item*> live;
      live.reserve(active.size());
      for (Batch::Item* item : active) {
        if (item->req.cancel && item->req.cancel->load(std::memory_order_acquire)) {
          if (!cancelled_error) cancelled_error = std::make_exception_ptr(RequestCancelled());
          Batch::complete_error(*item, cancelled_error, *stats, &ServerStats::on_cancelled);
        } else if (item->req.deadline <= now) {
          if (!expired_error) expired_error = std::make_exception_ptr(DeadlineExceeded());
          Batch::complete_error(*item, expired_error, *stats, &ServerStats::on_expired);
        } else {
          live.push_back(item);
        }
      }
      active = std::move(live);
      if (active.empty()) return;
    }

    // Cache-aware scheduling: collapse identical in-flight sources (keyed
    // by the serving cache's normalized content hash) onto one slot of the
    // batched call — the answer is computed once and fanned out to every
    // matching future below. `slot_of[i]` maps active item i to its slot.
    std::vector<std::string_view> views;
    views.reserve(active.size());
    std::vector<std::size_t> slot_of(active.size());
    if (active.size() == 1) {
      // Nothing to collapse — skip the hash pass (the pipeline's cache
      // probe hashes the source anyway).
      views.emplace_back(active.front()->req.source);
      slot_of[0] = 0;
    } else {
      std::unordered_map<Hash128, std::size_t, Hash128Hasher> slot_by_key;
      slot_by_key.reserve(active.size());
      for (std::size_t i = 0; i < active.size(); ++i) {
        const auto [it, fresh] =
            slot_by_key.emplace(hash_source(active[i]->req.source), views.size());
        slot_of[i] = it->second;
        if (fresh) views.emplace_back(active[i]->req.source);
      }
      if (attempt == 0 && views.size() < active.size()) {
        stats->on_dedup(active.size() - views.size());
      }
    }

    std::vector<Pipeline::SourceResult> results;
    std::exception_ptr batch_error;
    try {
      results = pipeline->suggest_batch_results(views);
    } catch (...) {
      // Whole-batch failure (resource exhaustion, injected fault — not a
      // per-source parse error, those come back in their own slots).
      batch_error = std::current_exception();
    }

    if (batch_error) {
      if (attempt < max_retries && is_transient(batch_error)) {
        std::vector<std::pair<Batch::Item*, std::exception_ptr>> faulted;
        faulted.reserve(active.size());
        for (Batch::Item* item : active) faulted.emplace_back(item, batch_error);
        active = backoff_survivors(faulted);
        ++attempt;
        continue;
      }
      for (Batch::Item* item : active) Batch::complete_error(*item, batch_error, *stats);
      return;
    }

    // Per-verdict serving counters, one tally per unique slot (duplicates
    // collapsed above receive the same suggestions; counting once keeps the
    // histogram a property of the content served, not of request fan-in).
    for (const Pipeline::SourceResult& result : results) {
      if (!result.ok()) continue;
      for (const LoopSuggestion& s : result.suggestions) stats->on_verdict(s.verdict);
    }

    // Fan each unique slot's outcome back out: duplicates get copies, the
    // slot's last taker gets the moved original. Identical bytes fail
    // identically, so duplicates of a failed slot share its fate —
    // including being retried together when the fault is transient.
    std::vector<std::pair<Batch::Item*, std::exception_ptr>> faulted;
    std::vector<std::size_t> takers_left(views.size(), 0);
    for (const std::size_t slot : slot_of) ++takers_left[slot];
    const bool can_retry = attempt < max_retries;
    for (std::size_t i = 0; i < active.size(); ++i) {
      Pipeline::SourceResult& result = results[slot_of[i]];
      if (result.ok()) {
        const bool last_taker = --takers_left[slot_of[i]] == 0;
        std::vector<LoopSuggestion> value =
            last_taker ? std::move(result.suggestions) : result.suggestions;
        Batch::complete_value(*active[i], std::move(value), *stats,
                              retried ? &ServerStats::on_retry_recovered : nullptr);
      } else if (can_retry && is_transient(result.error)) {
        faulted.emplace_back(active[i], result.error);
      } else {
        // Terminal slot failure. Governor rejections land here by design:
        // ResourceExhausted is not transient, so it is never retried.
        note_resource_exhausted(result.error, *stats);
        Batch::complete_error(*active[i], result.error, *stats);
      }
    }
    if (faulted.empty()) return;
    active = backoff_survivors(faulted);
    ++attempt;
  }
}

SuggestServer::SuggestServer(std::shared_ptr<Pipeline> pipeline, Options options)
    : pipeline_(std::move(pipeline)), options_(options) {
  if (!pipeline_) throw std::invalid_argument("SuggestServer: null pipeline");
  if (options_.max_batch_loops == 0) options_.max_batch_loops = 1;
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
  if (options_.max_retries < 0) options_.max_retries = 0;
  pool_ = std::make_shared<ThreadPool>(
      options_.pool_threads != 0 ? options_.pool_threads : ThreadPool::default_thread_count());
  pipeline_->set_thread_pool(pool_);
  stats_ = std::make_shared<ServerStats>();
  run_ctx_ = std::make_shared<RunCtx>(
      RunCtx{pipeline_, stats_, options_.max_retries, options_.retry_backoff});
  // Admission shed threshold: queue depth at or beyond it rejects new
  // submissions with Overloaded instead of blocking. shed_at > 1.0 keeps
  // the classic blocking backpressure (the threshold is unreachable).
  if (options_.shed_at > 1.0) {
    shed_depth_ = options_.max_queue_depth + 1;
  } else {
    shed_depth_ = static_cast<std::size_t>(
        std::ceil(options_.shed_at * static_cast<double>(options_.max_queue_depth)));
  }
  spawn_serve_worker();
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

SuggestServer::~SuggestServer() { shutdown(); }

std::uint64_t SuggestServer::queue_depth() const { return stats_->depth(); }

ServerStatsSnapshot SuggestServer::stats() const {
  ServerStatsSnapshot snapshot = stats_->snapshot();
  snapshot.precision = precision_name(pipeline_->active_precision());
  snapshot.verify = pipeline_->verify_active();
  const SuggestCache::Stats cache = pipeline_->cache_stats();
  snapshot.cache_full_hits = cache.full_hits;
  snapshot.cache_frontend_hits = cache.frontend_hits;
  snapshot.cache_misses = cache.misses;
  snapshot.cache_frontend_saved_us = cache.frontend_saved_ns / 1000;
  return snapshot;
}

std::future<std::vector<LoopSuggestion>> SuggestServer::enqueue_locked(
    std::string source, Clock::time_point deadline, CancelToken cancel) {
  Request req;
  req.source = std::move(source);
  req.enqueued = Clock::now();
  req.deadline = deadline;
  req.cancel = std::move(cancel);
  auto future = req.promise.get_future();
  queue_.push_back(std::move(req));
  stats_->on_submit();
  stats_->on_queue_depth(queue_.size());
  return future;
}

std::future<std::vector<LoopSuggestion>> SuggestServer::submit(std::string source) {
  return submit_impl(std::move(source), options_.default_deadline, nullptr);
}

std::future<std::vector<LoopSuggestion>> SuggestServer::submit(
    std::string source, std::chrono::milliseconds deadline) {
  return submit_impl(std::move(source), deadline, nullptr);
}

std::future<std::vector<LoopSuggestion>> SuggestServer::submit(
    std::string source, std::chrono::milliseconds deadline, CancelToken cancel) {
  return submit_impl(std::move(source), deadline, std::move(cancel));
}

void SuggestServer::admission_check(const std::string& source) const {
  const std::uint64_t cap = pipeline_->active_budget().max_source_bytes;
  if (cap != 0 && source.size() > cap) {
    stats_->on_resource_exhausted(ResourceLimit::kSourceBytes);
    throw ResourceExhausted(ResourceLimit::kSourceBytes, source.size(), cap);
  }
}

std::future<std::vector<LoopSuggestion>> SuggestServer::submit_impl(
    std::string source, std::chrono::milliseconds deadline, CancelToken cancel) {
  admission_check(source);
  const auto absolute =
      deadline.count() > 0 ? Clock::now() + deadline : Clock::time_point::max();
  std::unique_lock<std::mutex> lock(mutex_);
  if (!stopping_ && queue_.size() >= shed_depth_) {
    // Top rung of the ladder: admission control. Shedding here (instead of
    // blocking until the queue drains) keeps producers responsive and the
    // failure typed; callers that want the classic blocking backpressure
    // disable the rung with shed_at > 1.0.
    stats_->on_shed();
    throw Overloaded("SuggestServer: queue beyond shed threshold");
  }
  space_cv_.wait(lock,
                 [this] { return stopping_ || queue_.size() < options_.max_queue_depth; });
  if (stopping_) throw ServerStopped("SuggestServer: submit after shutdown");
  auto future = enqueue_locked(std::move(source), absolute, std::move(cancel));
  lock.unlock();
  queue_cv_.notify_one();
  return future;
}

std::optional<std::future<std::vector<LoopSuggestion>>> SuggestServer::try_submit(
    std::string source) {
  return try_submit_impl(std::move(source), options_.default_deadline);
}

std::optional<std::future<std::vector<LoopSuggestion>>> SuggestServer::try_submit(
    std::string source, std::chrono::milliseconds deadline) {
  return try_submit_impl(std::move(source), deadline);
}

std::optional<std::future<std::vector<LoopSuggestion>>> SuggestServer::try_submit_impl(
    std::string source, std::chrono::milliseconds deadline) {
  // A governor rejection must stay distinguishable from "no capacity"
  // (nullopt): the caller gets a ready future carrying the typed error.
  try {
    admission_check(source);
  } catch (const ResourceExhausted&) {
    std::promise<std::vector<LoopSuggestion>> rejected;
    rejected.set_exception(std::current_exception());
    return rejected.get_future();
  }
  const auto absolute =
      deadline.count() > 0 ? Clock::now() + deadline : Clock::time_point::max();
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ || queue_.size() >= options_.max_queue_depth) return std::nullopt;
  if (queue_.size() >= shed_depth_) {
    stats_->on_shed();
    return std::nullopt;
  }
  auto future = enqueue_locked(std::move(source), absolute, nullptr);
  lock.unlock();
  queue_cv_.notify_one();
  return future;
}

void SuggestServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  std::call_once(joined_, [this] {
    scheduler_.join();
    {
      std::lock_guard<std::mutex> lock(worker_ctrl_->m);
      worker_ctrl_->stop = true;
    }
    worker_ctrl_->cv.notify_all();
    if (serve_worker_.joinable()) serve_worker_.join();
  });
}

DegradeMode SuggestServer::mode_for(std::size_t depth) const {
  const double f =
      static_cast<double>(depth) / static_cast<double>(options_.max_queue_depth);
  DegradeMode mode = DegradeMode::kNormal;
  if (options_.degrade_latency.count() > 0 &&
      ewma_batch_ms_ > static_cast<double>(options_.degrade_latency.count())) {
    mode = DegradeMode::kShrinkWindow;
  }
  if (f >= options_.shrink_window_at) mode = DegradeMode::kShrinkWindow;
  if (f >= options_.cache_only_at) mode = DegradeMode::kCacheOnly;
  if (f >= options_.shed_at) mode = DegradeMode::kShed;
  return mode;
}

void SuggestServer::note_mode(DegradeMode mode) {
  if (mode == mode_) return;
  mode_ = mode;
  stats_->on_mode(mode);
}

std::shared_ptr<SuggestServer::Batch> SuggestServer::collect_batch() {
  // Adaptive window: arrivals pausing for this long close the batch early
  // instead of sleeping out the rest of max_delay.
  const auto grace = options_.idle_grace.count() >= 0
                         ? options_.idle_grace
                         : std::chrono::duration_cast<std::chrono::microseconds>(
                               options_.max_delay / 4);
  std::unique_lock<std::mutex> lock(mutex_);
  queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
  if (queue_.empty()) return nullptr;  // stopping and fully drained

  note_mode(mode_for(queue_.size()));
  if (mode_ == DegradeMode::kNormal) {
    // Micro-batch window: hold the batch open until it fills, the oldest
    // request has waited out max_delay, or the arrival stream pauses for
    // idle_grace (no point holding an open window against idle traffic).
    // Shutdown closes the window early so draining never sleeps.
    const auto deadline = queue_.front().enqueued + options_.max_delay;
    std::size_t seen = queue_.size();
    auto last_arrival = Clock::now();
    while (!stopping_ && queue_.size() < options_.max_batch_loops) {
      const auto wake = std::min(deadline, Clock::time_point(last_arrival + grace));
      const bool timed_out =
          queue_cv_.wait_until(lock, wake) == std::cv_status::timeout;
      if (queue_.size() > seen) {
        seen = queue_.size();
        last_arrival = Clock::now();
        // Arrivals may have pushed the queue over a ladder threshold —
        // stop holding the window open the moment pressure appears.
        if (mode_for(queue_.size()) != DegradeMode::kNormal) break;
        continue;
      }
      // No growth: a hard-deadline or idle-grace expiry closes the
      // window; notifies without arrivals (spurious, shutdown) loop.
      if (timed_out) break;
    }
    // The window wait may have changed the picture; the rung the batch is
    // served under is the one that holds *now*.
    note_mode(mode_for(queue_.size()));
  }

  const std::size_t take = std::min(queue_.size(), options_.max_batch_loops);
  auto batch = std::make_shared<Batch>();
  batch->mode = mode_;
  batch->stopping = stopping_;
  batch->items.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    auto item = std::make_unique<Batch::Item>();
    item->req = std::move(queue_.front());
    queue_.pop_front();
    batch->items.push_back(std::move(item));
  }
  stats_->on_queue_depth(queue_.size());
  return batch;
}

void SuggestServer::expel_expired(Batch& batch) {
  const auto now = Clock::now();
  std::exception_ptr expired_error;
  std::exception_ptr cancelled_error;
  for (auto& item : batch.items) {
    if (item->completed.load(std::memory_order_relaxed)) continue;
    if (item->req.cancel && item->req.cancel->load(std::memory_order_acquire)) {
      if (!cancelled_error) cancelled_error = std::make_exception_ptr(RequestCancelled());
      Batch::complete_error(*item, cancelled_error, *stats_, &ServerStats::on_cancelled);
      continue;
    }
    if (item->req.deadline > now) continue;
    if (!expired_error) expired_error = std::make_exception_ptr(DeadlineExceeded());
    Batch::complete_error(*item, expired_error, *stats_, &ServerStats::on_expired);
  }
}

void SuggestServer::serve_degraded(Batch& batch) {
  // Shutdown drain: a degraded server going away is not shedding for load
  // protection — misses complete typed with ServerStopped (a client that
  // sees it re-resolves to another replica) and are counted stopped, not
  // shed. Outside shutdown the classic Overloaded/shed contract holds.
  const auto unserved =
      batch.stopping
          ? std::make_exception_ptr(
                ServerStopped("SuggestServer: stopped while degraded; request not served"))
          : std::make_exception_ptr(Overloaded());
  for (auto& item : batch.items) {
    if (item->completed.load(std::memory_order_relaxed)) continue;
    if (batch.mode == DegradeMode::kCacheOnly) {
      // Full-result cache probe, no forward: hits cost microseconds and
      // drain the queue; misses are shed rather than queued behind a
      // saturated model.
      if (auto hit = pipeline_->try_cached(item->req.source)) {
        Batch::complete_value(*item, std::move(*hit), *stats_, &ServerStats::on_cache_only);
        continue;
      }
    }
    Batch::complete_error(*item, unserved, *stats_,
                          batch.stopping ? &ServerStats::on_stopped_unserved
                                         : &ServerStats::on_shed);
  }
}

void SuggestServer::spawn_serve_worker() {
  worker_ctrl_ = std::make_shared<WorkerCtrl>();
  serve_worker_ = std::thread([ctrl = worker_ctrl_, ctx = run_ctx_] {
    for (;;) {
      std::shared_ptr<WorkerCtrl::Job> job;
      {
        std::unique_lock<std::mutex> lock(ctrl->m);
        ctrl->cv.wait(lock,
                      [&] { return ctrl->stop || ctrl->abandoned || ctrl->job != nullptr; });
        if (ctrl->abandoned) return;  // watchdog replaced us mid-batch
        if (!ctrl->job) return;       // stop, nothing pending
        job = std::move(ctrl->job);
      }
      ctx->run(*job->batch);
      // The scheduler may have stopped waiting (watchdog): set_value on a
      // promise whose future was dropped is still well-defined.
      job->done.set_value();
    }
  });
}

bool SuggestServer::dispatch_and_wait(const std::shared_ptr<Batch>& batch) {
  auto job = std::make_shared<WorkerCtrl::Job>();
  job->batch = batch;
  std::future<void> done = job->done.get_future();
  {
    std::lock_guard<std::mutex> lock(worker_ctrl_->m);
    worker_ctrl_->job = job;
  }
  worker_ctrl_->cv.notify_one();

  if (options_.batch_budget.count() <= 0) {
    done.wait();
    return true;
  }
  if (done.wait_for(options_.batch_budget) == std::future_status::ready) return true;

  // Watchdog expiry: the batch is stuck (or pathologically slow). Fail its
  // remaining futures so clients never wedge, abandon the worker — it only
  // touches shared_ptr state, so it stays memory-safe even if it outlives
  // the server — and hand future batches to a fresh one.
  {
    std::lock_guard<std::mutex> lock(worker_ctrl_->m);
    worker_ctrl_->abandoned = true;
    worker_ctrl_->job.reset();  // not yet picked up: never run it post-abandon
  }
  worker_ctrl_->cv.notify_all();
  serve_worker_.detach();
  spawn_serve_worker();

  // Batch-level tally before any future resolves, for the same
  // stats-then-promise ordering complete_error gives per-item counters.
  stats_->on_watchdog();
  const auto error = std::make_exception_ptr(BatchAbandoned());
  for (auto& item : batch->items) Batch::complete_error(*item, error, *stats_);
  return false;
}

void SuggestServer::scheduler_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    try {
      batch = collect_batch();
      if (!batch) break;
      space_cv_.notify_all();  // backpressure: freed queue slots

      // Failpoint: a fault between batch assembly and dispatch. The
      // `error`/`throw` actions both surface as an exception here, which
      // the top-level catch below converts into per-future failures.
      if (failpoint::triggered("scheduler.batch")) {
        throw failpoint::FailpointError("scheduler.batch");
      }

      expel_expired(*batch);
      if (batch->mode == DegradeMode::kCacheOnly || batch->mode == DegradeMode::kShed) {
        serve_degraded(*batch);
      } else {
        const auto start = Clock::now();
        dispatch_and_wait(batch);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start).count();
        ewma_batch_ms_ = ewma_batch_ms_ == 0.0 ? ms : 0.7 * ewma_batch_ms_ + 0.3 * ms;
      }
    } catch (...) {
      // Top-level catch: nothing escaping one batch may kill the scheduler
      // (an escaped exception would std::terminate the process and strand
      // every queued future). Fail this batch's futures, keep serving.
      stats_->on_scheduler_fault();
      if (batch) {
        const auto error = std::current_exception();
        for (auto& item : batch->items) Batch::complete_error(*item, error, *stats_);
      }
    }
  }
}

}  // namespace g2p
