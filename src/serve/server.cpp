#include "serve/server.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "support/hash.h"

namespace g2p {

SuggestServer::SuggestServer(std::shared_ptr<Pipeline> pipeline, Options options)
    : pipeline_(std::move(pipeline)), options_(options) {
  if (!pipeline_) throw std::invalid_argument("SuggestServer: null pipeline");
  if (options_.max_batch_loops == 0) options_.max_batch_loops = 1;
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
  pool_ = std::make_shared<ThreadPool>(
      options_.pool_threads != 0 ? options_.pool_threads : ThreadPool::default_thread_count());
  pipeline_->set_thread_pool(pool_);
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

SuggestServer::~SuggestServer() { shutdown(); }

ServerStatsSnapshot SuggestServer::stats() const {
  ServerStatsSnapshot snapshot = stats_.snapshot();
  snapshot.precision = precision_name(pipeline_->active_precision());
  snapshot.verify = pipeline_->verify_active();
  const SuggestCache::Stats cache = pipeline_->cache_stats();
  snapshot.cache_full_hits = cache.full_hits;
  snapshot.cache_frontend_hits = cache.frontend_hits;
  snapshot.cache_misses = cache.misses;
  snapshot.cache_frontend_saved_us = cache.frontend_saved_ns / 1000;
  return snapshot;
}

std::future<std::vector<LoopSuggestion>> SuggestServer::enqueue_locked(std::string source) {
  Request req;
  req.source = std::move(source);
  req.enqueued = Clock::now();
  auto future = req.promise.get_future();
  queue_.push_back(std::move(req));
  stats_.on_submit();
  stats_.on_queue_depth(queue_.size());
  return future;
}

std::future<std::vector<LoopSuggestion>> SuggestServer::submit(std::string source) {
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock,
                 [this] { return stopping_ || queue_.size() < options_.max_queue_depth; });
  if (stopping_) throw std::runtime_error("SuggestServer: submit after shutdown");
  auto future = enqueue_locked(std::move(source));
  lock.unlock();
  queue_cv_.notify_one();
  return future;
}

std::optional<std::future<std::vector<LoopSuggestion>>> SuggestServer::try_submit(
    std::string source) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ || queue_.size() >= options_.max_queue_depth) return std::nullopt;
  auto future = enqueue_locked(std::move(source));
  lock.unlock();
  queue_cv_.notify_one();
  return future;
}

void SuggestServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  std::call_once(joined_, [this] { scheduler_.join(); });
}

void SuggestServer::scheduler_loop() {
  // Adaptive window: arrivals pausing for this long close the batch early
  // instead of sleeping out the rest of max_delay.
  const auto grace = options_.idle_grace.count() >= 0
                         ? options_.idle_grace
                         : std::chrono::duration_cast<std::chrono::microseconds>(
                               options_.max_delay / 4);
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping and fully drained

      // Micro-batch window: hold the batch open until it fills, the oldest
      // request has waited out max_delay, or the arrival stream pauses for
      // idle_grace (no point holding an open window against idle traffic).
      // Shutdown closes the window early so draining never sleeps.
      const auto deadline = queue_.front().enqueued + options_.max_delay;
      std::size_t seen = queue_.size();
      auto last_arrival = Clock::now();
      while (!stopping_ && queue_.size() < options_.max_batch_loops) {
        const auto wake = std::min(deadline, Clock::time_point(last_arrival + grace));
        const bool timed_out =
            queue_cv_.wait_until(lock, wake) == std::cv_status::timeout;
        if (queue_.size() > seen) {
          seen = queue_.size();
          last_arrival = Clock::now();
          continue;
        }
        // No growth: a hard-deadline or idle-grace expiry closes the
        // window; notifies without arrivals (spurious, shutdown) loop.
        if (timed_out) break;
      }

      const std::size_t take = std::min(queue_.size(), options_.max_batch_loops);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.on_queue_depth(queue_.size());
    }
    space_cv_.notify_all();  // backpressure: freed queue slots
    serve_batch(batch);
  }
}

void SuggestServer::serve_batch(std::vector<Request>& batch) {
  stats_.on_batch(batch.size());

  // Cache-aware scheduling: collapse identical in-flight sources (keyed by
  // the serving cache's normalized content hash) onto one slot before the
  // batch reaches the pipeline — the answer is computed once and fanned out
  // to every matching future below. `slot_of[i]` maps request i to its
  // unique slot.
  std::vector<std::string_view> views;
  views.reserve(batch.size());
  std::vector<std::size_t> slot_of(batch.size());
  if (batch.size() == 1) {
    // Nothing to collapse — skip the hash pass (the pipeline's cache probe
    // hashes the source anyway).
    views.emplace_back(batch.front().source);
    slot_of[0] = 0;
  } else {
    std::unordered_map<Hash128, std::size_t, Hash128Hasher> slot_by_key;
    slot_by_key.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto [it, fresh] =
          slot_by_key.emplace(hash_source(batch[i].source), views.size());
      slot_of[i] = it->second;
      if (fresh) views.emplace_back(batch[i].source);
    }
    if (views.size() < batch.size()) {
      stats_.on_dedup(batch.size() - views.size());
    }
  }

  const auto latency_us = [](Clock::time_point enqueued, Clock::time_point now) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - enqueued).count());
  };

  std::vector<Pipeline::SourceResult> results;
  try {
    results = pipeline_->suggest_batch_results(views);
  } catch (...) {
    // Whole-batch failure (resource exhaustion, not a per-source parse
    // error): every request in the batch observes the exception.
    const auto error = std::current_exception();
    const auto now = Clock::now();
    for (auto& r : batch) {
      // Count first, complete second: a client that sees its future ready
      // must also see the stats already include it.
      stats_.on_done(false, latency_us(r.enqueued, now));
      r.promise.set_exception(error);
    }
    return;
  }

  // Per-verdict serving counters, one tally per unique slot (duplicates
  // collapsed above receive the same suggestions, counting them once keeps
  // the histogram a property of the content served, not of request fan-in).
  for (const Pipeline::SourceResult& result : results) {
    if (!result.ok()) continue;
    for (const LoopSuggestion& s : result.suggestions) stats_.on_verdict(s.verdict);
  }

  // Fan each unique slot's outcome back out: duplicates get copies, the
  // slot's last taker gets the moved original. Identical bytes fail
  // identically, so duplicates of a failed slot share its exception.
  std::vector<std::size_t> takers_left(views.size(), 0);
  for (const std::size_t slot : slot_of) ++takers_left[slot];
  const auto now = Clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pipeline::SourceResult& result = results[slot_of[i]];
    stats_.on_done(result.ok(), latency_us(batch[i].enqueued, now));
    if (result.ok()) {
      if (--takers_left[slot_of[i]] == 0) {
        batch[i].promise.set_value(std::move(result.suggestions));
      } else {
        batch[i].promise.set_value(result.suggestions);
      }
    } else {
      batch[i].promise.set_exception(result.error);
    }
  }
}

}  // namespace g2p
