#include "serve/server.h"

#include <stdexcept>
#include <utility>

namespace g2p {

SuggestServer::SuggestServer(std::shared_ptr<Pipeline> pipeline, Options options)
    : pipeline_(std::move(pipeline)), options_(options) {
  if (!pipeline_) throw std::invalid_argument("SuggestServer: null pipeline");
  if (options_.max_batch_loops == 0) options_.max_batch_loops = 1;
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
  pool_ = std::make_shared<ThreadPool>(
      options_.pool_threads != 0 ? options_.pool_threads : ThreadPool::default_thread_count());
  pipeline_->set_thread_pool(pool_);
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

SuggestServer::~SuggestServer() { shutdown(); }

ServerStatsSnapshot SuggestServer::stats() const {
  ServerStatsSnapshot snapshot = stats_.snapshot();
  const SuggestCache::Stats cache = pipeline_->cache_stats();
  snapshot.cache_full_hits = cache.full_hits;
  snapshot.cache_frontend_hits = cache.frontend_hits;
  snapshot.cache_misses = cache.misses;
  snapshot.cache_frontend_saved_us = cache.frontend_saved_ns / 1000;
  return snapshot;
}

std::future<std::vector<LoopSuggestion>> SuggestServer::enqueue_locked(std::string source) {
  Request req;
  req.source = std::move(source);
  req.enqueued = Clock::now();
  auto future = req.promise.get_future();
  queue_.push_back(std::move(req));
  stats_.on_submit();
  stats_.on_queue_depth(queue_.size());
  return future;
}

std::future<std::vector<LoopSuggestion>> SuggestServer::submit(std::string source) {
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock,
                 [this] { return stopping_ || queue_.size() < options_.max_queue_depth; });
  if (stopping_) throw std::runtime_error("SuggestServer: submit after shutdown");
  auto future = enqueue_locked(std::move(source));
  lock.unlock();
  queue_cv_.notify_one();
  return future;
}

std::optional<std::future<std::vector<LoopSuggestion>>> SuggestServer::try_submit(
    std::string source) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ || queue_.size() >= options_.max_queue_depth) return std::nullopt;
  auto future = enqueue_locked(std::move(source));
  lock.unlock();
  queue_cv_.notify_one();
  return future;
}

void SuggestServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  std::call_once(joined_, [this] { scheduler_.join(); });
}

void SuggestServer::scheduler_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping and fully drained

      // Micro-batch window: hold the batch open until it fills or the
      // oldest request has waited out max_delay. Shutdown closes the window
      // early so draining never sleeps.
      const auto deadline = queue_.front().enqueued + options_.max_delay;
      while (!stopping_ && queue_.size() < options_.max_batch_loops) {
        if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }

      const std::size_t take = std::min(queue_.size(), options_.max_batch_loops);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.on_queue_depth(queue_.size());
    }
    space_cv_.notify_all();  // backpressure: freed queue slots
    serve_batch(batch);
  }
}

void SuggestServer::serve_batch(std::vector<Request>& batch) {
  stats_.on_batch(batch.size());
  std::vector<std::string_view> views;
  views.reserve(batch.size());
  for (const auto& r : batch) views.emplace_back(r.source);

  const auto latency_us = [](Clock::time_point enqueued, Clock::time_point now) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - enqueued).count());
  };

  std::vector<Pipeline::SourceResult> results;
  try {
    results = pipeline_->suggest_batch_results(views);
  } catch (...) {
    // Whole-batch failure (resource exhaustion, not a per-source parse
    // error): every request in the batch observes the exception.
    const auto error = std::current_exception();
    const auto now = Clock::now();
    for (auto& r : batch) {
      // Count first, complete second: a client that sees its future ready
      // must also see the stats already include it.
      stats_.on_done(false, latency_us(r.enqueued, now));
      r.promise.set_exception(error);
    }
    return;
  }

  const auto now = Clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    stats_.on_done(results[i].ok(), latency_us(batch[i].enqueued, now));
    if (results[i].ok()) {
      batch[i].promise.set_value(std::move(results[i].suggestions));
    } else {
      batch[i].promise.set_exception(results[i].error);
    }
  }
}

}  // namespace g2p
