// Asynchronous micro-batching front end over the batched suggestion engine.
//
// PR 1 made one synchronous call fast (`Pipeline::suggest_batch`); this
// turns it into a server loop. Callers `submit` C sources and get a
// `std::future` per request; a scheduler thread collects queued requests
// until `max_batch_loops` of them are waiting or the oldest has waited
// `max_delay` (whichever comes first), merges them into one
// `suggest_batch_results` call, and completes every future — a request that
// fails to parse completes *its* future exceptionally without poisoning its
// batch-mates. Under light load a request costs one batch of 1 after at
// most `max_delay`; under heavy load batches fill instantly and the model
// forward is amortized across the whole batch.
//
// Backpressure: the queue is bounded by `max_queue_depth`. `submit` blocks
// until space frees up (so producers are throttled to the service rate);
// `try_submit` refuses instead, for callers that would rather shed load.
//
// Cache-aware scheduling: identical in-flight sources (same normalized
// content hash, the serving cache's key) collapse onto one slot of the
// batched call — the scheduler computes the answer once and completes every
// matching future with it, so a thundering herd of one hot source costs one
// frontend + forward instead of N. Collapses are counted in
// ServerStats::deduped. The window is also adaptive: when arrivals pause
// for `idle_grace`, the batch closes early rather than sleeping out
// `max_delay` (see Options).
//
// Fault tolerance (docs/serving.md):
//  - Requests may carry a deadline; the scheduler expels expired requests
//    before the expensive forward and completes them with DeadlineExceeded.
//  - Batches execute on a dedicated serve-worker thread under a watchdog
//    budget (`batch_budget`): a stuck batch is abandoned — its futures fail
//    with BatchAbandoned, the worker is replaced — instead of wedging the
//    queue forever.
//  - Transient faults (failpoint-injected errors, see support/failpoint.h)
//    are retried with doubled backoff up to `max_retries`, capped by the
//    requests' deadlines.
//  - Overload steps down a degradation ladder (DegradeMode in stats.h):
//    shrink the batching window -> serve cache hits only -> shed with
//    Overloaded. Every error is typed (serve/errors.h); every future always
//    completes.
//
// Shutdown is graceful: `shutdown()` (and the destructor) stops accepting
// new work, serves everything already queued, then joins the scheduler.
// Submitters blocked on backpressure wake and observe ServerStopped. A
// server that is *degraded* while draining still completes every queued
// future: cache hits are served, misses fail typed with ServerStopped —
// never silently counted as shed.
//
// One SuggestServer is one replica. Replicated serving — consistent-hash
// routing across N pipelines, health-gated failover, hedged requests, and
// zero-downtime checkpoint rollout — lives one layer up in
// serve/replica_set.h, which drives this class through `submit`'s
// cancel-token overload.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "serve/errors.h"
#include "serve/stats.h"
#include "support/thread_pool.h"

namespace g2p {

class SuggestServer {
 public:
  /// Cooperative cancellation handle, shared between a submitter and the
  /// scheduler. Setting it asks the server to complete the request with
  /// RequestCancelled at the next batch boundary; a request already inside
  /// a running forward completes normally (the submitter discards the
  /// value). Null means not cancellable.
  using CancelToken = std::shared_ptr<std::atomic<bool>>;


  struct Options {
    /// Batch-closing thresholds: serve once this many requests are queued
    /// (each request is one translation unit whose loops join the batched
    /// forward), or once the oldest queued request has waited `max_delay`.
    std::size_t max_batch_loops = 32;
    std::chrono::milliseconds max_delay{2};
    /// Adaptive window: when the arrival stream pauses — no new request for
    /// this long while a batch is open — the window closes early instead of
    /// sleeping out the rest of `max_delay` (idle traffic shouldn't pay the
    /// worst-case batching delay). Negative (default) auto-sizes to
    /// max_delay / 4; values >= max_delay effectively disable early close.
    std::chrono::microseconds idle_grace{-1};
    /// Queue bound. `submit` blocks (backpressure) when this many requests
    /// are already waiting; `try_submit` returns nullopt instead. (With the
    /// default degradation ladder the shed rung triggers first — see
    /// `shed_at` — so blocking only happens when shedding is disabled.)
    std::size_t max_queue_depth = 1024;
    /// Worker threads for the owned pool the pipeline serves on.
    /// 0 = hardware concurrency.
    unsigned pool_threads = 0;

    /// Deadline attached to `submit(source)` calls that don't pass one
    /// explicitly. <= 0 means no deadline (requests wait forever).
    std::chrono::milliseconds default_deadline{0};
    /// Watchdog budget for one batch execution (all retry attempts
    /// included). A batch still running after this long is abandoned: its
    /// futures complete with BatchAbandoned, the stuck serve worker is
    /// detached and replaced, and the scheduler moves on. <= 0 disables the
    /// watchdog (the scheduler waits for the batch unboundedly).
    std::chrono::milliseconds batch_budget{0};
    /// Transient-fault retry ladder: a batch attempt that fails with a
    /// transient error (failpoint::FailpointError) is re-run up to this many
    /// times, sleeping `retry_backoff` doubled per attempt between runs.
    /// Retries never extend past a request's deadline.
    int max_retries = 2;
    std::chrono::milliseconds retry_backoff{1};

    /// Degradation ladder thresholds, as fractions of max_queue_depth.
    /// Queue depth >= shrink_window_at * max_queue_depth closes batching
    /// windows immediately; >= cache_only_at serves full-result cache hits
    /// only (misses are shed with Overloaded, no forward runs); >= shed_at
    /// sheds queued work and rejects new submissions with Overloaded.
    /// Any value > 1.0 disables that rung.
    double shrink_window_at = 0.50;
    double cache_only_at = 0.75;
    double shed_at = 0.90;
    /// Optional latency trigger: when > 0 and the EWMA of batch wall time
    /// exceeds this, the ladder steps at least to kShrinkWindow even if the
    /// queue is shallow. 0 keeps the ladder depth-driven only.
    std::chrono::milliseconds degrade_latency{0};
  };

  /// Takes shared ownership of the pipeline and injects the server's worker
  /// pool into it (serving concurrency belongs to the server, not a global).
  /// The pipeline stays usable for read-only calls (`suggest`) from other
  /// threads. Throws std::invalid_argument on a null pipeline.
  SuggestServer(std::shared_ptr<Pipeline> pipeline, Options options);
  explicit SuggestServer(std::shared_ptr<Pipeline> pipeline)
      : SuggestServer(std::move(pipeline), Options{}) {}

  /// Convenience: take the pipeline by value.
  SuggestServer(Pipeline pipeline, Options options)
      : SuggestServer(std::make_shared<Pipeline>(std::move(pipeline)), options) {}
  explicit SuggestServer(Pipeline pipeline)
      : SuggestServer(std::make_shared<Pipeline>(std::move(pipeline)), Options{}) {}

  SuggestServer(const SuggestServer&) = delete;
  SuggestServer& operator=(const SuggestServer&) = delete;

  /// Drains the queue, completes every outstanding future, joins.
  ~SuggestServer();

  /// Enqueue one translation unit with Options::default_deadline. Blocks
  /// while the queue is full (unless the shed rung rejects first, with
  /// Overloaded); throws ServerStopped once the server is shutting down
  /// (futures already obtained remain valid and will complete).
  std::future<std::vector<LoopSuggestion>> submit(std::string source);
  /// Same, with an explicit per-request deadline (measured from now;
  /// <= 0 means none). A request whose deadline passes before it is served
  /// completes with DeadlineExceeded instead of waiting forever.
  std::future<std::vector<LoopSuggestion>> submit(std::string source,
                                                  std::chrono::milliseconds deadline);
  /// Same, with a cancellation token (see CancelToken). The replica layer
  /// hedges a straggler onto a second replica and cancels the loser through
  /// this: cancellation is swept at batch boundaries, so a cancelled
  /// request never occupies a slot of the batched forward.
  std::future<std::vector<LoopSuggestion>> submit(std::string source,
                                                  std::chrono::milliseconds deadline,
                                                  CancelToken cancel);

  /// Non-blocking submit: nullopt when the queue is full, the shed rung is
  /// active, or the server is shutting down (load shedding, never blocks).
  std::optional<std::future<std::vector<LoopSuggestion>>> try_submit(std::string source);
  std::optional<std::future<std::vector<LoopSuggestion>>> try_submit(
      std::string source, std::chrono::milliseconds deadline);

  /// Stop accepting requests, serve everything queued, join the scheduler.
  /// Idempotent and safe to call concurrently with submitters (their
  /// blocked `submit` calls wake and throw ServerStopped).
  void shutdown();

  /// Queue/batch/latency counters plus the pipeline's serving-cache
  /// counters (hit tiers, frontend time saved), merged into one snapshot.
  ServerStatsSnapshot stats() const;
  /// Instantaneous queue depth — a couple of relaxed loads, cheap enough
  /// for the replica router to poll on every dispatch (work stealing).
  std::uint64_t queue_depth() const;
  const Pipeline& pipeline() const { return *pipeline_; }
  const std::shared_ptr<Pipeline>& shared_pipeline() const { return pipeline_; }
  const Options& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    std::string source;
    std::promise<std::vector<LoopSuggestion>> promise;
    Clock::time_point enqueued;
    Clock::time_point deadline;  // Clock::time_point::max() = none
    CancelToken cancel;          // null = not cancellable
  };

  // Defined in server.cpp. Batch items carry a per-request completion flag
  // so the watchdog (scheduler thread) and a possibly-still-running serve
  // worker race safely for each promise; WorkerCtrl is the handoff channel
  // to the serve worker and RunCtx the self-contained state a detached
  // (abandoned) worker may keep touching after the server is gone.
  struct Batch;
  struct WorkerCtrl;
  struct RunCtx;

  /// Admission-time resource-governor check: rejects the statically
  /// checkable dimension (source bytes) with ResourceExhausted before the
  /// request ever occupies queue space or a batch slot. Request-scoped —
  /// tallied in stats but no retry, failover, or health consequence.
  void admission_check(const std::string& source) const;
  std::future<std::vector<LoopSuggestion>> submit_impl(std::string source,
                                                       std::chrono::milliseconds deadline,
                                                       CancelToken cancel);
  std::optional<std::future<std::vector<LoopSuggestion>>> try_submit_impl(
      std::string source, std::chrono::milliseconds deadline);
  std::future<std::vector<LoopSuggestion>> enqueue_locked(std::string source,
                                                          Clock::time_point deadline,
                                                          CancelToken cancel);

  void scheduler_loop();
  /// Wait for work, hold the batching window (degradation-aware), pop up to
  /// max_batch_loops requests. Null return: stopping and fully drained.
  std::shared_ptr<Batch> collect_batch();
  /// Complete expired requests with DeadlineExceeded and cancelled ones
  /// with RequestCancelled; keep the rest.
  void expel_expired(Batch& batch);
  /// Degraded serving on the scheduler thread: cache-only probes or shed.
  void serve_degraded(Batch& batch);
  /// Hand the batch to the serve worker and wait, bounded by batch_budget.
  /// On watchdog expiry: fail remaining futures with BatchAbandoned,
  /// replace the worker. Returns false when the batch was abandoned.
  bool dispatch_and_wait(const std::shared_ptr<Batch>& batch);
  void spawn_serve_worker();
  DegradeMode mode_for(std::size_t depth) const;
  void note_mode(DegradeMode mode);

  std::shared_ptr<Pipeline> pipeline_;
  Options options_;
  std::shared_ptr<ThreadPool> pool_;
  /// Shared (not inline) so a detached, abandoned serve worker can keep
  /// tallying into it safely even if the server has been destroyed.
  std::shared_ptr<ServerStats> stats_;
  std::shared_ptr<RunCtx> run_ctx_;
  std::size_t shed_depth_ = 0;  // precomputed shed_at * max_queue_depth

  std::mutex mutex_;
  std::condition_variable queue_cv_;  // scheduler waits: work available / stop
  std::condition_variable space_cv_;  // submitters wait: queue below bound
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::once_flag joined_;  // shutdown may race with itself; join exactly once

  // Scheduler-thread-only state (no locking needed).
  DegradeMode mode_ = DegradeMode::kNormal;
  double ewma_batch_ms_ = 0.0;

  std::shared_ptr<WorkerCtrl> worker_ctrl_;
  std::thread serve_worker_;  // replaced (old one detached) on abandon
  std::thread scheduler_;     // last member: joined before the rest tears down
};

}  // namespace g2p
