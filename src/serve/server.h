// Asynchronous micro-batching front end over the batched suggestion engine.
//
// PR 1 made one synchronous call fast (`Pipeline::suggest_batch`); this
// turns it into a server loop. Callers `submit` C sources and get a
// `std::future` per request; a scheduler thread collects queued requests
// until `max_batch_loops` of them are waiting or the oldest has waited
// `max_delay` (whichever comes first), merges them into one
// `suggest_batch_results` call, and completes every future — a request that
// fails to parse completes *its* future exceptionally without poisoning its
// batch-mates. Under light load a request costs one batch of 1 after at
// most `max_delay`; under heavy load batches fill instantly and the model
// forward is amortized across the whole batch.
//
// Backpressure: the queue is bounded by `max_queue_depth`. `submit` blocks
// until space frees up (so producers are throttled to the service rate);
// `try_submit` refuses instead, for callers that would rather shed load.
//
// Cache-aware scheduling: identical in-flight sources (same normalized
// content hash, the serving cache's key) collapse onto one slot of the
// batched call — the scheduler computes the answer once and completes every
// matching future with it, so a thundering herd of one hot source costs one
// frontend + forward instead of N. Collapses are counted in
// ServerStats::deduped. The window is also adaptive: when arrivals pause
// for `idle_grace`, the batch closes early rather than sleeping out
// `max_delay` (see Options).
//
// Shutdown is graceful: `shutdown()` (and the destructor) stops accepting
// new work, serves everything already queued, then joins the scheduler.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "serve/stats.h"
#include "support/thread_pool.h"

namespace g2p {

class SuggestServer {
 public:
  struct Options {
    /// Batch-closing thresholds: serve once this many requests are queued
    /// (each request is one translation unit whose loops join the batched
    /// forward), or once the oldest queued request has waited `max_delay`.
    std::size_t max_batch_loops = 32;
    std::chrono::milliseconds max_delay{2};
    /// Adaptive window: when the arrival stream pauses — no new request for
    /// this long while a batch is open — the window closes early instead of
    /// sleeping out the rest of `max_delay` (idle traffic shouldn't pay the
    /// worst-case batching delay). Negative (default) auto-sizes to
    /// max_delay / 4; values >= max_delay effectively disable early close.
    std::chrono::microseconds idle_grace{-1};
    /// Queue bound. `submit` blocks (backpressure) when this many requests
    /// are already waiting; `try_submit` returns nullopt instead.
    std::size_t max_queue_depth = 1024;
    /// Worker threads for the owned pool the pipeline serves on.
    /// 0 = hardware concurrency.
    unsigned pool_threads = 0;
  };

  /// Takes shared ownership of the pipeline and injects the server's worker
  /// pool into it (serving concurrency belongs to the server, not a global).
  /// The pipeline stays usable for read-only calls (`suggest`) from other
  /// threads. Throws std::invalid_argument on a null pipeline.
  SuggestServer(std::shared_ptr<Pipeline> pipeline, Options options);
  explicit SuggestServer(std::shared_ptr<Pipeline> pipeline)
      : SuggestServer(std::move(pipeline), Options{}) {}

  /// Convenience: take the pipeline by value.
  SuggestServer(Pipeline pipeline, Options options)
      : SuggestServer(std::make_shared<Pipeline>(std::move(pipeline)), options) {}
  explicit SuggestServer(Pipeline pipeline)
      : SuggestServer(std::make_shared<Pipeline>(std::move(pipeline)), Options{}) {}

  SuggestServer(const SuggestServer&) = delete;
  SuggestServer& operator=(const SuggestServer&) = delete;

  /// Drains the queue, completes every outstanding future, joins.
  ~SuggestServer();

  /// Enqueue one translation unit. Blocks while the queue is full; throws
  /// std::runtime_error once the server is shutting down (futures already
  /// obtained remain valid and will complete).
  std::future<std::vector<LoopSuggestion>> submit(std::string source);

  /// Non-blocking submit: nullopt when the queue is full or the server is
  /// shutting down (load shedding instead of backpressure).
  std::optional<std::future<std::vector<LoopSuggestion>>> try_submit(std::string source);

  /// Stop accepting requests, serve everything queued, join the scheduler.
  /// Idempotent and safe to call concurrently with submitters (their
  /// blocked `submit` calls wake and throw).
  void shutdown();

  /// Queue/batch/latency counters plus the pipeline's serving-cache
  /// counters (hit tiers, frontend time saved), merged into one snapshot.
  ServerStatsSnapshot stats() const;
  const Pipeline& pipeline() const { return *pipeline_; }
  const Options& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    std::string source;
    std::promise<std::vector<LoopSuggestion>> promise;
    Clock::time_point enqueued;
  };

  std::future<std::vector<LoopSuggestion>> enqueue_locked(std::string source);
  void scheduler_loop();
  void serve_batch(std::vector<Request>& batch);

  std::shared_ptr<Pipeline> pipeline_;
  Options options_;
  std::shared_ptr<ThreadPool> pool_;
  ServerStats stats_;

  std::mutex mutex_;
  std::condition_variable queue_cv_;  // scheduler waits: work available / stop
  std::condition_variable space_cv_;  // submitters wait: queue below bound
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::once_flag joined_;  // shutdown may race with itself; join exactly once
  std::thread scheduler_;  // last member: joined before the rest tears down
};

}  // namespace g2p
