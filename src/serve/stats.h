// Serving counters for the async micro-batching server.
//
// The scheduler thread and submitters update ServerStats concurrently with
// relaxed atomics (each counter is an independent monotonic tally; nothing
// synchronizes-with these loads), and `snapshot()` hands callers a plain
// struct to print or assert on. Latency here is end-to-end per request:
// enqueue (submit) to future completion, measured by the scheduler.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "core/suggestion.h"
#include "serve/errors.h"

namespace g2p {

/// Rung of the overload degradation ladder the server is standing on.
/// Ordered by severity: each step trades result quality/coverage for queue
/// survival. The scheduler recomputes the rung from queue depth (and,
/// optionally, observed batch latency) at every batch boundary, so the
/// server steps back up as soon as pressure relents.
enum class DegradeMode : int {
  kNormal = 0,       // full batching window, full forward
  kShrinkWindow = 1, // batch window closes immediately: smaller batches, no delay
  kCacheOnly = 2,    // serve full-result cache hits only; misses are shed
  kShed = 3,         // shed queued work with Overloaded; admission rejects new
};

inline const char* degrade_mode_name(DegradeMode m) {
  switch (m) {
    case DegradeMode::kNormal: return "normal";
    case DegradeMode::kShrinkWindow: return "shrink_window";
    case DegradeMode::kCacheOnly: return "cache_only";
    case DegradeMode::kShed: return "shed";
  }
  return "unknown";
}

/// Point-in-time copy of the server counters (plain values, safe to pass
/// around). Derived means return 0 when the denominator is empty.
struct ServerStatsSnapshot {
  std::uint64_t submitted = 0;        // requests accepted into the queue
  std::uint64_t completed = 0;        // futures completed with a value
  std::uint64_t failed = 0;           // futures completed with an exception
  std::uint64_t batches = 0;          // suggest_batch calls issued
  std::uint64_t batched_requests = 0; // sum of batch sizes
  std::uint64_t max_batch = 0;        // largest batch served
  std::uint64_t deduped = 0;          // in-flight duplicates collapsed by the
                                      // scheduler (computed once, fanned out)
  std::uint64_t queue_depth = 0;      // requests waiting right now
  std::uint64_t latency_sum_us = 0;   // enqueue -> completion, all requests
  std::uint64_t latency_max_us = 0;

  // Fault-tolerance counters (serve/errors.h has the error taxonomy).
  std::uint64_t expired = 0;            // futures failed DeadlineExceeded
  std::uint64_t shed = 0;               // Overloaded: admission + degraded sheds
  std::uint64_t cache_only_served = 0;  // hits served without a forward (degraded)
  std::uint64_t watchdog_abandoned = 0; // batches failed by the watchdog budget
  std::uint64_t retries = 0;            // batch attempts re-run after transient faults
  std::uint64_t retry_recovered = 0;    // requests that succeeded after >= 1 retry
  std::uint64_t scheduler_faults = 0;   // exceptions the scheduler's top-level catch ate
  std::uint64_t cancelled = 0;          // futures failed RequestCancelled (hedge losers)
  std::uint64_t stopped_unserved = 0;   // futures failed ServerStopped in the
                                        // shutdown drain (degraded-mode misses)

  // Degradation ladder: the rung the scheduler currently stands on plus how
  // often each non-normal rung was entered (kNormal re-entries count as
  // recoveries).
  int mode = 0;  // DegradeMode as int
  std::uint64_t mode_shrink_entered = 0;
  std::uint64_t mode_cache_only_entered = 0;
  std::uint64_t mode_shed_entered = 0;
  std::uint64_t mode_recovered = 0;

  // Active serving precision of the fused forward ("fp32" or "int8" —
  // stable strings from precision_name(), env override already resolved).
  // Filled by SuggestServer::stats() from the pipeline.
  const char* precision = "fp32";

  // Content-addressed serving cache (filled by SuggestServer::stats() from
  // the pipeline's SuggestCache counters; zero when caching is disabled).
  std::uint64_t cache_full_hits = 0;      // whole result served from cache
  std::uint64_t cache_frontend_hits = 0;  // frontend skipped, model re-run
  std::uint64_t cache_misses = 0;         // cold sources (frontend built)
  std::uint64_t cache_frontend_saved_us = 0;  // frontend time not spent

  // Whether the pipeline runs the static race verifier (env override
  // already resolved), plus per-verdict tallies over every suggestion in
  // the unique (post-dedup) results the scheduler served. All zero when
  // verification is off — suggestions then carry Verdict::kUnchecked,
  // which is deliberately not counted.
  bool verify = false;
  std::uint64_t verdict_verified = 0;
  std::uint64_t verdict_repaired = 0;
  std::uint64_t verdict_vetoed = 0;
  std::uint64_t verdict_unknown = 0;

  // Resource-governor rejections (futures failed ResourceExhausted), total
  // and per limit — indexed by ResourceLimit, named by resource_limit_name.
  // Request-scoped by contract: none of these triggered a retry, a replica
  // failover, or a health penalty.
  std::uint64_t resource_exhausted = 0;
  std::array<std::uint64_t, kNumResourceLimits> resource_exhausted_by_limit{};

  double mean_batch_size() const {
    return batches == 0 ? 0.0 : static_cast<double>(batched_requests) / static_cast<double>(batches);
  }
  double mean_latency_us() const {
    const std::uint64_t done = completed + failed;
    return done == 0 ? 0.0 : static_cast<double>(latency_sum_us) / static_cast<double>(done);
  }
  double cache_hit_rate() const {
    const std::uint64_t total = cache_full_hits + cache_frontend_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_full_hits + cache_frontend_hits) /
                            static_cast<double>(total);
  }
};

class ServerStats {
 public:
  void on_submit() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_queue_depth(std::uint64_t depth) {
    queue_depth_.store(depth, std::memory_order_relaxed);
  }
  void on_batch(std::uint64_t size) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_requests_.fetch_add(size, std::memory_order_relaxed);
    std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
    while (size > seen &&
           !max_batch_.compare_exchange_weak(seen, size, std::memory_order_relaxed)) {
    }
  }
  void on_dedup(std::uint64_t count) {
    deduped_.fetch_add(count, std::memory_order_relaxed);
  }
  void on_done(bool ok, std::uint64_t latency_us) {
    (ok ? completed_ : failed_).fetch_add(1, std::memory_order_relaxed);
    latency_sum_us_.fetch_add(latency_us, std::memory_order_relaxed);
    std::uint64_t seen = latency_max_us_.load(std::memory_order_relaxed);
    while (latency_us > seen &&
           !latency_max_us_.compare_exchange_weak(seen, latency_us, std::memory_order_relaxed)) {
    }
  }
  void on_expired() { expired_.fetch_add(1, std::memory_order_relaxed); }
  void on_shed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void on_cache_only() { cache_only_served_.fetch_add(1, std::memory_order_relaxed); }
  void on_watchdog() { watchdog_abandoned_.fetch_add(1, std::memory_order_relaxed); }
  void on_retry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void on_retry_recovered() { retry_recovered_.fetch_add(1, std::memory_order_relaxed); }
  void on_scheduler_fault() { scheduler_faults_.fetch_add(1, std::memory_order_relaxed); }
  void on_cancelled() { cancelled_.fetch_add(1, std::memory_order_relaxed); }
  void on_stopped_unserved() { stopped_unserved_.fetch_add(1, std::memory_order_relaxed); }
  /// Instantaneous queue depth (the same value snapshot() reports); cheap
  /// enough for a router to poll per dispatch.
  std::uint64_t depth() const { return queue_depth_.load(std::memory_order_relaxed); }
  /// The scheduler entered a new degradation rung (called on change only).
  void on_mode(DegradeMode m) {
    mode_.store(static_cast<int>(m), std::memory_order_relaxed);
    switch (m) {
      case DegradeMode::kNormal:
        mode_recovered_.fetch_add(1, std::memory_order_relaxed);
        break;
      case DegradeMode::kShrinkWindow:
        mode_shrink_entered_.fetch_add(1, std::memory_order_relaxed);
        break;
      case DegradeMode::kCacheOnly:
        mode_cache_only_entered_.fetch_add(1, std::memory_order_relaxed);
        break;
      case DegradeMode::kShed:
        mode_shed_entered_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }

  /// One suggestion's verifier verdict (kUnchecked is not tallied: with
  /// verification off the counters stay zero instead of counting noise).
  void on_verdict(Verdict v) {
    switch (v) {
      case Verdict::kVerified: verdict_verified_.fetch_add(1, std::memory_order_relaxed); break;
      case Verdict::kRepaired: verdict_repaired_.fetch_add(1, std::memory_order_relaxed); break;
      case Verdict::kVetoed: verdict_vetoed_.fetch_add(1, std::memory_order_relaxed); break;
      case Verdict::kUnknown: verdict_unknown_.fetch_add(1, std::memory_order_relaxed); break;
      case Verdict::kUnchecked: break;
    }
  }

  /// One request rejected by the per-request resource governor (tallied by
  /// admission control and by the scheduler when a slot fails typed).
  void on_resource_exhausted(ResourceLimit limit) {
    resource_exhausted_.fetch_add(1, std::memory_order_relaxed);
    resource_exhausted_by_limit_[static_cast<std::size_t>(limit)].fetch_add(
        1, std::memory_order_relaxed);
  }

  ServerStatsSnapshot snapshot() const {
    ServerStatsSnapshot s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
    s.max_batch = max_batch_.load(std::memory_order_relaxed);
    s.deduped = deduped_.load(std::memory_order_relaxed);
    s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
    s.latency_sum_us = latency_sum_us_.load(std::memory_order_relaxed);
    s.latency_max_us = latency_max_us_.load(std::memory_order_relaxed);
    s.expired = expired_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.cache_only_served = cache_only_served_.load(std::memory_order_relaxed);
    s.watchdog_abandoned = watchdog_abandoned_.load(std::memory_order_relaxed);
    s.retries = retries_.load(std::memory_order_relaxed);
    s.retry_recovered = retry_recovered_.load(std::memory_order_relaxed);
    s.scheduler_faults = scheduler_faults_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.stopped_unserved = stopped_unserved_.load(std::memory_order_relaxed);
    s.mode = mode_.load(std::memory_order_relaxed);
    s.mode_shrink_entered = mode_shrink_entered_.load(std::memory_order_relaxed);
    s.mode_cache_only_entered = mode_cache_only_entered_.load(std::memory_order_relaxed);
    s.mode_shed_entered = mode_shed_entered_.load(std::memory_order_relaxed);
    s.mode_recovered = mode_recovered_.load(std::memory_order_relaxed);
    s.verdict_verified = verdict_verified_.load(std::memory_order_relaxed);
    s.verdict_repaired = verdict_repaired_.load(std::memory_order_relaxed);
    s.verdict_vetoed = verdict_vetoed_.load(std::memory_order_relaxed);
    s.verdict_unknown = verdict_unknown_.load(std::memory_order_relaxed);
    s.resource_exhausted = resource_exhausted_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < s.resource_exhausted_by_limit.size(); ++i) {
      s.resource_exhausted_by_limit[i] =
          resource_exhausted_by_limit_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> deduped_{0};
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> latency_sum_us_{0};
  std::atomic<std::uint64_t> latency_max_us_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> cache_only_served_{0};
  std::atomic<std::uint64_t> watchdog_abandoned_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> retry_recovered_{0};
  std::atomic<std::uint64_t> scheduler_faults_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> stopped_unserved_{0};
  std::atomic<int> mode_{0};
  std::atomic<std::uint64_t> mode_shrink_entered_{0};
  std::atomic<std::uint64_t> mode_cache_only_entered_{0};
  std::atomic<std::uint64_t> mode_shed_entered_{0};
  std::atomic<std::uint64_t> mode_recovered_{0};
  std::atomic<std::uint64_t> verdict_verified_{0};
  std::atomic<std::uint64_t> verdict_repaired_{0};
  std::atomic<std::uint64_t> verdict_vetoed_{0};
  std::atomic<std::uint64_t> verdict_unknown_{0};
  std::atomic<std::uint64_t> resource_exhausted_{0};
  std::array<std::atomic<std::uint64_t>, kNumResourceLimits> resource_exhausted_by_limit_{};
};

}  // namespace g2p
