// Bump-pointer arena for the frontend hot path.
//
// One Arena owns every AST node and every synthesized token spelling of one
// translation unit: allocation is a pointer bump into geometrically-growing
// blocks, and the whole tree is released at once when the arena dies. Nodes
// whose members still own heap memory (child vectors) register their exact
// destructor at creation; everything else (the overwhelming majority once
// spellings are `string_view`s) is freed without any per-object work.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace g2p {

class Arena {
 public:
  Arena() = default;
  ~Arena() { release(); }

  Arena(Arena&& other) noexcept
      : blocks_(std::move(other.blocks_)),
        dtors_(std::move(other.dtors_)),
        bytes_allocated_(std::exchange(other.bytes_allocated_, 0)),
        next_block_bytes_(std::exchange(other.next_block_bytes_, kFirstBlockBytes)),
        byte_cap_(std::exchange(other.byte_cap_, 0)),
        on_overflow_(std::exchange(other.on_overflow_, nullptr)) {}
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      release();
      blocks_ = std::move(other.blocks_);
      dtors_ = std::move(other.dtors_);
      bytes_allocated_ = std::exchange(other.bytes_allocated_, 0);
      next_block_bytes_ = std::exchange(other.next_block_bytes_, kFirstBlockBytes);
      byte_cap_ = std::exchange(other.byte_cap_, 0);
      on_overflow_ = std::exchange(other.on_overflow_, nullptr);
    }
    return *this;
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Called when an allocation would push `bytes_allocated()` past the cap
  /// installed with `set_byte_cap`. Must not return (throw a typed error);
  /// a plain function pointer keeps the arena free of upper-layer deps.
  using OverflowHandler = void (*)(std::size_t attempted_total, std::size_t cap);

  /// Arm (or with cap 0 disarm) a hard byte cap on the sum of satisfied
  /// allocations. The per-request resource governor installs this so one
  /// adversarial translation unit cannot exhaust memory; `on_overflow` fires
  /// *before* the allocation, leaving the arena valid and under cap.
  void set_byte_cap(std::size_t cap, OverflowHandler on_overflow) {
    byte_cap_ = cap;
    on_overflow_ = on_overflow;
  }

  /// Raw aligned allocation. `align` must be a power of two.
  void* allocate(std::size_t size, std::size_t align) {
    if (byte_cap_ != 0 && bytes_allocated_ + size > byte_cap_) {
      on_overflow_(bytes_allocated_ + size, byte_cap_);
    }
    Block& block = blocks_.empty() ? grow(size + align) : blocks_.back();
    std::size_t offset = (block.used + (align - 1)) & ~(align - 1);
    if (offset + size > block.capacity) {
      Block& fresh = grow(size + align);
      offset = (fresh.used + (align - 1)) & ~(align - 1);
      fresh.used = offset + size;
      bytes_allocated_ += size;
      return fresh.data.get() + offset;
    }
    block.used = offset + size;
    bytes_allocated_ += size;
    return block.data.get() + offset;
  }

  /// Construct a T inside the arena. Non-trivially-destructible types have
  /// their exact (non-virtual-dispatch) destructor run when the arena dies,
  /// in reverse creation order.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = ::new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back(Dtor{[](void* p) { static_cast<T*>(p)->~T(); }, obj});
    }
    return obj;
  }

  /// Copy `text` into the arena and return a stable view of the copy — the
  /// interner for synthesized spellings (folded pragma lines, multi-word
  /// type bases) and for the source buffer itself.
  std::string_view intern(std::string_view text) {
    if (text.empty()) return {};
    char* mem = static_cast<char*>(allocate(text.size(), 1));
    std::memcpy(mem, text.data(), text.size());
    return {mem, text.size()};
  }

  /// Sum of all satisfied allocation sizes (excludes block slack).
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total block capacity held (the cache layer budgets with this).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.capacity;
    return total;
  }

 private:
  static constexpr std::size_t kFirstBlockBytes = 16 * 1024;
  static constexpr std::size_t kMaxBlockBytes = 512 * 1024;

  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };
  struct Dtor {
    void (*fn)(void*);
    void* obj;
  };

  Block& grow(std::size_t at_least) {
    std::size_t capacity = next_block_bytes_;
    if (capacity < at_least) capacity = at_least;
    next_block_bytes_ = std::min(next_block_bytes_ * 2, kMaxBlockBytes);
    blocks_.push_back(Block{std::make_unique<char[]>(capacity), capacity, 0});
    return blocks_.back();
  }

  void release() {
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) it->fn(it->obj);
    dtors_.clear();
    blocks_.clear();
  }

  std::vector<Block> blocks_;
  std::vector<Dtor> dtors_;
  std::size_t bytes_allocated_ = 0;
  std::size_t next_block_bytes_ = kFirstBlockBytes;
  std::size_t byte_cap_ = 0;  // 0 = uncapped
  OverflowHandler on_overflow_ = nullptr;
};

}  // namespace g2p
