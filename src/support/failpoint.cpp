#include "support/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "support/hash.h"

namespace g2p::failpoint {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

enum class Action { kError, kDelay, kThrow };

struct Site {
  std::string name;
  Action action = Action::kError;
  double probability = 1.0;
  std::uint64_t seed = 0;
  std::uint32_t delay_ms = 0;
  // Hit counters live on the (leaked) schedule so concurrent seams never
  // touch freed memory across a reconfigure; mutable because the schedule
  // itself is immutable once published.
  mutable std::atomic<std::uint64_t> hits{0};
  mutable std::atomic<std::uint64_t> injected{0};

  Site() = default;
  Site(const Site& other)
      : name(other.name),
        action(other.action),
        probability(other.probability),
        seed(other.seed),
        delay_ms(other.delay_ms) {}
  Site& operator=(const Site& other) {
    name = other.name;
    action = other.action;
    probability = other.probability;
    seed = other.seed;
    delay_ms = other.delay_ms;
    hits.store(0, std::memory_order_relaxed);
    injected.store(0, std::memory_order_relaxed);
    return *this;
  }
};

struct Schedule {
  std::vector<Site> sites;
  std::string normalized;
};

/// Published schedule. Old schedules are intentionally leaked on
/// reconfigure: a seam mid-`fire` may still hold the previous pointer, and
/// configure() happens a handful of times per process (startup, tests) —
/// never on a hot path.
std::atomic<const Schedule*> g_schedule{nullptr};
std::mutex g_configure_mutex;

/// splitmix64 of (seed, hit index): a pure function, so the k-th hit of a
/// site decides identically across runs regardless of which thread lands it.
std::uint64_t mix(std::uint64_t seed, std::uint64_t k) {
  std::uint64_t z = seed + (k + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

[[noreturn]] void bad_spec(std::string_view part, const char* why) {
  throw std::invalid_argument("failpoint::configure: " + std::string(why) + " in '" +
                              std::string(part) + "'");
}

Site parse_site(std::string_view part) {
  Site site;
  const auto eq = part.find('=');
  if (eq == std::string_view::npos || eq == 0) bad_spec(part, "expected site=action");
  site.name = std::string(trim(part.substr(0, eq)));
  std::string_view rest = trim(part.substr(eq + 1));

  // Optional "@p[,seed]" suffix.
  std::string_view action = rest;
  if (const auto at = rest.find('@'); at != std::string_view::npos) {
    action = trim(rest.substr(0, at));
    std::string_view prob = trim(rest.substr(at + 1));
    std::string_view seed_text;
    if (const auto comma = prob.find(','); comma != std::string_view::npos) {
      seed_text = trim(prob.substr(comma + 1));
      prob = trim(prob.substr(0, comma));
    }
    char* end = nullptr;
    site.probability = std::strtod(std::string(prob).c_str(), &end);
    if (prob.empty() || site.probability < 0.0 || site.probability > 1.0) {
      bad_spec(part, "probability must be in [0,1]");
    }
    if (!seed_text.empty()) {
      site.seed = std::strtoull(std::string(seed_text).c_str(), nullptr, 10);
    }
  }
  if (site.seed == 0) {
    // Default: a seed derived from the site name, so distinct sites get
    // uncorrelated streams without the spec having to say so.
    site.seed = hash128(site.name).lo | 1;
  }

  if (action == "error") {
    site.action = Action::kError;
  } else if (action == "throw") {
    site.action = Action::kThrow;
  } else if (action.rfind("delay(", 0) == 0 && action.back() == ')') {
    site.action = Action::kDelay;
    const std::string ms(action.substr(6, action.size() - 7));
    char* end = nullptr;
    const long v = std::strtol(ms.c_str(), &end, 10);
    if (ms.empty() || *end != '\0' || v < 0) bad_spec(part, "bad delay milliseconds");
    site.delay_ms = static_cast<std::uint32_t>(v);
  } else {
    bad_spec(part, "unknown action (want error | delay(ms) | throw)");
  }
  return site;
}

std::string normalize(const std::vector<Site>& sites) {
  std::string out;
  for (const auto& s : sites) {
    if (!out.empty()) out += ';';
    out += s.name + '=';
    switch (s.action) {
      case Action::kError: out += "error"; break;
      case Action::kThrow: out += "throw"; break;
      case Action::kDelay: out += "delay(" + std::to_string(s.delay_ms) + ")"; break;
    }
    char prob[32];
    std::snprintf(prob, sizeof prob, "%g", s.probability);
    out += std::string("@") + prob + "," + std::to_string(s.seed);
  }
  return out;
}

/// Apply G2P_FAILPOINTS once, before main. A malformed env spec warns and
/// leaves failpoints disarmed instead of killing the process at startup.
const bool g_env_applied = [] {
  if (const char* spec = std::getenv("G2P_FAILPOINTS")) {
    try {
      configure(spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "g2p: ignoring G2P_FAILPOINTS: %s\n", e.what());
    }
  }
  return true;
}();

}  // namespace

namespace detail {

bool fire(const char* site) {
  const Schedule* schedule = g_schedule.load(std::memory_order_acquire);
  if (schedule == nullptr) return false;
  for (const Site& s : schedule->sites) {
    if (std::strcmp(s.name.c_str(), site) != 0) continue;
    const std::uint64_t k = s.hits.fetch_add(1, std::memory_order_relaxed);
    // Decision k is a pure function of (seed, k): deterministic replay.
    const bool inject =
        static_cast<double>(mix(s.seed, k) >> 11) * 0x1.0p-53 < s.probability;
    if (!inject) return false;
    s.injected.fetch_add(1, std::memory_order_relaxed);
    switch (s.action) {
      case Action::kError:
        return true;
      case Action::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(s.delay_ms));
        return false;
      case Action::kThrow:
        throw FailpointError(s.name);
    }
  }
  return false;
}

}  // namespace detail

void configure(const std::string& spec) {
  auto schedule = std::make_unique<Schedule>();
  std::string_view rest = spec;
  while (!rest.empty()) {
    const auto semi = rest.find(';');
    const std::string_view part =
        trim(semi == std::string_view::npos ? rest : rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{} : rest.substr(semi + 1);
    if (part.empty()) continue;
    Site site = parse_site(part);
    // Last spec for a site wins, matching how env overrides read naturally.
    auto existing = std::find_if(schedule->sites.begin(), schedule->sites.end(),
                                 [&](const Site& s) { return s.name == site.name; });
    if (existing != schedule->sites.end()) {
      *existing = site;
    } else {
      schedule->sites.push_back(site);
    }
  }
  schedule->normalized = normalize(schedule->sites);

  std::lock_guard<std::mutex> lock(g_configure_mutex);
  if (schedule->sites.empty()) {
    detail::g_armed.store(false, std::memory_order_relaxed);
    g_schedule.store(nullptr, std::memory_order_release);
    return;
  }
  g_schedule.store(schedule.release(), std::memory_order_release);  // leaked by design
  detail::g_armed.store(true, std::memory_order_relaxed);
}

void disarm() { configure(""); }

std::string active_spec() {
  const Schedule* schedule = g_schedule.load(std::memory_order_acquire);
  return schedule == nullptr ? std::string() : schedule->normalized;
}

std::vector<SiteCounters> counters() {
  std::vector<SiteCounters> out;
  const Schedule* schedule = g_schedule.load(std::memory_order_acquire);
  if (schedule == nullptr) return out;
  out.reserve(schedule->sites.size());
  for (const Site& s : schedule->sites) {
    out.push_back({s.name, s.hits.load(std::memory_order_relaxed),
                   s.injected.load(std::memory_order_relaxed)});
  }
  return out;
}

}  // namespace g2p::failpoint
