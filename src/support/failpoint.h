// Failpoint injection: named fault sites compiled into the serving path.
//
// A fault-tolerant server is only as trustworthy as the faults it has been
// exercised against. Failpoints make the interesting failures injectable on
// demand: each instrumented seam names a site ("frontend.parse",
// "cache.insert", "encode.forward", "pool.acquire", "checkpoint.load",
// "scheduler.batch", "replica.route", "replica.rollout") and asks
// `triggered(site)` whether to fail this time.
// Disabled — the production state — that question costs one relaxed atomic
// load and a predicted-not-taken branch; no site lookup, no RNG draw, no
// lock. Armed, the per-site schedule decides deterministically.
//
// Configuration (env `G2P_FAILPOINTS`, or `configure()` from tests):
//
//   G2P_FAILPOINTS="site=action[@p[,seed]][;site=...]"
//
//   action: error       the seam fails soft in its own idiom (a put is
//                       skipped, a load returns false, a parse throws the
//                       typed FailpointError)
//           delay(ms)   the seam stalls for `ms` milliseconds, then proceeds
//                       normally (wedge/slow-path simulation; never corrupts)
//           throw       FailpointError is thrown from inside triggered()
//   p:      injection probability in [0,1], default 1 (every hit)
//   seed:   u64 seed of the site's decision stream, default hashed from the
//           site name
//
// Example: G2P_FAILPOINTS="encode.forward=error@0.01;pool.acquire=delay(5)@0.001,7"
//
// Determinism: the k-th hit of a site injects iff splitmix64(seed, k) falls
// under p — a pure function of (seed, k), so a fixed arrival order replays
// the exact same fault schedule. Concurrent callers race only for hit
// indices, never for decisions attached to them.
//
// FailpointError is the typed, *transient-classified* error every injected
// fault surfaces as: the serving layer's bounded retry ladder recognizes it
// (serve/errors.h); real infrastructure errors it models (ENOMEM, a flaky
// filesystem) would be transient too. docs/serving.md covers the full
// story; every G2P_* knob is indexed in docs/tuning.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace g2p::failpoint {

/// The typed error injected faults surface as. Deliberately NOT derived
/// from the serving layer's error taxonomy: failpoints also fire in layers
/// below serve/ (tensor pool, checkpoint IO), which must not depend on it.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("injected fault at failpoint '" + site + "'"), site_(site) {}
  const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

namespace detail {
extern std::atomic<bool> g_armed;
bool fire(const char* site);  // slow path: lookup, decide, act
}  // namespace detail

/// True when any site is configured. The disabled fast path of every seam.
inline bool armed() noexcept { return detail::g_armed.load(std::memory_order_relaxed); }

/// The one call every instrumented seam makes. Returns true when the seam
/// should fail soft this hit (`error` action); sleeps inline for `delay`;
/// throws FailpointError for `throw`. Disabled: one relaxed load, false.
inline bool triggered(const char* site) { return armed() && detail::fire(site); }

/// (Re)configure the active schedule from a spec string (grammar above).
/// Replaces the previous schedule wholesale; "" disarms. Throws
/// std::invalid_argument on a malformed spec, leaving the old schedule
/// active. The G2P_FAILPOINTS env var is applied once at process start;
/// tests call this directly.
void configure(const std::string& spec);

/// Drop every site (the disabled fast path is restored).
void disarm();

/// The normalized active schedule ("site=action@p,seed;..."; "" when
/// disarmed). What bench --json emitters report so baselines are
/// comparable across runs.
std::string active_spec();

/// Per-site counters since the last configure(): how often the seam asked,
/// how often the schedule injected.
struct SiteCounters {
  std::string site;
  std::uint64_t hits = 0;
  std::uint64_t injected = 0;
};
std::vector<SiteCounters> counters();

}  // namespace g2p::failpoint
