// Non-owning callable reference.
//
// `FunctionRef<void(const Node&)>` is two words (object pointer + trampoline)
// and never allocates, unlike `std::function`, whose construction from a
// multi-capture lambda heap-allocates once it outgrows the small-buffer
// optimization. AST traversal (`for_each_child`, `walk`) runs once per node
// per pass, so that hidden allocation was a per-node cost on the frontend hot
// path. A FunctionRef must not outlive the callable it references — fine for
// traversal, where the lambda lives in the caller's frame.
#pragma once

#include <type_traits>
#include <utility>

namespace g2p {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        fn_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return fn_(obj_, std::forward<Args>(args)...); }

 private:
  void* obj_;
  R (*fn_)(void*, Args...);
};

}  // namespace g2p
