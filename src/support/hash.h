// 128-bit content hashing for the content-addressed serving cache.
//
// Two independently-seeded 64-bit FNV-1a streams over the same bytes — not
// cryptographic, but 128 bits of state makes an accidental collision across
// a serving cache's worth of translation units astronomically unlikely, and
// the byte-at-a-time loop is already far below frontend cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace g2p {

struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;

  /// Hex rendering (diagnostics, stable cache-entry naming).
  std::string hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) out[15 - i] = kDigits[(hi >> (4 * i)) & 0xf];
    for (int i = 0; i < 16; ++i) out[31 - i] = kDigits[(lo >> (4 * i)) & 0xf];
    return out;
  }
};

struct Hash128Hasher {
  std::size_t operator()(const Hash128& h) const noexcept {
    // lo is already a well-mixed 64-bit value; xor folds hi in.
    return static_cast<std::size_t>(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ull));
  }
};

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Plain 64-bit FNV-1a (corpus splits, oracle signatures).
inline std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = kFnvOffset;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// 128-bit hash of raw bytes.
inline Hash128 hash128(std::string_view text) {
  std::uint64_t lo = kFnvOffset;
  std::uint64_t hi = 0x8e8f2d6f7b1a3c5dull;  // second stream, distinct seed
  for (char c : text) {
    const auto byte = static_cast<std::uint8_t>(c);
    lo = (lo ^ byte) * kFnvPrime;
    hi = (hi ^ (byte + 0x9e)) * 0x100000001b3ull;
  }
  return Hash128{lo, hi};
}

/// Cache key for C sources: hashes the bytes with "\r\n" folded to "\n", so
/// CRLF and LF encodings of the same file share one cache entry. Only the
/// two-byte sequence is normalized — a lone '\r' (legal inside a string
/// literal) still distinguishes sources, so two different literals can
/// never collide onto one cache key. Anything further (whitespace/comment
/// canonicalization) would require lexing — exactly the cost the cache
/// exists to skip.
inline Hash128 hash_source(std::string_view source) {
  std::uint64_t lo = kFnvOffset;
  std::uint64_t hi = 0x8e8f2d6f7b1a3c5dull;
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '\r' && i + 1 < source.size() && source[i + 1] == '\n') continue;
    const auto byte = static_cast<std::uint8_t>(source[i]);
    lo = (lo ^ byte) * kFnvPrime;
    hi = (hi ^ (byte + 0x9e)) * 0x100000001b3ull;
  }
  return Hash128{lo, hi};
}

}  // namespace g2p
