#include "support/log.h"

#include <cstdio>

namespace g2p {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace g2p
