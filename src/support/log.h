// Minimal leveled logging. Benches and examples use INFO; tests keep the
// default at WARN so output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace g2p {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message at `level` to stderr with a level prefix.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

#define G2P_LOG_INFO ::g2p::detail::LogLine(::g2p::LogLevel::kInfo)
#define G2P_LOG_WARN ::g2p::detail::LogLine(::g2p::LogLevel::kWarn)
#define G2P_LOG_DEBUG ::g2p::detail::LogLine(::g2p::LogLevel::kDebug)
#define G2P_LOG_ERROR ::g2p::detail::LogLine(::g2p::LogLevel::kError)

}  // namespace g2p
