#include "support/resource_governor.h"

#include <cerrno>
#include <cstdlib>
#include <string>

#include "support/failpoint.h"

namespace g2p {
namespace {

thread_local ResourceGovernor* t_current = nullptr;

/// Parse a non-negative integer env override; returns `fallback` when the
/// variable is unset or malformed (a bad knob must never weaken a limit to
/// "unlimited" by accident).
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  // Digits only: strtoull alone would accept "-1" and wrap it to 2^64-1,
  // silently turning a typo into an effectively unlimited budget.
  for (const char* p = raw; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE) return fallback;
  return static_cast<std::uint64_t>(value);
}

bool env_disabled(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return false;
  const std::string value(raw);
  return value == "0" || value == "off" || value == "false";
}

[[noreturn]] void exhausted(ResourceLimit limit, std::uint64_t observed,
                            std::uint64_t cap) {
  throw ResourceExhausted(limit, observed, cap);
}

}  // namespace

const char* resource_limit_name(ResourceLimit limit) {
  switch (limit) {
    case ResourceLimit::kSourceBytes: return "source_bytes";
    case ResourceLimit::kTokens: return "tokens";
    case ResourceLimit::kAstNodes: return "ast_nodes";
    case ResourceLimit::kArenaBytes: return "arena_bytes";
    case ResourceLimit::kParseDepth: return "parse_depth";
    case ResourceLimit::kLoops: return "loops";
    case ResourceLimit::kWallClock: return "wall_clock";
  }
  return "unknown";
}

ResourceBudget ResourceBudget::unlimited() {
  ResourceBudget budget;
  budget.max_source_bytes = 0;
  budget.max_tokens = 0;
  budget.max_ast_nodes = 0;
  budget.max_arena_bytes = 0;
  budget.max_parse_depth = 0;
  budget.max_loops = 0;
  budget.frontend_budget_ms = 0;
  return budget;
}

ResourceBudget resolve_budget(ResourceBudget configured) {
  if (env_disabled("G2P_GOVERNOR")) return ResourceBudget::unlimited();
  configured.max_source_bytes = env_u64("G2P_MAX_SOURCE_BYTES", configured.max_source_bytes);
  configured.max_tokens = env_u64("G2P_MAX_TOKENS", configured.max_tokens);
  configured.max_ast_nodes = env_u64("G2P_MAX_AST_NODES", configured.max_ast_nodes);
  configured.max_arena_bytes = env_u64("G2P_MAX_ARENA_BYTES", configured.max_arena_bytes);
  configured.max_parse_depth = static_cast<std::uint32_t>(
      env_u64("G2P_MAX_PARSE_DEPTH", configured.max_parse_depth));
  configured.max_loops = env_u64("G2P_MAX_LOOPS", configured.max_loops);
  configured.frontend_budget_ms = static_cast<std::uint32_t>(
      env_u64("G2P_FRONTEND_BUDGET_MS", configured.frontend_budget_ms));
  return configured;
}

ResourceGovernor::ResourceGovernor(const ResourceBudget& budget)
    : budget_(budget), start_(std::chrono::steady_clock::now()) {}

void ResourceGovernor::charge_source_bytes(std::uint64_t bytes) {
  if (budget_.max_source_bytes != 0 && bytes > budget_.max_source_bytes) {
    exhausted(ResourceLimit::kSourceBytes, bytes, budget_.max_source_bytes);
  }
}

void ResourceGovernor::charge_tokens(std::uint64_t n) {
  tokens_ += n;
  if (budget_.max_tokens != 0 && tokens_ > budget_.max_tokens) {
    exhausted(ResourceLimit::kTokens, tokens_, budget_.max_tokens);
  }
}

void ResourceGovernor::charge_nodes(std::uint64_t n) {
  nodes_ += n;
  if (budget_.max_ast_nodes != 0 && nodes_ > budget_.max_ast_nodes) {
    exhausted(ResourceLimit::kAstNodes, nodes_, budget_.max_ast_nodes);
  }
}

void ResourceGovernor::charge_loops(std::uint64_t n) {
  loops_ += n;
  if (budget_.max_loops != 0 && loops_ > budget_.max_loops) {
    exhausted(ResourceLimit::kLoops, loops_, budget_.max_loops);
  }
}

void ResourceGovernor::enter_recursion() {
  ++depth_;
  if (budget_.max_parse_depth != 0 && depth_ > budget_.max_parse_depth) {
    // Roll back the rejected entry so a caller that catches and continues
    // (or a non-local unwind past the guard) sees a consistent depth.
    --depth_;
    exhausted(ResourceLimit::kParseDepth, depth_ + 1, budget_.max_parse_depth);
  }
}

void ResourceGovernor::checkpoint() const {
  if (failpoint::triggered("governor.check")) {
    throw failpoint::FailpointError("governor.check");
  }
  if (budget_.frontend_budget_ms == 0) return;
  auto governed = spent_;
  if (clock_running_) governed += std::chrono::steady_clock::now() - start_;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(governed);
  if (elapsed.count() >= 0 &&
      static_cast<std::uint64_t>(elapsed.count()) > budget_.frontend_budget_ms) {
    exhausted(ResourceLimit::kWallClock, static_cast<std::uint64_t>(elapsed.count()),
              budget_.frontend_budget_ms);
  }
}

void ResourceGovernor::clock_pause() {
  if (!clock_running_) return;
  spent_ += std::chrono::steady_clock::now() - start_;
  clock_running_ = false;
}

void ResourceGovernor::clock_resume() {
  if (clock_running_) return;
  start_ = std::chrono::steady_clock::now();
  clock_running_ = true;
}

ResourceGovernor* ResourceGovernor::current() { return t_current; }

GovernorScope::GovernorScope(ResourceGovernor* governor) : prev_(t_current) {
  // nullptr installs an ungoverned scope: clearing (not keeping) any outer
  // governor means a no-op scope can never silently charge an unrelated
  // request's budget when scopes nest.
  t_current = governor;
}

GovernorScope::~GovernorScope() { t_current = prev_; }

}  // namespace g2p
