// Per-request resource governor: cooperative budgets for adversarial input.
//
// The frontend lexes and parses arbitrary user-supplied C with a recursive-
// descent parser over a bump-pointer Arena — without limits, one pathological
// source (`((((…))))`, a megabyte of nested blocks, a token bomb) can blow
// the stack or exhaust memory and kill a process the chaos harness certifies
// as highly available. The governor closes that gap: a `ResourceBudget`
// travels with each request from SuggestServer admission through lexing,
// parsing, loop extraction, aug-AST build, and verification, and every
// allocation/recursion site charges it cooperatively. Exceeding any
// dimension throws the typed `ResourceExhausted` (serve/errors.h), which the
// serving layer treats as a *request-scoped* error: it fails only the
// offending slot — never batch-mates — and triggers no retry, no replica
// failover, and no health penalty.
//
// The budget is carried by a thread-local `GovernorScope` (the same RAII
// idiom as NoGradGuard) rather than threaded through every frontend
// signature: one request's frontend work runs entirely on one worker thread
// per stage, and code that runs outside serving (training, tests, tools)
// simply sees no governor and only the parser's built-in depth backstop.
#pragma once

#include <chrono>
#include <cstdint>

#include "serve/errors.h"

namespace g2p {

/// Per-request caps. A cap of 0 disables that dimension. Defaults are sized
/// for generous real-world translation units (whole benchmark files), yet
/// small enough that a poison request dies in milliseconds, not seconds.
struct ResourceBudget {
  std::uint64_t max_source_bytes = 2ull << 20;  // 2 MiB of raw source
  std::uint64_t max_tokens = 1u << 20;          // ~1M lexed tokens
  std::uint64_t max_ast_nodes = 1u << 19;       // parser + aug-AST nodes
  std::uint64_t max_arena_bytes = 64ull << 20;  // 64 MiB bump-allocated
  std::uint32_t max_parse_depth = 200;          // recursive-descent nesting
  std::uint64_t max_loops = 4096;               // loops extracted per TU
  std::uint32_t frontend_budget_ms = 0;         // soft wall clock (0 = off)

  /// All dimensions disabled (the pre-governor behaviour, minus the
  /// parser's hard depth backstop which always applies).
  static ResourceBudget unlimited();
};

/// `configured` with any `G2P_MAX_SOURCE_BYTES` / `G2P_MAX_TOKENS` /
/// `G2P_MAX_AST_NODES` / `G2P_MAX_ARENA_BYTES` / `G2P_MAX_PARSE_DEPTH` /
/// `G2P_MAX_LOOPS` / `G2P_FRONTEND_BUDGET_MS` environment overrides applied;
/// `G2P_GOVERNOR=0|off` returns `unlimited()`.
ResourceBudget resolve_budget(ResourceBudget configured);

/// Mutable per-request tally against one ResourceBudget. Not thread-safe:
/// one request's frontend stage runs on one thread (install via
/// GovernorScope); successive stages of the same request may run on
/// different threads, which is safe because stages never overlap.
class ResourceGovernor {
 public:
  explicit ResourceGovernor(const ResourceBudget& budget);

  const ResourceBudget& budget() const { return budget_; }

  /// Static admission check: throws ResourceExhausted(kSourceBytes) if the
  /// raw source alone exceeds the budget.
  void charge_source_bytes(std::uint64_t bytes);

  /// Cumulative charges; each throws the matching ResourceExhausted once
  /// the running total crosses its cap.
  void charge_tokens(std::uint64_t n);
  void charge_nodes(std::uint64_t n);
  void charge_loops(std::uint64_t n);

  /// Recursion accounting for the parser's depth guard.
  void enter_recursion();
  void leave_recursion() { --depth_; }
  std::uint32_t depth() const { return depth_; }

  /// Soft wall-clock check (also hosts the `governor.check` failpoint).
  /// Called between frontend stages and per aug-AST graph — cooperative,
  /// so a stuck forward is the watchdog's job, not the governor's.
  void checkpoint() const;

  /// The wall-clock budget charges only time spent inside this request's
  /// governed work (frontend, verify) — never the shared model stage or
  /// batch queueing, which would let a batch-mate's latency trip a clean
  /// request's budget. A stage that hands off pauses the clock; the next
  /// governed stage resumes it. The clock starts running at construction.
  void clock_pause();
  void clock_resume();

  std::uint64_t tokens() const { return tokens_; }
  std::uint64_t nodes() const { return nodes_; }
  std::uint64_t loops() const { return loops_; }

  /// Governor installed on this thread by the innermost GovernorScope, or
  /// nullptr outside serving.
  static ResourceGovernor* current();

 private:
  ResourceBudget budget_;
  std::uint64_t tokens_ = 0;
  std::uint64_t nodes_ = 0;
  std::uint64_t loops_ = 0;
  std::uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::duration spent_{};  // completed governed spans
  bool clock_running_ = true;
};

/// RAII installer of the thread-local current governor. Accepts nullptr,
/// which installs an *ungoverned* scope — it clears any governor an outer
/// scope left on this thread, so work under a null scope never charges an
/// unrelated request's budget — and restores the previous governor on exit.
class GovernorScope {
 public:
  explicit GovernorScope(ResourceGovernor* governor);
  ~GovernorScope();

  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

 private:
  ResourceGovernor* prev_;
};

}  // namespace g2p
