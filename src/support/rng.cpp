#include "support/rng.h"

#include <cmath>

namespace g2p {

double Rng::normal() {
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: all weights zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::string_view tag) const {
  // FNV-1a over the tag mixed into the parent state.
  std::uint64_t h = 1469598103934665603ull;
  for (char c : tag) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return Rng(state_ ^ (h | 1ull));
}

}  // namespace g2p
