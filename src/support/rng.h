// Deterministic random number generation for reproducible experiments.
//
// All randomness in the project flows through Rng (SplitMix64). Subsystems
// derive independent streams from a single global experiment seed via
// Rng::fork(tag), so adding draws in one subsystem never perturbs another.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace g2p {

/// SplitMix64 PRNG: tiny, fast, and statistically solid for simulation use.
/// Deliberately not std::mt19937 so that streams are bit-stable across
/// platforms and standard-library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform real in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box-Muller (single value; second value discarded for
  /// stream simplicity).
  double normal();

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Uniformly pick an element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty span");
    return items[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Sample an index according to non-negative weights (at least one > 0).
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child stream. The tag is hashed into the child's
  /// seed so distinct tags give uncorrelated streams.
  Rng fork(std::string_view tag) const;

 private:
  std::uint64_t state_;
};

}  // namespace g2p
