#include "support/strings.h"

#include <cctype>
#include <cstdio>

namespace g2p {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string text, std::string_view from, std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

std::string fmt_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

int count_loc(std::string_view source) {
  int loc = 0;
  for (const auto& line : split(source, '\n')) {
    const auto t = trim(line);
    if (t.empty()) continue;
    if (starts_with(t, "//")) continue;
    ++loc;
  }
  return loc;
}

}  // namespace g2p
