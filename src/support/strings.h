// Small string utilities shared across the project.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace g2p {

/// Transparent hasher so unordered maps keyed by std::string can be probed
/// with a string_view (no temporary string on the lookup path). Pair with
/// std::equal_to<> as the key-equality functor.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Split on any whitespace; drops empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// True if `needle` occurs in `haystack`.
bool contains(std::string_view haystack, std::string_view needle);

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string text, std::string_view from, std::string_view to);

/// Format a double with fixed precision (bench table output).
std::string fmt_fixed(double value, int digits);

/// Count the number of non-empty, non-comment source lines ("LOC" in the
/// paper's Table 1 sense).
int count_loc(std::string_view source);

}  // namespace g2p
