#include "support/table.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace g2p {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' && c != '+' &&
        c != '%' && c != 'x' && c != 'e') {
      return false;
    }
  }
  return std::any_of(cell.begin(), cell.end(),
                     [](char c) { return std::isdigit(static_cast<unsigned char>(c)); });
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count != header count");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto pad = [](const std::string& s, std::size_t w, bool right) {
    std::string out;
    if (right) out.append(w - s.size(), ' ');
    out += s;
    if (!right) out.append(w - s.size(), ' ');
    return out;
  };

  std::string out;
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(width[c] + 2, '-');
    if (c + 1 < header_.size()) rule += "+";
  }
  rule += "\n";

  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += " " + pad(header_[c], width[c], false) + " ";
    if (c + 1 < header_.size()) out += "|";
  }
  out += "\n" + rule;
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += " " + pad(row[c], width[c], looks_numeric(row[c])) + " ";
      if (c + 1 < row.size()) out += "|";
    }
    out += "\n";
  }
  return out;
}

}  // namespace g2p
