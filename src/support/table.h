// Plain-text table rendering used by the bench harnesses to print the rows
// the paper's tables report.
#pragma once

#include <string>
#include <vector>

namespace g2p {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment. Numeric-looking cells are right-aligned.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace g2p
