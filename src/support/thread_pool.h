// Fixed-size worker pool for the serving path.
//
// The suggest pipeline parallelizes the per-source CPU work (lexing, parsing,
// loop extraction, aug-AST construction, clause analysis) across a pool and
// funnels the results into one batched model forward. The pool is
// deliberately minimal: a locked queue, std::packaged_task for result/
// exception transport, and join-on-destruction. Sized to the hardware by
// default; a single-threaded pool degrades to eager inline execution order
// without special-casing.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace g2p {

class ThreadPool {
 public:
  /// Hardware concurrency, never 0.
  static unsigned default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  explicit ThreadPool(unsigned threads = default_thread_count()) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  /// Whether the calling thread is one of this pool's workers. Blocking on
  /// pool futures from a worker can deadlock (the waited-on tasks may sit
  /// behind the waiter in the queue), so re-entrant helpers check this and
  /// fall back to inline execution.
  bool on_worker_thread() const { return current_pool() == this; }

  /// Enqueue `fn` and return a future for its result. Exceptions thrown by
  /// `fn` surface from future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for every i in [0, n), blocking until all complete. Indices
  /// are dispatched as contiguous chunks (a few per worker) so the per-task
  /// queue/future overhead is paid O(workers) times, not O(n). The first
  /// exception (lowest chunk) is rethrown after every task has finished.
  ///
  /// Re-entrant: called from one of this pool's own workers, the loop runs
  /// inline on the calling thread instead of enqueueing. Enqueue-and-wait
  /// from a worker deadlocks at saturation — every worker blocks in
  /// future::get() on chunks that sit behind the waiters in the queue.
  template <typename F>
  void parallel_for(std::size_t n, F&& fn) {
    if (n == 0) return;
    if (on_worker_thread()) {
      // Inline, but with the same drain-then-rethrow contract as the pooled
      // path: every index runs; the first exception surfaces at the end.
      std::exception_ptr first_error;
      for (std::size_t i = 0; i < n; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
      return;
    }
    const std::size_t chunks = std::min(n, workers_.size() * 4);
    const std::size_t per_chunk = (n + chunks - 1) / chunks;
    std::vector<std::future<void>> pending;
    pending.reserve(chunks);
    for (std::size_t begin = 0; begin < n; begin += per_chunk) {
      const std::size_t end = std::min(n, begin + per_chunk);
      pending.push_back(submit([&fn, begin, end] {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }));
    }
    std::exception_ptr first_error;
    for (auto& f : pending) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  /// Which pool (if any) the calling thread works for. One marker suffices:
  /// pool workers are dedicated threads, never shared between pools.
  static ThreadPool*& current_pool() {
    thread_local ThreadPool* pool = nullptr;
    return pool;
  }

  void worker_loop() {
    current_pool() = this;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace g2p
