// Scalar reference kernels, NEON variants, and the runtime dispatch table.
//
// The scalar matmul specializations moved here from ops.cpp unchanged: one
// output row of compile-time width accumulated in registers, a 4-row variant
// whose independent FMA chains hide multiply-add latency, and a replicated-B
// kernel for narrow head matrices. Every kernel sums k in ascending order,
// so all scalar paths produce bitwise-identical results.

#include "tensor/backend.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <vector>

#include "support/thread_pool.h"
#include "tensor/fastmath.h"
#include "tensor/gemm_blocked.h"
#include "tensor/gemm_s8.h"

#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace g2p::backend {

// Implemented in backend_avx2.cpp (a TU compiled with -mavx2 -mfma when the
// toolchain supports it); returns nullptr when the TU was built without
// AVX2 support. CPU capability is checked at dispatch, not here.
const Kernels* avx2_table();

namespace {

// ---------------------------------------------------------------------------
// Scalar matmul (moved verbatim from ops.cpp)
// ---------------------------------------------------------------------------

/// One output row accumulated in registers across the k loop.
template <int M>
void matmul_fixed_width(const float* __restrict a, const float* __restrict b,
                        float* __restrict out, int n, int k) {
  for (int i = 0; i < n; ++i) {
    float acc[M] = {};
    const float* arow = a + static_cast<std::size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = b + static_cast<std::size_t>(kk) * M;
      for (int j = 0; j < M; ++j) acc[j] += av * brow[j];
    }
    float* orow = out + static_cast<std::size_t>(i) * M;
    for (int j = 0; j < M; ++j) orow[j] = acc[j];
  }
}

/// Four output rows in flight — independent FMA chains hide the multiply-add
/// latency that serializes the single-row kernel.
template <int M>
void matmul_fixed_width_x4(const float* __restrict a, const float* __restrict b,
                           float* __restrict out, int n, int k) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    float acc0[M] = {}, acc1[M] = {}, acc2[M] = {}, acc3[M] = {};
    const float* a0 = a + static_cast<std::size_t>(i) * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    for (int kk = 0; kk < k; ++kk) {
      const float* brow = b + static_cast<std::size_t>(kk) * M;
      const float v0 = a0[kk], v1 = a1[kk], v2 = a2[kk], v3 = a3[kk];
      for (int j = 0; j < M; ++j) {
        const float bj = brow[j];
        acc0[j] += v0 * bj;
        acc1[j] += v1 * bj;
        acc2[j] += v2 * bj;
        acc3[j] += v3 * bj;
      }
    }
    float* orow = out + static_cast<std::size_t>(i) * M;
    for (int j = 0; j < M; ++j) orow[j] = acc0[j];
    for (int j = 0; j < M; ++j) orow[M + j] = acc1[j];
    for (int j = 0; j < M; ++j) orow[2 * M + j] = acc2[j];
    for (int j = 0; j < M; ++j) orow[3 * M + j] = acc3[j];
  }
  if (i < n) {
    matmul_fixed_width<M>(a + static_cast<std::size_t>(i) * k, b,
                          out + static_cast<std::size_t>(i) * M, n - i, k);
  }
}

inline constexpr int kNarrowMaxK = 64;

/// Narrow outputs (m <= 8): a single m-wide FMA chain per row is latency-
/// bound, so process 32/m rows per pass against b replicated to width 32 —
/// one full-width FMA stream with independent per-row lanes (~7x faster at
/// m = 8 than the single-row kernel).
template <int M>
void matmul_fixed_narrow(const float* __restrict a, const float* __restrict b,
                         float* __restrict out, int n, int k) {
  constexpr int R = 32 / M;  // rows per vector pass
  float brep[kNarrowMaxK * 32];
  for (int kk = 0; kk < k; ++kk) {
    for (int r = 0; r < R; ++r) {
      for (int j = 0; j < M; ++j) brep[kk * 32 + r * M + j] = b[kk * M + j];
    }
  }
  int i = 0;
  for (; i + R <= n; i += R) {
    float acc[32] = {};
    const float* a0 = a + static_cast<std::size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      float av[32];
      for (int r = 0; r < R; ++r) {
        const float v = a0[static_cast<std::size_t>(r) * k + kk];
        for (int j = 0; j < M; ++j) av[r * M + j] = v;
      }
      const float* brow = brep + kk * 32;
      for (int j = 0; j < 32; ++j) acc[j] += av[j] * brow[j];
    }
    float* orow = out + static_cast<std::size_t>(i) * M;
    for (int j = 0; j < R * M; ++j) orow[j] = acc[j];
  }
  if (i < n) {
    matmul_fixed_width<M>(a + static_cast<std::size_t>(i) * k, b,
                          out + static_cast<std::size_t>(i) * M, n - i, k);
  }
}

void scalar_matmul(const float* a, const float* b, float* out, int n, int k, int m) {
  if (k <= kNarrowMaxK) {
    switch (m) {
      case 2: return matmul_fixed_narrow<2>(a, b, out, n, k);
      case 4: return matmul_fixed_narrow<4>(a, b, out, n, k);
      case 8: return matmul_fixed_narrow<8>(a, b, out, n, k);
      default: break;
    }
  }
  switch (m) {
    case 2: return matmul_fixed_width<2>(a, b, out, n, k);
    case 4: return matmul_fixed_width<4>(a, b, out, n, k);
    case 8: return matmul_fixed_width<8>(a, b, out, n, k);
    case 16: return matmul_fixed_width_x4<16>(a, b, out, n, k);
    case 32: return matmul_fixed_width_x4<32>(a, b, out, n, k);
    case 64: return matmul_fixed_width<64>(a, b, out, n, k);
    default: break;
  }
  // Generic ikj fallback for other widths (accumulates, so zero first).
  std::fill(out, out + static_cast<std::size_t>(n) * m, 0.0f);
  for (int i = 0; i < n; ++i) {
    float* orow = out + static_cast<std::size_t>(i) * m;
    const float* arow = a + static_cast<std::size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = b + static_cast<std::size_t>(kk) * m;
      for (int j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
}

// ---------------------------------------------------------------------------
// Scalar blocked GEMM micro-kernel (gemm_blocked.h drives the blocking)
// ---------------------------------------------------------------------------

/// 4x8 register tile: 32 accumulators fit the 16 baseline-SSE2 XMM registers
/// when the compiler vectorizes the fixed-width inner loops, and the same
/// code auto-vectorizes to NEON on aarch64.
struct ScalarMicro {
  static constexpr int MR = 4;
  static constexpr int NR = 8;
  static void run(int kc, const float* __restrict pa, const float* __restrict pb,
                  float* __restrict c, int ldc, bool accumulate) {
    float acc[MR][NR] = {};
    for (int kk = 0; kk < kc; ++kk) {
      for (int r = 0; r < MR; ++r) {
        const float av = pa[r];
        for (int j = 0; j < NR; ++j) acc[r][j] += av * pb[j];
      }
      pa += MR;
      pb += NR;
    }
    for (int r = 0; r < MR; ++r) {
      float* crow = c + static_cast<std::size_t>(r) * ldc;
      if (accumulate) {
        for (int j = 0; j < NR; ++j) crow[j] += acc[r][j];
      } else {
        for (int j = 0; j < NR; ++j) crow[j] = acc[r][j];
      }
    }
  }
};

void scalar_gemm(const float* a, const float* b, float* out, int n, int k, int m) {
  detail::gemm_blocked<ScalarMicro>(a, b, out, n, k, m);
}

// ---------------------------------------------------------------------------
// Scalar quantized GEMM micro-kernel (gemm_s8.h drives blocking and packing)
// ---------------------------------------------------------------------------

/// 4x8 int32 tile over the depth-grouped panels — the reference semantics
/// for Kernels::gemm_s8. Every product is exact in int32 and integer
/// addition is associative, so the AVX2 maddubs tile (whose u8 operands are
/// capped at 127 — see gemm_s8.h) reproduces it bitwise. The fixed-width
/// inner loops auto-vectorize (including to NEON, which reuses this tile).
struct ScalarS8Micro {
  static constexpr int MR = 4;
  static constexpr int NR = 8;
  static void run(int kc4, const std::uint8_t* __restrict pa, const std::int8_t* __restrict pb,
                  std::int32_t* __restrict c, int ldc, bool accumulate) {
    std::int32_t acc[MR][NR] = {};
    for (int kb = 0; kb < kc4; ++kb) {
      for (int r = 0; r < MR; ++r) {
        const std::uint8_t* ar = pa + r * detail::kQuantKP;
        const std::int32_t a0 = ar[0], a1 = ar[1], a2 = ar[2], a3 = ar[3];
        for (int j = 0; j < NR; ++j) {
          const std::int8_t* bj = pb + j * detail::kQuantKP;
          acc[r][j] += a0 * bj[0] + a1 * bj[1] + a2 * bj[2] + a3 * bj[3];
        }
      }
      pa += MR * detail::kQuantKP;
      pb += NR * detail::kQuantKP;
    }
    for (int r = 0; r < MR; ++r) {
      std::int32_t* crow = c + static_cast<std::size_t>(r) * ldc;
      if (accumulate) {
        for (int j = 0; j < NR; ++j) crow[j] += acc[r][j];
      } else {
        for (int j = 0; j < NR; ++j) crow[j] = acc[r][j];
      }
    }
  }
};

void scalar_gemm_s8(const std::uint8_t* a, int lda, const std::int8_t* b, std::int32_t* out,
                    int ldc, int n, int k, int m) {
  detail::gemm_s8_blocked<ScalarS8Micro>(a, lda, b, out, ldc, n, k, m);
}

/// Reference per-row activation quantizer: one quantize_row_u8 (gemm_s8.h)
/// per selected row. The branch-free inner clamp keeps the row loop
/// auto-vectorizable on targets whose compiler flags allow it.
void scalar_quantize_rows(const float* src, const int* rows, int count, int dim,
                          std::uint8_t* qa, float* scales, float* zeros) {
  for (int i = 0; i < count; ++i) {
    const int row = rows != nullptr ? rows[i] : i;
    detail::quantize_row_u8(src + static_cast<std::size_t>(row) * dim, dim,
                            qa + static_cast<std::size_t>(i) * dim, scales[i], zeros[i]);
  }
}

// ---------------------------------------------------------------------------
// Scalar fused-HGT primitives
// ---------------------------------------------------------------------------

/// All heads of one row in registers: the head blocks are independent, so a
/// compile-time head width lets every block's accumulator vectorize.
template <int HD>
void head_map_fixed(const float* __restrict x, const float* __restrict w,
                    float* __restrict out, int n, int heads) {
  const int dim = heads * HD;
  for (int i = 0; i < n; ++i) {
    const float* xrow = x + static_cast<std::size_t>(i) * dim;
    float* orow = out + static_cast<std::size_t>(i) * dim;
    for (int h = 0; h < heads; ++h) {
      float acc[HD] = {};
      const float* xh = xrow + h * HD;
      const float* wh = w + static_cast<std::size_t>(h) * HD * HD;
      for (int kk = 0; kk < HD; ++kk) {
        const float av = xh[kk];
        const float* wrow = wh + static_cast<std::size_t>(kk) * HD;
        for (int j = 0; j < HD; ++j) acc[j] += av * wrow[j];
      }
      float* oh = orow + h * HD;
      for (int j = 0; j < HD; ++j) oh[j] = acc[j];
    }
  }
}

void scalar_head_map(const float* x, const float* w, float* out, int n, int heads, int hd) {
  switch (hd) {
    case 2: return head_map_fixed<2>(x, w, out, n, heads);
    case 4: return head_map_fixed<4>(x, w, out, n, heads);
    case 8: return head_map_fixed<8>(x, w, out, n, heads);
    case 16: return head_map_fixed<16>(x, w, out, n, heads);
    default: break;
  }
  const int dim = heads * hd;
  for (int i = 0; i < n; ++i) {
    const float* xrow = x + static_cast<std::size_t>(i) * dim;
    float* orow = out + static_cast<std::size_t>(i) * dim;
    for (int h = 0; h < heads; ++h) {
      const float* xh = xrow + h * hd;
      const float* wh = w + static_cast<std::size_t>(h) * hd * hd;
      float* oh = orow + h * hd;
      std::fill(oh, oh + hd, 0.0f);
      for (int kk = 0; kk < hd; ++kk) {
        const float av = xh[kk];
        const float* wrow = wh + static_cast<std::size_t>(kk) * hd;
        for (int j = 0; j < hd; ++j) oh[j] += av * wrow[j];
      }
    }
  }
}

float scalar_dot(const float* a, const float* b, int d) {
  float acc = 0.0f;
  for (int j = 0; j < d; ++j) acc += a[j] * b[j];
  return acc;
}

void scalar_row_dot(const float* a, const float* b, float* out, int n, int d) {
  for (int i = 0; i < n; ++i) {
    const std::size_t row = static_cast<std::size_t>(i) * d;
    out[i] = scalar_dot(a + row, b + row, d);
  }
}

void scalar_hgt_logits(const float* k_map, const float* q, const int* srcs, const int* dsts,
                       const int* metas, const float* mu, int count, int heads, int hd,
                       float scale, float* logits, float* node_max) {
  const int dim = heads * hd;
  for (int p = 0; p < count; ++p) {
    const float* krow = k_map + static_cast<std::size_t>(srcs[p]) * dim;
    const float* qrow = q + static_cast<std::size_t>(dsts[p]) * dim;
    const float mu_e = mu[metas[p]];
    float* lrow = logits + static_cast<std::size_t>(p) * heads;
    float* mrow = node_max + static_cast<std::size_t>(dsts[p]) * heads;
    for (int h = 0; h < heads; ++h) {
      const float l = scalar_dot(krow + h * hd, qrow + h * hd, hd) * scale * mu_e;
      lrow[h] = l;
      mrow[h] = std::max(mrow[h], l);
    }
  }
}

void scalar_hgt_accumulate(const float* v_map, const int* srcs, const int* dsts, int count,
                           const float* logits, const float* node_max, int heads, int hd,
                           float* out, float* denom) {
  const int dim = heads * hd;
  for (int p = 0; p < count; ++p) {
    const float* vrow = v_map + static_cast<std::size_t>(srcs[p]) * dim;
    const float* lrow = logits + static_cast<std::size_t>(p) * heads;
    const float* mrow = node_max + static_cast<std::size_t>(dsts[p]) * heads;
    float* drow = denom + static_cast<std::size_t>(dsts[p]) * heads;
    float* orow = out + static_cast<std::size_t>(dsts[p]) * dim;
    for (int h = 0; h < heads; ++h) {
      const float w = fast_expf(lrow[h] - mrow[h]);
      drow[h] += w;
      const float* vv = vrow + h * hd;
      float* oo = orow + h * hd;
      for (int j = 0; j < hd; ++j) oo[j] += w * vv[j];
    }
  }
}

inline constexpr int kMaxHeadDim = 64;

void scalar_hgt_logits_direct(const float* k_all, const float* q, const float* w_att,
                              const int* srcs, const int* dsts, const int* metas,
                              const float* mu, int count, int heads, int hd, float scale,
                              float* logits, float* node_max) {
  const int dim = heads * hd;
  float mk_stack[kMaxHeadDim];
  std::vector<float> mk_heap(hd > kMaxHeadDim ? static_cast<std::size_t>(hd) : 0);
  float* const mk = hd > kMaxHeadDim ? mk_heap.data() : mk_stack;
  for (int p = 0; p < count; ++p) {
    const float* krow = k_all + static_cast<std::size_t>(srcs[p]) * dim;
    const float* qrow = q + static_cast<std::size_t>(dsts[p]) * dim;
    const float mu_e = mu[metas[p]];
    float* lrow = logits + static_cast<std::size_t>(p) * heads;
    float* mrow = node_max + static_cast<std::size_t>(dsts[p]) * heads;
    for (int h = 0; h < heads; ++h) {
      const float* kh = krow + h * hd;
      const float* wh = w_att + static_cast<std::size_t>(h) * hd * hd;
      for (int j = 0; j < hd; ++j) mk[j] = 0.0f;
      for (int kk = 0; kk < hd; ++kk) {
        const float kv = kh[kk];
        const float* wrow = wh + static_cast<std::size_t>(kk) * hd;
        for (int j = 0; j < hd; ++j) mk[j] += kv * wrow[j];
      }
      const float l = scalar_dot(mk, qrow + h * hd, hd) * scale * mu_e;
      lrow[h] = l;
      mrow[h] = std::max(mrow[h], l);
    }
  }
}

void scalar_hgt_accumulate_direct(const float* v_all, const float* w_msg, const int* srcs,
                                  const int* dsts, int count, const float* logits,
                                  const float* node_max, int heads, int hd, float* out,
                                  float* denom) {
  const int dim = heads * hd;
  float mv_stack[kMaxHeadDim];
  std::vector<float> mv_heap(hd > kMaxHeadDim ? static_cast<std::size_t>(hd) : 0);
  float* const mv = hd > kMaxHeadDim ? mv_heap.data() : mv_stack;
  for (int p = 0; p < count; ++p) {
    const float* vrow = v_all + static_cast<std::size_t>(srcs[p]) * dim;
    const float* lrow = logits + static_cast<std::size_t>(p) * heads;
    const float* mrow = node_max + static_cast<std::size_t>(dsts[p]) * heads;
    float* drow = denom + static_cast<std::size_t>(dsts[p]) * heads;
    float* orow = out + static_cast<std::size_t>(dsts[p]) * dim;
    for (int h = 0; h < heads; ++h) {
      const float* vh = vrow + h * hd;
      const float* wh = w_msg + static_cast<std::size_t>(h) * hd * hd;
      for (int j = 0; j < hd; ++j) mv[j] = 0.0f;
      for (int kk = 0; kk < hd; ++kk) {
        const float vv = vh[kk];
        const float* wrow = wh + static_cast<std::size_t>(kk) * hd;
        for (int j = 0; j < hd; ++j) mv[j] += vv * wrow[j];
      }
      const float w = fast_expf(lrow[h] - mrow[h]);
      drow[h] += w;
      float* oo = orow + h * hd;
      for (int j = 0; j < hd; ++j) oo[j] += w * mv[j];
    }
  }
}

void scalar_gelu(const float* x, float* out, int n) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kA = 0.044715f;
  for (int i = 0; i < n; ++i) {
    const float v = x[i];
    out[i] = 0.5f * v * (1.0f + fast_tanhf(kC * (v + kA * v * v * v)));
  }
}

// ---------------------------------------------------------------------------
// Scalar segment kernels (check-free: ids validated by the caller)
// ---------------------------------------------------------------------------

void scalar_segment_softmax(const float* logits, const int* seg, int e, int num_segments,
                            float* out) {
  std::vector<float> seg_max(static_cast<std::size_t>(num_segments),
                             -std::numeric_limits<float>::infinity());
  for (int i = 0; i < e; ++i) {
    auto& m = seg_max[static_cast<std::size_t>(seg[i])];
    m = std::max(m, logits[i]);
  }
  std::vector<float> denom(static_cast<std::size_t>(num_segments), 0.0f);
  for (int i = 0; i < e; ++i) {
    const auto s = static_cast<std::size_t>(seg[i]);
    out[i] = fast_expf(logits[i] - seg_max[s]);
    denom[s] += out[i];
  }
  for (int i = 0; i < e; ++i) {
    out[i] /= std::max(denom[static_cast<std::size_t>(seg[i])], 1e-12f);
  }
}

void scalar_segment_sum_rows(const float* x, const int* seg, int n, int d, int num_segments,
                             float* out) {
  std::fill(out, out + static_cast<std::size_t>(num_segments) * d, 0.0f);
  for (int i = 0; i < n; ++i) {
    const float* src = x + static_cast<std::size_t>(i) * d;
    float* dst = out + static_cast<std::size_t>(seg[i]) * d;
    for (int j = 0; j < d; ++j) dst[j] += src[j];
  }
}

void scalar_segment_weighted_sum_rows(const float* x, const float* w, const int* seg, int n,
                                      int d, int num_segments, float* out) {
  std::fill(out, out + static_cast<std::size_t>(num_segments) * d, 0.0f);
  for (int i = 0; i < n; ++i) {
    const float wi = w[i];
    const float* src = x + static_cast<std::size_t>(i) * d;
    float* dst = out + static_cast<std::size_t>(seg[i]) * d;
    for (int j = 0; j < d; ++j) dst[j] += wi * src[j];
  }
}

constexpr Kernels kScalar = {
    "scalar",
    scalar_matmul,
    scalar_gemm,
    scalar_gemm_s8,
    scalar_quantize_rows,
    scalar_head_map,
    scalar_hgt_logits,
    scalar_hgt_accumulate,
    scalar_hgt_logits_direct,
    scalar_hgt_accumulate_direct,
    scalar_row_dot,
    scalar_gelu,
    scalar_segment_softmax,
    scalar_segment_sum_rows,
    scalar_segment_weighted_sum_rows,
};

// ---------------------------------------------------------------------------
// NEON (aarch64: baseline feature, no extra compile flags needed)
// ---------------------------------------------------------------------------

#if defined(__ARM_NEON)

float neon_dot(const float* a, const float* b, int d) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  int j = 0;
  for (; j + 4 <= d; j += 4) {
    acc = vmlaq_f32(acc, vld1q_f32(a + j), vld1q_f32(b + j));
  }
  float sum = vaddvq_f32(acc);
  for (; j < d; ++j) sum += a[j] * b[j];
  return sum;
}

void neon_row_dot(const float* a, const float* b, float* out, int n, int d) {
  for (int i = 0; i < n; ++i) {
    const std::size_t row = static_cast<std::size_t>(i) * d;
    out[i] = neon_dot(a + row, b + row, d);
  }
}

void neon_hgt_logits(const float* k_map, const float* q, const int* srcs, const int* dsts,
                     const int* metas, const float* mu, int count, int heads, int hd,
                     float scale, float* logits, float* node_max) {
  const int dim = heads * hd;
  for (int p = 0; p < count; ++p) {
    const float* krow = k_map + static_cast<std::size_t>(srcs[p]) * dim;
    const float* qrow = q + static_cast<std::size_t>(dsts[p]) * dim;
    const float mu_e = mu[metas[p]];
    float* lrow = logits + static_cast<std::size_t>(p) * heads;
    float* mrow = node_max + static_cast<std::size_t>(dsts[p]) * heads;
    for (int h = 0; h < heads; ++h) {
      const float l = neon_dot(krow + h * hd, qrow + h * hd, hd) * scale * mu_e;
      lrow[h] = l;
      mrow[h] = std::max(mrow[h], l);
    }
  }
}

void neon_hgt_accumulate(const float* v_map, const int* srcs, const int* dsts, int count,
                         const float* logits, const float* node_max, int heads, int hd,
                         float* out, float* denom) {
  const int dim = heads * hd;
  for (int p = 0; p < count; ++p) {
    const float* vrow = v_map + static_cast<std::size_t>(srcs[p]) * dim;
    const float* lrow = logits + static_cast<std::size_t>(p) * heads;
    const float* mrow = node_max + static_cast<std::size_t>(dsts[p]) * heads;
    float* drow = denom + static_cast<std::size_t>(dsts[p]) * heads;
    float* orow = out + static_cast<std::size_t>(dsts[p]) * dim;
    for (int h = 0; h < heads; ++h) {
      const float w = fast_expf(lrow[h] - mrow[h]);
      drow[h] += w;
      const float* vv = vrow + h * hd;
      float* oo = orow + h * hd;
      int j = 0;
      const float32x4_t vw = vdupq_n_f32(w);
      for (; j + 4 <= hd; j += 4) {
        vst1q_f32(oo + j, vmlaq_f32(vld1q_f32(oo + j), vw, vld1q_f32(vv + j)));
      }
      for (; j < hd; ++j) oo[j] += w * vv[j];
    }
  }
}

/// Head blocks with hd % 4 == 0: accumulate each block 4 lanes at a time,
/// broadcasting x along k (ascending, matching the scalar reduction order).
void neon_head_map(const float* x, const float* w, float* out, int n, int heads, int hd) {
  if (hd % 4 != 0) return scalar_head_map(x, w, out, n, heads, hd);
  const int dim = heads * hd;
  for (int i = 0; i < n; ++i) {
    const float* xrow = x + static_cast<std::size_t>(i) * dim;
    float* orow = out + static_cast<std::size_t>(i) * dim;
    for (int h = 0; h < heads; ++h) {
      const float* xh = xrow + h * hd;
      const float* wh = w + static_cast<std::size_t>(h) * hd * hd;
      float* oh = orow + h * hd;
      for (int j = 0; j < hd; j += 4) {
        float32x4_t acc = vdupq_n_f32(0.0f);
        for (int kk = 0; kk < hd; ++kk) {
          acc = vmlaq_n_f32(acc, vld1q_f32(wh + static_cast<std::size_t>(kk) * hd + j),
                            xh[kk]);
        }
        vst1q_f32(oh + j, acc);
      }
    }
  }
}

constexpr Kernels kNeon = {
    "neon",
    scalar_matmul,   // the tuned scalar kernels auto-vectorize on aarch64
    scalar_gemm,     // ScalarMicro's fixed-width tile vectorizes likewise
    scalar_gemm_s8,  // ScalarS8Micro's int32 tile vectorizes (smull/sadalp class)
    scalar_quantize_rows,  // min/max scan + branch-free clamp vectorize likewise
    neon_head_map,
    neon_hgt_logits,
    neon_hgt_accumulate,
    scalar_hgt_logits_direct,  // gather-free map: auto-vectorizes on aarch64
    scalar_hgt_accumulate_direct,
    neon_row_dot,
    scalar_gelu,  // aarch64 compilers auto-vectorize the polynomial well
    scalar_segment_softmax,
    scalar_segment_sum_rows,
    scalar_segment_weighted_sum_rows,
};

#endif  // __ARM_NEON

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const Kernels* resolve_auto() {
  if (cpu_has_avx2_fma()) {
    if (const Kernels* t = avx2_table()) return t;
  }
#if defined(__ARM_NEON)
  return &kNeon;
#endif
  return &kScalar;
}

const Kernels* resolve_from_env() {
  if (const char* e = std::getenv("G2P_BACKEND")) {
    const std::string_view want(e);
    if (!want.empty() && want != "auto") {
      if (const Kernels* t = by_name(want)) return t;
      std::fprintf(stderr, "g2p: G2P_BACKEND=%s unavailable, using auto dispatch\n", e);
    }
  }
  return resolve_auto();
}

std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

const Kernels* by_name(std::string_view name) {
  if (name == "scalar") return &kScalar;
  if (name == "auto") return resolve_auto();
  if (name == "avx2") return cpu_has_avx2_fma() ? avx2_table() : nullptr;
#if defined(__ARM_NEON)
  if (name == "neon") return &kNeon;
#else
  if (name == "neon") return nullptr;
#endif
  return nullptr;
}

const Kernels& active() {
  const Kernels* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    // Benign race: concurrent first calls resolve to the same table.
    t = resolve_from_env();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

const Kernels& scalar() { return kScalar; }

const char* active_name() { return active().name; }

bool set_active(std::string_view name) {
  const Kernels* t = by_name(name);
  if (t == nullptr) return false;
  g_active.store(t, std::memory_order_release);
  return true;
}

namespace {

/// G2P_GEMM=0/off pins matmul_auto to the legacy kernels. Read once.
bool gemm_env_enabled() {
  static const bool enabled = [] {
    const char* e = std::getenv("G2P_GEMM");
    if (e == nullptr) return true;
    const std::string_view v(e);
    return v != "0" && v != "off" && v != "false";
  }();
  return enabled;
}

/// G2P_GEMM_THREADS caps the matmul_mt fan-out (<= 0 / unset: no cap beyond
/// the pool's width). Read once.
unsigned gemm_thread_cap() {
  static const unsigned cap = [] {
    if (const char* e = std::getenv("G2P_GEMM_THREADS")) {
      const int v = std::atoi(e);
      if (v > 0) return static_cast<unsigned>(v);
    }
    return 0u;
  }();
  return cap;
}

/// Where the blocked GEMM starts beating the legacy kernels: the packed
/// panels cost two extra passes over A and B, so tiny products stay on the
/// register-specialized paths, as do the narrow head matrices (m <= 8) whose
/// replicated-B kernels the tile can't match. Thresholds picked by
/// bench_gemm sweeps on the serving shapes.
bool gemm_profitable(int n, int k, int m) {
  if (m < 16 || n < 8 || k < 4) return false;
  return static_cast<std::size_t>(n) * static_cast<std::size_t>(k) *
             static_cast<std::size_t>(m) >=
         (1u << 15);
}

}  // namespace

void matmul_auto(const float* a, const float* b, float* out, int n, int k, int m) {
  const Kernels& kern = active();
  if (gemm_env_enabled() && gemm_profitable(n, k, m)) {
    kern.gemm(a, b, out, n, k, m);
  } else {
    kern.matmul(a, b, out, n, k, m);
  }
}

void matmul_mt(const float* a, const float* b, float* out, int n, int k, int m,
               ThreadPool* pool) {
  // Row panels of at least this many rows per worker: below that the
  // per-chunk B re-pack and queue round trip outweigh the parallelism.
  constexpr int kMinRowsPerChunk = 64;
  std::size_t chunks = pool != nullptr ? pool->size() : 1;
  if (const unsigned cap = gemm_thread_cap(); cap != 0) {
    chunks = std::min<std::size_t>(chunks, cap);
  }
  chunks = std::min<std::size_t>(chunks, static_cast<std::size_t>(n) / kMinRowsPerChunk);
  if (chunks <= 1) {
    matmul_auto(a, b, out, n, k, m);
    return;
  }
  // Pick the kernel once, on the FULL shape: re-running the heuristic on
  // each chunk's smaller n could route chunks to the other kernel, whose
  // rounding differs in the last ulps — breaking the bitwise
  // single-vs-threaded guarantee.
  const Kernels& kern = active();
  const auto kernel = gemm_env_enabled() && gemm_profitable(n, k, m) ? kern.gemm : kern.matmul;
  const std::size_t per_chunk =
      (static_cast<std::size_t>(n) + chunks - 1) / chunks;
  pool->parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * per_chunk;
    if (begin >= static_cast<std::size_t>(n)) return;
    const std::size_t rows =
        std::min(per_chunk, static_cast<std::size_t>(n) - begin);
    kernel(a + begin * static_cast<std::size_t>(k), b,
           out + begin * static_cast<std::size_t>(m), static_cast<int>(rows), k, m);
  });
}

void gemm_s8_mt(const std::uint8_t* a, int lda, const std::int8_t* b, std::int32_t* out,
                int ldc, int n, int k, int m, ThreadPool* pool) {
  // Same chunking policy as matmul_mt; the int32 accumulators make the row
  // split bitwise-neutral, so no full-shape kernel pinning is needed.
  constexpr int kMinRowsPerChunk = 64;
  std::size_t chunks = pool != nullptr ? pool->size() : 1;
  if (const unsigned cap = gemm_thread_cap(); cap != 0) {
    chunks = std::min<std::size_t>(chunks, cap);
  }
  chunks = std::min<std::size_t>(chunks, static_cast<std::size_t>(n) / kMinRowsPerChunk);
  const auto kernel = active().gemm_s8;
  if (chunks <= 1) {
    kernel(a, lda, b, out, ldc, n, k, m);
    return;
  }
  const std::size_t per_chunk = (static_cast<std::size_t>(n) + chunks - 1) / chunks;
  pool->parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * per_chunk;
    if (begin >= static_cast<std::size_t>(n)) return;
    const std::size_t rows = std::min(per_chunk, static_cast<std::size_t>(n) - begin);
    kernel(a + begin * static_cast<std::size_t>(lda), lda, b,
           out + begin * static_cast<std::size_t>(ldc), ldc, static_cast<int>(rows), k, m);
  });
}

}  // namespace g2p::backend
