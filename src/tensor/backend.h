// Runtime-dispatched SIMD backend for the dense tensor kernels.
//
// The tensor ops used to be compiled in-place in ops.cpp, which meant the
// binary only vectorized when built with -march=native. This seam moves the
// hot forward kernels behind a table of function pointers resolved once at
// startup: an AVX2+FMA implementation compiled in its own translation unit
// with -mavx2 -mfma (selected via CPUID, so portable binaries still run on
// pre-AVX2 machines), a NEON variant on aarch64, and a scalar fallback that
// is always available and defines the reference semantics. The fused HGT
// inference kernel (nn/hgt.cpp) and the autograd forward passes (ops.cpp)
// both draw their inner loops from here; future backends (BLAS, GPU) slot in
// as another Kernels table.
//
// Numerics: every kernel reduces the k/depth axis in ascending index order,
// so scalar and SIMD backends agree to float rounding (FMA contraction and
// lane-wise partial sums may differ in the last ulp or two — callers that
// compare across backends use tolerances, never bitwise equality). Within
// one backend, results are deterministic.
//
// Environment (every G2P_* runtime knob is documented in docs/tuning.md):
//   G2P_BACKEND = auto (default) | scalar | avx2 | neon
//     "auto" picks the best table the CPU supports; naming an unavailable
//     backend falls back to auto with a stderr note. Read once, at the first
//     call to active().
//   G2P_GEMM = 1 (default) | 0 | off
//     Opt-out for the cache-blocked packed GEMM: when disabled, matmul_auto
//     always takes the legacy width-specialized `matmul` kernels (A-B
//     debugging, perf bisection). Read once.
//   G2P_GEMM_THREADS = unset (default: the pool's width) | N
//     Caps how many workers matmul_mt fans a GEMM out over; 1 pins the
//     threaded entry point to the single-thread kernel. Read once.
//   G2P_PRECISION = fp32 | int8 (serving precision override; read once in
//     nn/hgt.cpp — the int8 path dispatches through Kernels::gemm_s8 below).
//   G2P_FAILPOINTS = site=action[@p[,seed]][;...] (fault injection into the
//     serving path, including this layer's pool.acquire seam; grammar in
//     support/failpoint.h, semantics in docs/serving.md).
#pragma once

#include <cstdint>
#include <string_view>

namespace g2p {
class ThreadPool;
}

namespace g2p::backend {

/// One backend's kernel table. All pointers are always non-null.
struct Kernels {
  const char* name;

  /// Row-major [n,k] x [k,m] -> [n,m]; out is fully overwritten. The legacy
  /// width-specialized register kernels: unbeatable on the narrow head
  /// matrices (m <= 8, k <= 64) and cheap on small inputs, but neither
  /// cache-blocked nor packed — prefer matmul_auto(), which routes large
  /// shapes to `gemm`.
  void (*matmul)(const float* a, const float* b, float* out, int n, int k, int m);

  /// Same contract as `matmul`, computed by the cache-blocked packed GEMM
  /// (gemm_blocked.h): GotoBLAS-style panel packing into 64-byte-aligned
  /// tensor_pool scratch with a per-backend register-tiled micro-kernel
  /// (6x16 AVX2+FMA, 4x8 scalar/NEON). Wins once B no longer fits L1 and/or
  /// n is large enough to amortize packing; matmul_auto() holds the shape
  /// heuristic so callers don't choose by hand.
  void (*gemm)(const float* a, const float* b, float* out, int n, int k, int m);

  /// Quantized GEMM: row-major u8 activations [n, k] (row stride lda,
  /// values in [0, 127] — the 7-bit activation range of the int8 serving
  /// contract, see gemm_s8.h) times s8 weights [k, m] (contiguous), into
  /// exact int32 accumulators [n, m] (row stride ldc), fully overwritten.
  /// Same GotoBLAS-style packed/blocked driver as `gemm`
  /// (gemm_s8_blocked<Micro> in gemm_s8.h) with a vpmaddubsw/vpmaddwd
  /// micro-kernel on AVX2 and a scalar reference tile that defines the
  /// semantics. Integer accumulation is exact, so every backend — and any
  /// row-panel split (gemm_s8_mt) — is bitwise-identical. Scales,
  /// zero-points, and the fp32 dequant epilogue are the caller's (the fused
  /// HGT forward folds dequant into its bias+residual scatters).
  void (*gemm_s8)(const std::uint8_t* a, int lda, const std::int8_t* b,
                  std::int32_t* out, int ldc, int n, int k, int m);

  /// Dynamic per-row activation quantization for the int8 serving path
  /// (the gather half of the quantize-and-pack step): for each i in
  /// [0, count), read the [dim] fp32 row `src + rows[i]*dim` (or row i when
  /// `rows` is null), scan its min/max, and emit u8 codes in [0, 127] into
  /// `qa + i*dim` with scales[i]/zeros[i] such that
  ///   src[row, j] ~= zeros[i] + scales[i] * qa[i, j]
  /// (asymmetric, 7-bit — see gemm_s8.h for why 127). Min/max are exact in
  /// any evaluation order, so scales and zero-points are bitwise-identical
  /// across backends; the fp32 rounding into codes may differ by one step
  /// on half-ulp ties (callers compare dequantized values with tolerances,
  /// like every other fp32 kernel here).
  void (*quantize_rows)(const float* src, const int* rows, int count, int dim,
                        std::uint8_t* qa, float* scales, float* zeros);

  /// Block-diagonal per-head map, the fused-HGT weight application:
  ///   out[i, h*hd + j] = sum_k x[i, h*hd + k] * w[(h*hd + k)*hd + j]
  /// `w` holds `heads` dense [hd, hd] blocks back to back — the cached
  /// per-edge-type fusion of the HGT W_ATT / W_MSG head matrices. One call
  /// applies every head to every row.
  void (*head_map)(const float* x, const float* w, float* out, int n, int heads, int hd);

  /// Fused-HGT attention logits for one edge type's whole CSR block
  /// (`count` edges, all heads, one call):
  ///   logits[p*heads + h] =
  ///       dot(k_map[srcs[p]*dim + h*hd ..], q[dsts[p]*dim + h*hd ..], hd)
  ///       * scale * mu[metas[p]]        (dim = heads*hd)
  /// and node_max[dsts[p]*heads + h] streams the running per-destination
  /// per-head maximum (callers seed it with -inf once per forward — the
  /// online-softmax max pass, shared across edge types).
  void (*hgt_logits)(const float* k_map, const float* q, const int* srcs, const int* dsts,
                     const int* metas, const float* mu, int count, int heads, int hd,
                     float scale, float* logits, float* node_max);

  /// Fused-HGT weighted message scatter for the same block:
  ///   w = exp(logits[p*heads + h] - node_max[dsts[p]*heads + h]);
  ///   denom[dsts[p]*heads + h] += w;
  ///   out[dsts[p]*dim + h*hd ..] += w * v_map[srcs[p]*dim + h*hd ..]
  /// `out` accumulates the un-normalized aggregate; the caller divides by
  /// denom per (destination, head) afterwards (the online-softmax sum pass).
  void (*hgt_accumulate)(const float* v_map, const int* srcs, const int* dsts, int count,
                         const float* logits, const float* node_max, int heads, int hd,
                         float* out, float* denom);

  /// Sparse-edge-type variant of hgt_logits: instead of reading
  /// pre-mapped rows, applies the cached per-edge-type weight blocks
  /// `w_att` (`heads` dense [hd, hd] blocks) to the source's K row in
  /// registers, per edge:
  ///   mk[h, :] = k_all[srcs[p]*dim, h*hd ..] · w_att[h]
  ///   logits[p*heads + h] = dot(mk[h, :], q[dsts[p]*dim + h*hd ..])
  ///                         * scale * mu[metas[p]]
  /// Used when an edge type has fewer edges than the graph has nodes, where
  /// the [N, dim] head_map pre-pass would cost more than it saves (and its
  /// buffer would pressure the cache). Same reduction order as head_map.
  void (*hgt_logits_direct)(const float* k_all, const float* q, const float* w_att,
                            const int* srcs, const int* dsts, const int* metas,
                            const float* mu, int count, int heads, int hd, float scale,
                            float* logits, float* node_max);

  /// Sparse-edge-type variant of hgt_accumulate: maps the source's V row
  /// through `w_msg` in registers, then scatters the exp-weighted message.
  void (*hgt_accumulate_direct)(const float* v_all, const float* w_msg, const int* srcs,
                                const int* dsts, int count, const float* logits,
                                const float* node_max, int heads, int hd, float* out,
                                float* denom);

  /// out[i] = dot(a[i,:], b[i,:]) for [n,d] inputs.
  void (*row_dot)(const float* a, const float* b, float* out, int n, int d);

  /// Elementwise tanh-approximation GELU:
  ///   out[i] = 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
  /// with tanh via the exp identity — the same construction as
  /// fastmath.h's fast_tanhf, but vectorizable (SIMD backends use a
  /// lane-parallel exp with nearest-even rounding in the range reduction;
  /// agreement with the scalar kernel is ~1e-7 relative, not bitwise).
  void (*gelu)(const float* x, float* out, int n);

  /// Per-segment softmax over rank-1 logits. Segment ids must already be
  /// validated in [0, num_segments) — this is the check-free inner kernel.
  void (*segment_softmax)(const float* logits, const int* seg, int e, int num_segments,
                          float* out);

  /// out[seg[i], :] += x[i, :]; out is [num_segments, d], fully overwritten
  /// (zeroed first). Check-free: segment ids validated by the caller.
  void (*segment_sum_rows)(const float* x, const int* seg, int n, int d, int num_segments,
                           float* out);

  /// out[seg[i], :] += w[i] * x[i, :]; same contract as segment_sum_rows.
  void (*segment_weighted_sum_rows)(const float* x, const float* w, const int* seg, int n,
                                    int d, int num_segments, float* out);
};

/// The dispatch-selected table (CPUID + G2P_BACKEND, resolved once).
const Kernels& active();

/// The scalar reference table (always available; defines the semantics).
const Kernels& scalar();

/// Name of the active table ("scalar", "avx2", "neon").
const char* active_name();

/// Force a specific backend in-process (tests/bench only; not thread-safe
/// against concurrent forwards). Returns false and leaves the active table
/// unchanged if `name` is unknown or unsupported on this CPU.
bool set_active(std::string_view name);

/// The table `name` resolves to on this machine, or nullptr if unavailable.
const Kernels* by_name(std::string_view name);

/// Single-thread matmul with automatic kernel selection on the active table:
/// the blocked/packed `gemm` when the shape is large enough to amortize
/// panel packing, the legacy width-specialized `matmul` kernels otherwise
/// (always, under G2P_GEMM=0). This is what the autograd forward kernels
/// (ops.cpp) call.
void matmul_auto(const float* a, const float* b, float* out, int n, int k, int m);

/// Multithreaded matmul: splits the row dimension into per-worker panels on
/// `pool` and runs the active table's kernel (via matmul_auto) on each slice
/// concurrently. Output is identical to the single-thread kernel — row
/// panels don't change any element's reduction order. Null pool, a
/// single-thread pool, tiny n, or G2P_GEMM_THREADS=1 degrade to one inline
/// matmul_auto call. Re-entrancy-safe: called from one of `pool`'s own
/// workers, parallel_for runs the slices inline (no deadlock at
/// saturation), so nested use under a parallel encode is harmless.
void matmul_mt(const float* a, const float* b, float* out, int n, int k, int m,
               ThreadPool* pool);

/// Multithreaded quantized GEMM: the matmul_mt row-panel fan-out over the
/// active table's gemm_s8 (same G2P_GEMM_THREADS cap and min-rows chunking).
/// Integer accumulation makes the split bitwise-neutral; null pool, tiny n,
/// or a single worker degrade to one inline kernel call.
void gemm_s8_mt(const std::uint8_t* a, int lda, const std::int8_t* b, std::int32_t* out,
                int ldc, int n, int k, int m, ThreadPool* pool);

}  // namespace g2p::backend
