// AVX2 + FMA kernel table.
//
// This translation unit is compiled with -mavx2 -mfma (set per-file in
// CMakeLists.txt when the toolchain supports it, independent of G2P_NATIVE)
// and is only ever *executed* after backend.cpp's CPUID check confirms the
// machine has AVX2 and FMA — so the intrinsics here never fault on older
// hardware even in portable builds.
//
// Reduction order matches the scalar kernels (k ascending); FMA contraction
// and 8-lane partial sums can differ from scalar results in the last ulps,
// which is why cross-backend comparisons use tolerances.

#include "tensor/backend.h"

#if defined(G2P_BACKEND_AVX2_ENABLED)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "tensor/fastmath.h"
#include "tensor/gemm_blocked.h"
#include "tensor/gemm_s8.h"

namespace g2p::backend {

namespace {

// ---------------------------------------------------------------------------
// Dense matmul: m % 8 == 0 fast paths, scalar table fallback otherwise
// ---------------------------------------------------------------------------

/// Two output rows x MV eight-lane column blocks held in registers across
/// the k loop (MV=4 covers m=32 with 8 accumulators + 2 broadcasts in
/// flight — comfortably inside the 16 YMM registers).
template <int MV>
void matmul_rows2(const float* a, const float* b, float* out, int n, int k) {
  constexpr int M = MV * 8;
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    __m256 acc0[MV], acc1[MV];
    for (int v = 0; v < MV; ++v) {
      acc0[v] = _mm256_setzero_ps();
      acc1[v] = _mm256_setzero_ps();
    }
    const float* a0 = a + static_cast<std::size_t>(i) * k;
    const float* a1 = a0 + k;
    for (int kk = 0; kk < k; ++kk) {
      const __m256 v0 = _mm256_broadcast_ss(a0 + kk);
      const __m256 v1 = _mm256_broadcast_ss(a1 + kk);
      const float* brow = b + static_cast<std::size_t>(kk) * M;
      for (int v = 0; v < MV; ++v) {
        const __m256 bv = _mm256_loadu_ps(brow + v * 8);
        acc0[v] = _mm256_fmadd_ps(v0, bv, acc0[v]);
        acc1[v] = _mm256_fmadd_ps(v1, bv, acc1[v]);
      }
    }
    float* o0 = out + static_cast<std::size_t>(i) * M;
    float* o1 = o0 + M;
    for (int v = 0; v < MV; ++v) {
      _mm256_storeu_ps(o0 + v * 8, acc0[v]);
      _mm256_storeu_ps(o1 + v * 8, acc1[v]);
    }
  }
  if (i < n) {
    __m256 acc[MV];
    for (int v = 0; v < MV; ++v) acc[v] = _mm256_setzero_ps();
    const float* a0 = a + static_cast<std::size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const __m256 v0 = _mm256_broadcast_ss(a0 + kk);
      const float* brow = b + static_cast<std::size_t>(kk) * M;
      for (int v = 0; v < MV; ++v) {
        acc[v] = _mm256_fmadd_ps(v0, _mm256_loadu_ps(brow + v * 8), acc[v]);
      }
    }
    float* o0 = out + static_cast<std::size_t>(i) * M;
    for (int v = 0; v < MV; ++v) _mm256_storeu_ps(o0 + v * 8, acc[v]);
  }
}

/// Four rows x one eight-lane block: the m == 8 head-matrix shape.
void matmul_m8(const float* a, const float* b, float* out, int n, int k) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
    const float* a0 = a + static_cast<std::size_t>(i) * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    for (int kk = 0; kk < k; ++kk) {
      const __m256 bv = _mm256_loadu_ps(b + static_cast<std::size_t>(kk) * 8);
      acc0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + kk), bv, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + kk), bv, acc1);
      acc2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a2 + kk), bv, acc2);
      acc3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a3 + kk), bv, acc3);
    }
    float* orow = out + static_cast<std::size_t>(i) * 8;
    _mm256_storeu_ps(orow, acc0);
    _mm256_storeu_ps(orow + 8, acc1);
    _mm256_storeu_ps(orow + 16, acc2);
    _mm256_storeu_ps(orow + 24, acc3);
  }
  for (; i < n; ++i) {
    __m256 acc = _mm256_setzero_ps();
    const float* a0 = a + static_cast<std::size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      acc = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + kk),
                            _mm256_loadu_ps(b + static_cast<std::size_t>(kk) * 8), acc);
    }
    _mm256_storeu_ps(out + static_cast<std::size_t>(i) * 8, acc);
  }
}

void avx2_matmul(const float* a, const float* b, float* out, int n, int k, int m) {
  switch (m) {
    case 8: return matmul_m8(a, b, out, n, k);
    case 16: return matmul_rows2<2>(a, b, out, n, k);
    case 32: return matmul_rows2<4>(a, b, out, n, k);
    case 64: return matmul_rows2<8>(a, b, out, n, k);
    default: break;
  }
  if (m % 8 == 0 && m <= 256) {
    // Generic multiple-of-8 width: one row in flight, column blocks of 8.
    for (int i = 0; i < n; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      float* orow = out + static_cast<std::size_t>(i) * m;
      for (int j = 0; j < m; j += 8) {
        __m256 acc = _mm256_setzero_ps();
        for (int kk = 0; kk < k; ++kk) {
          acc = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + kk),
                                _mm256_loadu_ps(b + static_cast<std::size_t>(kk) * m + j),
                                acc);
        }
        _mm256_storeu_ps(orow + j, acc);
      }
    }
    return;
  }
  scalar().matmul(a, b, out, n, k, m);
}

// ---------------------------------------------------------------------------
// Blocked GEMM micro-kernel (gemm_blocked.h drives the blocking)
// ---------------------------------------------------------------------------

/// 6x16 register tile: 12 YMM accumulators + 2 packed-B vectors + 1 A
/// broadcast stay inside the 16 architectural registers, and every cycle
/// feeds both FMA pipes — the configuration the legacy single-row kernels
/// (one latency-bound chain per column block) cannot reach. Packed B panels
/// are 64-byte aligned (tensor_pool scratch), so the B loads are aligned.
struct Avx2Micro {
  static constexpr int MR = 6;
  static constexpr int NR = 16;
  static void run(int kc, const float* __restrict pa, const float* __restrict pb,
                  float* __restrict c, int ldc, bool accumulate) {
    __m256 acc[MR][2];
    for (int r = 0; r < MR; ++r) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    }
    for (int kk = 0; kk < kc; ++kk) {
      const __m256 b0 = _mm256_load_ps(pb);
      const __m256 b1 = _mm256_load_ps(pb + 8);
      pb += NR;
      for (int r = 0; r < MR; ++r) {
        const __m256 av = _mm256_broadcast_ss(pa + r);
        acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
        acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
      }
      pa += MR;
    }
    for (int r = 0; r < MR; ++r) {
      float* crow = c + static_cast<std::size_t>(r) * ldc;
      if (accumulate) {
        _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
        _mm256_storeu_ps(crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
      } else {
        _mm256_storeu_ps(crow, acc[r][0]);
        _mm256_storeu_ps(crow + 8, acc[r][1]);
      }
    }
  }
};

void avx2_gemm(const float* a, const float* b, float* out, int n, int k, int m) {
  detail::gemm_blocked<Avx2Micro>(a, b, out, n, k, m);
}

// ---------------------------------------------------------------------------
// Quantized GEMM micro-kernel (gemm_s8.h drives blocking and packing)
// ---------------------------------------------------------------------------

/// 4x16 int32 tile on the maddubs/madd pair: per depth group of four, one
/// u32 broadcast of a row's four activation bytes meets two packed weight
/// vectors (16 columns x 4 k-bytes each); vpmaddubsw forms the u8*s8 pair
/// sums in int16 — exact, because activations are capped at 127
/// (gemm_s8.h) so 127*127*2 < 2^15 never saturates — and vpmaddwd folds
/// them into one int32 per column. 8 accumulators + 2 B vectors + 1
/// broadcast + the ones constant stay well inside the 16 YMM registers.
struct Avx2S8Micro {
  static constexpr int MR = 4;
  static constexpr int NR = 16;
  static void run(int kc4, const std::uint8_t* __restrict pa, const std::int8_t* __restrict pb,
                  std::int32_t* __restrict c, int ldc, bool accumulate) {
    __m256i acc[MR][2];
    for (int r = 0; r < MR; ++r) {
      acc[r][0] = _mm256_setzero_si256();
      acc[r][1] = _mm256_setzero_si256();
    }
    const __m256i ones = _mm256_set1_epi16(1);
    for (int kb = 0; kb < kc4; ++kb) {
      const __m256i b0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(pb));
      const __m256i b1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(pb + 32));
      for (int r = 0; r < MR; ++r) {
        std::int32_t a4;
        std::memcpy(&a4, pa + r * 4, sizeof(a4));
        const __m256i av = _mm256_set1_epi32(a4);
        const __m256i p0 = _mm256_maddubs_epi16(av, b0);
        const __m256i p1 = _mm256_maddubs_epi16(av, b1);
        acc[r][0] = _mm256_add_epi32(acc[r][0], _mm256_madd_epi16(p0, ones));
        acc[r][1] = _mm256_add_epi32(acc[r][1], _mm256_madd_epi16(p1, ones));
      }
      pa += MR * 4;
      pb += NR * 4;
    }
    for (int r = 0; r < MR; ++r) {
      std::int32_t* crow = c + static_cast<std::size_t>(r) * ldc;
      __m256i* crow0 = reinterpret_cast<__m256i*>(crow);
      __m256i* crow1 = reinterpret_cast<__m256i*>(crow + 8);
      if (accumulate) {
        _mm256_storeu_si256(crow0, _mm256_add_epi32(_mm256_loadu_si256(crow0), acc[r][0]));
        _mm256_storeu_si256(crow1, _mm256_add_epi32(_mm256_loadu_si256(crow1), acc[r][1]));
      } else {
        _mm256_storeu_si256(crow0, acc[r][0]);
        _mm256_storeu_si256(crow1, acc[r][1]);
      }
    }
  }
};

void avx2_gemm_s8(const std::uint8_t* a, int lda, const std::int8_t* b, std::int32_t* out,
                  int ldc, int n, int k, int m) {
  detail::gemm_s8_blocked<Avx2S8Micro>(a, lda, b, out, ldc, n, k, m);
}

/// Horizontal min / max of one YMM.
inline float hmin_ps(__m256 v) {
  __m128 lo = _mm_min_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  lo = _mm_min_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_min_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}
inline float hmax_ps(__m256 v) {
  __m128 lo = _mm_max_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

/// Per-row dynamic activation quantizer: vectorized min/max scan, then
/// (x - lo) * inv + 0.5 truncated to u8 with a float-side upper clamp
/// (the value is >= 0.5 by construction, so no lower clamp). Min/max are
/// exact in any lane order — scales and zero-points match the scalar
/// reference bitwise; code rounding matches up to fp32 contraction ties.
void avx2_quantize_rows(const float* src, const int* rows, int count, int dim,
                        std::uint8_t* qa, float* scales, float* zeros) {
  // i32 (a0 b0 a1 b1 | a2 b2 a3 b3) -> packed u8 lane order after the two
  // in-lane pack steps; this permute restores ascending element order.
  const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 cap = _mm256_set1_ps(127.0f);
  for (int i = 0; i < count; ++i) {
    const int row = rows != nullptr ? rows[i] : i;
    const float* x = src + static_cast<std::size_t>(row) * dim;
    std::uint8_t* dst = qa + static_cast<std::size_t>(i) * dim;
    if (dim == 0) {
      scales[i] = 0.0f;
      zeros[i] = 0.0f;
      continue;
    }
    float lo, hi;
    int j = 0;
    if (dim >= 8) {
      __m256 vlo = _mm256_loadu_ps(x);
      __m256 vhi = vlo;
      for (j = 8; j + 8 <= dim; j += 8) {
        const __m256 v = _mm256_loadu_ps(x + j);
        vlo = _mm256_min_ps(vlo, v);
        vhi = _mm256_max_ps(vhi, v);
      }
      lo = hmin_ps(vlo);
      hi = hmax_ps(vhi);
    } else {
      lo = hi = x[0];
      j = 1;
    }
    for (; j < dim; ++j) {
      lo = std::min(lo, x[j]);
      hi = std::max(hi, x[j]);
    }
    zeros[i] = lo;
    scales[i] = (hi - lo) / 127.0f;
    const float inv = scales[i] > 0.0f ? 127.0f / (hi - lo) : 0.0f;
    const __m256 vlo8 = _mm256_set1_ps(lo);
    const __m256 vinv = _mm256_set1_ps(inv);
    j = 0;
    for (; j + 32 <= dim; j += 32) {
      __m256i q[4];
      for (int t = 0; t < 4; ++t) {
        const __m256 v = _mm256_loadu_ps(x + j + t * 8);
        const __m256 scaled =
            _mm256_min_ps(_mm256_add_ps(_mm256_mul_ps(_mm256_sub_ps(v, vlo8), vinv), half),
                          cap);
        q[t] = _mm256_cvttps_epi32(scaled);
      }
      const __m256i p01 = _mm256_packs_epi32(q[0], q[1]);   // i16, in-lane interleave
      const __m256i p23 = _mm256_packs_epi32(q[2], q[3]);
      const __m256i bytes = _mm256_packus_epi16(p01, p23);  // u8, in-lane interleave
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j),
                          _mm256_permutevar8x32_epi32(bytes, order));
    }
    for (; j < dim; ++j) {
      const float q = std::min((x[j] - lo) * inv + 0.5f, 127.0f);
      dst[j] = static_cast<std::uint8_t>(static_cast<int>(q));
    }
  }
}

// ---------------------------------------------------------------------------
// Fused-HGT primitives
// ---------------------------------------------------------------------------

/// hd == 8: each head block is exactly one YMM accumulator; a row's heads
/// run back to back so the whole [dim] output row streams out vectorized.
void head_map_hd8(const float* x, const float* w, float* out, int n, int heads) {
  const int dim = heads * 8;
  for (int i = 0; i < n; ++i) {
    const float* xrow = x + static_cast<std::size_t>(i) * dim;
    float* orow = out + static_cast<std::size_t>(i) * dim;
    for (int h = 0; h < heads; ++h) {
      const float* xh = xrow + h * 8;
      const float* wh = w + static_cast<std::size_t>(h) * 64;
      __m256 acc = _mm256_setzero_ps();
      for (int kk = 0; kk < 8; ++kk) {
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(xh + kk),
                              _mm256_loadu_ps(wh + static_cast<std::size_t>(kk) * 8), acc);
      }
      _mm256_storeu_ps(orow + h * 8, acc);
    }
  }
}

void avx2_head_map(const float* x, const float* w, float* out, int n, int heads, int hd) {
  if (hd == 8) return head_map_hd8(x, w, out, n, heads);
  if (hd % 8 == 0) {
    const int dim = heads * hd;
    for (int i = 0; i < n; ++i) {
      const float* xrow = x + static_cast<std::size_t>(i) * dim;
      float* orow = out + static_cast<std::size_t>(i) * dim;
      for (int h = 0; h < heads; ++h) {
        const float* xh = xrow + h * hd;
        const float* wh = w + static_cast<std::size_t>(h) * hd * hd;
        for (int j = 0; j < hd; j += 8) {
          __m256 acc = _mm256_setzero_ps();
          for (int kk = 0; kk < hd; ++kk) {
            acc = _mm256_fmadd_ps(
                _mm256_broadcast_ss(xh + kk),
                _mm256_loadu_ps(wh + static_cast<std::size_t>(kk) * hd + j), acc);
          }
          _mm256_storeu_ps(orow + h * hd + j, acc);
        }
      }
    }
    return;
  }
  scalar().head_map(x, w, out, n, heads, hd);
}

// ---------------------------------------------------------------------------
// Lane-parallel exp: the fastmath.h construction (clamp, split-ln2 range
// reduction, degree-6 Taylor, exponent-bit scaling) with nearest-even
// rounding in the reduction — within ~1e-7 relative of the scalar kernel.
// NaN lanes propagate via the unordered-compare blend, matching fast_expf.
// ---------------------------------------------------------------------------

inline __m256 exp256(__m256 x) {
  const __m256 clamped =
      _mm256_min_ps(_mm256_set1_ps(87.0f), _mm256_max_ps(_mm256_set1_ps(-87.0f), x));
  const __m256 fi = _mm256_mul_ps(clamped, _mm256_set1_ps(1.442695040888963f));
  const __m256 ri = _mm256_round_ps(fi, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256 f = _mm256_sub_ps(
      _mm256_sub_ps(clamped, _mm256_mul_ps(ri, _mm256_set1_ps(0.693359375f))),
      _mm256_mul_ps(ri, _mm256_set1_ps(-2.12194440e-4f)));
  __m256 p = _mm256_set1_ps(1.0f / 5040.0f);
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(1.0f / 720.0f));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(1.0f / 120.0f));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(1.0f / 24.0f));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(1.0f / 6.0f));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(0.5f));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(1.0f));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(1.0f));
  const __m256i bits = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvtps_epi32(ri), _mm256_set1_epi32(127)), 23);
  const __m256 result = _mm256_mul_ps(p, _mm256_castsi256_ps(bits));
  return _mm256_blendv_ps(result, x, _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
}

inline __m128 exp128(__m128 x) {
  const __m128 clamped =
      _mm_min_ps(_mm_set1_ps(87.0f), _mm_max_ps(_mm_set1_ps(-87.0f), x));
  const __m128 fi = _mm_mul_ps(clamped, _mm_set1_ps(1.442695040888963f));
  const __m128 ri = _mm_round_ps(fi, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m128 f =
      _mm_sub_ps(_mm_sub_ps(clamped, _mm_mul_ps(ri, _mm_set1_ps(0.693359375f))),
                 _mm_mul_ps(ri, _mm_set1_ps(-2.12194440e-4f)));
  __m128 p = _mm_set1_ps(1.0f / 5040.0f);
  p = _mm_fmadd_ps(p, f, _mm_set1_ps(1.0f / 720.0f));
  p = _mm_fmadd_ps(p, f, _mm_set1_ps(1.0f / 120.0f));
  p = _mm_fmadd_ps(p, f, _mm_set1_ps(1.0f / 24.0f));
  p = _mm_fmadd_ps(p, f, _mm_set1_ps(1.0f / 6.0f));
  p = _mm_fmadd_ps(p, f, _mm_set1_ps(0.5f));
  p = _mm_fmadd_ps(p, f, _mm_set1_ps(1.0f));
  p = _mm_fmadd_ps(p, f, _mm_set1_ps(1.0f));
  const __m128i bits =
      _mm_slli_epi32(_mm_add_epi32(_mm_cvtps_epi32(ri), _mm_set1_epi32(127)), 23);
  const __m128 result = _mm_mul_ps(p, _mm_castsi128_ps(bits));
  return _mm_blendv_ps(result, x, _mm_cmpunord_ps(x, x));
}

inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 1));
  return _mm_cvtss_f32(sum);
}

float avx2_dot(const float* a, const float* b, int d) {
  if (d == 8) {
    // The head_dim fast path: one load pair, horizontal sum.
    return hsum8(_mm256_mul_ps(_mm256_loadu_ps(a), _mm256_loadu_ps(b)));
  }
  __m256 acc = _mm256_setzero_ps();
  int j = 0;
  for (; j + 8 <= d; j += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j), acc);
  }
  float total = hsum8(acc);
  for (; j < d; ++j) total += a[j] * b[j];
  return total;
}

void avx2_row_dot(const float* a, const float* b, float* out, int n, int d) {
  for (int i = 0; i < n; ++i) {
    const std::size_t row = static_cast<std::size_t>(i) * d;
    out[i] = avx2_dot(a + row, b + row, d);
  }
}

/// Serving-shape (heads 4, hd 8) direct logits: each head's mapped K row is
/// built in one YMM register (8 fmadds against the cached weight block, L1
/// resident), then dotted with Q — no [N, dim] k_map buffer exists at all.
void hgt_logits_direct_h4d8(const float* k_all, const float* q, const float* w_att,
                            const int* srcs, const int* dsts, const int* metas,
                            const float* mu, int count, float scale, float* logits,
                            float* node_max) {
  for (int p = 0; p < count; ++p) {
    const float* krow = k_all + static_cast<std::size_t>(srcs[p]) * 32;
    const float* qrow = q + static_cast<std::size_t>(dsts[p]) * 32;
    __m256 prod[4];
    for (int h = 0; h < 4; ++h) {
      const float* kh = krow + h * 8;
      const float* wh = w_att + static_cast<std::size_t>(h) * 64;
      __m256 mk = _mm256_setzero_ps();
      for (int kk = 0; kk < 8; ++kk) {
        mk = _mm256_fmadd_ps(_mm256_broadcast_ss(kh + kk),
                             _mm256_loadu_ps(wh + static_cast<std::size_t>(kk) * 8), mk);
      }
      prod[h] = _mm256_mul_ps(mk, _mm256_loadu_ps(qrow + h * 8));
    }
    const __m256 s = _mm256_hadd_ps(_mm256_hadd_ps(prod[0], prod[1]),
                                    _mm256_hadd_ps(prod[2], prod[3]));
    const __m128 dots = _mm_add_ps(_mm256_castps256_ps128(s), _mm256_extractf128_ps(s, 1));
    const __m128 l = _mm_mul_ps(dots, _mm_set1_ps(scale * mu[metas[p]]));
    _mm_storeu_ps(logits + static_cast<std::size_t>(p) * 4, l);
    float* mrow = node_max + static_cast<std::size_t>(dsts[p]) * 4;
    _mm_storeu_ps(mrow, _mm_max_ps(_mm_loadu_ps(mrow), l));
  }
}

void avx2_hgt_logits_direct(const float* k_all, const float* q, const float* w_att,
                            const int* srcs, const int* dsts, const int* metas,
                            const float* mu, int count, int heads, int hd, float scale,
                            float* logits, float* node_max) {
  if (heads == 4 && hd == 8) {
    return hgt_logits_direct_h4d8(k_all, q, w_att, srcs, dsts, metas, mu, count, scale,
                                  logits, node_max);
  }
  scalar().hgt_logits_direct(k_all, q, w_att, srcs, dsts, metas, mu, count, heads, hd, scale,
                             logits, node_max);
}

/// Serving-shape direct accumulate: mapped V row per head in one register,
/// weighted by a 4-lane exp, scattered with one fmadd per head.
void hgt_accumulate_direct_h4d8(const float* v_all, const float* w_msg, const int* srcs,
                                const int* dsts, int count, const float* logits,
                                const float* node_max, float* out, float* denom) {
  for (int p = 0; p < count; ++p) {
    const float* vrow = v_all + static_cast<std::size_t>(srcs[p]) * 32;
    const std::size_t d = static_cast<std::size_t>(dsts[p]);
    const __m128 l = _mm_loadu_ps(logits + static_cast<std::size_t>(p) * 4);
    const __m128 w = exp128(_mm_sub_ps(l, _mm_loadu_ps(node_max + d * 4)));
    float* drow = denom + d * 4;
    _mm_storeu_ps(drow, _mm_add_ps(_mm_loadu_ps(drow), w));
    alignas(16) float ws[4];
    _mm_store_ps(ws, w);
    float* orow = out + d * 32;
    for (int h = 0; h < 4; ++h) {
      const float* vh = vrow + h * 8;
      const float* wh = w_msg + static_cast<std::size_t>(h) * 64;
      __m256 mv = _mm256_setzero_ps();
      for (int kk = 0; kk < 8; ++kk) {
        mv = _mm256_fmadd_ps(_mm256_broadcast_ss(vh + kk),
                             _mm256_loadu_ps(wh + static_cast<std::size_t>(kk) * 8), mv);
      }
      _mm256_storeu_ps(orow + h * 8,
                       _mm256_fmadd_ps(_mm256_set1_ps(ws[h]), mv,
                                       _mm256_loadu_ps(orow + h * 8)));
    }
  }
}

void avx2_hgt_accumulate_direct(const float* v_all, const float* w_msg, const int* srcs,
                                const int* dsts, int count, const float* logits,
                                const float* node_max, int heads, int hd, float* out,
                                float* denom) {
  if (heads == 4 && hd == 8) {
    return hgt_accumulate_direct_h4d8(v_all, w_msg, srcs, dsts, count, logits, node_max, out,
                                      denom);
  }
  scalar().hgt_accumulate_direct(v_all, w_msg, srcs, dsts, count, logits, node_max, heads, hd,
                                 out, denom);
}

void avx2_gelu(const float* x, float* out, int n) {
  const __m256 kC = _mm256_set1_ps(0.7978845608028654f);  // sqrt(2/pi)
  const __m256 kA = _mm256_set1_ps(0.044715f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 two = _mm256_set1_ps(2.0f);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 v3 = _mm256_mul_ps(_mm256_mul_ps(v, v), v);
    const __m256 u = _mm256_mul_ps(kC, _mm256_fmadd_ps(kA, v3, v));
    // tanh(u) = 1 - 2 / (1 + exp(2u))
    const __m256 t =
        _mm256_sub_ps(one, _mm256_div_ps(two, _mm256_add_ps(one, exp256(_mm256_mul_ps(two, u)))));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_mul_ps(half, v), _mm256_add_ps(one, t)));
  }
  if (i < n) scalar().gelu(x + i, out + i, n - i);
}

/// The serving shape (heads 4, head_dim 8): all four head dots of one edge
/// reduced together (hadd tree), logits and the per-destination max handled
/// as 4-lane vectors.
void hgt_logits_h4d8(const float* k_map, const float* q, const int* srcs, const int* dsts,
                     const int* metas, const float* mu, int count, float scale,
                     float* logits, float* node_max) {
  for (int p = 0; p < count; ++p) {
    const float* krow = k_map + static_cast<std::size_t>(srcs[p]) * 32;
    const float* qrow = q + static_cast<std::size_t>(dsts[p]) * 32;
    const __m256 p0 = _mm256_mul_ps(_mm256_loadu_ps(krow), _mm256_loadu_ps(qrow));
    const __m256 p1 = _mm256_mul_ps(_mm256_loadu_ps(krow + 8), _mm256_loadu_ps(qrow + 8));
    const __m256 p2 = _mm256_mul_ps(_mm256_loadu_ps(krow + 16), _mm256_loadu_ps(qrow + 16));
    const __m256 p3 = _mm256_mul_ps(_mm256_loadu_ps(krow + 24), _mm256_loadu_ps(qrow + 24));
    // hadd tree: lane l of (low128 + high128) ends up dot(p_l).
    const __m256 s = _mm256_hadd_ps(_mm256_hadd_ps(p0, p1), _mm256_hadd_ps(p2, p3));
    const __m128 dots =
        _mm_add_ps(_mm256_castps256_ps128(s), _mm256_extractf128_ps(s, 1));
    const __m128 l = _mm_mul_ps(dots, _mm_set1_ps(scale * mu[metas[p]]));
    _mm_storeu_ps(logits + static_cast<std::size_t>(p) * 4, l);
    float* mrow = node_max + static_cast<std::size_t>(dsts[p]) * 4;
    _mm_storeu_ps(mrow, _mm_max_ps(_mm_loadu_ps(mrow), l));
  }
}

/// Serving-shape accumulate: the four head weights come from one 4-lane exp,
/// the denominator row updates as one vector, and each head's 8-wide axpy is
/// a single fmadd.
void hgt_accumulate_h4d8(const float* v_map, const int* srcs, const int* dsts, int count,
                         const float* logits, const float* node_max, float* out,
                         float* denom) {
  for (int p = 0; p < count; ++p) {
    const float* vrow = v_map + static_cast<std::size_t>(srcs[p]) * 32;
    const std::size_t d = static_cast<std::size_t>(dsts[p]);
    const __m128 l = _mm_loadu_ps(logits + static_cast<std::size_t>(p) * 4);
    const __m128 m = _mm_loadu_ps(node_max + d * 4);
    const __m128 w = exp128(_mm_sub_ps(l, m));
    float* drow = denom + d * 4;
    _mm_storeu_ps(drow, _mm_add_ps(_mm_loadu_ps(drow), w));
    alignas(16) float ws[4];
    _mm_store_ps(ws, w);
    float* orow = out + d * 32;
    for (int h = 0; h < 4; ++h) {
      const __m256 vw = _mm256_set1_ps(ws[h]);
      _mm256_storeu_ps(orow + h * 8,
                       _mm256_fmadd_ps(vw, _mm256_loadu_ps(vrow + h * 8),
                                       _mm256_loadu_ps(orow + h * 8)));
    }
  }
}

void avx2_hgt_logits(const float* k_map, const float* q, const int* srcs, const int* dsts,
                     const int* metas, const float* mu, int count, int heads, int hd,
                     float scale, float* logits, float* node_max) {
  if (heads == 4 && hd == 8) {
    return hgt_logits_h4d8(k_map, q, srcs, dsts, metas, mu, count, scale, logits, node_max);
  }
  const int dim = heads * hd;
  if (hd == 8) {
    for (int p = 0; p < count; ++p) {
      const float* krow = k_map + static_cast<std::size_t>(srcs[p]) * dim;
      const float* qrow = q + static_cast<std::size_t>(dsts[p]) * dim;
      const float sm = scale * mu[metas[p]];
      float* lrow = logits + static_cast<std::size_t>(p) * heads;
      float* mrow = node_max + static_cast<std::size_t>(dsts[p]) * heads;
      for (int h = 0; h < heads; ++h) {
        const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(krow + h * 8),
                                          _mm256_loadu_ps(qrow + h * 8));
        const float l = hsum8(prod) * sm;
        lrow[h] = l;
        mrow[h] = l > mrow[h] ? l : mrow[h];
      }
    }
    return;
  }
  for (int p = 0; p < count; ++p) {
    const float* krow = k_map + static_cast<std::size_t>(srcs[p]) * dim;
    const float* qrow = q + static_cast<std::size_t>(dsts[p]) * dim;
    const float sm = scale * mu[metas[p]];
    float* lrow = logits + static_cast<std::size_t>(p) * heads;
    float* mrow = node_max + static_cast<std::size_t>(dsts[p]) * heads;
    for (int h = 0; h < heads; ++h) {
      const float l = avx2_dot(krow + h * hd, qrow + h * hd, hd) * sm;
      lrow[h] = l;
      mrow[h] = l > mrow[h] ? l : mrow[h];
    }
  }
}

void avx2_hgt_accumulate(const float* v_map, const int* srcs, const int* dsts, int count,
                         const float* logits, const float* node_max, int heads, int hd,
                         float* out, float* denom) {
  if (heads == 4 && hd == 8) {
    return hgt_accumulate_h4d8(v_map, srcs, dsts, count, logits, node_max, out, denom);
  }
  const int dim = heads * hd;
  for (int p = 0; p < count; ++p) {
    const float* vrow = v_map + static_cast<std::size_t>(srcs[p]) * dim;
    const float* lrow = logits + static_cast<std::size_t>(p) * heads;
    const float* mrow = node_max + static_cast<std::size_t>(dsts[p]) * heads;
    float* drow = denom + static_cast<std::size_t>(dsts[p]) * heads;
    float* orow = out + static_cast<std::size_t>(dsts[p]) * dim;
    for (int h = 0; h < heads; ++h) {
      // fast_expf is scalar (`heads` exps per edge); the axpy below is the
      // bandwidth-relevant part and vectorizes.
      const float w = g2p::fast_expf(lrow[h] - mrow[h]);
      drow[h] += w;
      const float* vv = vrow + h * hd;
      float* oo = orow + h * hd;
      const __m256 vw = _mm256_set1_ps(w);
      int j = 0;
      for (; j + 8 <= hd; j += 8) {
        _mm256_storeu_ps(oo + j,
                         _mm256_fmadd_ps(vw, _mm256_loadu_ps(vv + j), _mm256_loadu_ps(oo + j)));
      }
      for (; j < hd; ++j) oo[j] += w * vv[j];
    }
  }
}

// ---------------------------------------------------------------------------
// Segment kernels: sequential over rows (order is part of the numerics
// contract), vectorized across the feature axis
// ---------------------------------------------------------------------------

void avx2_segment_sum_rows(const float* x, const int* seg, int n, int d, int num_segments,
                           float* out) {
  const std::size_t total = static_cast<std::size_t>(num_segments) * d;
  std::size_t z = 0;
  const __m256 zero = _mm256_setzero_ps();
  for (; z + 8 <= total; z += 8) _mm256_storeu_ps(out + z, zero);
  for (; z < total; ++z) out[z] = 0.0f;
  for (int i = 0; i < n; ++i) {
    const float* src = x + static_cast<std::size_t>(i) * d;
    float* dst = out + static_cast<std::size_t>(seg[i]) * d;
    int j = 0;
    for (; j + 8 <= d; j += 8) {
      _mm256_storeu_ps(dst + j, _mm256_add_ps(_mm256_loadu_ps(dst + j),
                                              _mm256_loadu_ps(src + j)));
    }
    for (; j < d; ++j) dst[j] += src[j];
  }
}

void avx2_segment_weighted_sum_rows(const float* x, const float* w, const int* seg, int n,
                                    int d, int num_segments, float* out) {
  const std::size_t total = static_cast<std::size_t>(num_segments) * d;
  std::size_t z = 0;
  const __m256 zero = _mm256_setzero_ps();
  for (; z + 8 <= total; z += 8) _mm256_storeu_ps(out + z, zero);
  for (; z < total; ++z) out[z] = 0.0f;
  for (int i = 0; i < n; ++i) {
    const float wi = w[i];
    const __m256 vw = _mm256_set1_ps(wi);
    const float* src = x + static_cast<std::size_t>(i) * d;
    float* dst = out + static_cast<std::size_t>(seg[i]) * d;
    int j = 0;
    for (; j + 8 <= d; j += 8) {
      _mm256_storeu_ps(dst + j, _mm256_fmadd_ps(vw, _mm256_loadu_ps(src + j),
                                                _mm256_loadu_ps(dst + j)));
    }
    for (; j < d; ++j) dst[j] += wi * src[j];
  }
}

const Kernels kAvx2 = {
    "avx2",
    avx2_matmul,
    avx2_gemm,
    avx2_gemm_s8,
    avx2_quantize_rows,
    avx2_head_map,
    avx2_hgt_logits,
    avx2_hgt_accumulate,
    avx2_hgt_logits_direct,
    avx2_hgt_accumulate_direct,
    avx2_row_dot,
    avx2_gelu,
    // Per-segment softmax is gather/scatter-bound with a fixed accumulation
    // order; the scalar kernel (auto-vectorized where profitable) is used.
    nullptr,  // patched to scalar().segment_softmax in avx2_table()
    avx2_segment_sum_rows,
    avx2_segment_weighted_sum_rows,
};

}  // namespace

const Kernels* avx2_table() {
  static Kernels table = [] {
    Kernels t = kAvx2;
    t.segment_softmax = scalar().segment_softmax;
    return t;
  }();
  return &table;
}

}  // namespace g2p::backend

#else  // !G2P_BACKEND_AVX2_ENABLED

namespace g2p::backend {
const Kernels* avx2_table() { return nullptr; }
}  // namespace g2p::backend

#endif
