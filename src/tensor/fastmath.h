// Branch-free float transcendentals for the hot activation/softmax loops.
//
// libm's scalar expf/tanhf dominate the batched forward (GELU alone is ~half
// the encode time at batch scale: one tanh per node-feature). These
// replacements use the standard range-reduction + polynomial construction:
// exp(x) = 2^i * e^f with f in [-ln2/2, ln2/2] and a degree-6 Taylor for
// e^f (relative error ~1e-7, well below float round-off accumulation in the
// surrounding reductions), written so the compiler can vectorize the
// surrounding loops. tanh comes from the exp identity, so it inherits the
// same accuracy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace g2p {

inline float fast_expf(float x) {
  // i = round(x / ln2); f = x - i*ln2 in [-0.3466, 0.3466]
  constexpr float kLog2e = 1.442695040888963f;
  constexpr float kLn2Hi = 0.693359375f;         // ln2 split for exact reduction
  constexpr float kLn2Lo = -2.12194440e-4f;
  // Saturates at |x| = 87 (exp(87) ~ 6e37) instead of returning inf; NaN
  // propagates (the clamp below would otherwise flush it to exp(-87) and
  // hide a diverged forward pass). The ternary compiles to a blend, so the
  // surrounding loops still vectorize.
  if (!(x == x)) return x;
  const float clamped = std::min(87.0f, std::max(-87.0f, x));
  const float fi = clamped * kLog2e;
  const float ri = fi >= 0.0f ? static_cast<float>(static_cast<int>(fi + 0.5f))
                              : static_cast<float>(static_cast<int>(fi - 0.5f));
  const float f = (clamped - ri * kLn2Hi) - ri * kLn2Lo;
  // Degree-6 Taylor of e^f; |f| <= ln2/2 keeps the truncation ~1e-7 relative.
  float p = 1.0f / 5040.0f;
  p = p * f + 1.0f / 720.0f;
  p = p * f + 1.0f / 120.0f;
  p = p * f + 1.0f / 24.0f;
  p = p * f + 1.0f / 6.0f;
  p = p * f + 0.5f;
  p = p * f + 1.0f;
  p = p * f + 1.0f;
  // Scale by 2^i through the exponent bits.
  const std::int32_t bits = (static_cast<std::int32_t>(ri) + 127) << 23;
  float scale;
  std::memcpy(&scale, &bits, sizeof scale);
  return p * scale;
}

inline float fast_tanhf(float x) {
  // tanh(x) = 1 - 2 / (1 + e^{2x}); the exp clamp saturates to +-1 and NaN
  // propagates through fast_expf.
  return 1.0f - 2.0f / (1.0f + fast_expf(2.0f * x));
}

}  // namespace g2p
