// Cache-blocked, packed GEMM: the GotoBLAS/BLIS loop nest, shared by every
// backend table.
//
// The legacy `Kernels::matmul` specializations keep one or two output rows
// in registers and stream B from cache once per row — fine while B fits L1,
// but at serving projection shapes ([N, 64]x[64, 256]-class) B is rereads
// from L2 per row and the single accumulator chain per column block leaves
// the FMA pipes mostly idle. This driver restores the classical structure:
//
//   for jc (NC cols)            B panel      [KC, NC] packed, L2/L3
//     for pc (KC depth)
//       for ic (MC rows)        A panel      [MC, KC] packed, L2
//         for jr (NR cols)      B micro-panel [KC, NR]        L1
//           for ir (MR rows)    A micro-panel [MR, KC]        L1
//             micro-kernel: MR x NR register tile over the full KC depth
//
// Panels are packed into 64-byte-aligned tensor_pool scratch (pack_a /
// pack_b zero-pad to full MR/NR strips, so the micro-kernel never sees a
// ragged edge and SIMD backends may use aligned loads on B). The micro-
// kernel is the only backend-specific part; it is injected as a policy
// (`Micro::MR`, `Micro::NR`, `Micro::run`).
//
// Numerics: for every output element the k axis accumulates in ascending
// index order (pc blocks ascend, the micro-kernel walks kc ascending, and
// later pc blocks add onto the stored partials), matching the backend
// contract. FMA contraction and register-tile evaluation order still differ
// from the legacy kernels in the last ulps — cross-kernel comparisons use
// tolerances, as everywhere else in backend.h.
#pragma once

#include <algorithm>
#include <cstddef>

#include "tensor/tensor.h"

namespace g2p::backend::detail {

// Block sizes (float32). KC x NR B micro-panels and MR x KC A micro-panels
// must stay L1-resident; MC x KC A panels target L2. The serving shapes
// (k <= 64, m <= 256) take a single pc/jc pass — the outer blocking only
// engages on the large square/tall shapes the bench and tests cover.
inline constexpr int kGemmMC = 120;
inline constexpr int kGemmKC = 320;
inline constexpr int kGemmNC = 2048;

/// Pack a row-major A block [rows, kc] (leading dimension lda) into MR-row
/// micro-panels: within one panel the MR values of each k are contiguous,
/// k ascending. Rows past `rows` are zero-filled.
template <int MR>
inline void pack_a(const float* a, int lda, int rows, int kc, float* dst) {
  for (int ir = 0; ir < rows; ir += MR) {
    const int mr = std::min(MR, rows - ir);
    const float* ablock = a + static_cast<std::size_t>(ir) * lda;
    for (int kk = 0; kk < kc; ++kk) {
      for (int r = 0; r < mr; ++r) dst[r] = ablock[static_cast<std::size_t>(r) * lda + kk];
      for (int r = mr; r < MR; ++r) dst[r] = 0.0f;
      dst += MR;
    }
  }
}

/// Pack a row-major B block [kc, cols] (leading dimension ldb) into NR-col
/// micro-panels: per panel the NR values of each k are contiguous, k
/// ascending. Columns past `cols` are zero-filled.
template <int NR>
inline void pack_b(const float* b, int ldb, int kc, int cols, float* dst) {
  for (int jr = 0; jr < cols; jr += NR) {
    const int nr = std::min(NR, cols - jr);
    const float* bblock = b + jr;
    for (int kk = 0; kk < kc; ++kk) {
      const float* brow = bblock + static_cast<std::size_t>(kk) * ldb;
      for (int c = 0; c < nr; ++c) dst[c] = brow[c];
      for (int c = nr; c < NR; ++c) dst[c] = 0.0f;
      dst += NR;
    }
  }
}

/// Row-major [n,k] x [k,m] -> [n,m], out fully overwritten. `Micro` supplies
/// the register tile:
///   Micro::MR, Micro::NR     — tile shape
///   Micro::run(kc, pa, pb, c, ldc, accumulate)
///     — one MR x NR tile over kc packed depths; stores into c (row stride
///       ldc), adding onto the existing values when `accumulate`.
template <class Micro>
void gemm_blocked(const float* a, const float* b, float* out, int n, int k, int m) {
  constexpr int MR = Micro::MR;
  constexpr int NR = Micro::NR;
  if (n == 0 || m == 0) return;
  if (k == 0) {
    std::fill(out, out + static_cast<std::size_t>(n) * m, 0.0f);
    return;
  }

  const int kc_max = std::min(kGemmKC, k);
  const int mc_max = std::min(kGemmMC, n);
  const int nc_max = std::min(kGemmNC, m);
  const auto round_up = [](int v, int q) { return (v + q - 1) / q * q; };
  // tensor_pool scratch: 64-byte aligned (the SIMD micro-kernels load packed
  // B panels with aligned loads), recycled across calls.
  FloatVec pa_buf(static_cast<std::size_t>(round_up(mc_max, MR)) * kc_max);
  FloatVec pb_buf(static_cast<std::size_t>(round_up(nc_max, NR)) * kc_max);

  for (int jc = 0; jc < m; jc += kGemmNC) {
    const int nc = std::min(kGemmNC, m - jc);
    for (int pc = 0; pc < k; pc += kGemmKC) {
      const int kc = std::min(kGemmKC, k - pc);
      const bool accumulate = pc > 0;
      pack_b<NR>(b + static_cast<std::size_t>(pc) * m + jc, m, kc, nc, pb_buf.data());
      for (int ic = 0; ic < n; ic += kGemmMC) {
        const int mc = std::min(kGemmMC, n - ic);
        pack_a<MR>(a + static_cast<std::size_t>(ic) * k + pc, k, mc, kc, pa_buf.data());
        for (int jr = 0; jr < nc; jr += NR) {
          const int nr = std::min(NR, nc - jr);
          const float* pb = pb_buf.data() + static_cast<std::size_t>(jr) * kc;
          for (int ir = 0; ir < mc; ir += MR) {
            const int mr = std::min(MR, mc - ir);
            const float* pa = pa_buf.data() + static_cast<std::size_t>(ir) * kc;
            float* c = out + static_cast<std::size_t>(ic + ir) * m + jc + jr;
            if (mr == MR && nr == NR) {
              Micro::run(kc, pa, pb, c, m, accumulate);
            } else {
              // Ragged edge: compute the full zero-padded tile off to the
              // side, then fold only the live mr x nr corner into C.
              alignas(64) float tile[MR * NR];
              Micro::run(kc, pa, pb, tile, NR, false);
              for (int r = 0; r < mr; ++r) {
                float* crow = c + static_cast<std::size_t>(r) * m;
                const float* trow = tile + r * NR;
                if (accumulate) {
                  for (int j = 0; j < nr; ++j) crow[j] += trow[j];
                } else {
                  for (int j = 0; j < nr; ++j) crow[j] = trow[j];
                }
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace g2p::backend::detail
