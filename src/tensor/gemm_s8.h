// Int8 quantized GEMM: the gemm_blocked.h loop nest over 8-bit operands,
// plus the quantize/dequantize helpers that define the serving contract.
//
// The quantization scheme (scalar micro-kernel in backend.cpp is the
// reference semantics; the AVX2 maddubs kernel is bitwise-identical):
//
//   * Activations are quantized dynamically per row, asymmetric, to the
//     unsigned 7-bit range [0, 127]:  a[i,k] ~= zero[i] + scale[i]*qa[i,k].
//     Seven bits — not eight — is what makes vpmaddubsw exact: u8 in
//     [0,127] times s8 in [-127,127], two products summed, stays inside
//     int16 (127*127*2 = 32258 < 32767), so the SIMD pair-sum never
//     saturates and integer accumulators match the scalar reference
//     bitwise. The asymmetric zero-point also fits the model's activation
//     distributions (GELU outputs, embeddings) better than a symmetric
//     clamp would.
//   * Weights are quantized ahead of time per output channel (per column
//     of the row-major [k, m] operand — each column is one logical weight
//     row of the Linear), symmetric:  w[kk,j] ~= scale[j] * qw[kk,j] with
//     qw clamped to [-127, 127].
//   * The integer GEMM computes exact int32  acc[i,j] = sum_k qa * qw;
//     the caller dequantizes in its epilogue (fused with bias/residual):
//       out[i,j] = a_scale[i]*(w.scale[j]*acc[i,j]) + a_zero[i]*w.zcomp[j]
//     where zcomp[j] = scale[j] * sum_k qw[kk,j] folds the activation
//     zero-point through the weight column once, at repack time.
//
// The driver packs both operands into 64-byte-aligned tensor_pool scratch
// with the depth axis grouped in fours (kQuantKP): a micro-panel step holds
// MR (or NR) groups of four consecutive-k bytes, which is exactly the
// operand order vpmaddubsw/vpmaddwd reduce in one instruction pair. Depth
// is zero-padded to a multiple of four (zero bytes contribute nothing), so
// odd k needs no scalar tail anywhere.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstddef>
#include <cstring>
#include <vector>

#include "tensor/gemm_blocked.h"  // block constants kGemmMC/KC/NC
#include "tensor/tensor.h"

namespace g2p::backend::detail {

/// Depth-group width of the packed int8 panels (the maddubs pair width
/// times the madd pair width).
inline constexpr int kQuantKP = 4;

using U8Vec = std::vector<std::uint8_t, UninitAllocator<std::uint8_t>>;
using I8Vec = std::vector<std::int8_t, UninitAllocator<std::int8_t>>;
using I32Vec = std::vector<std::int32_t, UninitAllocator<std::int32_t>>;

/// Quantize one activation row to u8 in [0, 127] (asymmetric, dynamic):
/// src[kk] ~= zero + scale * dst[kk]. A constant row (including all-zero —
/// the scale guard) quantizes to scale 0 with every code 0, which
/// dequantizes exactly through the zcomp term.
inline void quantize_row_u8(const float* src, int k, std::uint8_t* dst, float& scale,
                            float& zero) {
  float lo = 0.0f, hi = 0.0f;
  if (k > 0) {
    lo = hi = src[0];
    for (int kk = 1; kk < k; ++kk) {
      lo = std::min(lo, src[kk]);
      hi = std::max(hi, src[kk]);
    }
  }
  zero = lo;
  scale = (hi - lo) / 127.0f;
  const float inv = scale > 0.0f ? 127.0f / (hi - lo) : 0.0f;
  // (src-lo)*inv is in [0, 127] up to rounding, so a float-side upper clamp
  // is the only guard needed; the branch-free min keeps this loop
  // vectorizable (cvt + packus on AVX2, a straight lane loop elsewhere).
  for (int kk = 0; kk < k; ++kk) {
    const float q = std::min((src[kk] - lo) * inv + 0.5f, 127.0f);
    dst[kk] = static_cast<std::uint8_t>(static_cast<int>(q));
  }
}

/// A pre-quantized weight operand: the int8 image of a row-major [k, m]
/// GEMM rhs with its per-output-channel dequant scales and the activation
/// zero-point compensation (see file comment). Lives in HgtLayer's fused
/// weight cache next to the fp32 repacks.
struct QuantOperand {
  I8Vec q;        // row-major [k, m]
  FloatVec scale;   // [m]: w[kk,j] ~= scale[j] * q[kk,j]
  FloatVec zcomp;   // [m]: scale[j] * sum_k q[kk,j]
  int k = 0, m = 0;
};

/// Symmetric per-output-channel int8 quantization of a row-major [k, m]
/// weight block. An all-zero column gets scale 0 (guarded divide); values
/// that round past the representable range clamp to +-127.
inline void quantize_weights(const float* w, int k, int m, QuantOperand& out) {
  out.k = k;
  out.m = m;
  out.q.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(m));
  out.scale.assign(static_cast<std::size_t>(m), 0.0f);
  out.zcomp.assign(static_cast<std::size_t>(m), 0.0f);
  for (int j = 0; j < m; ++j) {
    float absmax = 0.0f;
    for (int kk = 0; kk < k; ++kk) {
      absmax = std::max(absmax, std::fabs(w[static_cast<std::size_t>(kk) * m + j]));
    }
    const float scale = absmax / 127.0f;
    const float inv = scale > 0.0f ? 127.0f / absmax : 0.0f;
    out.scale[static_cast<std::size_t>(j)] = scale;
    std::int32_t colsum = 0;
    for (int kk = 0; kk < k; ++kk) {
      const float v = w[static_cast<std::size_t>(kk) * m + j] * inv;
      const int q = std::clamp(static_cast<int>(std::lrintf(v)), -127, 127);
      out.q[static_cast<std::size_t>(kk) * m + j] = static_cast<std::int8_t>(q);
      colsum += q;
    }
    out.zcomp[static_cast<std::size_t>(j)] = scale * static_cast<float>(colsum);
  }
}

/// Pack a u8 activation block [rows, kc] (leading dimension lda) into
/// MR-row micro-panels with the depth axis grouped by kQuantKP: one panel
/// step is MR runs of four consecutive-k bytes (row r's group is
/// broadcast-loadable as one u32). Rows past `rows` and depths past `kc`
/// are zero-filled.
template <int MR>
inline void pack_a_s8(const std::uint8_t* a, int lda, int rows, int kc, std::uint8_t* dst) {
  const int kc4 = (kc + kQuantKP - 1) / kQuantKP;
  const int kc4_full = kc / kQuantKP;  // groups with no depth padding
  for (int ir = 0; ir < rows; ir += MR) {
    const int mr = std::min(MR, rows - ir);
    const std::uint8_t* ablock = a + static_cast<std::size_t>(ir) * lda;
    if (mr == MR) {
      // Interior strip: every (row, group) step is a straight 4-byte copy.
      for (int kb = 0; kb < kc4_full; ++kb) {
        const int k0 = kb * kQuantKP;
        for (int r = 0; r < MR; ++r) {
          std::memcpy(dst, ablock + static_cast<std::size_t>(r) * lda + k0, kQuantKP);
          dst += kQuantKP;
        }
      }
      for (int kb = kc4_full; kb < kc4; ++kb) {  // ragged depth tail, zero-padded
        const int k0 = kb * kQuantKP;
        for (int r = 0; r < MR; ++r) {
          const std::uint8_t* arow = ablock + static_cast<std::size_t>(r) * lda;
          for (int t = 0; t < kQuantKP; ++t) dst[t] = k0 + t < kc ? arow[k0 + t] : 0;
          dst += kQuantKP;
        }
      }
      continue;
    }
    for (int kb = 0; kb < kc4; ++kb) {
      const int k0 = kb * kQuantKP;
      for (int r = 0; r < MR; ++r) {
        const std::uint8_t* arow = ablock + static_cast<std::size_t>(r) * lda;
        for (int t = 0; t < kQuantKP; ++t) {
          dst[t] = (r < mr && k0 + t < kc) ? arow[k0 + t] : 0;
        }
        dst += kQuantKP;
      }
    }
  }
}

/// Pack an s8 weight block [kc, cols] (leading dimension ldb) into NR-col
/// micro-panels, depth grouped by kQuantKP: one panel step is NR runs of
/// four consecutive-k bytes of one column — the vpmaddubsw operand order.
/// Columns past `cols` and depths past `kc` are zero-filled.
template <int NR>
inline void pack_b_s8(const std::int8_t* b, int ldb, int kc, int cols, std::int8_t* dst) {
  const int kc4 = (kc + kQuantKP - 1) / kQuantKP;
  const int kc4_full = kc / kQuantKP;
  for (int jr = 0; jr < cols; jr += NR) {
    const int nr = std::min(NR, cols - jr);
    const std::int8_t* bblock = b + jr;
    if (nr == NR) {
      // Interior strip: branch-free column gather down four rows of b.
      for (int kb = 0; kb < kc4_full; ++kb) {
        const std::int8_t* brow = bblock + static_cast<std::size_t>(kb * kQuantKP) * ldb;
        for (int j = 0; j < NR; ++j) {
          dst[0] = brow[j];
          dst[1] = brow[static_cast<std::size_t>(ldb) + j];
          dst[2] = brow[2 * static_cast<std::size_t>(ldb) + j];
          dst[3] = brow[3 * static_cast<std::size_t>(ldb) + j];
          dst += kQuantKP;
        }
      }
      for (int kb = kc4_full; kb < kc4; ++kb) {
        const int k0 = kb * kQuantKP;
        for (int j = 0; j < NR; ++j) {
          for (int t = 0; t < kQuantKP; ++t) {
            dst[t] = k0 + t < kc ? bblock[static_cast<std::size_t>(k0 + t) * ldb + j] : 0;
          }
          dst += kQuantKP;
        }
      }
      continue;
    }
    for (int kb = 0; kb < kc4; ++kb) {
      const int k0 = kb * kQuantKP;
      for (int j = 0; j < NR; ++j) {
        for (int t = 0; t < kQuantKP; ++t) {
          dst[t] = (j < nr && k0 + t < kc)
                       ? bblock[static_cast<std::size_t>(k0 + t) * ldb + j]
                       : 0;
        }
        dst += kQuantKP;
      }
    }
  }
}

/// Row-major u8 [n,k] (values <= 127, lda row stride) x s8 [k,m] -> exact
/// int32 [n,m] (ldc row stride), out fully overwritten. Same jc/pc/ic nest
/// as gemm_blocked; `Micro` supplies the register tile:
///   Micro::MR, Micro::NR    — tile shape
///   Micro::run(kc4, pa, pb, c, ldc, accumulate)
///     — one MR x NR int32 tile over kc4 packed depth groups; adds onto the
///       existing values when `accumulate`.
/// Integer accumulation is associative, so any backend's tile — and any
/// row-panel split over it — produces bitwise-identical results.
template <class Micro>
void gemm_s8_blocked(const std::uint8_t* a, int lda, const std::int8_t* b,
                     std::int32_t* out, int ldc, int n, int k, int m) {
  constexpr int MR = Micro::MR;
  constexpr int NR = Micro::NR;
  if (n == 0 || m == 0) return;
  if (k == 0) {
    for (int i = 0; i < n; ++i) {
      std::fill_n(out + static_cast<std::size_t>(i) * ldc, m, 0);
    }
    return;
  }

  const int kc_max = std::min(kGemmKC, k);
  const int mc_max = std::min(kGemmMC, n);
  const int nc_max = std::min(kGemmNC, m);
  const auto round_up = [](int v, int q) { return (v + q - 1) / q * q; };
  const int kc4_max = (kc_max + kQuantKP - 1) / kQuantKP;
  U8Vec pa_buf(static_cast<std::size_t>(round_up(mc_max, MR)) * kc4_max * kQuantKP);
  I8Vec pb_buf(static_cast<std::size_t>(round_up(nc_max, NR)) * kc4_max * kQuantKP);

  for (int jc = 0; jc < m; jc += kGemmNC) {
    const int nc = std::min(kGemmNC, m - jc);
    for (int pc = 0; pc < k; pc += kGemmKC) {
      const int kc = std::min(kGemmKC, k - pc);
      const int kc4 = (kc + kQuantKP - 1) / kQuantKP;
      const bool accumulate = pc > 0;
      pack_b_s8<NR>(b + static_cast<std::size_t>(pc) * m + jc, m, kc, nc, pb_buf.data());
      for (int ic = 0; ic < n; ic += kGemmMC) {
        const int mc = std::min(kGemmMC, n - ic);
        pack_a_s8<MR>(a + static_cast<std::size_t>(ic) * lda + pc, lda, mc, kc,
                      pa_buf.data());
        for (int jr = 0; jr < nc; jr += NR) {
          const int nr = std::min(NR, nc - jr);
          const std::int8_t* pb =
              pb_buf.data() + static_cast<std::size_t>(jr) * kc4 * kQuantKP;
          for (int ir = 0; ir < mc; ir += MR) {
            const int mr = std::min(MR, mc - ir);
            const std::uint8_t* pa =
                pa_buf.data() + static_cast<std::size_t>(ir) * kc4 * kQuantKP;
            std::int32_t* c = out + static_cast<std::size_t>(ic + ir) * ldc + jc + jr;
            if (mr == MR && nr == NR) {
              Micro::run(kc4, pa, pb, c, ldc, accumulate);
            } else {
              // Ragged edge: full zero-padded tile off to the side, fold
              // the live mr x nr corner into C.
              alignas(64) std::int32_t tile[MR * NR];
              Micro::run(kc4, pa, pb, tile, NR, false);
              for (int r = 0; r < mr; ++r) {
                std::int32_t* crow = c + static_cast<std::size_t>(r) * ldc;
                const std::int32_t* trow = tile + r * NR;
                if (accumulate) {
                  for (int j = 0; j < nr; ++j) crow[j] += trow[j];
                } else {
                  for (int j = 0; j < nr; ++j) crow[j] = trow[j];
                }
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace g2p::backend::detail
